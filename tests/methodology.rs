//! The paper's methodology, applied end-to-end: correlate the simulated
//! operator plans with the simulated resource telemetry and check that the
//! qualitative observations of §VI fall out.

use flowmark_core::correlate::Bound;
use flowmark_harness::experiments;
use flowmark_sim::Calibration;

fn cal() -> Calibration {
    Calibration::default()
}

#[test]
fn fig3_wordcount_is_cpu_and_disk_bound_with_anticyclic_flink_combine() {
    let rf = experiments::fig3(&cal()).expect("valid experiment config");
    // "For this workload both Flink and Spark are CPU and disk-bound."
    for report in [&rf.spark_report, &rf.flink_report] {
        let bounds = report.dominant_bounds();
        assert!(bounds.contains(&Bound::Cpu), "bounds: {bounds:?}");
        assert!(bounds.contains(&Bound::Disk), "bounds: {bounds:?}");
    }
    // "For Flink, we notice an anti-cyclic disk utilization ... explained
    // by the use of a sort-based combiner."
    let combine = rf
        .flink_report
        .profiles
        .iter()
        .find(|p| p.span.name.contains("GroupCombine"))
        .expect("Flink combine chain");
    assert!(
        combine.anticyclic_disk,
        "expected anti-cyclic CPU/disk in the Flink combine (r = {:?})",
        combine.cpu_disk_correlation
    );
    // Flink finishes faster end-to-end.
    assert!(rf.flink.seconds < rf.spark.seconds);
}

#[test]
fn fig6_grep_flink_pays_a_sink_phase_spark_does_not() {
    let rf = experiments::fig6(&cal()).expect("valid experiment config");
    assert!(
        rf.flink_report.profile("DataSink").is_some()
            || rf
                .flink_report
                .profiles
                .iter()
                .any(|p| p.span.name.contains("DataSink")),
        "Flink's Grep plan must show the sink phase of Fig 6"
    );
    assert!(
        !rf.spark_report
            .profiles
            .iter()
            .any(|p| p.span.name.contains("DataSink")),
        "Spark counts in place"
    );
    assert!(rf.spark.seconds < rf.flink.seconds, "Spark wins Grep");
}

#[test]
fn fig9_terasort_pipelining_is_visible_in_the_spans() {
    let rf = experiments::fig9(&cal()).expect("valid experiment config");
    // "Flink pipelines the execution, hence it is visualized in a single
    // stage, while in Spark the separation between stages is very clear."
    assert!(
        rf.flink_report.pipelining_degree > rf.spark_report.pipelining_degree + 0.25,
        "flink {} vs spark {}",
        rf.flink_report.pipelining_degree,
        rf.spark_report.pipelining_degree
    );
    assert!(rf.spark_report.pipelining_degree < 0.05);
    // Spark uses less network thanks to map-output compression (§VI-C):
    // compare total network MiB.
    let net = |r: &flowmark_sim::SimResult| {
        r.telemetry
            .mean_channel(flowmark_core::telemetry::ResourceKind::Network)
            .integral()
    };
    assert!(
        net(&rf.spark) < net(&rf.flink),
        "Spark must move fewer network bytes: {:.0} vs {:.0}",
        net(&rf.spark),
        net(&rf.flink)
    );
}

#[test]
fn fig10_kmeans_is_cpu_bound_and_spark_shows_per_iteration_waves() {
    let rf = experiments::fig10(&cal()).expect("valid experiment config");
    for report in [&rf.spark_report, &rf.flink_report] {
        assert!(report.dominant_bounds().contains(&Bound::Cpu));
        // "memory and disk utilization are less than 10%" — no disk bound.
        assert!(!report.dominant_bounds().contains(&Bound::Disk));
    }
    // Spark's unrolled loop appears as one span per iteration (Fig 10's
    // MC waves); Flink's native iteration is a handful of long spans.
    let spark_iter_spans = rf
        .spark_report
        .profiles
        .iter()
        .filter(|p| p.span.name.starts_with("iter"))
        .count();
    assert!(spark_iter_spans >= 10, "spark iteration waves: {spark_iter_spans}");
    let flink_iter_spans = rf
        .flink_report
        .profiles
        .iter()
        .filter(|p| p.span.name.starts_with("Iter:"))
        .count();
    assert!(flink_iter_spans <= 4, "flink deploys once: {flink_iter_spans}");
}

#[test]
fn fig16_pagerank_has_two_phases_with_different_bounds() {
    let rf = experiments::fig16(&cal()).expect("valid experiment config");
    // "the first stage both Flink and Spark are CPU- and disk-bound, while
    // in the second stage they are CPU- and network-bound."
    for (name, report) in [("spark", &rf.spark_report), ("flink", &rf.flink_report)] {
        let load_disk = report
            .profiles
            .iter()
            .filter(|p| !p.span.name.contains("Iter") && !p.span.name.starts_with("iter"))
            .any(|p| p.mean(flowmark_core::telemetry::ResourceKind::DiskIo) > 1.0);
        assert!(load_disk, "{name}: load phase must touch the disk");
        let iter_profiles: Vec<_> = report
            .profiles
            .iter()
            .filter(|p| p.span.name.contains("Iter") || p.span.name.starts_with("iter"))
            .collect();
        assert!(!iter_profiles.is_empty(), "{name}: iteration spans exist");
        let iter_net: f64 = iter_profiles
            .iter()
            .map(|p| p.mean(flowmark_core::telemetry::ResourceKind::Network))
            .fold(0.0, f64::max);
        assert!(iter_net > 0.0, "{name}: iterations use the network");
    }
    // "In Flink, there is no disk usage during iterations with Page Rank."
    let flink_iter_disk = rf
        .flink_report
        .profiles
        .iter()
        .filter(|p| p.span.name.starts_with("Iter:"))
        .map(|p| p.mean(flowmark_core::telemetry::ResourceKind::DiskIo))
        .fold(0.0, f64::max);
    assert!(
        flink_iter_disk < 1.0,
        "Flink PR iterations must not touch the disk: {flink_iter_disk:.1} MiB/s"
    );
    // "Spark is using disks during iterations in order to materialize
    // intermediate ranks."
    let spark_iter_disk = rf
        .spark_report
        .profiles
        .iter()
        .filter(|p| p.span.name.starts_with("iter"))
        .map(|p| p.mean(flowmark_core::telemetry::ResourceKind::DiskIo))
        .fold(0.0, f64::max);
    assert!(
        spark_iter_disk > 1.0,
        "Spark PR iterations materialise to disk: {spark_iter_disk:.2} MiB/s"
    );
}

#[test]
fn fig17_cc_flink_delta_wins_with_similar_overall_usage() {
    let rf = experiments::fig17(&cal()).expect("valid experiment config");
    assert!(rf.flink.seconds < rf.spark.seconds, "Flink wins CC medium");
    // Both CPU-bound overall.
    assert!(rf.spark_report.dominant_bounds().contains(&Bound::Cpu));
    assert!(rf.flink_report.dominant_bounds().contains(&Bound::Cpu));
}
