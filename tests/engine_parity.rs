//! Cross-crate integration: every workload computes identical results on
//! the staged engine, the pipelined engine and a sequential oracle —
//! the correctness half of the reproduction (the engines must disagree
//! only in *performance*, never in answers).

use flowmark_datagen::graph::{GraphPreset, RmatGen, RmatParams};
use flowmark_datagen::points::{PointsConfig, PointsGen};
use flowmark_datagen::terasort::TeraGen;
use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_engine::{FlinkEnv, SparkContext};
use flowmark_workloads::connected::{self, CcVariant};
use flowmark_workloads::{grep, kmeans, pagerank, terasort, wordcount};

fn sc() -> SparkContext {
    SparkContext::new(6, 128 << 20)
}

fn env() -> FlinkEnv {
    FlinkEnv::new(6)
}

#[test]
fn wordcount_parity() {
    let lines = TextGen::new(TextGenConfig::default(), 1).lines(30_000);
    let expect = wordcount::oracle(&lines);
    assert_eq!(wordcount::run_spark(&sc(), lines.clone(), 6), expect);
    assert_eq!(wordcount::run_flink(&env(), lines), expect);
}

#[test]
fn grep_parity() {
    let config = TextGenConfig {
        needle_selectivity: 0.03,
        ..TextGenConfig::default()
    };
    let needle = config.needle.clone();
    let lines = TextGen::new(config, 2).lines(40_000);
    let expect = grep::oracle(&lines, &needle);
    assert!(expect > 0);
    assert_eq!(grep::run_spark(&sc(), lines.clone(), &needle, 6), expect);
    assert_eq!(grep::run_flink(&env(), lines, &needle), expect);
}

#[test]
fn terasort_parity() {
    let records = TeraGen::new(3).records(30_000);
    let expect: Vec<Vec<u8>> = terasort::oracle(records.clone())
        .iter()
        .map(|r| r.key().to_vec())
        .collect();
    let spark = terasort::run_spark(&sc(), records.clone(), 12);
    terasort::validate_output(records.len(), &spark).unwrap();
    let spark_keys: Vec<Vec<u8>> = spark
        .into_iter()
        .flatten()
        .map(|r| r.key().to_vec())
        .collect();
    assert_eq!(spark_keys, expect);
    let flink = terasort::run_flink(&env(), records.clone(), 12);
    terasort::validate_output(records.len(), &flink).unwrap();
    let flink_keys: Vec<Vec<u8>> = flink
        .into_iter()
        .flatten()
        .map(|r| r.key().to_vec())
        .collect();
    assert_eq!(flink_keys, expect);
}

#[test]
fn kmeans_parity() {
    let mut gen = PointsGen::new(
        PointsConfig {
            clusters: 5,
            box_half_width: 200.0,
            sigma: 4.0,
        },
        4,
    );
    let init = gen.true_centers().to_vec();
    let points = gen.points(20_000);
    let expect = kmeans::oracle(&points, init.clone(), 8);
    let spark = kmeans::run_spark(&sc(), points.clone(), init.clone(), 8, 6);
    let flink = kmeans::run_flink(&env(), points, init, 8);
    for ((e, s), f) in expect.iter().zip(&spark).zip(&flink) {
        assert!((e.x - s.x).abs() < 1e-9 && (e.y - s.y).abs() < 1e-9, "spark drift");
        assert!((e.x - f.x).abs() < 1e-9 && (e.y - f.y).abs() < 1e-9, "flink drift");
    }
}

#[test]
fn pagerank_parity() {
    let mut g = RmatGen::new(10, RmatParams::default(), 17);
    let edges = g.edges(6_000);
    let expect = pagerank::oracle(&edges, 8);
    let spark = pagerank::run_spark(&sc(), &edges, 8, 6);
    let flink = pagerank::run_flink(&env(), &edges, 8, 6).unwrap();
    assert_eq!(spark.len(), expect.len());
    assert_eq!(flink.len(), expect.len());
    for (v, r) in &expect {
        assert!((spark[v] - r).abs() < 1e-9, "spark drift at {v}");
        assert!((flink[v] - r).abs() < 1e-9, "flink drift at {v}");
    }
}

#[test]
fn connected_components_parity_all_variants() {
    let graph = GraphPreset::Medium.scaled(9, 5);
    let expect = connected::oracle(&graph.edges);
    let spark = connected::run_spark(&sc(), &graph.edges, 300, 6);
    assert_eq!(spark, expect);
    for variant in [CcVariant::Bulk, CcVariant::Delta] {
        let flink = connected::run_flink(&env(), &graph.edges, 300, 6, variant, None).unwrap();
        assert_eq!(flink, expect, "{variant:?}");
    }
}

#[test]
fn architectural_signatures_hold_while_answers_agree() {
    // The engines agree on results but differ in the architectural
    // signals the paper measures: loop unrolling vs scheduled-once.
    let mut gen = PointsGen::new(PointsConfig::default(), 6);
    let init = gen.true_centers().to_vec();
    let points = gen.points(5_000);
    let sc = sc();
    let env = env();
    let s = kmeans::run_spark(&sc, points.clone(), init.clone(), 6, 6);
    let f = kmeans::run_flink(&env, points, init, 6);
    assert_eq!(s.len(), f.len());
    assert!(
        sc.metrics().tasks_launched() > 6 * env.metrics().tasks_launched(),
        "staged engine must schedule a task wave per round ({} vs {})",
        sc.metrics().tasks_launched(),
        env.metrics().tasks_launched()
    );
}
