//! Tier-1 smoke test for the event-time streaming drill: `repro stream`
//! and `repro chaos --streaming` at smoke scale, every invariant
//! asserted, plus fixed-seed determinism of the whole report.

use flowmark_harness::stream::{run_stream, run_stream_chaos, StreamScale};

#[test]
fn stream_drill_passes_and_is_deterministic() {
    let report = run_stream(1, StreamScale::smoke());
    let violations = report.violations();
    assert!(violations.is_empty(), "{violations:?}");

    // Grid shape: clean and armed cells for each query × runtime, the
    // §VIII latency points, and the continuous model's one-tick floor.
    assert_eq!(report.cells.len(), 8);
    assert_eq!(report.cells.iter().filter(|c| c.armed).count(), 4);
    assert_eq!(report.latency.len(), 3);
    assert!(report.continuous_mean_ticks <= 2.0);
    // Discretization cost is monotone in the batch interval.
    assert!(report.latency[0].p99_ticks < report.latency[2].p99_ticks);

    // Every cell — clean or armed — matched the oracle, and the armed
    // ones survived the full kill + corruption + rotten-checkpoint plan.
    for c in &report.cells {
        assert!(c.verified, "{}-{} diverged", c.query, c.runtime);
        assert!(c.committed > 0);
        // The drill runs the default slab transport: every cell must
        // have folded at least one event slab batch-at-a-time.
        assert!(c.stream_batches > 0, "{}-{} ran per-event", c.query, c.runtime);
        if c.armed {
            assert!(c.recovery.injected_failures > 0);
            assert!(c.recovery.region_restarts > 0);
            assert!(c.recovery.corruptions_detected > 0);
            assert!(c.recovery.checkpoints_rejected > 0);
        } else {
            assert_eq!(c.recovery.injected_failures, 0);
        }
    }

    // The drill replays under the same seed: committed outputs and epoch
    // counts are bit-for-bit everywhere; full recovery counters replay
    // exactly too, except on armed *continuous* cells, where the restore
    // point legitimately depends on how far the sink had committed when
    // the kill landed (the committed-floor rule), so counters derived
    // from the restore walk vary with thread timing.
    let replay = run_stream(1, StreamScale::smoke());
    assert_eq!(report.latency, replay.latency);
    assert_eq!(report.continuous_mean_ticks, replay.continuous_mean_ticks);
    assert_eq!(report.cells.len(), replay.cells.len());
    for (a, b) in report.cells.iter().zip(&replay.cells) {
        assert_eq!(a.query, b.query);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.armed, b.armed);
        assert_eq!(a.verified, b.verified);
        assert_eq!(a.committed, b.committed, "{}-{} committed count drifted", a.query, a.runtime);
        assert_eq!(a.epochs_committed, b.epochs_committed);
        if a.runtime != "continuous" || !a.armed {
            let aj = serde_json::to_string(a).expect("serializes");
            let bj = serde_json::to_string(b).expect("serializes");
            assert_eq!(aj, bj, "{}-{} cell is not deterministic", a.query, a.runtime);
        }
    }
}

#[test]
fn streaming_chaos_drill_arms_every_cell() {
    let report = run_stream_chaos(3, StreamScale::smoke());
    assert!(report.violations().is_empty(), "{:?}", report.violations());
    assert_eq!(report.cells.len(), 4);
    assert!(report.cells.iter().all(|c| c.armed && c.verified));
    // The drill's whole point: state actually came back from a
    // digest-verified snapshot somewhere in the grid.
    let restored: u64 = report
        .cells
        .iter()
        .map(|c| c.recovery.stream_checkpoints_restored)
        .sum();
    assert!(restored > 0);
}
