//! Property tests for the cross-job fragment cache, driven through the
//! real engines on Word Count (the batch-exchange workload both engines
//! share):
//!
//! * a checksum-verified cache **hit is oracle-equal** to recomputation —
//!   the second job reuses the first job's sealed exchange output and
//!   still produces exactly the sequential oracle's counts;
//! * jobs whose **fault plans differ must miss**, not alias: the
//!   `FaultConfig` fingerprint is part of the fragment key, so a
//!   chaos-plan job never consumes a clean-plan fragment (or vice
//!   versa), even with identical plan, input and config fingerprints.

use std::sync::Arc;

use proptest::prelude::*;

use flowmark_core::config::{EngineConfig, ExecutorMode, Framework};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::spark::SparkContext;
use flowmark_engine::{FaultConfig, FaultPlan};
use flowmark_sched::{FragmentCache, FragmentKey};
use flowmark_workloads::wordcount;

/// Words over a tiny vocabulary so counts collide across lines.
const VOCAB: [&str; 6] = ["alpha", "beta", "gamma", "delta", "x", "longword"];

fn arb_lines() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::collection::vec(0usize..VOCAB.len(), 1..8)
            .prop_map(|ws| ws.into_iter().map(|w| VOCAB[w]).collect::<Vec<_>>().join(" ")),
        1..24,
    )
}

fn key(engine: Framework, config: &EngineConfig, faults: u64) -> FragmentKey {
    FragmentKey {
        plan: 0x574f_5244 ^ engine_tag(engine), // "WORD"
        input: 7,
        config: config.fingerprint(),
        faults,
    }
}

fn engine_tag(engine: Framework) -> u64 {
    match engine {
        Framework::Spark => 1,
        Framework::Flink => 2,
    }
}

/// Runs wordcount once on `engine` with the cache attached under `key`.
fn run_once(
    engine: Framework,
    config: &EngineConfig,
    lines: &[String],
    cache: &Arc<FragmentCache>,
    k: FragmentKey,
    plan: FaultPlan,
) -> std::collections::HashMap<String, u64> {
    match engine {
        Framework::Spark => {
            let sc = SparkContext::with_config_faults_cancel(
                config,
                plan,
                flowmark_engine::CancelToken::new(),
            );
            sc.register_fragment(Arc::clone(cache), k);
            wordcount::run_spark(&sc, lines.to_vec(), config.parallelism)
        }
        Framework::Flink => {
            let env = FlinkEnv::with_config_faults_cancel(
                config,
                plan,
                flowmark_engine::CancelToken::new(),
            );
            env.register_fragment(Arc::clone(cache), k);
            wordcount::run_flink(&env, lines.to_vec())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A verified hit reproduces the oracle exactly on both engines, in
    /// both executor modes.
    #[test]
    fn fragment_hits_are_oracle_equal(
        lines in arb_lines(),
        parallelism in 1usize..4,
        shared_pool in any::<bool>(),
    ) {
        let expect = wordcount::oracle(&lines);
        let mut config = EngineConfig::with_parallelism(parallelism);
        config.executor = if shared_pool {
            ExecutorMode::SharedPool
        } else {
            ExecutorMode::PerJob
        };
        for engine in [Framework::Spark, Framework::Flink] {
            let cache = Arc::new(FragmentCache::new(1 << 30));
            let k = key(engine, &config, 0);
            let cold = run_once(engine, &config, &lines, &cache, k, FaultPlan::disabled());
            prop_assert_eq!(&cold, &expect, "cold run diverged on {:?}", engine);
            prop_assert_eq!(cache.stats().insertions, 1);

            let warm = run_once(engine, &config, &lines, &cache, k, FaultPlan::disabled());
            prop_assert_eq!(&warm, &expect, "cache hit diverged on {:?}", engine);
            prop_assert_eq!(
                cache.stats().hits, 1,
                "second identical job must hit on {:?}", engine
            );
            prop_assert_eq!(cache.stats().invalidations, 0);
        }
    }

    /// Differing fault plans produce differing keys, which must miss:
    /// two jobs that agree on everything but their `FaultConfig`
    /// fingerprint never share a fragment.
    #[test]
    fn differing_fault_plans_miss_not_alias(
        lines in arb_lines(),
        chaos_seed in 1u64..1_000,
    ) {
        let expect = wordcount::oracle(&lines);
        let config = EngineConfig::with_parallelism(2);
        let clean_fp = 0u64;
        let chaos_fp = FaultConfig::chaos(chaos_seed).fingerprint();
        prop_assert_ne!(clean_fp, chaos_fp);

        for engine in [Framework::Spark, Framework::Flink] {
            let cache = Arc::new(FragmentCache::new(1 << 30));
            let first = run_once(
                engine, &config, &lines, &cache,
                key(engine, &config, clean_fp),
                FaultPlan::disabled(),
            );
            prop_assert_eq!(&first, &expect);
            // Same plan, input and config fingerprints — only the fault
            // fingerprint differs. It must recompute, not reuse.
            let second = run_once(
                engine, &config, &lines, &cache,
                key(engine, &config, chaos_fp),
                FaultPlan::disabled(),
            );
            prop_assert_eq!(&second, &expect);
            let stats = cache.stats();
            prop_assert_eq!(stats.hits, 0, "fault-plan keys aliased on {:?}", engine);
            prop_assert_eq!(stats.insertions, 2);
        }
    }
}
