//! Tier-1 integrity smoke: every batch-migrated workload, on both engines,
//! survives seeded corruption of its columnar bytes — in-flight shuffle
//! batches, sealed source batches, stored checkpoint snapshots — and still
//! reproduces the fault-free answer. The staged engine answers detected rot
//! with bounded lineage recomputes; the pipelined engine fails the region,
//! discards unverifiable snapshots and restarts from the last verified one.
//! Deterministic: every injection decision is a pure function of the seed.

use flowmark_datagen::terasort::TeraGen;
use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_engine::faults::{install_quiet_hook, FaultConfig};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::spark::SparkContext;
use flowmark_engine::FaultPlan;
use flowmark_workloads::{grep, terasort, wordcount};

const PARTS: usize = 4;
const LINES: usize = 1_500;
const TS_RECORDS: usize = 1_500;

/// The corruption preset: guaranteed in-flight batch rot plus a guaranteed
/// rotten checkpoint read, layered on the chaos kill/straggler plan.
fn corruption_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(FaultConfig::corruption(seed))
}

#[test]
fn wordcount_corruption_is_detected_and_recovered_on_both_engines() {
    install_quiet_hook();
    let lines = TextGen::new(TextGenConfig::default(), 7).lines(LINES);
    let expect = wordcount::oracle(&lines);

    let sc = SparkContext::with_faults(PARTS, 64 << 20, corruption_plan(101));
    assert_eq!(wordcount::run_spark(&sc, lines.clone(), PARTS), expect);
    let rec = sc.metrics().recovery();
    assert!(rec.batches_checksummed >= 1, "nothing was sealed at shuffle-write");
    assert!(rec.corruptions_detected >= 1, "armed corruption was never detected");
    assert!(rec.integrity_recomputes >= 1, "no recompute answered the rot");
    assert_eq!(rec.region_restarts, 0, "staged engine must not region-restart");

    let env = FlinkEnv::with_faults(PARTS, corruption_plan(103));
    assert_eq!(wordcount::run_flink(&env, lines), expect);
    let rec = env.metrics().recovery();
    assert!(rec.batches_checksummed >= 1);
    assert!(rec.corruptions_detected >= 1, "armed corruption was never detected");
    assert!(rec.region_restarts >= 1, "detected rot must fail the region");
    assert!(rec.checkpoints_rejected >= 1, "no rotten snapshot was rejected");
    assert_eq!(rec.partitions_recomputed, 0, "pipelined engine must not use lineage");
}

#[test]
fn grep_sealed_source_corruption_is_detected_and_recovered() {
    install_quiet_hook();
    let config = TextGenConfig {
        needle_selectivity: 0.05,
        ..TextGenConfig::default()
    };
    let needle = config.needle.clone();
    let lines = TextGen::new(config, 3).lines(LINES);
    let expect = grep::oracle(&lines, &needle);
    assert!(expect > 0, "corpus must contain matches");

    // Grep has no exchange on either engine: its integrity surface is the
    // sealed source batch, verified at every task-side read.
    let sc = SparkContext::with_faults(PARTS, 64 << 20, corruption_plan(211));
    assert_eq!(grep::run_spark(&sc, lines.clone(), &needle, PARTS), expect);
    let rec = sc.metrics().recovery();
    assert!(rec.batches_checksummed >= 1, "source batches were never sealed");
    assert!(rec.corruptions_detected >= 1, "sealed-source rot was never detected");
    assert!(rec.integrity_recomputes >= 1, "no recompute answered the rot");

    let env = FlinkEnv::with_faults(PARTS, corruption_plan(223));
    assert_eq!(grep::run_flink(&env, lines, &needle), expect);
    let rec = env.metrics().recovery();
    assert!(rec.corruptions_detected >= 1, "sealed-source rot was never detected");
    assert!(rec.region_restarts >= 1, "detected rot must fail the region");
    assert_eq!(rec.partitions_recomputed, 0);
}

#[test]
fn terasort_corruption_is_detected_and_recovered_on_both_engines() {
    install_quiet_hook();
    let records = TeraGen::new(11).records(TS_RECORDS);
    let expect: Vec<Vec<u8>> = terasort::oracle(records.clone())
        .iter()
        .map(|r| r.key().to_vec())
        .collect();
    let keys_ok = |out: &[Vec<flowmark_datagen::terasort::Record>]| {
        terasort::validate_output(records.len(), out).is_ok()
            && out.iter().flatten().map(|r| r.key().to_vec()).eq(expect.iter().cloned())
    };

    let sc = SparkContext::with_faults(PARTS, 64 << 20, corruption_plan(307));
    assert!(keys_ok(&terasort::run_spark(&sc, records.clone(), PARTS)));
    let rec = sc.metrics().recovery();
    assert!(rec.corruptions_detected >= 1, "armed corruption was never detected");
    assert!(rec.integrity_recomputes >= 1, "no recompute answered the rot");
    assert_eq!(rec.region_restarts, 0);

    let env = FlinkEnv::with_faults(PARTS, corruption_plan(311));
    assert!(keys_ok(&terasort::run_flink(&env, records.clone(), PARTS)));
    let rec = env.metrics().recovery();
    assert!(rec.corruptions_detected >= 1, "armed corruption was never detected");
    assert!(rec.region_restarts >= 1, "detected rot must fail the region");
    assert!(rec.checkpoints_rejected >= 1, "no rotten snapshot was rejected");
    assert_eq!(rec.partitions_recomputed, 0);
}

/// A targeted kill *during* the batch exchange (exchange stage 1, producer
/// 0, first attempt) on the pipelined engine: the sealed batch sends must
/// have participated in the aligned checkpoint barriers for the region to
/// restart from a verified snapshot, and the restored-prefix replay
/// suppression must keep the replayed sends from double-counting — the
/// oracle match proves both at the workload level.
#[test]
fn kill_during_batch_exchange_recovers_via_verified_checkpoints() {
    install_quiet_hook();
    let kill_plan = |seed: u64| {
        FaultPlan::new(FaultConfig {
            seed,
            kill_list: vec![(1, 0, 0)],
            checkpoint_interval_records: 2,
            ..FaultConfig::default()
        })
    };

    let lines = TextGen::new(TextGenConfig::default(), 7).lines(LINES);
    let expect = wordcount::oracle(&lines);
    let env = FlinkEnv::with_faults(PARTS, kill_plan(401));
    assert_eq!(wordcount::run_flink(&env, lines), expect);
    let rec = env.metrics().recovery();
    assert!(rec.injected_failures >= 1, "wordcount: the exchange kill never fired");
    assert!(rec.region_restarts >= 1, "wordcount: the kill did not restart the region");
    assert!(rec.checkpoints_taken >= 1, "wordcount: batch sends saw no barriers");

    let records = TeraGen::new(11).records(TS_RECORDS);
    let expect: Vec<Vec<u8>> = terasort::oracle(records.clone())
        .iter()
        .map(|r| r.key().to_vec())
        .collect();
    let env = FlinkEnv::with_faults(PARTS, kill_plan(409));
    let out = terasort::run_flink(&env, records.clone(), PARTS);
    assert!(terasort::validate_output(records.len(), &out).is_ok());
    assert!(out.iter().flatten().map(|r| r.key().to_vec()).eq(expect.iter().cloned()));
    let rec = env.metrics().recovery();
    assert!(rec.injected_failures >= 1, "terasort: the exchange kill never fired");
    assert!(rec.region_restarts >= 1, "terasort: the kill did not restart the region");
    assert!(rec.checkpoints_taken >= 1, "terasort: batch sends saw no barriers");

    // Grep has no exchange: a guaranteed first-task kill exercises the
    // region restart of its sealed-source pipeline instead.
    let config = TextGenConfig {
        needle_selectivity: 0.05,
        ..TextGenConfig::default()
    };
    let needle = config.needle.clone();
    let lines = TextGen::new(config, 3).lines(LINES);
    let expect = grep::oracle(&lines, &needle);
    let env = FlinkEnv::with_faults(
        PARTS,
        FaultPlan::new(FaultConfig {
            seed: 419,
            fail_first_n: 1,
            ..FaultConfig::default()
        }),
    );
    assert_eq!(grep::run_flink(&env, lines, &needle), expect);
    let rec = env.metrics().recovery();
    assert!(rec.injected_failures >= 1, "grep: the guaranteed kill never fired");
    assert!(rec.region_restarts >= 1, "grep: the kill did not restart the region");
}

/// The whole drill is a pure function of its seeds: the same corrupted run
/// replayed twice produces the same verified output.
#[test]
fn corrupted_runs_are_deterministic() {
    install_quiet_hook();
    let lines = TextGen::new(TextGenConfig::default(), 7).lines(LINES);
    let a = {
        let sc = SparkContext::with_faults(PARTS, 64 << 20, corruption_plan(503));
        wordcount::run_spark(&sc, lines.clone(), PARTS)
    };
    let b = {
        let sc = SparkContext::with_faults(PARTS, 64 << 20, corruption_plan(503));
        wordcount::run_spark(&sc, lines.clone(), PARTS)
    };
    assert_eq!(a, b);
    assert_eq!(a, wordcount::oracle(&lines));
}
