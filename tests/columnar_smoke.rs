//! Tier-1 smoke test for the columnar batch execution core: the three
//! migrated workloads (Word Count, Grep, TeraSort) run oracle-verified on
//! both engines, and the new `batches_processed` / `rows_selected` counters
//! prove the vectorized batch path — not the record-at-a-time adapter —
//! actually executed.

use flowmark_datagen::terasort::TeraGen;
use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_engine::{FlinkEnv, SparkContext};
use flowmark_workloads::{grep, terasort, wordcount};

const PARTS: usize = 4;

fn new_sc() -> SparkContext {
    SparkContext::new(PARTS, 64 << 20)
}

fn new_env() -> FlinkEnv {
    FlinkEnv::new(PARTS)
}

fn corpus(seed: u64, n: usize) -> Vec<String> {
    TextGen::new(TextGenConfig::default(), seed).lines(n)
}

#[test]
fn wordcount_batch_path_executes_and_matches_oracle() {
    let lines = corpus(7, 3000);
    let expect = wordcount::oracle(&lines);

    let sc = new_sc();
    assert_eq!(wordcount::run_spark(&sc, lines.clone(), PARTS), expect);
    let m = sc.metrics().snapshot();
    assert!(m.batches_processed > 0, "spark batch path did not run");
    assert!(m.rows_selected > 0, "spark kernels touched no rows");

    let env = new_env();
    assert_eq!(wordcount::run_flink(&env, lines.clone()), expect);
    let m = env.metrics().snapshot();
    assert!(m.batches_processed > 0, "flink batch path did not run");
    assert!(m.rows_selected > 0, "flink kernels touched no rows");

    // The record adapter stays available, agrees, and never touches the
    // batch counters.
    let sc = new_sc();
    assert_eq!(wordcount::run_spark_records(&sc, lines.clone(), PARTS), expect);
    assert_eq!(sc.metrics().snapshot().batches_processed, 0);
    let env = new_env();
    assert_eq!(wordcount::run_flink_records(&env, lines), expect);
    assert_eq!(env.metrics().snapshot().batches_processed, 0);
}

#[test]
fn grep_batch_path_executes_and_matches_oracle() {
    let config = TextGenConfig {
        needle_selectivity: 0.05,
        ..TextGenConfig::default()
    };
    let needle = config.needle.clone();
    let lines = TextGen::new(config, 3).lines(3000);
    let expect = grep::oracle(&lines, &needle);
    assert!(expect > 0, "corpus must contain matches");

    let sc = new_sc();
    assert_eq!(grep::run_spark(&sc, lines.clone(), &needle, PARTS), expect);
    let m = sc.metrics().snapshot();
    assert!(m.batches_processed > 0, "spark batch path did not run");
    assert_eq!(m.rows_selected, expect, "rows_selected must count the matches");

    let env = new_env();
    assert_eq!(grep::run_flink(&env, lines.clone(), &needle), expect);
    let m = env.metrics().snapshot();
    assert!(m.batches_processed > 0, "flink batch path did not run");
    assert_eq!(m.rows_selected, expect, "rows_selected must count the matches");

    let sc = new_sc();
    assert_eq!(grep::run_spark_records(&sc, lines.clone(), &needle, PARTS), expect);
    assert_eq!(sc.metrics().snapshot().batches_processed, 0);
    let env = new_env();
    assert_eq!(grep::run_flink_records(&env, lines, &needle), expect);
    assert_eq!(env.metrics().snapshot().batches_processed, 0);
}

#[test]
fn terasort_batch_path_executes_and_matches_oracle() {
    let records = TeraGen::new(11).records(5000);
    let expect: Vec<Vec<u8>> = terasort::oracle(records.clone())
        .iter()
        .map(|r| r.key().to_vec())
        .collect();
    let keys = |out: &[Vec<flowmark_datagen::terasort::Record>]| -> Vec<Vec<u8>> {
        out.iter().flatten().map(|r| r.key().to_vec()).collect()
    };

    let sc = new_sc();
    let spark = terasort::run_spark(&sc, records.clone(), PARTS);
    terasort::validate_output(records.len(), &spark).expect("spark output invalid");
    assert_eq!(keys(&spark), expect);
    let m = sc.metrics().snapshot();
    assert!(m.batches_processed > 0, "spark batch shuffle did not run");

    let env = new_env();
    let flink = terasort::run_flink(&env, records.clone(), PARTS);
    terasort::validate_output(records.len(), &flink).expect("flink output invalid");
    assert_eq!(keys(&flink), expect);
    let m = env.metrics().snapshot();
    assert!(m.batches_processed > 0, "flink batch shuffle did not run");

    let sc = new_sc();
    let spark = terasort::run_spark_records(&sc, records.clone(), PARTS);
    assert_eq!(keys(&spark), expect);
    assert_eq!(sc.metrics().snapshot().batches_processed, 0);
    let env = new_env();
    let flink = terasort::run_flink_records(&env, records, PARTS);
    assert_eq!(keys(&flink), expect);
    assert_eq!(env.metrics().snapshot().batches_processed, 0);
}

#[test]
fn empty_inputs_take_the_batch_path_without_panicking() {
    let sc = new_sc();
    assert!(wordcount::run_spark(&sc, Vec::new(), PARTS).is_empty());
    let env = new_env();
    assert_eq!(grep::run_flink(&env, Vec::new(), "needle"), 0);
    let sc = new_sc();
    let out = terasort::run_spark(&sc, Vec::new(), PARTS);
    terasort::validate_output(0, &out).expect("empty sort invalid");
}
