//! Smoke test for `repro soak --mix-concurrent`: a small A/B drill must
//! satisfy every structural invariant — all jobs oracle-verified in both
//! passes, at least one task steal and one checksum-verified fragment
//! hit in the fair pass, all seeded tenants served — and the report must
//! survive a JSON round trip. The throughput gate is not asserted at
//! smoke scale (timing under CI load is not a correctness claim).

use flowmark_harness::mix::{self, MixReport, MixScale};

#[test]
fn mix_concurrent_smoke_holds_every_structural_invariant() {
    let report = mix::run_mix(1, MixScale::smoke());
    let violations = report.violations(0.0);
    assert!(
        violations.is_empty(),
        "mix-concurrent violations:\n{}",
        violations.join("\n")
    );

    // Both passes drained the same workload list.
    assert_eq!(report.baseline.jobs, report.fair.jobs);
    assert_eq!(report.baseline.completed, report.fair.completed);

    // The fair pass exercised the new machinery.
    assert!(report.fair.tasks_stolen >= 1);
    assert!(report.fair.fragment_cache_hits >= 1);
    assert!(report.cache.insertions >= 1);
    assert_eq!(report.cache.invalidations, 0);
    // Per-tenant ledgers balance against the pass total.
    let admitted: u64 = report.fair.health.tenants.iter().map(|t| t.admitted).sum();
    let completed: u64 = report.fair.health.tenants.iter().map(|t| t.completed).sum();
    assert_eq!(admitted, report.fair.jobs as u64);
    assert_eq!(completed, report.fair.completed);

    // The baseline pass never touched tenant machinery beyond lane 0.
    assert_eq!(report.baseline.health.tenants.len(), 1);

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: MixReport = serde_json::from_str(&json).expect("report parses");
    assert_eq!(back.jobs, report.jobs);
    assert_eq!(back.fair.fragment_cache_hits, report.fair.fragment_cache_hits);

    let rendered = mix::render(&report);
    assert!(rendered.contains("speedup"));
    assert!(rendered.contains("fair-shared-pool"));
}
