//! Integration smoke for `repro bench --smoke` (satellite of the PR-1
//! shuffle hot-path overhaul, extended by the PR-5 iteration rework).
//!
//! Runs the same benchmark the CLI runs — Word Count, Grep, TeraSort plus
//! the iterative K-Means, Page Rank, Connected Components on both engines
//! at fixed seeds — but at the tiny test scale, and fails the suite if any
//! engine diverges from its sequential oracle. Further tests pin the
//! shuffle metrics to an engine-independent reference, assert that the
//! declared message combiners actually fire, and hold the engines to their
//! architectural `tasks_launched` signatures across the CSR rewrite.

use std::collections::HashSet;

use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::spark::SparkContext;
use flowmark_harness::bench::{compare, run_smoke, SmokeScale};

/// The CLI benchmark, shrunk to test scale: every cell must verify against
/// its oracle. This is the tripwire for the perf refactor — a hot-path
/// change that alters results shows up here as `verified: false`.
#[test]
fn smoke_bench_verifies_every_cell() {
    let report = run_smoke(SmokeScale::tiny(), "ci");
    assert_eq!(
        report.cells.len(),
        16,
        "6 batch workloads x 2 engines + 2 nexmark queries x 2 runtimes"
    );
    for c in &report.cells {
        assert!(
            c.verified,
            "{}/{} diverged from the sequential oracle",
            c.workload, c.engine
        );
        assert!(c.records > 0);
        assert!(c.records_per_sec > 0.0);
        // Grep is shuffle-free (narrow filter + count), and the pipelined
        // engine's iterative cells exchange vertex messages rather than
        // shuffle records; every other cell must cross the exchange.
        let iterative_flink = c.engine == "flink"
            && matches!(c.workload.as_str(), "kmeans" | "pagerank" | "connected");
        let streaming = c.workload.starts_with("nexmark");
        if c.workload != "grep" && !iterative_flink && !streaming {
            assert!(
                c.records_shuffled > 0,
                "{}/{} reported an empty shuffle",
                c.workload,
                c.engine
            );
        }
        // A declared combiner must actually fire: Page Rank (sum) and CC
        // (min) pre-combine on both engines.
        if matches!(c.workload.as_str(), "pagerank" | "connected") {
            assert!(
                c.messages_combined > 0,
                "{}/{} declared a combiner but combined nothing",
                c.workload,
                c.engine
            );
        }
    }
}

/// The architectural `tasks_launched` signatures (§II-C) survive the CSR
/// rewrite: the pipelined engine schedules its iteration workers exactly
/// once, while the staged engine unrolls a task wave per superstep.
#[test]
fn iteration_task_signatures_survive_the_csr_rewrite() {
    use flowmark_workloads::connected::{self, CcVariant};

    let parts = 4;
    // A star into vertex 0 plus a tail: every partition owns many spokes,
    // so the min-combiner provably folds their messages to the hub.
    let mut edges: Vec<(u64, u64)> = (1..90u64).map(|i| (i, 0)).collect();
    edges.extend((90..120u64).map(|i| (i - 1, i)));
    let expect = connected::oracle(&edges);

    let env = FlinkEnv::new(parts);
    let before = env.metrics().tasks_launched();
    let out = connected::run_flink(&env, &edges, 200, parts, CcVariant::Bulk, None).unwrap();
    assert_eq!(out, expect);
    assert_eq!(
        env.metrics().tasks_launched() - before,
        parts as u64,
        "pipelined iteration must schedule each worker exactly once"
    );
    assert!(
        env.metrics().messages_combined() > 0,
        "CC declares a min combiner; it must eliminate messages"
    );

    let sc = SparkContext::new(parts, 64 << 20);
    let before = sc.metrics().tasks_launched();
    let out = connected::run_spark(&sc, &edges, 200, parts);
    assert_eq!(out, expect);
    let rounds = sc.metrics().iterations_run();
    assert!(
        sc.metrics().tasks_launched() - before >= rounds * parts as u64,
        "staged iteration must unroll at least one task wave per superstep"
    );
}

/// The committed bench reports (when present in the repo root) must be
/// parseable ComparisonReports whose cells all verified. BENCH_PR6.json
/// predates the integrity counters, so it also pins that the new
/// serde-default fields keep old artifacts loadable (defaulting to zero).
#[test]
fn committed_bench_reports_parse_and_verified() {
    for name in [
        "BENCH_PR1_SEED.json",
        "BENCH_PR1.json",
        "BENCH_PR5.json",
        "BENCH_PR6.json",
        "BENCH_PR10.json",
    ] {
        let path = concat_root(name);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // not committed (yet) — nothing to check
        };
        let report: flowmark_harness::bench::ComparisonReport =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!report.measured.cells.is_empty(), "{name} has no cells");
        for c in &report.measured.cells {
            assert!(c.verified, "{name}: {}/{} unverified", c.workload, c.engine);
            if name == "BENCH_PR6.json" {
                assert_eq!(
                    c.batches_checksummed, 0,
                    "{name}: pre-integrity artifact must default the new counter"
                );
            }
        }
    }
}

/// Bench guard for the columnar migration: the cells the PR-10 refactor
/// moved to batch kernels must actually take them — the counters prove the
/// vectorized path executed, and `path` must report it. A silent fallback
/// to a record adapter would pass the oracle check while erasing the
/// speedup; this test makes that regression loud.
#[test]
fn migrated_cells_take_the_vectorized_paths() {
    let report = run_smoke(SmokeScale::tiny(), "guard");
    for c in &report.cells {
        match c.workload.as_str() {
            "kmeans" => {
                assert!(
                    c.points_assigned_vectorized > 0,
                    "kmeans/{} fell back to the record adapter",
                    c.engine
                );
            }
            "terasort" => {
                assert!(
                    c.radix_sort_runs > 0,
                    "terasort/{} fell back to the comparison merge",
                    c.engine
                );
            }
            w if w.starts_with("nexmark") => {
                assert!(
                    c.stream_batches > 0,
                    "{}/{} fell back to per-event transport",
                    c.workload,
                    c.engine
                );
            }
            _ => {}
        }
        if matches!(c.workload.as_str(), "kmeans" | "terasort")
            || c.workload.starts_with("nexmark")
        {
            assert_eq!(
                c.path, "batch",
                "{}/{} must report the batch path",
                c.workload, c.engine
            );
        }
    }

    // The record adapters stay scalar: running them must leave every
    // vectorization counter untouched, so the A/B in BENCH_PR10.json
    // really is batch-vs-record.
    use flowmark_datagen::points::{PointsConfig, PointsGen};
    use flowmark_datagen::terasort::TeraGen;
    use flowmark_workloads::{kmeans, terasort};

    let mut gen = PointsGen::new(PointsConfig::default(), 5);
    let points = gen.points(2_000);
    let init = gen.true_centers().to_vec();
    let sc = SparkContext::new(4, 64 << 20);
    kmeans::run_spark_records(&sc, points.clone(), init.clone(), 2, 4);
    assert_eq!(sc.metrics().points_assigned_vectorized(), 0);
    let env = FlinkEnv::new(4);
    kmeans::run_flink_records(&env, points, init, 2);
    assert_eq!(env.metrics().points_assigned_vectorized(), 0);

    let records = TeraGen::new(11).records(2_000);
    let sc = SparkContext::new(4, 64 << 20);
    terasort::run_spark_records(&sc, records.clone(), 4);
    assert_eq!(sc.metrics().radix_sort_runs(), 0);
    let env = FlinkEnv::new(4);
    terasort::run_flink_records(&env, records, 4);
    assert_eq!(env.metrics().radix_sort_runs(), 0);
}

fn concat_root(name: &str) -> std::path::PathBuf {
    // tests run with CWD = crates/harness; the reports live at the repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

/// Speedup accounting pairs cells by workload/engine.
#[test]
fn speedups_pair_cells_with_the_baseline() {
    let base = run_smoke(SmokeScale::tiny(), "seed");
    let mut fast = base.clone();
    fast.label = "optimized".into();
    for c in &mut fast.cells {
        c.records_per_sec = 3.0 * c.records_per_sec;
    }
    let cmp = compare(fast, Some(base));
    assert_eq!(cmp.speedup_vs_seed.len(), 16);
    for (k, s) in &cmp.speedup_vs_seed {
        assert!((s - 3.0).abs() < 1e-9, "{k}: {s}");
    }
}

/// Engine-independent reference for Word Count's `records_shuffled`: both
/// engines pack lines into `DEFAULT_BATCH_ROWS`-row column batches, chunk
/// the *batches* contiguously (`len.div_ceil(parallelism)`) and fully
/// combine on the map side, so what crosses the shuffle is exactly the
/// distinct words of each map task's rows — each costing its UTF-8 length
/// plus a u64 count in the routed batch's columns.
fn expected_wc_shuffle(lines: &[String], parallelism: usize) -> (u64, u64) {
    let batches: Vec<&[String]> = lines.chunks(flowmark_columnar::DEFAULT_BATCH_ROWS).collect();
    let chunk = batches.len().div_ceil(parallelism).max(1);
    let (mut records, mut bytes) = (0u64, 0u64);
    for task in batches.chunks(chunk) {
        let mut distinct: HashSet<&str> = HashSet::new();
        for batch in task {
            for line in *batch {
                distinct.extend(line.split_whitespace());
            }
        }
        records += distinct.len() as u64;
        bytes += distinct.iter().map(|w| w.len() as u64).sum::<u64>()
            + 8 * distinct.len() as u64;
    }
    (records, bytes)
}

/// The zero-copy/pooling rewrite must not change what the shuffle counters
/// count: record and byte totals on both engines equal an independent
/// reference computed with no engine code at all.
#[test]
fn shuffle_metrics_are_invariant_under_the_zero_copy_rewrite() {
    use flowmark_datagen::text::{TextGen, TextGenConfig};
    use flowmark_workloads::wordcount;

    let parts = 4;
    // Enough lines for several column batches, so the reference exercises
    // batch-granularity chunking across map tasks, not just one chunk.
    let lines = TextGen::new(TextGenConfig::default(), 7).lines(10_000);
    let (expect_records, expect_bytes) = expected_wc_shuffle(&lines, parts);

    let sc = SparkContext::new(parts, 64 << 20);
    let spark_out = wordcount::run_spark(&sc, lines.clone(), parts);
    assert_eq!(
        sc.metrics().records_shuffled(),
        expect_records,
        "staged engine shuffled a different record count than the reference"
    );
    assert_eq!(
        sc.metrics().bytes_shuffled(),
        expect_bytes,
        "staged engine byte accounting drifted"
    );

    let env = FlinkEnv::new(parts);
    let flink_out = wordcount::run_flink(&env, lines.clone());
    assert_eq!(
        env.metrics().records_shuffled(),
        expect_records,
        "pipelined engine shuffled a different record count than the reference"
    );
    assert_eq!(
        env.metrics().bytes_shuffled(),
        expect_bytes,
        "pipelined engine byte accounting drifted"
    );

    // And the rewrite didn't change the answers either.
    let expect = wordcount::oracle(&lines);
    assert_eq!(spark_out, expect);
    assert_eq!(flink_out, expect);
}

/// TeraSort shuffles every record exactly once on both engines — the
/// range-partitioning exchange has no combiner to shrink it.
#[test]
fn terasort_shuffles_each_record_exactly_once() {
    use flowmark_datagen::terasort::TeraGen;
    use flowmark_workloads::terasort;

    let records = TeraGen::new(11).records(2_000);
    let n = records.len() as u64;

    let sc = SparkContext::new(4, 64 << 20);
    let out = terasort::run_spark(&sc, records.clone(), 4);
    terasort::validate_output(records.len(), &out).unwrap();
    assert_eq!(sc.metrics().records_shuffled(), n);

    let env = FlinkEnv::new(4);
    let out = terasort::run_flink(&env, records.clone(), 4);
    terasort::validate_output(records.len(), &out).unwrap();
    assert_eq!(env.metrics().records_shuffled(), n);
}
