//! Property-based tests (proptest) over the core data structures and the
//! engines' invariants.

use proptest::prelude::*;

use flowmark_core::stats::Accumulator;
use flowmark_core::timeseries::TimeSeries;
use flowmark_dataflow::partitioner::{HashPartitioner, Partitioner, RangePartitioner};
use flowmark_engine::sortbuf::SortCombineBuffer;
use flowmark_engine::{EngineMetrics, FlinkEnv, SparkContext};

proptest! {
    /// Welford merge is equivalent to sequential accumulation regardless of
    /// the split point.
    #[test]
    fn accumulator_merge_any_split(values in prop::collection::vec(-1e6f64..1e6, 1..200), split in 0usize..200) {
        let split = split.min(values.len());
        let mut all = Accumulator::new();
        for &v in &values { all.push(v); }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &v in &values[..split] { left.push(v); }
        for &v in &values[split..] { right.push(v); }
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        let (m1, m2) = (left.mean().unwrap(), all.mean().unwrap());
        prop_assert!((m1 - m2).abs() <= 1e-6 * (1.0 + m2.abs()));
        if values.len() > 1 {
            let (v1, v2) = (left.variance().unwrap(), all.variance().unwrap());
            prop_assert!((v1 - v2).abs() <= 1e-6 * (1.0 + v2.abs()));
        }
    }

    /// deposit_range always preserves the deposited integral.
    #[test]
    fn timeseries_integral_preserved(
        period in 0.1f64..5.0,
        start in 0.0f64..100.0,
        len in 0.01f64..50.0,
        total in 0.001f64..1e6,
    ) {
        let mut ts = TimeSeries::new(period);
        ts.deposit_range(start, start + len, total);
        let integral = ts.integral();
        prop_assert!((integral - total).abs() <= 1e-6 * total,
            "integral {} vs total {}", integral, total);
    }

    /// Hash partitioning is deterministic and in range.
    #[test]
    fn hash_partitioner_in_range(keys in prop::collection::vec(any::<u64>(), 1..100), parts in 1usize..64) {
        let p = HashPartitioner::new(parts);
        for k in &keys {
            let a = p.partition(k);
            prop_assert!(a < parts);
            prop_assert_eq!(a, p.partition(k));
        }
    }

    /// Range partitioning is monotone in the key.
    #[test]
    fn range_partitioner_monotone(mut splits in prop::collection::vec(any::<u32>(), 0..20), keys in prop::collection::vec(any::<u32>(), 2..100)) {
        splits.sort_unstable();
        let p = RangePartitioner::new(splits);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let parts: Vec<usize> = sorted.iter().map(|k| p.partition(k)).collect();
        prop_assert!(parts.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(parts.iter().all(|&x| x < p.partitions()));
    }

    /// The sort-combine buffer equals a HashMap fold for any capacity.
    #[test]
    fn sortbuf_equals_hashmap_oracle(
        pairs in prop::collection::vec((0u32..50, 1u64..100), 0..400),
        capacity in 1usize..64,
    ) {
        let mut buf = SortCombineBuffer::new(
            capacity,
            16,
            std::sync::Arc::new(|a: &mut u64, b: u64| *a += b),
            EngineMetrics::new(),
        );
        let mut oracle = std::collections::HashMap::<u32, u64>::new();
        for (k, v) in &pairs {
            buf.insert(*k, *v);
            *oracle.entry(*k).or_default() += v;
        }
        let out = buf.finish();
        prop_assert_eq!(out.len(), oracle.len());
        prop_assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "sorted output");
        for (k, v) in out {
            prop_assert_eq!(oracle[&k], v);
        }
    }

    /// Both engines compute identical reduce-by-key results on arbitrary
    /// key/value data, for any partitioning.
    #[test]
    fn engines_agree_on_arbitrary_aggregations(
        pairs in prop::collection::vec((0u32..30, 1u64..10), 1..300),
        partitions in 1usize..6,
    ) {
        let sc = SparkContext::new(partitions, 16 << 20);
        let spark: std::collections::HashMap<u32, u64> = sc
            .parallelize(pairs.clone(), partitions)
            .reduce_by_key(|a, b| *a += b)
            .collect_as_map();
        let env = FlinkEnv::new(partitions);
        let flink: std::collections::HashMap<u32, u64> = env
            .from_collection(pairs.clone())
            .group_reduce(|a, b| *a += b)
            .collect()
            .into_iter()
            .collect();
        let mut oracle = std::collections::HashMap::<u32, u64>::new();
        for (k, v) in pairs {
            *oracle.entry(k).or_default() += v;
        }
        prop_assert_eq!(&spark, &oracle);
        prop_assert_eq!(&flink, &oracle);
    }

    /// Plan cardinality propagation is linear in source size.
    #[test]
    fn plan_cardinalities_scale_linearly(records in 1u64..1_000_000, sel in 0.01f64..10.0) {
        use flowmark_dataflow::operator::OperatorKind::*;
        use flowmark_dataflow::plan::{CostAnnotation, LogicalPlan};
        let build = |n: u64| {
            let mut p = LogicalPlan::new();
            let s = p.source(n, 10.0);
            let m = p.unary(s, FlatMap, CostAnnotation::new(sel, 10.0, 10.0));
            let _ = p.unary(m, DataSink, CostAnnotation::new(1.0, 10.0, 10.0));
            p.cardinalities()
        };
        let c1 = build(records);
        let c2 = build(records * 2);
        for (a, b) in c1.iter().zip(&c2) {
            prop_assert!((b - 2.0 * a).abs() <= 1e-6 * (1.0 + b.abs()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator is deterministic for a fixed seed and monotone in
    /// dataset size, for both engines.
    #[test]
    fn simulator_deterministic_and_monotone(gb in 4.0f64..64.0, seed in 0u64..1000) {
        use flowmark_core::config::Framework;
        use flowmark_sim::{simulate, Calibration};
        use flowmark_workloads::wordcount::{plan, WordCountScale};
        use flowmark_workloads::presets;
        let run = presets::wordcount_config(4);
        let cal = Calibration::default();
        for fw in Framework::BOTH {
            let small = plan(fw, &WordCountScale { total_bytes: gb * 1e9 });
            let big = plan(fw, &WordCountScale { total_bytes: 2.0 * gb * 1e9 });
            let a = simulate(&small, fw, &run, &cal, seed).unwrap().seconds;
            let a2 = simulate(&small, fw, &run, &cal, seed).unwrap().seconds;
            let b = simulate(&big, fw, &run, &cal, seed).unwrap().seconds;
            prop_assert_eq!(a, a2, "same seed, same result");
            prop_assert!(b > a, "{}: doubling data must cost time ({} vs {})", fw, a, b);
        }
    }
}

proptest! {
    /// TeraGen records always satisfy the 100-byte spec.
    #[test]
    fn teragen_records_conform(seed in any::<u64>(), n in 1usize..200) {
        use flowmark_datagen::terasort::{TeraGen, KEY_BYTES, RECORD_BYTES};
        let mut g = TeraGen::new(seed);
        for (i, r) in g.records(n).into_iter().enumerate() {
            prop_assert_eq!(r.0.len(), RECORD_BYTES);
            prop_assert!(r.key().iter().all(|&b| (b' '..=b'~').contains(&b)));
            prop_assert_eq!(&r.0[98..], b"\r\n");
            let row: u64 = std::str::from_utf8(&r.0[KEY_BYTES..KEY_BYTES + 10])
                .unwrap()
                .parse()
                .unwrap();
            prop_assert_eq!(row, i as u64);
        }
    }

    /// Scaled graph presets preserve the Table IV edge/vertex ratio.
    #[test]
    fn scaled_graphs_preserve_degree(scale in 8u32..12, seed in any::<u64>()) {
        use flowmark_datagen::graph::GraphPreset;
        for preset in [GraphPreset::Small, GraphPreset::Medium] {
            let g = preset.scaled(scale, seed);
            let ratio = g.edges.len() as f64 / g.vertices as f64;
            prop_assert!((ratio - preset.avg_degree()).abs() < 1.0,
                "{:?}: ratio {} vs {}", preset, ratio, preset.avg_degree());
        }
    }

    /// Simulation noise factors are bounded and mean-preserving-ish.
    #[test]
    fn noise_is_bounded(seed in any::<u64>(), stream in any::<u64>(), cv in 0.0f64..0.3) {
        let f = flowmark_sim::noise::noise_factor(seed, stream, cv);
        prop_assert!(f >= 0.05 && f <= 1.0 + cv * 2.0,
            "factor {} out of range for cv {}", f, cv);
    }

    /// HDFS remote-read fraction is a probability and shrinks with
    /// replication.
    #[test]
    fn hdfs_fraction_bounded(nodes in 2u32..120, blocks in 1u64..100_000, slots in 1u32..64) {
        use flowmark_sim::hdfs::HdfsModel;
        let mut h = HdfsModel::new(nodes, 256);
        let f3 = h.remote_read_fraction(blocks, slots);
        prop_assert!((0.0..=0.3).contains(&f3));
        h.replication = 1;
        let f1 = h.remote_read_fraction(blocks, slots);
        prop_assert!(f1 >= f3 - 1e-12, "r=1 {} < r=3 {}", f1, f3);
    }

    /// More nodes never slow a fixed-size simulated job down (both engines).
    #[test]
    fn sim_monotone_in_cluster_size(small in 2u32..8, extra in 1u32..8) {
        use flowmark_core::config::Framework;
        use flowmark_sim::{simulate, Calibration};
        use flowmark_workloads::presets;
        use flowmark_workloads::wordcount::{plan, WordCountScale};
        let cal = Calibration::default();
        let scale = WordCountScale { total_bytes: 100e9 };
        let big = small + extra;
        for fw in Framework::BOTH {
            let t_small = simulate(&plan(fw, &scale), fw, &presets::wordcount_config(small), &cal, 1)
                .unwrap()
                .seconds;
            let t_big = simulate(&plan(fw, &scale), fw, &presets::wordcount_config(big), &cal, 1)
                .unwrap()
                .seconds;
            // Allow a small tolerance for dispatch/noise effects.
            prop_assert!(t_big <= t_small * 1.05,
                "{}: {} nodes took {}s, {} nodes took {}s", fw, small, t_small, big, t_big);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Both engines agree with the sequential oracle on Word Count for any
    /// generator seed, corpus size and parallelism — the cross-engine
    /// guarantee the shuffle hot-path refactor must preserve.
    #[test]
    fn engines_agree_on_wordcount_for_any_seed(
        seed in any::<u64>(),
        lines in 1usize..400,
        partitions in 1usize..6,
    ) {
        use flowmark_datagen::text::{TextGen, TextGenConfig};
        use flowmark_workloads::wordcount;
        let corpus = TextGen::new(TextGenConfig::default(), seed).lines(lines);
        let expect = wordcount::oracle(&corpus);
        let sc = SparkContext::new(partitions, 16 << 20);
        let spark = wordcount::run_spark(&sc, corpus.clone(), partitions);
        prop_assert_eq!(&spark, &expect);
        let env = FlinkEnv::new(partitions);
        let flink = wordcount::run_flink(&env, corpus);
        prop_assert_eq!(&flink, &expect);
    }

    /// Both engines produce the oracle's global key order on TeraSort for
    /// any generator seed, record count and partition count.
    #[test]
    fn engines_agree_on_terasort_for_any_seed(
        seed in any::<u64>(),
        n in 1usize..600,
        partitions in 1usize..8,
    ) {
        use flowmark_datagen::terasort::TeraGen;
        use flowmark_workloads::terasort;
        let records = TeraGen::new(seed).records(n);
        let expect: Vec<Vec<u8>> = terasort::oracle(records.clone())
            .iter()
            .map(|r| r.key().to_vec())
            .collect();
        let sc = SparkContext::new(2, 16 << 20);
        let spark = terasort::run_spark(&sc, records.clone(), partitions);
        let check = terasort::validate_output(records.len(), &spark);
        prop_assert!(check.is_ok(), "spark output invalid: {:?}", check);
        let spark_keys: Vec<Vec<u8>> = spark
            .iter()
            .flatten()
            .map(|r| r.key().to_vec())
            .collect();
        prop_assert_eq!(&spark_keys, &expect);
        let env = FlinkEnv::new(2);
        let flink = terasort::run_flink(&env, records.clone(), partitions);
        let check = terasort::validate_output(records.len(), &flink);
        prop_assert!(check.is_ok(), "flink output invalid: {:?}", check);
        let flink_keys: Vec<Vec<u8>> = flink
            .iter()
            .flatten()
            .map(|r| r.key().to_vec())
            .collect();
        prop_assert_eq!(&flink_keys, &expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The columnar batch path and the record-at-a-time adapter produce
    /// identical Word Count answers on both engines for any corpus.
    #[test]
    fn wordcount_batch_path_matches_record_path(
        seed in any::<u64>(),
        lines in 0usize..400,
        partitions in 1usize..6,
    ) {
        use flowmark_datagen::text::{TextGen, TextGenConfig};
        use flowmark_workloads::wordcount;
        let corpus = TextGen::new(TextGenConfig::default(), seed).lines(lines);
        let batch_sc = SparkContext::new(partitions, 16 << 20);
        let record_sc = SparkContext::new(partitions, 16 << 20);
        prop_assert_eq!(
            wordcount::run_spark(&batch_sc, corpus.clone(), partitions),
            wordcount::run_spark_records(&record_sc, corpus.clone(), partitions),
            "spark batch path diverged from record path"
        );
        let batch_env = FlinkEnv::new(partitions);
        let record_env = FlinkEnv::new(partitions);
        prop_assert_eq!(
            wordcount::run_flink(&batch_env, corpus.clone()),
            wordcount::run_flink_records(&record_env, corpus),
            "flink batch path diverged from record path"
        );
    }

    /// The vectorized substring filter and the scalar `contains` adapter
    /// count the same matches on both engines for any corpus and needle
    /// selectivity.
    #[test]
    fn grep_batch_path_matches_record_path(
        seed in any::<u64>(),
        lines in 0usize..400,
        partitions in 1usize..6,
        selectivity in 0.0f64..0.5,
    ) {
        use flowmark_datagen::text::{TextGen, TextGenConfig};
        use flowmark_workloads::grep;
        let config = TextGenConfig { needle_selectivity: selectivity, ..TextGenConfig::default() };
        let needle = config.needle.clone();
        let corpus = TextGen::new(config, seed).lines(lines);
        let batch_sc = SparkContext::new(partitions, 16 << 20);
        let record_sc = SparkContext::new(partitions, 16 << 20);
        prop_assert_eq!(
            grep::run_spark(&batch_sc, corpus.clone(), &needle, partitions),
            grep::run_spark_records(&record_sc, corpus.clone(), &needle, partitions),
            "spark batch path diverged from record path"
        );
        let batch_env = FlinkEnv::new(partitions);
        let record_env = FlinkEnv::new(partitions);
        prop_assert_eq!(
            grep::run_flink(&batch_env, corpus.clone(), &needle),
            grep::run_flink_records(&record_env, corpus, &needle),
            "flink batch path diverged from record path"
        );
    }

    /// Batch-granularity shuffle routing and the keyed-tuple adapter produce
    /// byte-identical TeraSort partitions on both engines.
    #[test]
    fn terasort_batch_path_matches_record_path(
        seed in any::<u64>(),
        n in 0usize..600,
        partitions in 1usize..8,
    ) {
        use flowmark_datagen::terasort::TeraGen;
        use flowmark_workloads::terasort;
        let records = TeraGen::new(seed).records(n);
        let batch_sc = SparkContext::new(2, 16 << 20);
        let record_sc = SparkContext::new(2, 16 << 20);
        prop_assert_eq!(
            terasort::run_spark(&batch_sc, records.clone(), partitions),
            terasort::run_spark_records(&record_sc, records.clone(), partitions),
            "spark batch path diverged from record path"
        );
        let batch_env = FlinkEnv::new(2);
        let record_env = FlinkEnv::new(2);
        prop_assert_eq!(
            terasort::run_flink(&batch_env, records.clone(), partitions),
            terasort::run_flink_records(&record_env, records, partitions),
            "flink batch path diverged from record path"
        );
    }
}

/// An arbitrary (always-recoverable) fault plan: any seed, background kill
/// and straggler probabilities, guaranteed-injection budgets and checkpoint
/// intervals. Probability and budget kills only fire on first attempts, so
/// retries always succeed and no plan here is fatal. The straggler delay is
/// kept tiny so cases stay fast.
fn arb_fault_plan() -> impl Strategy<Value = flowmark_engine::FaultPlan> {
    use flowmark_engine::{FaultConfig, FaultPlan};
    (
        any::<u64>(),
        0.0f64..0.4,
        0u64..3,
        0.0f64..0.1,
        0u64..2,
        8u64..128,
        1u32..4,
    )
        .prop_map(
            |(seed, kill_p, kill_n, straggle_p, straggle_n, ckpt_records, ckpt_rounds)| {
                FaultPlan::new(FaultConfig {
                    seed,
                    task_failure_prob: kill_p,
                    fail_first_n: kill_n,
                    straggler_prob: straggle_p,
                    straggle_first_n: straggle_n,
                    straggler_slowdown: std::time::Duration::from_millis(2),
                    speculation_floor: std::time::Duration::from_millis(5),
                    checkpoint_interval_records: ckpt_records,
                    checkpoint_interval_rounds: ckpt_rounds,
                    ..FaultConfig::default()
                })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Word Count under any fault plan is byte-identical to the fault-free
    /// run on both engines: lineage re-execution, speculation and
    /// checkpoint restarts must never change the answer.
    #[test]
    fn wordcount_is_fault_oblivious(plan in arb_fault_plan(), seed in any::<u64>(), partitions in 2usize..5) {
        use flowmark_datagen::text::{TextGen, TextGenConfig};
        use flowmark_workloads::wordcount;
        let corpus = TextGen::new(TextGenConfig::default(), seed).lines(300);
        let clean_sc = SparkContext::new(partitions, 16 << 20);
        let clean_spark = wordcount::run_spark(&clean_sc, corpus.clone(), partitions);
        let sc = SparkContext::with_faults(partitions, 16 << 20, plan.clone());
        prop_assert_eq!(&wordcount::run_spark(&sc, corpus.clone(), partitions), &clean_spark, "spark diverged");
        let clean_env = FlinkEnv::new(partitions);
        let clean_flink = wordcount::run_flink(&clean_env, corpus.clone());
        let env = FlinkEnv::with_faults(partitions, plan);
        prop_assert_eq!(&wordcount::run_flink(&env, corpus), &clean_flink, "flink diverged");
    }

    /// TeraSort under any fault plan is byte-identical to the fault-free
    /// run on both engines.
    #[test]
    fn terasort_is_fault_oblivious(plan in arb_fault_plan(), seed in any::<u64>(), partitions in 2usize..5) {
        use flowmark_datagen::terasort::TeraGen;
        use flowmark_workloads::terasort;
        let records = TeraGen::new(seed).records(400);
        let clean_sc = SparkContext::new(2, 16 << 20);
        let clean_spark = terasort::run_spark(&clean_sc, records.clone(), partitions);
        let sc = SparkContext::with_faults(2, 16 << 20, plan.clone());
        prop_assert_eq!(terasort::run_spark(&sc, records.clone(), partitions), clean_spark, "spark diverged");
        let clean_env = FlinkEnv::new(2);
        let clean_flink = terasort::run_flink(&clean_env, records.clone(), partitions);
        let env = FlinkEnv::with_faults(2, plan);
        prop_assert_eq!(terasort::run_flink(&env, records, partitions), clean_flink, "flink diverged");
    }

    /// K-Means under any fault plan is byte-identical (exact f64 equality)
    /// to the fault-free run on both engines: recomputed partitions, backup
    /// attempts and round replays from checkpoints reproduce the identical
    /// floating-point reduction order.
    #[test]
    fn kmeans_is_fault_oblivious(plan in arb_fault_plan(), seed in any::<u64>(), partitions in 2usize..5) {
        use flowmark_datagen::points::{Point, PointsConfig, PointsGen};
        use flowmark_workloads::kmeans;
        let mut gen = PointsGen::new(PointsConfig::default(), seed);
        let init: Vec<Point> = gen.true_centers().to_vec();
        let points = gen.points(600);
        let clean_sc = SparkContext::new(partitions, 16 << 20);
        let clean_spark = kmeans::run_spark(&clean_sc, points.clone(), init.clone(), 4, partitions);
        let sc = SparkContext::with_faults(partitions, 16 << 20, plan.clone());
        prop_assert_eq!(
            kmeans::run_spark(&sc, points.clone(), init.clone(), 4, partitions),
            clean_spark
        );
        let clean_env = FlinkEnv::new(partitions);
        let clean_flink = kmeans::run_flink(&clean_env, points.clone(), init.clone(), 4);
        let env = FlinkEnv::with_faults(partitions, plan);
        prop_assert_eq!(kmeans::run_flink(&env, points, init, 4), clean_flink);
    }
}

/// Every configuration any experiment uses passes framework validation.
#[test]
fn all_experiment_presets_validate() {
    use flowmark_workloads::presets;
    for n in [2u32, 4, 8, 16, 32] {
        presets::wordcount_config(n).validate().unwrap();
        presets::grep_config(n).validate().unwrap();
    }
    for n in [17u32, 27, 34, 55, 63, 73, 97] {
        presets::terasort_config(n).validate().unwrap();
    }
    for n in [8u32, 14, 20, 27] {
        presets::small_graph_config(n).validate().unwrap();
    }
    for n in [24u32, 27, 34, 55] {
        presets::medium_graph_config(n).validate().unwrap();
    }
    for n in [27u32, 44, 97] {
        presets::large_graph_config(n).validate().unwrap();
    }
    for n in [8u32, 14, 20, 24] {
        presets::kmeans_config(n).validate().unwrap();
    }
}


// ---- serve-layer properties (PR 4) -------------------------------------

proptest! {
    /// Backoff envelopes are monotone non-decreasing in the retry number
    /// and never exceed the cap.
    #[test]
    fn backoff_envelope_monotone_and_capped(
        base_ms in 1u64..50,
        cap_ms in 1u64..500,
        seed in any::<u64>(),
    ) {
        let s = flowmark_serve::BackoffSchedule::new(
            std::time::Duration::from_millis(base_ms),
            std::time::Duration::from_millis(cap_ms),
            seed,
        );
        let mut prev = std::time::Duration::ZERO;
        for retry in 1..40u32 {
            let env = s.envelope(retry);
            prop_assert!(env >= prev, "envelope shrank at retry {}", retry);
            prop_assert!(env <= s.cap);
            prev = env;
        }
    }

    /// Jittered delays are deterministic per (seed, job, retry) and never
    /// exceed the remaining deadline.
    #[test]
    fn backoff_delay_deterministic_and_deadline_bounded(
        base_ms in 1u64..50,
        cap_ms in 1u64..500,
        seed in any::<u64>(),
        job in any::<u64>(),
        retry in 1u32..20,
        remaining_ms in 0u64..1000,
    ) {
        let mk = || flowmark_serve::BackoffSchedule::new(
            std::time::Duration::from_millis(base_ms),
            std::time::Duration::from_millis(cap_ms),
            seed,
        );
        let remaining = std::time::Duration::from_millis(remaining_ms);
        let d1 = mk().delay(job, retry, remaining);
        let d2 = mk().delay(job, retry, remaining);
        prop_assert_eq!(d1, d2, "same seed must give the same delay");
        prop_assert!(d1 <= remaining, "delay must never outlive the deadline");
        prop_assert!(d1 <= mk().envelope(retry));
    }

    /// The fair queue under the default policy — one unbounded tenant —
    /// preserves FIFO order among admitted items under arbitrary
    /// push/pop interleavings: the DRR degenerate case the service
    /// relies on for backward compatibility with the old bounded queue.
    #[test]
    fn admission_queue_is_fifo_among_admitted(
        capacity in 1usize..8,
        ops in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let fair = flowmark_core::config::FairShareConfig::default();
        let mut queue = flowmark_serve::FairQueue::new(&fair, capacity);
        let mut admitted = std::collections::VecDeque::new();
        let mut next = 0u32;
        for push in ops {
            if push {
                match queue.push(0, 1, next) {
                    Ok(()) => admitted.push_back(next),
                    Err(flowmark_serve::Rejected::QueueFull { tenant: 0 }) => {
                        prop_assert_eq!(queue.len(), capacity, "shed only when full");
                    }
                    Err(other) => prop_assert!(false, "unexpected rejection {:?}", other),
                }
                next += 1;
            } else {
                let popped = queue.pop();
                if let Some((lane, _)) = popped {
                    queue.job_finished(lane);
                }
                prop_assert_eq!(popped.map(|(_, item)| item), admitted.pop_front());
            }
        }
        // Drain: the remainder still comes out in admission order.
        while let Some((lane, item)) = queue.pop() {
            queue.job_finished(lane);
            prop_assert_eq!(Some(item), admitted.pop_front());
        }
        prop_assert!(admitted.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Page Rank agrees across the staged RDD join loop, the pipelined
    /// vertex-centric runtime (sum combiner active) and the sequential
    /// oracle on random graphs — the cross-engine guarantee the CSR /
    /// message-combining rewrite must preserve.
    #[test]
    fn engines_agree_on_pagerank_for_any_graph(
        edges in prop::collection::vec((0u64..40, 0u64..40), 1..200),
        partitions in 1usize..5,
        iterations in 1u32..6,
    ) {
        use flowmark_workloads::pagerank;
        let expect = pagerank::oracle(&edges, iterations);
        let sc = SparkContext::new(partitions, 16 << 20);
        let spark = pagerank::run_spark(&sc, &edges, iterations, partitions);
        prop_assert_eq!(spark.len(), expect.len());
        for (v, r) in &spark {
            prop_assert!((r - expect[v]).abs() < 1e-9, "spark rank({}) drifted", v);
        }
        let env = FlinkEnv::new(partitions);
        let flink = pagerank::run_flink(&env, &edges, iterations, partitions).unwrap();
        prop_assert_eq!(flink.len(), expect.len());
        for (v, r) in &flink {
            prop_assert!((r - expect[v]).abs() < 1e-9, "flink rank({}) drifted", v);
        }
    }

    /// Connected Components agrees across spark label propagation, the
    /// GraphX-style pregel layer, flink bulk AND delta vertex-centric
    /// iterations (min combiner active), and the union-find oracle.
    #[test]
    fn engines_agree_on_connected_components_for_any_graph(
        edges in prop::collection::vec((0u64..40, 0u64..40), 1..200),
        partitions in 1usize..5,
    ) {
        use flowmark_workloads::connected::{self, CcVariant};
        let expect = connected::oracle(&edges);
        let sc = SparkContext::new(partitions, 16 << 20);
        let spark = connected::run_spark(&sc, &edges, 200, partitions);
        prop_assert_eq!(&spark, &expect);
        let pregel =
            flowmark_engine::graphx::connected_components(&sc, &edges, partitions, 200);
        prop_assert_eq!(&pregel, &expect);
        let env = FlinkEnv::new(partitions);
        let bulk = connected::run_flink(&env, &edges, 200, partitions, CcVariant::Bulk, None)
            .unwrap();
        prop_assert_eq!(&bulk, &expect);
        let delta = connected::run_flink(&env, &edges, 200, partitions, CcVariant::Delta, None)
            .unwrap();
        prop_assert_eq!(&delta, &expect);
    }

    /// SSSP agrees between the Gelly-style delta iteration (min combiner),
    /// the GraphX-style pregel driver, and a BFS oracle.
    #[test]
    fn graph_libraries_agree_on_sssp_for_any_graph(
        edges in prop::collection::vec((0u64..30, 0u64..30), 1..150),
        partitions in 1usize..5,
    ) {
        use flowmark_engine::{gelly, graphx};
        let expect = gelly::bfs_oracle(&edges, 0);
        let env = FlinkEnv::new(partitions);
        let pipelined = gelly::sssp(&env, &edges, 0, partitions, 200).unwrap();
        prop_assert_eq!(&pipelined, &expect);
        let sc = SparkContext::new(partitions, 16 << 20);
        let staged = graphx::sssp(&sc, &edges, 0, partitions, 200);
        prop_assert_eq!(&staged, &expect);
    }

    /// Every window an assigner hands out actually contains the event
    /// time, tumbling assignment is unique and aligned, and sliding
    /// window starts land on slide boundaries.
    #[test]
    fn window_assignment_contains_the_event(
        t in 0u64..100_000,
        size in 1u64..500,
        slide in 1u64..500,
        gap in 1u64..500,
    ) {
        use flowmark_engine::streaming::WindowAssigner;
        let tumbling = WindowAssigner::Tumbling { size }.assign(t);
        prop_assert_eq!(tumbling.len(), 1);
        prop_assert_eq!(tumbling[0], (t - t % size, t - t % size + size));

        let slide = slide.min(size);
        let windows = WindowAssigner::Sliding { size, slide }.assign(t);
        prop_assert!(!windows.is_empty());
        for &(s, e) in &windows {
            prop_assert!(s <= t && t < e, "window [{s},{e}) misses t={t}");
            prop_assert_eq!(e - s, size);
            prop_assert_eq!(s % slide, 0);
        }
        // Exactly the slide-aligned starts in (t − size, t] appear.
        let expected = t / slide - (t + 1).saturating_sub(size).div_ceil(slide) + 1;
        prop_assert_eq!(windows.len() as u64, expected);

        let session = WindowAssigner::Session { gap }.assign(t);
        prop_assert_eq!(session, vec![(t, t + gap)]);
    }

    /// The checkpointed runtimes' windowed aggregate is invariant under
    /// bounded disorder: any in-allowance shuffle of the arrival order
    /// commits exactly the in-order answer (no drops, no duplicates).
    #[test]
    fn windowed_aggregate_invariant_under_bounded_disorder(
        values in prop::collection::vec((0u64..4, 1u64..1000), 16..120),
        shuffle_seed in 0u64..1000,
        max_shift in 0u64..8,
    ) {
        use flowmark_engine::streaming::{
            run_continuous_checkpointed, shuffle_bounded, SourceConfig, StreamEvent,
            StreamJobConfig, StreamSource, WindowAssigner, WindowedAggregate,
        };
        use flowmark_engine::{CancelToken, FaultPlan};
        let events: Vec<StreamEvent<(u64, u64)>> = values
            .iter()
            .enumerate()
            .map(|(i, &kv)| StreamEvent::new(i as u64 * 2, kv))
            .collect();
        // Shift ≤ 8 positions × 2 ticks/position = 16 ticks of disorder,
        // comfortably inside the 64-tick allowance: nothing may drop.
        let config = SourceConfig {
            allowance: 64,
            watermark_every: 4,
            stall_watermark_after: None,
            hold_at_end: false,
        };
        let run = |events: Vec<StreamEvent<(u64, u64)>>| {
            let src = StreamSource::with_config(events, config.clone());
            let metrics = EngineMetrics::new();
            let out = run_continuous_checkpointed(
                &src,
                |_| WindowedAggregate::new(WindowAssigner::Tumbling { size: 16 }, kv_extract),
                kv_route,
                &StreamJobConfig::default(),
                &FaultPlan::disabled(),
                &metrics,
                &CancelToken::new(),
            );
            (
                flowmark_workloads::stream::canonical(&out.committed),
                metrics.late_events_dropped(),
            )
        };
        let (in_order, _) = run(events.clone());
        let (shuffled, dropped) = run(shuffle_bounded(events, shuffle_seed, max_shift));
        prop_assert_eq!(dropped, 0, "in-allowance disorder must not drop");
        prop_assert_eq!(shuffled, in_order);
    }
}

/// q6-style extractor over plain `(key, value)` pairs.
fn kv_extract(e: &(u64, u64)) -> Option<(u64, u64)> {
    Some((e.0, e.1))
}

/// Routes `(key, value)` pairs by key.
fn kv_route(e: &(u64, u64)) -> u64 {
    e.0
}
