//! The reproduction contract: every paper figure's *shape* — who wins,
//! by roughly what factor, where the failures fall — must hold when the
//! experiments are regenerated from the simulator.
//!
//! Absolute seconds are calibrated once (see `flowmark_sim::Calibration`);
//! these tests deliberately assert ranges, not exact values.

use flowmark_core::config::Framework;
use flowmark_harness::experiments;
use flowmark_sim::Calibration;

fn cal() -> Calibration {
    Calibration::default()
}

fn mean_at(fig: &flowmark_core::experiment::Figure, fw: Framework, x: f64) -> f64 {
    fig.series_for(fw)
        .and_then(|s| s.points.iter().find(|p| (p.x - x).abs() < 1e-9))
        .map(|p| p.summary.mean)
        .unwrap_or_else(|| panic!("missing point {fw} @ {x}"))
}

#[test]
fn fig1_wordcount_flink_ahead_at_scale_and_absolutes_close() {
    let fig = experiments::fig1(&cal()).expect("valid experiment config");
    for &nodes in &[16.0, 32.0] {
        let s = mean_at(&fig, Framework::Spark, nodes);
        let f = mean_at(&fig, Framework::Flink, nodes);
        assert!(f < s, "Flink must win WC at {nodes} nodes ({f} vs {s})");
        let adv = s / f;
        assert!(adv < 1.25, "WC gap too large at {nodes}: {adv:.2}");
    }
    // Fig 3 caption absolutes within 15 %.
    let s32 = mean_at(&fig, Framework::Spark, 32.0);
    let f32 = mean_at(&fig, Framework::Flink, 32.0);
    assert!((s32 - 572.0).abs() / 572.0 < 0.15, "Spark 32n: {s32}");
    assert!((f32 - 543.0).abs() / 543.0 < 0.15, "Flink 32n: {f32}");
}

#[test]
fn fig2_wordcount_flink_wins_every_dataset_size() {
    let fig = experiments::fig2(&cal()).expect("valid experiment config");
    let h = fig.head_to_head().expect("both series");
    assert_eq!(h.flink_wins(), h.scales.len());
    assert!(h.max_flink_advantage() > 1.05 && h.max_flink_advantage() < 1.3);
}

#[test]
fn fig4_fig5_grep_spark_wins_up_to_about_20_percent() {
    for fig in [experiments::fig4(&cal()).expect("valid experiment config"), experiments::fig5(&cal()).expect("valid experiment config")] {
        let h = fig.head_to_head().expect("both series");
        assert_eq!(h.spark_wins(), h.scales.len(), "{}", fig.id);
        let adv = h.max_spark_advantage();
        assert!(adv > 1.1 && adv < 1.4, "{}: Spark advantage {adv:.2}", fig.id);
    }
}

#[test]
fn fig7_terasort_flink_faster_with_higher_variance() {
    let fig = experiments::fig7(&cal()).expect("valid experiment config");
    let h = fig.head_to_head().expect("both series");
    assert_eq!(h.flink_wins(), h.scales.len());
    // The paper: "although Flink is performing on average better than
    // Spark, it also shows a high variance between each of the
    // experiments' results, when compared to Spark."
    let spread = |fw: Framework| -> f64 {
        fig.series_for(fw)
            .unwrap()
            .points
            .iter()
            .map(|p| p.summary.relative_spread())
            .fold(0.0, f64::max)
    };
    assert!(
        spread(Framework::Flink) > 1.5 * spread(Framework::Spark),
        "Flink variance {:.4} must exceed Spark's {:.4}",
        spread(Framework::Flink),
        spread(Framework::Spark)
    );
}

#[test]
fn fig8_terasort_flink_advantage_grows_with_cluster() {
    let fig = experiments::fig8(&cal()).expect("valid experiment config");
    let h = fig.head_to_head().expect("both series");
    assert_eq!(h.flink_wins(), 3);
    let r55 = mean_at(&fig, Framework::Spark, 55.0) / mean_at(&fig, Framework::Flink, 55.0);
    let r97 = mean_at(&fig, Framework::Spark, 97.0) / mean_at(&fig, Framework::Flink, 97.0);
    assert!(
        r97 > r55,
        "Flink's advantage must grow with cluster size ({r55:.2} → {r97:.2})"
    );
    // Caption absolutes within 15 %.
    let s = mean_at(&fig, Framework::Spark, 55.0);
    let f = mean_at(&fig, Framework::Flink, 55.0);
    assert!((s - 5079.0).abs() / 5079.0 < 0.15, "Spark 55n {s}");
    assert!((f - 4669.0).abs() / 4669.0 < 0.15, "Flink 55n {f}");
}

#[test]
fn fig11_kmeans_flink_wins_by_more_than_10_percent() {
    let fig = experiments::fig11(&cal()).expect("valid experiment config");
    let h = fig.head_to_head().expect("both series");
    assert_eq!(h.flink_wins(), h.scales.len());
    assert!(h.max_flink_advantage() > 1.10, "{}", h.max_flink_advantage());
    // Both scale gracefully: strong-scaling efficiency ≥ 0.5 at 24 nodes.
    for fw in Framework::BOTH {
        let pts = fig.series_for(fw).unwrap().scale_points();
        let a = flowmark_core::scaling::analyze(&pts, flowmark_core::scaling::Regime::Strong);
        assert!(a.min_efficiency() > 0.5, "{fw}: {:?}", a.efficiency);
    }
}

#[test]
fn fig12_fig14_small_graph_flink_wins() {
    for (fig, max_adv) in [
        (experiments::fig12(&cal()).expect("valid experiment config"), 1.35),
        (experiments::fig14(&cal()).expect("valid experiment config"), 2.3),
    ] {
        let h = fig.head_to_head().expect("both series");
        assert_eq!(h.flink_wins(), h.scales.len(), "{}", fig.id);
        assert!(h.max_flink_advantage() < max_adv, "{}: {:.2}", fig.id, h.max_flink_advantage());
    }
}

#[test]
fn fig15_cc_medium_flink_wins_by_a_larger_factor_than_small() {
    let small = experiments::fig14(&cal()).expect("valid experiment config").head_to_head().unwrap();
    let medium = experiments::fig15(&cal()).expect("valid experiment config").head_to_head().unwrap();
    assert_eq!(medium.flink_wins(), medium.scales.len());
    // "by a much larger factor than in the case of Small Graphs (up to
    // 30%)": at least 25 % somewhere on the medium curve.
    assert!(
        medium.max_flink_advantage() > 1.25,
        "CC medium advantage {:.2}",
        medium.max_flink_advantage()
    );
    let _ = small; // small advantage exists but is not required to exceed medium's
}

#[test]
fn table7_failure_pattern_matches_paper() {
    let rows = experiments::table7(&cal()).expect("valid experiment config");
    assert_eq!(rows.len(), 3);
    let by_nodes = |n: u32| rows.iter().find(|r| r.nodes == n).unwrap();

    for n in [27, 44] {
        let r = by_nodes(n);
        // Flink dies wholesale (CoGroup solution set).
        assert!(r.flink_pr.0.is_failure() && r.flink_pr.1.is_failure(), "{n} nodes");
        assert!(r.flink_cc.0.is_failure() && r.flink_cc.1.is_failure(), "{n} nodes");
        // Spark loads fine, PR iterations die, CC survives.
        assert!(!r.spark_pr.0.is_failure(), "{n} nodes spark PR load");
        assert!(r.spark_pr.1.is_failure(), "{n} nodes spark PR iter");
        assert!(!r.spark_cc.0.is_failure() && !r.spark_cc.1.is_failure(), "{n} nodes spark CC");
    }

    // 97 nodes: everyone completes, Spark faster end-to-end on both.
    let r = by_nodes(97);
    let total = |c: &(flowmark_core::experiment::CellOutcome, flowmark_core::experiment::CellOutcome)| {
        c.0.time().unwrap() + c.1.time().unwrap()
    };
    let spark_pr = total(&r.spark_pr);
    let flink_pr = total(&r.flink_pr);
    let spark_cc = total(&r.spark_cc);
    let flink_cc = total(&r.flink_cc);
    assert!(spark_pr < flink_pr, "PR 97n: {spark_pr} vs {flink_pr}");
    assert!(spark_cc < flink_cc, "CC 97n: {spark_cc} vs {flink_cc}");
    // Combined Spark advantage in the paper's 1.7x ballpark (we accept
    // 1.05-2.2 — the structural direction is what we certify).
    let adv = (flink_pr + flink_cc) / (spark_pr + spark_cc);
    assert!(adv > 1.05 && adv < 2.2, "large-graph Spark advantage {adv:.2}");
}

#[test]
fn ablations_match_paper_directions() {
    let c = cal();
    let (bulk, delta) = experiments::ablation_delta(&c).expect("valid experiment config");
    assert!(delta < bulk * 0.6, "delta {delta:.0} vs bulk {bulk:.0}");

    let (java, kryo) = experiments::ablation_serializer(&c).expect("valid experiment config");
    assert!(kryo < java, "Kryo {kryo:.0} must beat Java {java:.0}");

    let (spark_ts, flink_ts) = experiments::ablation_terasort_memory(&c).expect("valid experiment config");
    let gain = (spark_ts - flink_ts) / spark_ts;
    assert!(
        gain > 0.08 && gain < 0.25,
        "27n×75GB TeraSort: Flink gain {:.1}% (paper: 15%)",
        gain * 100.0
    );
}
