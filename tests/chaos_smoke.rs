//! Tier-1 chaos drill: every workload, on both engines, survives a
//! guaranteed injected task kill and straggler and still reproduces the
//! fault-free answer — the staged engine via lineage re-execution and
//! speculative backups, the pipelined engine via checkpoint restarts.

use flowmark_harness::chaos::{run_chaos, ChaosConfig, ChaosScale};

#[test]
fn chaos_drill_recovers_every_workload_on_both_engines() {
    let report = run_chaos(ChaosConfig::new(1), ChaosScale::tiny());
    assert_eq!(report.cells.len(), 12, "six workloads × two engines");

    let mut task_retries = 0;
    let mut speculative_wins = 0;
    let mut checkpoints = 0;
    for c in &report.cells {
        let r = &c.recovery;
        let id = format!("{}/{}", c.workload, c.engine);
        assert!(c.verified, "{id} diverged from the oracle under faults");
        assert!(r.injected_failures >= 1, "{id}: the guaranteed kill never fired");
        assert!(r.injected_stragglers >= 1, "{id}: the guaranteed straggler never fired");
        match c.engine.as_str() {
            "spark" => {
                // Lineage recovery: the kill was either retried (recomputing
                // the lost partition) or absorbed by a speculative backup
                // that was already racing the straggling primary.
                assert!(
                    r.partitions_recomputed + r.speculative_wins >= 1,
                    "{id}: kill recovered by neither lineage nor speculation"
                );
                assert_eq!(r.region_restarts, 0, "{id}: staged engine restarted a region");
                speculative_wins += r.speculative_wins;
            }
            _ => {
                // Checkpoint recovery: the region containing the killed task
                // restarted from the last completed snapshot.
                assert!(r.region_restarts >= 1, "{id}: kill did not restart the region");
                assert_eq!(
                    r.partitions_recomputed, 0,
                    "{id}: pipelined engine recomputed from lineage"
                );
                checkpoints += r.checkpoints_taken;
            }
        }
        task_retries += r.task_retries;
    }

    assert!(task_retries >= 1, "no failed attempt was ever retried");
    assert!(checkpoints >= 1, "no aligned checkpoint completed anywhere");
    assert!(
        speculative_wins >= 1,
        "no speculative backup beat a straggler anywhere in the drill"
    );
}
