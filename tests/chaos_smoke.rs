//! Tier-1 chaos drill: every workload, on both engines, survives a
//! guaranteed injected task kill and straggler and still reproduces the
//! fault-free answer — the staged engine via lineage re-execution and
//! speculative backups, the pipelined engine via checkpoint restarts.

use flowmark_harness::chaos::{
    integrity_violations, run_chaos, ChaosConfig, ChaosScale, BATCH_MIGRATED,
};

#[test]
fn chaos_drill_recovers_every_workload_on_both_engines() {
    let report = run_chaos(ChaosConfig::new(1), ChaosScale::tiny());
    assert_eq!(report.cells.len(), 12, "six workloads × two engines");
    assert!(
        integrity_violations(&report).is_empty(),
        "{:?}",
        integrity_violations(&report)
    );

    let mut task_retries = 0;
    let mut speculative_wins = 0;
    let mut checkpoints = 0;
    for c in &report.cells {
        let r = &c.recovery;
        let id = format!("{}/{}", c.workload, c.engine);
        assert!(c.verified, "{id} diverged from the oracle under faults");
        assert!(r.injected_failures >= 1, "{id}: the guaranteed kill never fired");
        assert!(r.injected_stragglers >= 1, "{id}: the guaranteed straggler never fired");
        if BATCH_MIGRATED.contains(&c.workload.as_str()) {
            assert!(c.batches_processed >= 1, "{id}: columnar batch path never ran");
        }
        match c.engine.as_str() {
            "spark" => {
                // Lineage recovery: the kill was either retried (recomputing
                // the lost partition) or absorbed by a speculative backup
                // that was already racing the straggling primary.
                assert!(
                    r.partitions_recomputed + r.speculative_wins >= 1,
                    "{id}: kill recovered by neither lineage nor speculation"
                );
                assert_eq!(r.region_restarts, 0, "{id}: staged engine restarted a region");
                speculative_wins += r.speculative_wins;
            }
            _ => {
                // Checkpoint recovery: the region containing the killed task
                // restarted from the last completed snapshot.
                assert!(r.region_restarts >= 1, "{id}: kill did not restart the region");
                assert_eq!(
                    r.partitions_recomputed, 0,
                    "{id}: pipelined engine recomputed from lineage"
                );
                checkpoints += r.checkpoints_taken;
            }
        }
        task_retries += r.task_retries;
    }

    assert!(task_retries >= 1, "no failed attempt was ever retried");
    assert!(checkpoints >= 1, "no aligned checkpoint completed anywhere");
    assert!(
        speculative_wins >= 1,
        "no speculative backup beat a straggler anywhere in the drill"
    );
}

#[test]
fn chaos_drill_with_corruption_detects_and_recovers_on_the_batch_path() {
    let mut config = ChaosConfig::new(1);
    config.corruption = true;
    let report = run_chaos(config, ChaosScale::tiny());
    assert_eq!(report.cells.len(), 12, "six workloads × two engines");
    assert!(report.corruption, "report must record that corruption was armed");

    // `integrity_violations` carries the hard per-cell expectations: every
    // cell oracle-verified, every batch-migrated cell detected its armed
    // corruption, staged cells recovered by recompute, pipelined cells with
    // an exchange rejected a rotten checkpoint snapshot.
    let violations = integrity_violations(&report);
    assert!(violations.is_empty(), "{violations:?}");

    for c in &report.cells {
        let r = &c.recovery;
        let id = format!("{}/{}", c.workload, c.engine);
        let batch = BATCH_MIGRATED.contains(&c.workload.as_str());
        if batch {
            assert!(r.batches_checksummed >= 1, "{id}: nothing was ever sealed");
        } else {
            // Corruption must stay confined to the batch path: the
            // unmigrated cells run the plain chaos plan.
            assert_eq!(r.corruptions_detected, 0, "{id}: corruption leaked");
            assert_eq!(r.checkpoints_rejected, 0, "{id}: rejection leaked");
        }
        // The engine dichotomy survives the combined kill+corruption plan.
        match c.engine.as_str() {
            "spark" => assert_eq!(r.region_restarts, 0, "{id}: staged engine restarted"),
            _ => assert_eq!(r.partitions_recomputed, 0, "{id}: pipelined engine recomputed"),
        }
    }
}
