//! Tier-1 smoke test for the supervised-job-service chaos soak.
//!
//! Runs the smoke-scale soak once with a fixed seed and asserts the full
//! invariant set: every submitted job resolved, every completed job's
//! output matched the sequential oracle, the memory budget drained back to
//! zero, all workers joined, and every robustness mechanism (shed,
//! over-budget rejection, breaker trip, deadline timeout, explicit cancel,
//! retry-then-success) demonstrably fired at least once.

use flowmark_harness::soak::{run_soak, SoakConfig, SoakReport, SoakScale};

#[test]
fn soak_smoke_holds_all_invariants() {
    let report = run_soak(SoakConfig::new(42), SoakScale::smoke());
    assert!(
        report.passed(),
        "soak invariants violated: {:?}",
        report.violations()
    );

    // Each mechanism must have demonstrably fired.
    assert!(report.shed_queue_full >= 1, "no queue-full shed observed");
    assert!(report.shed_over_budget >= 1, "no over-budget shed observed");
    assert!(report.shed_breaker_open >= 1, "no breaker-open shed observed");
    assert!(report.timeouts >= 1, "no deadline timeout observed");
    assert!(report.explicit_cancels >= 1, "no explicit cancel observed");
    assert!(report.retries_then_success >= 1, "no retry-then-success observed");
    assert!(report.breaker_opened, "breaker never opened");

    // No lost work: everything submitted is accounted for.
    for tally in [&report.spark, &report.flink] {
        assert_eq!(
            tally.submitted,
            tally.completed + tally.failed + tally.timed_out + tally.cancelled,
            "jobs lost by the supervisor"
        );
    }
    assert_eq!(report.oracle_failures, 0, "an engine diverged from its oracle");

    // The health snapshot the service handed back at shutdown is drained.
    assert_eq!(report.health.queue_depth, 0);
    assert_eq!(report.health.in_flight, 0);
    assert_eq!(report.health.budget_in_use_bytes, 0);
    assert!(report.workers_joined);

    // The report must survive a JSON round trip for BENCH_PR4.json.
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: SoakReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back.seed, report.seed);
    assert_eq!(back.timeouts, report.timeouts);
}

#[test]
fn soak_smoke_is_deterministic_for_a_fixed_seed() {
    let a = run_soak(SoakConfig::new(7), SoakScale::smoke());
    let b = run_soak(SoakConfig::new(7), SoakScale::smoke());
    // Scheduling order may vary, but resolved-job accounting, shed counts,
    // and oracle outcomes are pinned by the seed and the phase barriers.
    assert_eq!(a.spark.submitted, b.spark.submitted);
    assert_eq!(a.flink.submitted, b.flink.submitted);
    assert_eq!(a.spark.completed, b.spark.completed);
    assert_eq!(a.flink.completed, b.flink.completed);
    assert_eq!(a.shed_queue_full, b.shed_queue_full);
    assert_eq!(a.shed_over_budget, b.shed_over_budget);
    assert_eq!(a.timeouts, b.timeouts);
    assert_eq!(a.explicit_cancels, b.explicit_cancels);
    assert_eq!(a.oracle_failures, 0);
    assert_eq!(b.oracle_failures, 0);
}
