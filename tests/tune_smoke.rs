//! Tier-1 check on the auto-tuning subsystem: tuning Word Count on both
//! real engines completes, every trial's output matches the sequential
//! oracle, the run cache never re-executes a config, and the tuned config
//! is at least as fast as the out-of-the-box default.

use flowmark_core::config::Framework;
use flowmark_harness::tune::{run_tune_cell, TuneOptions};
use flowmark_tune::{TuneScale, WorkloadId};

fn tiny() -> TuneScale {
    TuneScale {
        lines: 600,
        ts_records: 600,
        points: 600,
        edges: 600,
        rounds: 2,
    }
}

#[test]
fn tuning_wordcount_never_loses_to_the_default_on_either_engine() {
    for engine in Framework::BOTH {
        let cell = run_tune_cell(WorkloadId::WordCount, engine, tiny(), &TuneOptions::smoke(1));
        assert!(
            cell.all_verified,
            "{engine:?}: a tuning trial diverged from the oracle"
        );
        assert!(
            cell.speedup >= 1.0,
            "{engine:?}: tuned config lost to the default ({}x)",
            cell.speedup
        );
        assert!(cell.best.verified, "{engine:?}: winner not oracle-verified");
        assert!(
            cell.best.budget_fraction >= 1.0,
            "{engine:?}: winner measured on a partial input"
        );
        assert!(
            cell.best.throughput >= cell.default_throughput,
            "{engine:?}: best throughput below default"
        );
    }
}

#[test]
fn the_run_cache_never_reexecutes_a_config() {
    let cell = run_tune_cell(
        WorkloadId::WordCount,
        Framework::Spark,
        tiny(),
        &TuneOptions::smoke(1),
    );
    // Every executed (non-cached) trial carries a distinct (config, budget)
    // key; repeats must come back flagged as cache replays.
    let mut executed: Vec<(u64, u64)> = cell
        .trials
        .iter()
        .filter(|t| !t.cached)
        .map(|t| (t.fingerprint, t.budget_fraction.to_bits()))
        .collect();
    let total = executed.len();
    executed.sort_unstable();
    executed.dedup();
    assert_eq!(executed.len(), total, "a config was executed twice");
    assert_eq!(cell.executions as usize, total);
    assert_eq!(
        cell.cache_hits as usize,
        cell.trials.len() - total,
        "cached + executed must account for every trial"
    );
}
