//! Resource demands of execution phases.
//!
//! Lowering (see [`crate::lower()`]) turns every Spark stage / Flink chain
//! into a [`PhaseDemand`]: the total CPU-seconds, disk bytes and network
//! bytes it needs from the cluster. The executors then time-share those
//! demands on the [`crate::cluster::Cluster`]'s capacities.

use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;

/// Aggregate resource demand of one phase, summed over the whole cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseDemand {
    /// Display label (matches the paper's plan plots, e.g.
    /// `"DataSource->FlatMap->GroupCombine"`).
    pub label: String,
    /// Core-seconds of compute.
    pub cpu_core_seconds: f64,
    /// Disk bytes read, MiB.
    pub disk_read_mib: f64,
    /// Disk bytes written, MiB (shuffle files, spills, HDFS output).
    pub disk_write_mib: f64,
    /// Bytes crossing the network, MiB (counted once; both NIC directions
    /// are loaded).
    pub net_mib: f64,
    /// Tasks dispatched by the driver for this phase (scheduling overhead).
    pub tasks: u64,
    /// Peak working set across the cluster, GiB (memory telemetry + spill
    /// decisions, made during lowering).
    pub memory_gb: f64,
    /// Depth of this phase in the pipeline (0 = source chain); pipelined
    /// execution offsets span starts by depth.
    pub depth: u32,
    /// True when the phase sits downstream of a pipeline breaker — its
    /// span starts only after a substantial fraction of the breaker ran.
    pub after_breaker: bool,
    /// Number of sort-buffer fill/drain cycles (drives the anti-cyclic
    /// CPU/disk telemetry pattern of §VI-A); 0 = smooth usage.
    pub combine_cycles: u32,
    /// Fixed driver-side latency added to the phase's duration (job
    /// submit/collect round trips for action stages).
    #[serde(default)]
    pub driver_latency_seconds: f64,
}

impl PhaseDemand {
    /// Creates an empty demand with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            cpu_core_seconds: 0.0,
            disk_read_mib: 0.0,
            disk_write_mib: 0.0,
            net_mib: 0.0,
            tasks: 0,
            memory_gb: 0.0,
            depth: 0,
            after_breaker: false,
            combine_cycles: 0,
            driver_latency_seconds: 0.0,
        }
    }

    /// Per-resource completion times `(cpu, disk, net)` in seconds on an
    /// otherwise idle cluster. Reads and writes share one spindle, so
    /// their times add; the *interleaved* portion (2 × the smaller stream)
    /// additionally pays a seek penalty: with efficiency `e < 1`,
    /// interleaved seconds are inflated by `1/e − 1`.
    pub fn resource_times(&self, cluster: &Cluster, mixed_io_efficiency: f64) -> (f64, f64, f64) {
        // A phase can use at most as many cores as it has tasks — running
        // Flink below one slot per core leaves cores idle ("Flink is less
        // efficient because the parallelism is reduced", §VI-E).
        let usable_cores = if self.tasks > 0 {
            cluster.cpu_capacity().min(self.tasks as f64)
        } else {
            cluster.cpu_capacity()
        };
        let cpu = self.cpu_core_seconds / usable_cores;
        let read = self.disk_read_mib / cluster.disk_read_capacity();
        let write = self.disk_write_mib / cluster.disk_write_capacity();
        let mut disk = read + write;
        if read > 0.0 && write > 0.0 && mixed_io_efficiency > 0.0 {
            let interleaved = 2.0 * read.min(write);
            disk += interleaved * (1.0 / mixed_io_efficiency - 1.0);
        }
        let net = self.net_mib / cluster.net_capacity();
        (cpu, disk, net)
    }

    /// The phase's *solo* duration: the bottleneck of its per-resource
    /// times under the given interleaved-I/O efficiency.
    pub fn solo_seconds_mixed(&self, cluster: &Cluster, mixed_io_efficiency: f64) -> f64 {
        let (cpu, disk, net) = self.resource_times(cluster, mixed_io_efficiency);
        cpu.max(disk).max(net)
    }

    /// [`PhaseDemand::solo_seconds_mixed`] without a seek penalty.
    pub fn solo_seconds(&self, cluster: &Cluster) -> f64 {
        self.solo_seconds_mixed(cluster, 1.0)
    }

    /// Adds another demand's resources into this one (phase fusion /
    /// overlapped-group totals). Concurrent phases share the same task
    /// slots, so the fused concurrency is the max, not the sum.
    pub fn absorb(&mut self, other: &PhaseDemand) {
        self.cpu_core_seconds += other.cpu_core_seconds;
        self.disk_read_mib += other.disk_read_mib;
        self.disk_write_mib += other.disk_write_mib;
        self.net_mib += other.net_mib;
        self.tasks = self.tasks.max(other.tasks);
        self.memory_gb = self.memory_gb.max(other.memory_gb);
        self.combine_cycles = self.combine_cycles.max(other.combine_cycles);
    }

    /// Scales all throughput-like demands by `k` (used for per-iteration
    /// workset decay in delta iterations).
    pub fn scaled(&self, k: f64) -> PhaseDemand {
        PhaseDemand {
            label: self.label.clone(),
            cpu_core_seconds: self.cpu_core_seconds * k,
            disk_read_mib: self.disk_read_mib * k,
            disk_write_mib: self.disk_write_mib * k,
            net_mib: self.net_mib * k,
            tasks: self.tasks,
            memory_gb: self.memory_gb,
            depth: self.depth,
            after_breaker: self.after_breaker,
            combine_cycles: self.combine_cycles,
            driver_latency_seconds: self.driver_latency_seconds,
        }
    }

    /// True when the phase demands nothing.
    pub fn is_empty(&self) -> bool {
        self.cpu_core_seconds == 0.0
            && self.disk_read_mib == 0.0
            && self.disk_write_mib == 0.0
            && self.net_mib == 0.0
    }
}

/// How the phases of a group occupy the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// One after another with a barrier between them (Spark stages).
    Sequential,
    /// Deployed together, sharing the cluster concurrently (Flink chains).
    Overlapped,
}

/// A group of phases plus how the engine runs them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseGroup {
    /// Execution mode.
    pub mode: ExecMode,
    /// The phases.
    pub phases: Vec<PhaseDemand>,
    /// Pure latency added to the group's duration regardless of resources
    /// (iteration sync barriers, job deployment).
    pub latency_seconds: f64,
}

impl PhaseGroup {
    /// A staged (sequential) group.
    pub fn sequential(phases: Vec<PhaseDemand>) -> Self {
        Self {
            mode: ExecMode::Sequential,
            phases,
            latency_seconds: 0.0,
        }
    }

    /// A pipelined (overlapped) group.
    pub fn overlapped(phases: Vec<PhaseDemand>) -> Self {
        Self {
            mode: ExecMode::Overlapped,
            phases,
            latency_seconds: 0.0,
        }
    }

    /// Adds pure latency (builder style).
    pub fn with_latency(mut self, seconds: f64) -> Self {
        self.latency_seconds = seconds;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(cpu: f64, read: f64, write: f64, net: f64) -> PhaseDemand {
        PhaseDemand {
            cpu_core_seconds: cpu,
            disk_read_mib: read,
            disk_write_mib: write,
            net_mib: net,
            ..PhaseDemand::new("t")
        }
    }

    #[test]
    fn solo_seconds_is_bottleneck() {
        let c = Cluster::grid5000(2); // 32 cores, 340 read, 280 write, 2384 net
        // CPU-bound: 3200 core-seconds on 32 cores = 100 s.
        assert!((demand(3200.0, 0.0, 0.0, 0.0).solo_seconds(&c) - 100.0).abs() < 1e-9);
        // Disk-read-bound: 34 000 MiB at 340 MiB/s = 100 s.
        assert!((demand(0.0, 34_000.0, 0.0, 0.0).solo_seconds(&c) - 100.0).abs() < 1e-9);
        // Mixed: the max wins.
        let d = demand(3200.0, 34_000.0, 0.0, 0.0);
        assert!((d.solo_seconds(&c) - 100.0).abs() < 1e-9);
        let d2 = demand(6400.0, 34_000.0, 0.0, 0.0);
        assert!((d2.solo_seconds(&c) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_sums_flows_and_maxes_memory() {
        let mut a = demand(10.0, 20.0, 30.0, 40.0);
        a.memory_gb = 5.0;
        let mut b = demand(1.0, 2.0, 3.0, 4.0);
        b.memory_gb = 9.0;
        b.tasks = 7;
        a.absorb(&b);
        assert_eq!(a.cpu_core_seconds, 11.0);
        assert_eq!(a.disk_read_mib, 22.0);
        assert_eq!(a.disk_write_mib, 33.0);
        assert_eq!(a.net_mib, 44.0);
        assert_eq!(a.tasks, 7);
        assert_eq!(a.memory_gb, 9.0);
    }

    #[test]
    fn scaled_preserves_structure() {
        let mut d = demand(10.0, 20.0, 0.0, 40.0);
        d.depth = 3;
        d.after_breaker = true;
        let s = d.scaled(0.5);
        assert_eq!(s.cpu_core_seconds, 5.0);
        assert_eq!(s.net_mib, 20.0);
        assert_eq!(s.depth, 3);
        assert!(s.after_breaker);
    }

    #[test]
    fn empty_detection() {
        assert!(PhaseDemand::new("x").is_empty());
        assert!(!demand(1.0, 0.0, 0.0, 0.0).is_empty());
    }
}
