//! Simulated failure modes.
//!
//! Table VII reports "no" cells — runs that died. The simulator raises the
//! same failures from the same mechanisms: configuration validation
//! (task slots, network buffers) and memory exhaustion (Flink's in-memory
//! CoGroup solution set, Spark's heap-resident iteration working set).

use flowmark_core::config::{ConfigError, Framework};
use serde::Serialize;

/// A failed simulated run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SimError {
    /// The job's working set exceeded the engine's memory model.
    OutOfMemory {
        /// Which engine died.
        framework: Framework,
        /// What overflowed (e.g. "CoGroup solution set").
        component: String,
        /// GiB needed per node.
        needed_gb: f64,
        /// GiB available per node.
        available_gb: f64,
    },
    /// The configuration was rejected at submit time.
    Config(ConfigError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::OutOfMemory {
                framework,
                component,
                needed_gb,
                available_gb,
            } => write!(
                f,
                "{framework}: {component} needs {needed_gb:.1} GiB/node, only {available_gb:.1} available"
            ),
            SimError::Config(e) => write!(f, "configuration rejected: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_component() {
        let e = SimError::OutOfMemory {
            framework: Framework::Flink,
            component: "CoGroup solution set".into(),
            needed_gb: 16.4,
            available_gb: 12.6,
        };
        let s = e.to_string();
        assert!(s.contains("Flink"));
        assert!(s.contains("CoGroup"));
        assert!(s.contains("16.4"));
    }

    #[test]
    fn config_error_converts() {
        let e: SimError = ConfigError::Degenerate { parameter: "nodes" }.into();
        assert!(matches!(e, SimError::Config(_)));
        assert!(e.to_string().contains("nodes"));
    }
}
