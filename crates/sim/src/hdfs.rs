//! HDFS block placement and read locality.
//!
//! The paper's jobs all read from HDFS 2.7 with per-workload block sizes
//! (Tables II/III). What the simulator needs from HDFS is (a) how many map
//! tasks an input produces and (b) what fraction of reads cross the
//! network because the scheduler could not place a task on a replica node.
//! This module computes both from the standard placement model: every
//! block has `replication` replicas on distinct, round-robin-chosen nodes,
//! and the scheduler places tasks replica-local whenever a slot is free.

use serde::{Deserialize, Serialize};

/// An HDFS namespace over a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HdfsModel {
    /// Cluster size.
    pub nodes: u32,
    /// Block size in MiB.
    pub block_mb: u32,
    /// Replication factor (HDFS default 3).
    pub replication: u32,
}

impl HdfsModel {
    /// The paper's setup: HDFS 2.7, replication 3, per-workload block size.
    pub fn new(nodes: u32, block_mb: u32) -> Self {
        Self {
            nodes,
            block_mb,
            replication: 3,
        }
    }

    /// Number of blocks (= map splits) an input of `bytes` occupies.
    pub fn blocks(&self, bytes: f64) -> u64 {
        let mib = bytes / (1024.0 * 1024.0);
        (mib / self.block_mb as f64).ceil().max(1.0) as u64
    }

    /// Expected fraction of block reads that are *remote* when `slots`
    /// tasks can run concurrently per node.
    ///
    /// With `b` blocks spread over `n` nodes at replication `r`, a block
    /// reads remotely only when every one of its `min(r, n)` replica nodes
    /// is saturated at scheduling time. Within a wave of `n·slots`
    /// placements, only the tail placements (≈ `1/slots` of each node's
    /// share) face saturated replicas, each missing with probability
    /// `((n−r)/n)^r`; partially-filled waves scale the exposure down.
    /// The closed form reproduces the 2-10 % remote-read rates production
    /// Hadoop clusters report.
    pub fn remote_read_fraction(&self, blocks: u64, slots_per_node: u32) -> f64 {
        let n = self.nodes as f64;
        if self.nodes <= 1 || slots_per_node == 0 {
            return 0.0;
        }
        let r = self.replication.min(self.nodes) as f64;
        // Probability that a specific node holds no replica of a block.
        let miss_one = ((n - r) / n).max(0.0);
        let wave_capacity = n * slots_per_node as f64;
        let waves = (blocks as f64 / wave_capacity).ceil().max(1.0);
        let fill = (blocks as f64 / (waves * wave_capacity)).clamp(0.0, 1.0);
        (fill * miss_one.powf(r) / slots_per_node as f64).clamp(0.0, 0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_rounds_up() {
        let h = HdfsModel::new(8, 256);
        assert_eq!(h.blocks(256.0 * 1024.0 * 1024.0), 1);
        assert_eq!(h.blocks(257.0 * 1024.0 * 1024.0), 2);
        assert_eq!(h.blocks(1.0), 1);
        // 24 GB/node × 8 nodes at 256 MB blocks = 768 blocks.
        assert_eq!(h.blocks(8.0 * 24.0 * 1e9), 716); // 192e9 B = 183105 MiB
    }

    #[test]
    fn single_node_reads_are_always_local() {
        let h = HdfsModel::new(1, 256);
        assert_eq!(h.remote_read_fraction(1000, 16), 0.0);
    }

    #[test]
    fn replication_keeps_remote_fraction_low() {
        let h = HdfsModel::new(32, 256);
        let f = h.remote_read_fraction(3072, 16);
        assert!(f > 0.0 && f < 0.15, "remote fraction {f}");
    }

    #[test]
    fn more_replicas_fewer_remote_reads() {
        let mut h = HdfsModel::new(32, 256);
        let f3 = h.remote_read_fraction(3072, 16);
        h.replication = 1;
        let f1 = h.remote_read_fraction(3072, 16);
        assert!(f1 > f3, "r=1 {f1} must exceed r=3 {f3}");
    }

    #[test]
    fn underfull_cluster_reads_locally() {
        // Far fewer blocks than slots: every task lands on a replica.
        let h = HdfsModel::new(100, 1024);
        let f = h.remote_read_fraction(50, 16);
        assert!(f < 0.01, "{f}");
    }
}
