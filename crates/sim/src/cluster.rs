//! The simulated testbed.
//!
//! §V: "Each node has 2 CPUs Intel Xeon E5-2630 v3 with 8 cores per CPU and
//! 128 GB RAM. All experiments use a single disk drive with a capacity of
//! 558 GB. The nodes are connected using a 10 Gbps ethernet."

use serde::{Deserialize, Serialize};

/// Hardware description of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Number of worker nodes.
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// RAM per node, GiB.
    pub ram_gb: f64,
    /// Sequential disk read bandwidth, MiB/s (single spinning disk).
    pub disk_read_mibs: f64,
    /// Sequential disk write bandwidth, MiB/s.
    pub disk_write_mibs: f64,
    /// NIC bandwidth per direction, MiB/s (10 Gbps ≈ 1192 MiB/s).
    pub net_mibs: f64,
    /// Disk capacity, GiB (558 on the testbed) — bounds spill/shuffle files.
    pub disk_capacity_gb: f64,
}

impl Cluster {
    /// The paper's Grid'5000 "paravance"-class node, `n` of them.
    pub fn grid5000(n: u32) -> Self {
        Self {
            nodes: n,
            cores_per_node: 16,
            ram_gb: 128.0,
            disk_read_mibs: 170.0,
            disk_write_mibs: 140.0,
            net_mibs: 1192.0,
            disk_capacity_gb: 558.0,
        }
    }

    /// Total cores across the cluster.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }

    /// Aggregate CPU capacity, core-seconds per second.
    pub fn cpu_capacity(&self) -> f64 {
        self.total_cores() as f64
    }

    /// Aggregate disk read bandwidth, MiB/s.
    pub fn disk_read_capacity(&self) -> f64 {
        self.nodes as f64 * self.disk_read_mibs
    }

    /// Aggregate disk write bandwidth, MiB/s.
    pub fn disk_write_capacity(&self) -> f64 {
        self.nodes as f64 * self.disk_write_mibs
    }

    /// Aggregate one-directional network bandwidth, MiB/s.
    pub fn net_capacity(&self) -> f64 {
        self.nodes as f64 * self.net_mibs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid5000_matches_section_v() {
        let c = Cluster::grid5000(100);
        assert_eq!(c.cores_per_node, 16); // 2 × 8
        assert_eq!(c.ram_gb, 128.0);
        assert_eq!(c.disk_capacity_gb, 558.0);
        assert_eq!(c.total_cores(), 1600);
        // 10 Gbps within 1 %.
        assert!((c.net_mibs - 1192.0).abs() < 12.0);
    }

    #[test]
    fn aggregate_capacities_scale_with_nodes() {
        let small = Cluster::grid5000(2);
        let big = Cluster::grid5000(32);
        assert!((big.cpu_capacity() / small.cpu_capacity() - 16.0).abs() < 1e-9);
        assert!((big.net_capacity() / small.net_capacity() - 16.0).abs() < 1e-9);
        assert!((big.disk_read_capacity() / small.disk_read_capacity() - 16.0).abs() < 1e-9);
    }
}
