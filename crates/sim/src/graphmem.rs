//! The Table VII memory model: when do large-graph jobs die?
//!
//! §VI-E: "Flink's execution with 27 and 44 nodes failed because of the
//! CoGroup operator's internal implementation which computes the solution
//! set in memory"; and for Spark, §VIII: Spark "requires that (significant)
//! parts of the data to be on the JVM's heap for several operations; if the
//! size of the heap is not sufficient, the job dies".
//!
//! Both checks compare a per-node working-set estimate against the engine's
//! memory budget. The estimates are mechanistic (bytes per vertex/edge ×
//! graph size ÷ nodes + per-task buffers) with constants from
//! [`Calibration`]; the same constants govern every cluster size, so the
//! pass/fail pattern across 27/44/97 nodes is emergent.

use flowmark_core::config::{Framework, RunConfig};

use crate::calibration::Calibration;
use crate::error::SimError;

/// Which graph algorithm is being run (their working sets differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphAlgorithm {
    /// Page Rank: double-buffered ranks + triplet views.
    PageRank,
    /// Connected Components: labels only.
    ConnectedComponents,
}

/// Checks whether Flink's delta-iteration solution set and CoGroup build
/// side fit in managed memory. Returns the per-node requirement on success.
pub fn check_flink_graph_memory(
    vertices: u64,
    edges: u64,
    run: &RunConfig,
    cal: &Calibration,
) -> Result<f64, SimError> {
    let nodes = run.cluster.nodes as f64;
    let vertices_gb = vertices as f64 / nodes * cal.flink_vertex_entry_bytes / 1e9;
    let edges_gb = edges as f64 / nodes * cal.flink_edge_build_bytes / 1e9;
    let tasks_per_node = (run.flink.default_parallelism as f64 / nodes).ceil();
    let buffers_gb = tasks_per_node * cal.flink_task_buffer_gb;
    let needed = vertices_gb + edges_gb + buffers_gb;
    let available = run.flink.taskmanager_memory_gb * run.flink.memory_fraction;
    if needed > available {
        return Err(SimError::OutOfMemory {
            framework: Framework::Flink,
            component: "CoGroup solution set".into(),
            needed_gb: needed,
            available_gb: available,
        });
    }
    Ok(needed)
}

/// Checks whether Spark's iteration working set fits on the heap. The load
/// stage always succeeds (Spark spills it to disk); only the iteration
/// phase can die.
pub fn check_spark_graph_memory(
    algorithm: GraphAlgorithm,
    edges: u64,
    run: &RunConfig,
    cal: &Calibration,
) -> Result<f64, SimError> {
    let nodes = run.cluster.nodes as f64;
    let per_edge = match algorithm {
        GraphAlgorithm::PageRank => cal.spark_pr_edge_bytes,
        GraphAlgorithm::ConnectedComponents => cal.spark_cc_edge_bytes,
    };
    let needed = edges as f64 / nodes * per_edge / 1e9;
    let available = run.spark.executor_memory_gb * cal.spark_exec_heap_share;
    if needed > available {
        return Err(SimError::OutOfMemory {
            framework: Framework::Spark,
            component: match algorithm {
                GraphAlgorithm::PageRank => "GraphX rank working set".into(),
                GraphAlgorithm::ConnectedComponents => "GraphX label working set".into(),
            },
            needed_gb: needed,
            available_gb: available,
        });
    }
    Ok(needed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_core::config::RunConfig;

    /// The Large graph (Table IV): 1.7 B vertices, 64 B edges.
    const V: u64 = 1_700_000_000;
    const E: u64 = 64_000_000_000;

    fn large_graph_run(nodes: u32, flink_mem: f64, spark_mem: f64, flink_par: u32) -> RunConfig {
        let mut run = RunConfig::canonical(nodes, 6);
        run.flink.taskmanager_memory_gb = flink_mem;
        run.flink.default_parallelism = flink_par;
        run.flink.network_buffers = u32::MAX; // buffers not under test here
        run.spark.executor_memory_gb = spark_mem;
        run
    }

    #[test]
    fn flink_large_graph_fails_at_27_and_44_nodes() {
        let cal = Calibration::default();
        for nodes in [27u32, 44] {
            let run = large_graph_run(nodes, 18.0, 62.0, nodes * 16);
            let r = check_flink_graph_memory(V, E, &run, &cal);
            assert!(
                matches!(r, Err(SimError::OutOfMemory { .. })),
                "{nodes} nodes should OOM, got {r:?}"
            );
        }
    }

    #[test]
    fn flink_large_graph_fits_at_97_nodes_with_reduced_parallelism() {
        let cal = Calibration::default();
        // §VI-E: parallelism = 3/4 of the cores so CoGroup gets memory.
        let run = large_graph_run(97, 18.0, 62.0, 97 * 16 * 3 / 4);
        assert!(check_flink_graph_memory(V, E, &run, &cal).is_ok());
    }

    #[test]
    fn flink_full_parallelism_at_97_nodes_still_fails() {
        let cal = Calibration::default();
        // "Setting the parallelism to the total number of cores causes a
        // failure" (§VI-E): the extra active slots steal managed memory.
        let run = large_graph_run(97, 18.0, 62.0, 97 * 16);
        assert!(check_flink_graph_memory(V, E, &run, &cal).is_err());
    }

    #[test]
    fn spark_pagerank_fails_below_97_nodes_cc_succeeds() {
        let cal = Calibration::default();
        for nodes in [27u32, 44] {
            let run = large_graph_run(nodes, 18.0, 62.0, nodes * 16);
            assert!(
                check_spark_graph_memory(GraphAlgorithm::PageRank, E, &run, &cal).is_err(),
                "PR should die at {nodes} nodes"
            );
            assert!(
                check_spark_graph_memory(GraphAlgorithm::ConnectedComponents, E, &run, &cal)
                    .is_ok(),
                "CC should survive at {nodes} nodes"
            );
        }
        let run = large_graph_run(97, 18.0, 62.0, 97 * 16);
        assert!(check_spark_graph_memory(GraphAlgorithm::PageRank, E, &run, &cal).is_ok());
    }

    #[test]
    fn medium_graph_fits_everywhere() {
        let cal = Calibration::default();
        let run = large_graph_run(27, 18.0, 62.0, 297);
        assert!(check_flink_graph_memory(65_600_000, 1_800_000_000, &run, &cal).is_ok());
        assert!(check_spark_graph_memory(
            GraphAlgorithm::PageRank,
            1_800_000_000,
            &run,
            &cal
        )
        .is_ok());
    }
}
