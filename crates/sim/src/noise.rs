//! Deterministic run-to-run noise.
//!
//! The paper plots mean ± stddev over ~5 runs; the variance is real system
//! noise (OS cache state, disk head position, JIT). The simulator
//! reproduces it with a seeded, hash-derived multiplicative factor so that
//! trials differ but the whole experiment is replayable bit-for-bit.

/// SplitMix64 — tiny, high-quality seeded mixer (public-domain algorithm).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform sample in `[0, 1)` from a seed.
fn uniform(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// A multiplicative noise factor with the given coefficient of variation.
///
/// The factor is `1 + cv·√3·(2u − 1)` with `u` the average of two uniforms
/// (triangular distribution ⇒ stddev of `(2u−1)` is `1/√6`; the √3 scaling
/// yields stddev ≈ cv·1/√2 ≈ 0.71·cv — close enough for error bars while
/// keeping the factor bounded away from zero).
pub fn noise_factor(seed: u64, stream: u64, cv: f64) -> f64 {
    if cv <= 0.0 {
        return 1.0;
    }
    let u1 = uniform(seed.wrapping_mul(0x9E37_79B9).wrapping_add(stream));
    let u2 = uniform(seed.wrapping_add(stream.wrapping_mul(0x85EB_CA6B)));
    let centered = (u1 + u2) - 1.0; // triangular on [-1, 1]
    (1.0 + cv * 3f64.sqrt() * centered).max(0.05)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(noise_factor(42, 7, 0.1), noise_factor(42, 7, 0.1));
        assert_ne!(noise_factor(42, 7, 0.1), noise_factor(43, 7, 0.1));
        assert_ne!(noise_factor(42, 7, 0.1), noise_factor(42, 8, 0.1));
    }

    #[test]
    fn zero_cv_is_identity() {
        assert_eq!(noise_factor(1, 2, 0.0), 1.0);
        assert_eq!(noise_factor(1, 2, -1.0), 1.0);
    }

    #[test]
    fn spread_matches_cv_roughly() {
        let cv = 0.10;
        let samples: Vec<f64> = (0..10_000).map(|i| noise_factor(i, 0, cv)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
            / samples.len() as f64;
        let std = var.sqrt();
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!(std > 0.03 && std < 0.12, "std {std}");
    }

    #[test]
    fn bounded_away_from_zero() {
        for i in 0..1000 {
            let f = noise_factor(i, i * 3, 0.5);
            assert!(f >= 0.05 && f < 2.5);
        }
    }
}
