//! Lowering: logical plans → priced phase groups.
//!
//! This is the simulator's cost model. The same annotated
//! [`LogicalPlan`] is lowered differently per engine:
//!
//! - **Spark**: [`StagePlan`] stages become [`crate::demand::ExecMode::Sequential`] phases.
//!   Shuffle boundaries write serialized (optionally compressed) map output
//!   to disk and re-read it over the network; iteration nodes are
//!   **unrolled** — every round re-emits its body stages and re-pays task
//!   dispatch; CPU is inflated by the serializer factor and by GC pressure
//!   from heap-resident working sets.
//! - **Flink**: [`JobGraph`] chains become [`crate::demand::ExecMode::Overlapped`] phases
//!   inside pipeline regions. Sort-based combining happens on managed
//!   memory (with fill/drain cycles in the telemetry); iterations deploy
//!   once and add only a per-round sync barrier; there is no map-output
//!   compression and no disk in the shuffle path unless memory forces a
//!   spill.

use flowmark_core::config::{Framework, RunConfig, Serializer};
use flowmark_dataflow::operator::OperatorKind;
use flowmark_dataflow::optimizer::{insert_combiners, push_down_filters};
use flowmark_dataflow::plan::{ExchangeMode, LogicalPlan, PlanNode};
use flowmark_dataflow::stage::{JobGraph, StagePlan};

use crate::calibration::Calibration;
use crate::cluster::Cluster;
use crate::demand::{PhaseDemand, PhaseGroup};
use crate::error::SimError;

/// Bytes in one MiB.
const MIB: f64 = 1024.0 * 1024.0;

/// Lowers a plan for one engine.
pub fn lower(
    plan: &LogicalPlan,
    framework: Framework,
    run: &RunConfig,
    cluster: &Cluster,
    cal: &Calibration,
) -> Result<Vec<PhaseGroup>, SimError> {
    run.validate()?;
    plan.validate().expect("workload plans are structurally valid");
    match framework {
        Framework::Spark => lower_spark(plan, run, cluster, cal),
        Framework::Flink => lower_flink(plan, run, cluster, cal),
    }
}

/// Per-node context shared by both lowerings.
struct Ctx<'a> {
    run: &'a RunConfig,
    cluster: &'a Cluster,
    cal: &'a Calibration,
    cards: Vec<f64>,
    bytes: Vec<f64>,
}

impl<'a> Ctx<'a> {
    fn new(plan: &LogicalPlan, run: &'a RunConfig, cluster: &'a Cluster, cal: &'a Calibration) -> Self {
        Self {
            run,
            cluster,
            cal,
            cards: plan.cardinalities(),
            bytes: plan.output_bytes(),
        }
    }

    fn records_in(&self, node: &PlanNode) -> f64 {
        if let Some(r) = node.source_records {
            r as f64
        } else {
            node.inputs.iter().map(|(id, _)| self.cards[id.0]).sum()
        }
    }

    fn serializer(&self, fw: Framework) -> Serializer {
        match fw {
            Framework::Spark => self.run.spark.serializer,
            Framework::Flink => Serializer::TypeInfo,
        }
    }

    /// Remote fraction of an all-to-all exchange: `(n-1)/n` of the data
    /// leaves the producing node.
    fn cross_node_fraction(&self) -> f64 {
        let n = self.cluster.nodes as f64;
        if n <= 1.0 {
            0.0
        } else {
            (n - 1.0) / n
        }
    }
}

/// Adds one operator node's intrinsic demand (user code + source/sink I/O)
/// into `demand`. Shuffle-edge costs are added separately by the caller.
fn node_demand(
    demand: &mut PhaseDemand,
    node: &PlanNode,
    ctx: &Ctx<'_>,
    fw: Framework,
    cpu_multiplier: f64,
) {
    let records_in = ctx.records_in(node);
    let records_out = ctx.cards[node.id.0];
    let bytes_out = ctx.bytes[node.id.0];
    // User + framework CPU.
    demand.cpu_core_seconds += records_in * node.cost.cpu_ns_per_record * 1e-9 * cpu_multiplier;
    // Aggregation bookkeeping pays per-record serializer-sensitive CPU
    // (hashing / serialized-form comparisons), §VI-A.
    if node.op.has_map_side_combine() || node.op == OperatorKind::GroupCombine {
        let factor = match fw {
            Framework::Spark => ctx.serializer(fw).cpu_factor(),
            Framework::Flink => ctx.cal.flink_sort_agg_factor,
        };
        demand.cpu_core_seconds +=
            records_in * ctx.cal.agg_cpu_ns_per_record * 1e-9 * factor;
    }
    match node.op {
        OperatorKind::DataSource => {
            // Effective HDFS read throughput is below raw disk bandwidth.
            let input_mib = bytes_out / MIB / ctx.cal.hdfs_read_efficiency;
            demand.disk_read_mib += input_mib;
            // Non-local HDFS blocks cross the network (placement model).
            let hdfs = crate::hdfs::HdfsModel::new(
                ctx.run.cluster.nodes,
                ctx.run.cluster.hdfs_block_mb,
            );
            let blocks = hdfs.blocks(bytes_out);
            let remote = hdfs
                .remote_read_fraction(blocks, ctx.run.cluster.cores_per_node)
                .max(ctx.cal.hdfs_remote_read_fraction * 0.2);
            demand.net_mib += input_mib * remote;
        }
        OperatorKind::DataSink => {
            let ser = ctx.serializer(fw);
            let out_mib = bytes_out / MIB * ser.size_factor();
            demand.disk_write_mib += out_mib * ctx.cal.hdfs_replication_out;
            if ctx.cal.hdfs_replication_out > 1.0 {
                demand.net_mib += out_mib * (ctx.cal.hdfs_replication_out - 1.0);
            }
            demand.cpu_core_seconds +=
                records_in * ctx.cal.shuffle_cpu_ns_per_record * 1e-9 * ser.cpu_factor();
        }
        OperatorKind::Collect | OperatorKind::Count | OperatorKind::CollectAsMap => {
            // Driver-bound result: records_out cross to one node.
            demand.net_mib += records_out * node.cost.bytes_per_record / MIB;
        }
        OperatorKind::GroupCombine => {
            // Sort cycles on the combine buffer (drives anti-cyclic I/O).
            let per_node_mib = (records_in * node.cost.bytes_per_record / MIB)
                / ctx.cluster.nodes as f64;
            let buffer_mib = combine_buffer_mib(ctx, fw);
            let cycles = (per_node_mib / buffer_mib).ceil() as u32;
            demand.combine_cycles = demand.combine_cycles.max(cycles.clamp(1, 40));
        }
        _ => {}
    }
}

/// Map-side combine buffer size per node, MiB.
fn combine_buffer_mib(ctx: &Ctx<'_>, fw: Framework) -> f64 {
    match fw {
        // Flink: managed memory fraction per node, shared by active slots.
        Framework::Flink => {
            (ctx.run.flink.taskmanager_memory_gb * ctx.run.flink.memory_fraction * 1024.0 / 3.0)
                .max(64.0)
        }
        // Spark tungsten-sort: execution-fraction share of the heap.
        Framework::Spark => {
            (ctx.run.spark.executor_memory_gb * ctx.run.spark.shuffle_fraction * 1024.0 / 2.0)
                .max(64.0)
        }
    }
}

/// Shuffle-edge cost: producer-side serialization (+ optional disk write /
/// compression for Spark) and consumer-side network + deserialization.
struct ShuffleCost {
    producer_cpu: f64,
    producer_disk_write_mib: f64,
    consumer_cpu: f64,
    consumer_disk_read_mib: f64,
    net_mib: f64,
}

fn shuffle_cost(records: f64, raw_bytes: f64, ctx: &Ctx<'_>, fw: Framework) -> ShuffleCost {
    let ser = ctx.serializer(fw);
    let wire_bytes = raw_bytes * ser.size_factor();
    let ser_cpu = records * ctx.cal.shuffle_cpu_ns_per_record * 1e-9 * ser.cpu_factor();
    match fw {
        Framework::Spark => {
            let compressed = wire_bytes * ctx.cal.compression_ratio;
            let comp_cpu = wire_bytes * ctx.cal.compression_cpu_ns_per_byte * 1e-9;
            ShuffleCost {
                producer_cpu: ser_cpu + comp_cpu,
                // Map output files hit the local disk (compressed).
                producer_disk_write_mib: compressed / MIB,
                consumer_cpu: ser_cpu + comp_cpu * 0.6,
                // Reducers pull from the map-side disks...
                consumer_disk_read_mib: compressed / MIB,
                // ...and the cross-node share rides the network.
                net_mib: compressed / MIB * ctx.cross_node_fraction(),
            }
        }
        Framework::Flink => ShuffleCost {
            producer_cpu: ser_cpu,
            producer_disk_write_mib: 0.0,
            consumer_cpu: ser_cpu,
            consumer_disk_read_mib: 0.0,
            net_mib: wire_bytes / MIB * ctx.cross_node_fraction(),
        },
    }
}

/// Heap working-set effects for Spark: GC inflation plus spill I/O when the
/// stage's materialised output exceeds the execution memory.
fn apply_spark_memory(demand: &mut PhaseDemand, materialized_bytes: f64, ctx: &Ctx<'_>) {
    // GC pressure sees the full JVM object expansion; the tungsten-sort
    // spill path works on serialized data (~1.1× raw).
    let object_gb =
        materialized_bytes * ctx.cal.java_object_overhead / ctx.cluster.nodes as f64 / 1e9;
    let serialized_gb = materialized_bytes * 1.1 / ctx.cluster.nodes as f64 / 1e9;
    let heap_gb = ctx.run.spark.executor_memory_gb * ctx.cal.spark_exec_heap_share;
    // Tungsten-managed spills keep live heap bounded; cap the effective
    // GC pressure below the thrash region.
    let pressure = (object_gb / heap_gb).min(0.80);
    demand.cpu_core_seconds *= flowmark_engine_gc(pressure);
    demand.memory_gb = demand.memory_gb.max(serialized_gb.min(heap_gb) * ctx.cluster.nodes as f64);
    if serialized_gb > heap_gb {
        // External sort/aggregation: the whole working set takes one extra
        // trip through the disk (write runs, merge-read them back).
        let spill_mib = serialized_gb * 1024.0 * ctx.cluster.nodes as f64
            * (ctx.cal.spill_round_trip / 2.0);
        demand.disk_write_mib += spill_mib;
        demand.disk_read_mib += spill_mib;
    }
}

/// Managed-memory effects for Flink: spill I/O past the managed pool, no
/// GC inflation (objects live off-heap, §VIII).
fn apply_flink_memory(demand: &mut PhaseDemand, materialized_bytes: f64, ctx: &Ctx<'_>) {
    let per_node_gb = materialized_bytes / ctx.cluster.nodes as f64 / 1e9;
    let managed_gb = ctx.run.flink.taskmanager_memory_gb * ctx.run.flink.memory_fraction;
    demand.memory_gb = demand
        .memory_gb
        .max(per_node_gb.min(managed_gb) * ctx.cluster.nodes as f64);
    if per_node_gb > managed_gb {
        // External sort on managed memory: full extra disk round trip.
        let spill_mib = per_node_gb * 1024.0 * ctx.cluster.nodes as f64
            * (ctx.cal.spill_round_trip / 2.0);
        demand.disk_write_mib += spill_mib;
        demand.disk_read_mib += spill_mib;
    }
}

/// The paper-calibrated GC model (re-exported shape of
/// `flowmark_engine::memory::gc_overhead_at`, duplicated here so the sim
/// does not depend on the engine crate).
fn flowmark_engine_gc(pressure: f64) -> f64 {
    let p = pressure.clamp(0.0, 0.99);
    1.0 + 0.3 * p * p / (1.0 - p)
}

// ---------------------------------------------------------------------------
// Spark lowering
// ---------------------------------------------------------------------------

fn lower_spark(
    plan: &LogicalPlan,
    run: &RunConfig,
    cluster: &Cluster,
    cal: &Calibration,
) -> Result<Vec<PhaseGroup>, SimError> {
    // reduceByKey et al. imply a map-side combiner in Spark too (§III).
    let plan = insert_combiners(plan);
    let ctx = Ctx::new(&plan, run, cluster, cal);
    let mut phases = Vec::new();
    lower_spark_plan(&plan, &ctx, run.spark.default_parallelism, &mut phases)?;
    Ok(vec![PhaseGroup::sequential(phases)])
}

fn lower_spark_plan(
    plan: &LogicalPlan,
    ctx: &Ctx<'_>,
    parallelism: u32,
    out: &mut Vec<PhaseDemand>,
) -> Result<(), SimError> {
    let stages = StagePlan::from_plan(plan);
    for stage in &stages.stages {
        // Iteration stages unroll their body.
        if let Some(spec) = stage
            .nodes
            .iter()
            .find_map(|&id| plan.node(id).iteration.as_ref())
        {
            // The body aggregations combine map-side too (§III).
            let body = insert_combiners(&spec.body);
            let body_ctx = Ctx::new(&body, ctx.run, ctx.cluster, ctx.cal);
            for round in 0..spec.iterations {
                let mut body_phases = Vec::new();
                lower_spark_plan(&body, &body_ctx, parallelism, &mut body_phases)?;
                // Round one also materialises the lazily-cached loop input.
                let first = if round == 0 {
                    ctx.cal.spark_first_iteration_factor
                } else {
                    1.0
                };
                let decay = spec.workset_decay.powi(round as i32) * first;
                for (i, p) in body_phases.into_iter().enumerate() {
                    // Loop unrolling: a fresh task wave every round (the
                    // body stages carry their own task counts).
                    let mut p = p.scaled(decay);
                    p.label = if i == 0 {
                        format!("iter{}:{}", round + 1, p.label)
                    } else {
                        p.label
                    };
                    out.push(p);
                }
            }
            continue;
        }

        let mut demand = PhaseDemand::new(stages.label(plan, stage));
        let mut materialized = 0.0f64;
        for &id in &stage.nodes {
            let node = plan.node(id);
            node_demand(&mut demand, node, ctx, Framework::Spark, 1.0);
            // Shuffle inputs arriving at this stage.
            for (input, mode) in &node.inputs {
                if mode.is_shuffle() {
                    let cost =
                        shuffle_cost(ctx.cards[input.0], ctx.bytes[input.0], ctx, Framework::Spark);
                    demand.cpu_core_seconds += cost.consumer_cpu;
                    demand.disk_read_mib += cost.consumer_disk_read_mib;
                    demand.net_mib += cost.net_mib;
                    materialized += ctx.bytes[input.0];
                }
            }
        }
        // Shuffle outputs leaving this stage (produced by its last nodes).
        for other in plan.nodes() {
            for (input, mode) in &other.inputs {
                if mode.is_shuffle() && stage.nodes.contains(input) {
                    let cost =
                        shuffle_cost(ctx.cards[input.0], ctx.bytes[input.0], ctx, Framework::Spark);
                    demand.cpu_core_seconds += cost.producer_cpu;
                    demand.disk_write_mib += cost.producer_disk_write_mib;
                }
            }
        }
        apply_spark_memory(&mut demand, materialized, ctx);
        // Action stages cost a driver round trip (job submit + collect).
        if stage.nodes.iter().any(|&id| plan.node(id).op.is_action()) {
            demand.driver_latency_seconds += ctx.cal.spark_action_latency_s;
        }
        // Task count: source stages get one task per HDFS block; shuffle
        // stages get `spark.default.parallelism` tasks. GraphX stages use
        // `spark.edge.partition` for the graph load and
        // `max(edge partitions, parallelism)` for the joined graph of the
        // iterations (§VI-E).
        let is_source_stage = stage
            .nodes
            .iter()
            .any(|&id| plan.node(id).op == OperatorKind::DataSource);
        let has_graph_op = stage
            .nodes
            .iter()
            .any(|&id| plan.node(id).op == OperatorKind::GraphOp);
        let is_cached_body = stage
            .nodes
            .iter()
            .any(|&id| plan.node(id).op == OperatorKind::CachedSource);
        demand.tasks = if is_source_stage {
            let input_mib: f64 = stage
                .nodes
                .iter()
                .filter(|&&id| plan.node(id).op == OperatorKind::DataSource)
                .map(|&id| ctx.bytes[id.0] / MIB)
                .sum();
            // One task per block, but never fewer than the configured
            // parallelism (Spark's textFile minPartitions).
            let blocks = (input_mib / ctx.run.cluster.hdfs_block_mb as f64).ceil().max(1.0) as u64;
            blocks.max(parallelism as u64)
        } else {
            match (ctx.run.spark.edge_partitions, has_graph_op, is_cached_body) {
                // Graph load stage: purely edge-partitioned.
                (Some(ep), true, false) => ep as u64,
                // Iteration stages over the joined graph.
                (Some(ep), true, true) => ep.max(parallelism) as u64,
                _ => parallelism as u64,
            }
        };
        // Over-partitioned shuffles pay a seek per shuffle file ("more
        // files to handle", §VI-E). With consolidation (§IV-B) the file
        // count is mappers × cores; without, it is mappers × reducers.
        if !is_source_stage {
            let t = demand.tasks as f64;
            let files = if ctx.run.spark.consolidate_files {
                t * ctx.cluster.total_cores() as f64
            } else {
                t * t
            };
            demand.driver_latency_seconds +=
                files * ctx.cal.shuffle_file_seek_us / ctx.cluster.nodes as f64 / 1e6;
        }
        out.push(demand);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Flink lowering
// ---------------------------------------------------------------------------

fn lower_flink(
    plan: &LogicalPlan,
    run: &RunConfig,
    cluster: &Cluster,
    cal: &Calibration,
) -> Result<Vec<PhaseGroup>, SimError> {
    // The cost-based optimizer: filter pushdown, then combiner insertion.
    let (plan, _swaps) = push_down_filters(plan);
    let plan = insert_combiners(&plan);
    let ctx = Ctx::new(&plan, run, cluster, cal);
    let graph = JobGraph::from_plan(&plan);

    let mut groups: Vec<PhaseGroup> = Vec::new();
    let mut current: Vec<PhaseDemand> = Vec::new();
    // Vertex depth for span offsets.
    let mut depth = vec![0u32; graph.vertices.len()];
    let mut after_breaker = vec![false; graph.vertices.len()];
    for v in &graph.vertices {
        for (input, _) in &v.inputs {
            depth[v.id] = depth[v.id].max(depth[*input] + 1);
            after_breaker[v.id] = after_breaker[v.id]
                || after_breaker[*input]
                || graph.vertices[*input].has_breaker(&plan);
        }
    }

    for v in &graph.vertices {
        // Iteration vertices form their own pipelined region.
        if let Some(spec) = v
            .nodes
            .iter()
            .find_map(|&id| plan.node(id).iteration.as_ref())
        {
            if !current.is_empty() {
                groups.push(
                    PhaseGroup::overlapped(std::mem::take(&mut current))
                        .with_latency(cal.flink_deploy_s),
                );
            }
            let body = insert_combiners(&spec.body);
            let body_ctx = Ctx::new(&body, run, cluster, cal);
            let body_graph = JobGraph::from_plan(&body);
            let mut iter_phases: Vec<PhaseDemand> = Vec::new();
            // Effective rounds: delta worksets decay geometrically.
            let effective_rounds: f64 = (0..spec.iterations)
                .map(|r| spec.workset_decay.powi(r as i32))
                .sum();
            for bv in &body_graph.vertices {
                let mut d = PhaseDemand::new(format!("Iter:{}", bv.label(&body)));
                for &id in &bv.nodes {
                    let node = body.node(id);
                    node_demand(&mut d, node, &body_ctx, Framework::Flink, 1.0);
                    for (input, mode) in &node.inputs {
                        if mode.is_shuffle() {
                            let cost = shuffle_cost(
                                body_ctx.cards[input.0],
                                body_ctx.bytes[input.0],
                                &body_ctx,
                                Framework::Flink,
                            );
                            d.cpu_core_seconds += cost.producer_cpu + cost.consumer_cpu;
                            d.net_mib += cost.net_mib;
                        }
                        if *mode == ExchangeMode::Broadcast {
                            d.net_mib += body_ctx.bytes[input.0] / MIB
                                * (cluster.nodes as f64 - 1.0);
                        }
                    }
                }
                let mut d = d.scaled(effective_rounds);
                apply_flink_memory(&mut d, body_ctx.bytes.iter().cloned().fold(0.0, f64::max), &ctx);
                // Scheduled once: tasks do not scale with rounds (§II-C);
                // every chain runs at the configured parallelism.
                d.tasks = run.flink.default_parallelism as u64;
                d.depth = depth[v.id];
                iter_phases.push(d);
            }
            // Delta iterations keep the solution set + joined adjacency in
            // managed memory; on large graphs the overflow thrashes to
            // disk every round (§VI-E: the delta hash table is not
            // spillable gracefully — "trading performance for fault
            // tolerance" is future work the paper recommends).
            // Per-round working set of the delta CoGroup, sized like the
            // Table VII memory model: the joined adjacency plus the
            // solution set. Edges = the body's feedback-source cardinality;
            // vertices ≈ half the loop-input records (adjacency + ranks).
            let loop_input = plan.node(v.nodes[0]).inputs[0].0;
            let edge_records = spec
                .body
                .nodes()
                .iter()
                .find_map(|n| n.source_records)
                .unwrap_or(0) as f64;
            let vertex_records = ctx.cards[loop_input.0] / 2.0;
            let working_gb = (edge_records * cal.flink_edge_build_bytes
                + vertex_records * cal.flink_vertex_entry_bytes)
                / cluster.nodes as f64
                / 1e9;
            // Managed memory left for the CoGroup after per-task buffers;
            // thrash sets in when the join's working set dominates it.
            let tasks_per_node =
                (run.flink.default_parallelism as f64 / cluster.nodes as f64).ceil();
            let available_gb = run.flink.taskmanager_memory_gb * run.flink.memory_fraction
                - tasks_per_node * cal.flink_task_buffer_gb;
            let managed_gb = (available_gb * 0.5).max(0.1);
            let mut thrash_latency = 0.0;
            if spec.kind == flowmark_dataflow::plan::IterationKind::Delta
                && working_gb > managed_gb
            {
                let effective_rounds: f64 = (0..spec.iterations)
                    .map(|r| spec.workset_decay.powi(r as i32))
                    .sum();
                let thrash_mib = (working_gb - managed_gb)
                    * 1024.0
                    * cluster.nodes as f64
                    * effective_rounds
                    * cal.spill_round_trip
                    * 2.0;
                let mut d = PhaseDemand::new("Iter:SolutionSetSpill");
                d.disk_read_mib = thrash_mib;
                d.disk_write_mib = thrash_mib;
                // The join stalls on the thrashing hash table: this disk
                // time serialises with the round's compute instead of
                // overlapping it.
                thrash_latency = d.solo_seconds_mixed(cluster, cal.pipelined_io_efficiency);
            }
            let sync_latency =
                spec.iterations as f64 * cal.flink_sync_per_round_s + thrash_latency;
            groups.push(
                PhaseGroup::overlapped(iter_phases)
                    .with_latency(cal.flink_deploy_s + sync_latency),
            );
            continue;
        }

        let mut d = PhaseDemand::new(v.label(&plan));
        let mut materialized = 0.0f64;
        for &id in &v.nodes {
            let node = plan.node(id);
            node_demand(&mut d, node, &ctx, Framework::Flink, 1.0);
            for (input, mode) in &node.inputs {
                if mode.is_shuffle() {
                    let cost =
                        shuffle_cost(ctx.cards[input.0], ctx.bytes[input.0], &ctx, Framework::Flink);
                    // Pipelined: producer and consumer sides are the two
                    // ends of the same live channel; attribute both here.
                    // No disk — a pipelined receiver never materialises.
                    d.cpu_core_seconds += cost.producer_cpu + cost.consumer_cpu;
                    d.net_mib += cost.net_mib;
                }
            }
            // Only pipeline breakers materialise: their working set is the
            // larger of what they consume and what they hold sorted.
            if node.op.is_pipeline_breaker() {
                let input_bytes: f64 =
                    node.inputs.iter().map(|(i, _)| ctx.bytes[i.0]).sum();
                materialized = materialized.max(input_bytes).max(ctx.bytes[id.0]);
            }
        }
        apply_flink_memory(&mut d, materialized, &ctx);
        d.tasks = run.flink.default_parallelism as u64;
        d.depth = depth[v.id];
        d.after_breaker = after_breaker[v.id];
        let ends_job = v
            .nodes
            .iter()
            .any(|&id| plan.node(id).op.is_action());
        current.push(d);
        // An action terminates a Flink job: the next vertices belong to a
        // new pipelined region (Page Rank's count-vertices job, §VI-E).
        if ends_job {
            groups.push(
                PhaseGroup::overlapped(std::mem::take(&mut current))
                    .with_latency(cal.flink_deploy_s),
            );
        }
    }
    if !current.is_empty() {
        groups.push(
            PhaseGroup::overlapped(current).with_latency(cal.flink_deploy_s),
        );
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_core::config::Framework;
    use flowmark_dataflow::plan::{CostAnnotation, IterationKind};
    use OperatorKind::*;

    fn wordcount_plan(gb: f64) -> LogicalPlan {
        let words = gb * 1e9 / 7.0;
        let mut p = LogicalPlan::new();
        let src = p.source((words / 10.0) as u64, 70.0); // lines
        let fm = p.unary(src, FlatMap, CostAnnotation::new(10.0, 400.0, 10.0));
        let rbk = p.unary(fm, ReduceByKey, CostAnnotation::new(0.001, 300.0, 18.0));
        let _ = p.unary(rbk, DataSink, CostAnnotation::new(1.0, 100.0, 18.0));
        p
    }

    fn run_config(nodes: u32) -> RunConfig {
        RunConfig::canonical(nodes, 6)
    }

    #[test]
    fn spark_lowering_is_sequential_flink_overlapped() {
        let plan = wordcount_plan(10.0);
        let cluster = Cluster::grid5000(4);
        let cal = Calibration::default();
        let run = run_config(4);
        let spark = lower(&plan, Framework::Spark, &run, &cluster, &cal).unwrap();
        let flink = lower(&plan, Framework::Flink, &run, &cluster, &cal).unwrap();
        assert!(matches!(spark[0].mode, crate::demand::ExecMode::Sequential));
        assert!(matches!(flink[0].mode, crate::demand::ExecMode::Overlapped));
    }

    #[test]
    fn combiner_is_inserted_for_both() {
        let plan = wordcount_plan(10.0);
        let cluster = Cluster::grid5000(4);
        let cal = Calibration::default();
        let run = run_config(4);
        for fw in Framework::BOTH {
            let groups = lower(&plan, fw, &run, &cluster, &cal).unwrap();
            let labels: Vec<&str> = groups
                .iter()
                .flat_map(|g| g.phases.iter().map(|p| p.label.as_str()))
                .collect();
            assert!(
                labels.iter().any(|l| l.contains("GroupCombine")),
                "{fw}: {labels:?}"
            );
        }
    }

    #[test]
    fn spark_shuffle_writes_disk_flink_does_not() {
        let plan = wordcount_plan(50.0);
        let cluster = Cluster::grid5000(4);
        let cal = Calibration::default();
        let run = run_config(4);
        let spark = lower(&plan, Framework::Spark, &run, &cluster, &cal).unwrap();
        let flink = lower(&plan, Framework::Flink, &run, &cluster, &cal).unwrap();
        let spark_shuffle_write: f64 = spark[0]
            .phases
            .iter()
            .filter(|p| !p.label.contains("DataSink"))
            .map(|p| p.disk_write_mib)
            .sum();
        // Flink's shuffle is pipelined: only the sink writes.
        let flink_nonsink_write: f64 = flink
            .iter()
            .flat_map(|g| &g.phases)
            .filter(|p| !p.label.contains("DataSink"))
            .map(|p| p.disk_write_mib)
            .sum();
        assert!(spark_shuffle_write > 0.0);
        assert_eq!(flink_nonsink_write, 0.0);
    }

    #[test]
    fn spark_serializer_costs_more_cpu_than_flink() {
        let plan = wordcount_plan(50.0);
        let cluster = Cluster::grid5000(4);
        let cal = Calibration::default();
        let run = run_config(4);
        let total_cpu = |groups: &[PhaseGroup]| -> f64 {
            groups
                .iter()
                .flat_map(|g| &g.phases)
                .map(|p| p.cpu_core_seconds)
                .sum()
        };
        let spark = lower(&plan, Framework::Spark, &run, &cluster, &cal).unwrap();
        let flink = lower(&plan, Framework::Flink, &run, &cluster, &cal).unwrap();
        assert!(total_cpu(&spark) > total_cpu(&flink) * 1.02);
    }

    #[test]
    fn flink_combine_phase_has_cycles() {
        let plan = wordcount_plan(100.0);
        let cluster = Cluster::grid5000(4);
        let groups = lower(
            &plan,
            Framework::Flink,
            &run_config(4),
            &cluster,
            &Calibration::default(),
        )
        .unwrap();
        let combine = groups
            .iter()
            .flat_map(|g| &g.phases)
            .find(|p| p.label.contains("GroupCombine"))
            .unwrap();
        assert!(combine.combine_cycles > 1, "{}", combine.combine_cycles);
    }

    fn iteration_plan(rounds: u32, kind: IterationKind, decay: f64) -> LogicalPlan {
        let mut body = LogicalPlan::new();
        let bsrc = body.source(10_000_000, 16.0);
        let bmap = body.unary(bsrc, Map, CostAnnotation::new(1.0, 200.0, 16.0));
        let _ = body.unary(bmap, GroupReduce, CostAnnotation::new(0.001, 200.0, 16.0));
        let mut p = LogicalPlan::new();
        let src = p.source(10_000_000, 16.0);
        let it = p.iterate(src, kind, rounds, body, decay);
        let _ = p.unary(it, DataSink, CostAnnotation::new(1.0, 50.0, 16.0));
        p
    }

    #[test]
    fn spark_unrolls_iterations_flink_schedules_once() {
        let plan = iteration_plan(10, IterationKind::Bulk, 1.0);
        let cluster = Cluster::grid5000(4);
        let cal = Calibration::default();
        let run = run_config(4);
        let spark = lower(&plan, Framework::Spark, &run, &cluster, &cal).unwrap();
        let flink = lower(&plan, Framework::Flink, &run, &cluster, &cal).unwrap();
        let spark_tasks: u64 = spark.iter().flat_map(|g| &g.phases).map(|p| p.tasks).sum();
        let flink_tasks: u64 = flink.iter().flat_map(|g| &g.phases).map(|p| p.tasks).sum();
        assert!(
            spark_tasks > 5 * flink_tasks,
            "spark {spark_tasks} vs flink {flink_tasks}"
        );
        // Flink pays a sync barrier per round instead.
        let sync: f64 = flink.iter().map(|g| g.latency_seconds).sum();
        assert!(sync >= 10.0 * cal.flink_sync_per_round_s);
    }

    #[test]
    fn delta_decay_reduces_flink_iteration_demand() {
        let bulk = iteration_plan(10, IterationKind::Bulk, 1.0);
        let delta = iteration_plan(10, IterationKind::Delta, 0.5);
        let cluster = Cluster::grid5000(4);
        let cal = Calibration::default();
        let run = run_config(4);
        let cpu = |p: &LogicalPlan| -> f64 {
            lower(p, Framework::Flink, &run, &cluster, &cal)
                .unwrap()
                .iter()
                .flat_map(|g| g.phases.clone())
                .filter(|d| d.label.starts_with("Iter:"))
                .map(|d| d.cpu_core_seconds)
                .sum()
        };
        let bulk_cpu = cpu(&bulk);
        let delta_cpu = cpu(&delta);
        assert!(
            delta_cpu < bulk_cpu * 0.35,
            "delta {delta_cpu} vs bulk {bulk_cpu}"
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let plan = wordcount_plan(1.0);
        let cluster = Cluster::grid5000(4);
        let mut run = run_config(4);
        run.flink.default_parallelism = 100_000;
        let err = lower(&plan, Framework::Flink, &run, &cluster, &Calibration::default());
        assert!(matches!(err, Err(SimError::Config(_))));
    }

    #[test]
    fn oversized_working_set_spills() {
        // 4 nodes × tiny Flink managed memory, huge groupReduce input.
        let mut p = LogicalPlan::new();
        let src = p.source(2_000_000_000, 100.0); // 200 GB
        let gr = p.unary(src, GroupReduce, CostAnnotation::new(1.0, 100.0, 100.0));
        let _ = p.unary(gr, DataSink, CostAnnotation::new(1.0, 50.0, 100.0));
        let cluster = Cluster::grid5000(4);
        let mut run = run_config(4);
        run.flink.taskmanager_memory_gb = 2.0;
        let groups = lower(&p, Framework::Flink, &run, &cluster, &Calibration::default()).unwrap();
        // The GroupReduce vertex (the sink is a separate vertex) must spill
        // its whole working set through the disk: one full extra pass.
        let reduce_phase = groups
            .iter()
            .flat_map(|g| &g.phases)
            .find(|ph| ph.label.contains("GroupReduce"))
            .expect("reduce phase exists");
        let data_mib = 2_000_000_000.0 * 100.0 / (1024.0 * 1024.0);
        assert!(
            reduce_phase.disk_write_mib > data_mib * 0.9
                && reduce_phase.disk_read_mib > data_mib * 0.9,
            "expected a full spill round trip: write {} read {} vs data {}",
            reduce_phase.disk_write_mib,
            reduce_phase.disk_read_mib,
            data_mib
        );
    }
}
