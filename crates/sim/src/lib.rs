//! # flowmark-sim
//!
//! A deterministic cluster simulator that regenerates the paper's
//! experiments at their original scale (24 GB/node Word Count up to the
//! 3.5 TB Tera Sort and the 64 B-edge hyperlink graph) — scales the real
//! engines in `flowmark-engine` cannot reach on one machine.
//!
//! Pipeline:
//!
//! 1. a workload builds an annotated [`flowmark_dataflow::LogicalPlan`];
//! 2. [`lower()`] prices it per engine into [`demand::PhaseGroup`]s
//!    (Spark: sequential stages with disk-backed shuffles, GC inflation,
//!    unrolled iterations; Flink: overlapped chains, pipelined shuffles,
//!    managed memory, native iterations);
//! 3. [`exec::execute`] time-shares the demands on a
//!    [`cluster::Cluster`] and emits the end-to-end time, the operator
//!    spans and full resource telemetry — exactly what the paper's
//!    methodology consumes.
//!
//! [`graphmem`] adds the Table VII failure model; [`calibration`] holds
//! every tunable constant in one audited place.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod calibration;
pub mod cluster;
pub mod demand;
pub mod error;
pub mod exec;
pub mod graphmem;
pub mod hdfs;
pub mod lower;
pub mod noise;

pub use calibration::Calibration;
pub use cluster::Cluster;
pub use error::SimError;
pub use exec::{execute, SimResult};
pub use lower::lower;

use flowmark_core::config::{Framework, RunConfig};
use flowmark_dataflow::plan::LogicalPlan;

/// One-call façade: lower a plan for an engine and execute it.
///
/// `seed` selects the trial's noise draw; run it 5 times with different
/// seeds and aggregate, as the paper does (§V).
pub fn simulate(
    plan: &LogicalPlan,
    framework: Framework,
    run: &RunConfig,
    cal: &Calibration,
    seed: u64,
) -> Result<SimResult, SimError> {
    let cluster = Cluster::grid5000(run.cluster.nodes);
    let groups = lower(plan, framework, run, &cluster, cal)?;
    Ok(execute(&cluster, cal, &groups, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_dataflow::operator::OperatorKind::*;
    use flowmark_dataflow::plan::CostAnnotation;

    #[test]
    fn simulate_facade_runs_both_engines() {
        let mut p = LogicalPlan::new();
        let src = p.source(100_000_000, 70.0);
        let fm = p.unary(src, FlatMap, CostAnnotation::new(10.0, 400.0, 10.0));
        let rbk = p.unary(fm, ReduceByKey, CostAnnotation::new(0.001, 300.0, 18.0));
        let _ = p.unary(rbk, DataSink, CostAnnotation::new(1.0, 100.0, 18.0));
        let run = RunConfig::canonical(8, 6);
        let cal = Calibration::default();
        for fw in Framework::BOTH {
            let r = simulate(&p, fw, &run, &cal, 1).unwrap();
            assert!(r.seconds > 1.0 && r.seconds < 10_000.0, "{fw}: {}", r.seconds);
            assert!(!r.trace.is_empty());
            assert!(r.telemetry.duration() > 0.0);
        }
    }

    #[test]
    fn flink_trace_is_more_pipelined_than_spark() {
        let mut p = LogicalPlan::new();
        let src = p.source(500_000_000, 100.0);
        let m = p.unary(src, Map, CostAnnotation::new(1.0, 150.0, 100.0));
        let part = p.unary_via(
            m,
            flowmark_dataflow::plan::ExchangeMode::RangeShuffle,
            PartitionCustom,
            CostAnnotation::new(1.0, 60.0, 100.0),
        );
        let sort = p.unary(part, SortPartition, CostAnnotation::new(1.0, 350.0, 100.0));
        let _ = p.unary(sort, DataSink, CostAnnotation::new(1.0, 80.0, 100.0));
        let run = RunConfig::canonical(17, 2);
        let cal = Calibration::default();
        let spark = simulate(&p, Framework::Spark, &run, &cal, 1).unwrap();
        let flink = simulate(&p, Framework::Flink, &run, &cal, 1).unwrap();
        // Spark's staged trace is fully serialized (degree ≈ 0); Flink's
        // source chain overlaps the sort/sink chain for its whole read.
        assert!(
            flink.trace.pipelining_degree() > spark.trace.pipelining_degree() + 0.1,
            "flink {} vs spark {}",
            flink.trace.pipelining_degree(),
            spark.trace.pipelining_degree()
        );
        assert!(spark.trace.pipelining_degree() < 0.05);
    }
}
