//! Every tunable constant of the simulator, in one place.
//!
//! The cost model's *mechanisms* (barriers vs overlap, dispatch cost ×
//! loop unrolling, GC ∝ heap pressure, spill past memory, bandwidth
//! sharing, compression) are structural; the constants below set their
//! magnitudes. They were calibrated once against the paper's absolute
//! times (Figs 1-17, Table VII) and are never varied per experiment —
//! every figure reproduction runs the same calibration, so the *shapes*
//! (who wins where, crossovers, failures) are emergent.

use serde::{Deserialize, Serialize};

/// Simulator constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    // ---- scheduling -------------------------------------------------------
    /// Driver-side cost to launch one task, milliseconds (Spark task
    /// serialization + RPC; the per-iteration price of loop unrolling).
    pub task_dispatch_ms: f64,
    /// Concurrent dispatch streams at the driver.
    pub dispatch_parallelism: f64,
    /// Fixed per-stage overhead, seconds (stage commit, result handling).
    pub stage_overhead_s: f64,
    /// Driver round trip of an action stage (job submit + result collect) —
    /// paid once per unrolled iteration in driver-loop jobs.
    pub spark_action_latency_s: f64,
    /// Disk-seek cost per (mapper, reducer) shuffle-file pair, microseconds
    /// — quadratic in the partition count, the "more files to handle"
    /// penalty of over-partitioned GraphX jobs (§VI-E).
    pub shuffle_file_seek_us: f64,
    /// One-time pipelined job deployment, seconds.
    pub flink_deploy_s: f64,
    /// Iteration superstep barrier, seconds per round (Flink sync).
    pub flink_sync_per_round_s: f64,

    // ---- pipelining geometry ----------------------------------------------
    /// Span start offset per pipeline depth, as a fraction of group time.
    pub pipeline_fill_fraction: f64,
    /// Extra start offset for phases downstream of a pipeline breaker.
    pub breaker_delay_fraction: f64,
    /// Coefficient of variation of the I/O-interference noise applied to
    /// pipelined groups whose disk is contended (the paper's "high variance
    /// ... explained by the I/O interference in Flink's execution due to
    /// its pipeline nature", §VI-C).
    pub interference_cv: f64,
    /// CV of the baseline run-to-run noise applied to every phase.
    pub base_noise_cv: f64,

    // ---- data plane --------------------------------------------------------
    /// Spark map-output compression ratio (bytes on wire / bytes produced).
    pub compression_ratio: f64,
    /// CPU nanoseconds per byte compressed.
    pub compression_cpu_ns_per_byte: f64,
    /// HDFS output replication factor (network copies of sink bytes).
    pub hdfs_replication_out: f64,
    /// Fraction of HDFS input read from a remote node (non-local tasks).
    pub hdfs_remote_read_fraction: f64,
    /// Framework CPU nanoseconds per record crossing a shuffle boundary
    /// (serialization framing, buffer management), before serializer
    /// multipliers.
    pub shuffle_cpu_ns_per_record: f64,
    /// Framework CPU nanoseconds per record entering an aggregation
    /// (combine/reduce bookkeeping: hashing or serialized-form compares);
    /// multiplied by the serializer CPU factor — the §VI-A gap between
    /// Flink's type-oriented serialization and Spark's Java serializer.
    pub agg_cpu_ns_per_record: f64,
    /// Effective HDFS sequential-read efficiency vs raw disk bandwidth
    /// (checksums, protocol, short reads).
    pub hdfs_read_efficiency: f64,
    /// Disk bandwidth efficiency when reads and writes interleave on the
    /// single spindle (seek overhead); 1.0 = no penalty. Applied to staged
    /// execution, where only the streams of one stage interleave.
    pub mixed_io_efficiency: f64,
    /// Interleaved-I/O efficiency for *pipelined* execution, where every
    /// stream of the whole job shares the spindle simultaneously — lower
    /// than the staged value (the §VI-C "I/O interference in Flink's
    /// execution due to its pipeline nature").
    pub pipelined_io_efficiency: f64,
    /// Extra CPU factor of Flink's sort-based combine relative to plain
    /// hashing (serialized-form comparisons, run merging).
    pub flink_sort_agg_factor: f64,

    // ---- memory ------------------------------------------------------------
    /// Spark's heap expansion: JVM object bytes per raw data byte ("Java
    /// objects increase the space overhead", §VIII).
    pub java_object_overhead: f64,
    /// Fraction of executor heap usable for execution working sets.
    pub spark_exec_heap_share: f64,
    /// Demand multiplier of the *first* unrolled iteration: the lazily
    /// persisted input RDD materialises during round one (Fig 10's 200 s
    /// first wave, Fig 16's 33 s first iteration).
    pub spark_first_iteration_factor: f64,
    /// Spill multiplier: bytes written+read per byte past the memory
    /// budget.
    pub spill_round_trip: f64,

    // ---- graph workload memory model (Table VII) ---------------------------
    /// Flink: bytes per vertex held in the CoGroup solution set.
    pub flink_vertex_entry_bytes: f64,
    /// Flink: bytes per edge resident while building/joining the graph.
    pub flink_edge_build_bytes: f64,
    /// Flink: fixed managed-memory demand per active task slot, GiB
    /// (sort buffers + network buffer backing).
    pub flink_task_buffer_gb: f64,
    /// Spark GraphX: per-edge heap bytes of the Page Rank iteration
    /// working set (triplets + double-buffered ranks).
    pub spark_pr_edge_bytes: f64,
    /// Spark GraphX: per-edge heap bytes of the Connected Components
    /// iteration working set (labels only).
    pub spark_cc_edge_bytes: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Self {
            task_dispatch_ms: 1.5,
            dispatch_parallelism: 8.0,
            stage_overhead_s: 0.25,
            spark_action_latency_s: 1.2,
            shuffle_file_seek_us: 3.0,
            flink_deploy_s: 1.5,
            flink_sync_per_round_s: 0.8,
            pipeline_fill_fraction: 0.015,
            breaker_delay_fraction: 0.20,
            interference_cv: 0.06,
            base_noise_cv: 0.015,
            compression_ratio: 0.45,
            compression_cpu_ns_per_byte: 2.2,
            hdfs_replication_out: 1.0,
            hdfs_remote_read_fraction: 0.10,
            shuffle_cpu_ns_per_record: 120.0,
            agg_cpu_ns_per_record: 150.0,
            hdfs_read_efficiency: 0.65,
            mixed_io_efficiency: 0.45,
            pipelined_io_efficiency: 0.40,
            flink_sort_agg_factor: 1.25,
            java_object_overhead: 1.4,
            spark_exec_heap_share: 0.60,
            spark_first_iteration_factor: 2.0,
            spill_round_trip: 2.0,
            flink_vertex_entry_bytes: 64.0,
            flink_edge_build_bytes: 9.6,
            flink_task_buffer_gb: 0.40,
            spark_pr_edge_bytes: 30.0,
            spark_cc_edge_bytes: 14.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Calibration::default();
        assert!(c.task_dispatch_ms > 0.0);
        assert!(c.compression_ratio > 0.0 && c.compression_ratio < 1.0);
        assert!(c.java_object_overhead > 1.0);
        assert!(c.pipeline_fill_fraction < c.breaker_delay_fraction);
        assert!(c.spark_pr_edge_bytes > c.spark_cc_edge_bytes);
    }

    #[test]
    fn serializes_roundtrip() {
        let c = Calibration::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: Calibration = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
