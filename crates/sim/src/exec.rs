//! The simulation executor: phase groups → end-to-end time, operator spans
//! and resource telemetry.
//!
//! Staged groups serialize their phases (barriers); overlapped groups share
//! the cluster concurrently, so their duration is the bottleneck of the
//! *summed* demands — the quantitative core of the paper's observation that
//! pipelining "enables more efficient resource usage and drastically
//! reduces the execution time" (§VI-C).

use flowmark_core::prelude::*;

use crate::calibration::Calibration;
use crate::cluster::Cluster;
use crate::demand::{ExecMode, PhaseDemand, PhaseGroup};
use crate::noise::noise_factor;

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// End-to-end execution time, seconds.
    pub seconds: f64,
    /// Operator/chain spans (the upper panel of the paper's figures).
    pub trace: PlanTrace,
    /// Resource telemetry (the lower panels).
    pub telemetry: ClusterTelemetry,
}

/// A phase placed on the timeline.
struct Placed<'a> {
    phase: &'a PhaseDemand,
    start: f64,
    end: f64,
}

/// Executes phase groups in order; `seed` selects the trial's noise draw.
pub fn execute(
    cluster: &Cluster,
    cal: &Calibration,
    groups: &[PhaseGroup],
    seed: u64,
) -> SimResult {
    let mut placed: Vec<Placed<'_>> = Vec::new();
    let mut clock = 0.0f64;
    let mut stream = 0u64;

    for group in groups {
        match group.mode {
            ExecMode::Sequential => {
                for phase in &group.phases {
                    stream += 1;
                    let dispatch =
                        phase.tasks as f64 * cal.task_dispatch_ms / 1000.0 / cal.dispatch_parallelism;
                    // Staged execution overlaps a task's CPU with its I/O
                    // only as well as its oversubscription allows: with
                    // `tpc` tasks per core, the non-bottleneck resource
                    // times are hidden by a factor 1/(1+tpc) (§VI-A's
                    // parallelism effect).
                    let (cpu, disk, net) = phase.resource_times(cluster, cal.mixed_io_efficiency);
                    let mut times = [cpu, disk, net];
                    times.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
                    let tpc = (phase.tasks as f64 / cluster.total_cores() as f64).max(0.5);
                    let work = (times[0] + (times[1] + times[2]) / (1.0 + 2.0 * tpc))
                        * noise_factor(seed, stream, cal.base_noise_cv);
                    let dur =
                        work + dispatch + cal.stage_overhead_s + phase.driver_latency_seconds;
                    placed.push(Placed {
                        phase,
                        start: clock,
                        end: clock + dur,
                    });
                    clock += dur;
                }
                clock += group.latency_seconds;
            }
            ExecMode::Overlapped => {
                stream += 1;
                let mut total = PhaseDemand::new("total");
                for p in &group.phases {
                    total.absorb(p);
                }
                let t_work = total.solo_seconds_mixed(cluster, cal.pipelined_io_efficiency);
                // Disk contention (reads and writes interleaving on one
                // spindle) is what makes pipelined runs noisy (§VI-C).
                let contended = total.disk_read_mib > 0.0
                    && total.disk_write_mib > 0.0
                    && t_work > 0.0;
                let cv = if contended {
                    cal.interference_cv
                } else {
                    cal.base_noise_cv
                };
                let t = t_work * noise_factor(seed, stream, cv) + group.latency_seconds;
                let max_solo = group
                    .phases
                    .iter()
                    .map(|p| p.solo_seconds_mixed(cluster, cal.pipelined_io_efficiency))
                    .fold(0.0_f64, f64::max)
                    .max(1e-12);
                let contention = (t / max_solo).max(1.0);
                // Place spans: offset by depth/breaker, length by demand.
                let mut spans: Vec<(f64, f64)> = group
                    .phases
                    .iter()
                    .map(|p| {
                        let offset = (p.depth as f64 * cal.pipeline_fill_fraction
                            + if p.after_breaker {
                                cal.breaker_delay_fraction
                            } else {
                                0.0
                            })
                            * t;
                        let dur = (p.solo_seconds_mixed(cluster, cal.pipelined_io_efficiency)
                            * contention)
                            .max(t * 0.002);
                        (offset, offset + dur)
                    })
                    .collect();
                // Normalise so the latest span ends exactly at t.
                let max_end = spans.iter().map(|s| s.1).fold(0.0_f64, f64::max).max(1e-12);
                let scale = t / max_end;
                for s in &mut spans {
                    s.0 *= scale;
                    s.1 *= scale;
                }
                // Phases fed through a pipeline breaker, and the deepest
                // phases of the pipeline, keep receiving data until the
                // whole group drains (backpressure): they end at t.
                let max_depth = group.phases.iter().map(|p| p.depth).max().unwrap_or(0);
                for (p, s) in group.phases.iter().zip(spans.iter_mut()) {
                    if p.after_breaker || (p.depth == max_depth && max_depth > 0) {
                        s.1 = t;
                    }
                }
                for (p, (s0, s1)) in group.phases.iter().zip(spans) {
                    placed.push(Placed {
                        phase: p,
                        start: clock + s0,
                        end: clock + s1,
                    });
                }
                clock += t;
            }
        }
    }

    let total_seconds = clock;
    // Telemetry sampling period: fine enough for the correlation analysis,
    // bounded so long runs stay small.
    let period = (total_seconds / 400.0).clamp(0.25, 10.0);
    let mut telemetry = ClusterTelemetry::new(cluster.nodes as usize, period);
    let mut trace = PlanTrace::new();
    for p in &placed {
        trace.record(p.phase.label.clone(), p.start, p.end);
        deposit_phase(&mut telemetry, cluster, p);
    }
    SimResult {
        seconds: total_seconds,
        trace,
        telemetry,
    }
}

/// Spreads a placed phase's demands into the telemetry. Phases with
/// `combine_cycles > 0` alternate CPU-heavy and disk-heavy sub-intervals,
/// producing the anti-cyclic pattern of §VI-A.
fn deposit_phase(telemetry: &mut ClusterTelemetry, cluster: &Cluster, p: &Placed<'_>) {
    let dur = p.end - p.start;
    if dur <= 0.0 {
        return;
    }
    let nodes = cluster.nodes as f64;
    let d = p.phase;

    // Per-node shares.
    let cpu_pct_seconds = d.cpu_core_seconds / cluster.cpu_capacity() * 100.0;
    let read_node = d.disk_read_mib / nodes;
    let write_node = d.disk_write_mib / nodes;
    let net_node = d.net_mib / nodes;
    let busy_seconds =
        read_node / cluster.disk_read_mibs + write_node / cluster.disk_write_mibs;
    let util_pct_seconds = (busy_seconds * 100.0).min(dur * 100.0);
    let mem_pct_seconds = (d.memory_gb / nodes / cluster.ram_gb * 100.0) * dur;

    let deposit_all = |telemetry: &mut ClusterTelemetry,
                       kind: ResourceKind,
                       start: f64,
                       end: f64,
                       amount: f64| {
        if amount <= 0.0 || end <= start {
            return;
        }
        for i in 0..cluster.nodes as usize {
            telemetry.node_mut(i).deposit(kind, start, end, amount);
        }
    };

    if d.combine_cycles > 1 {
        // Alternate sort (CPU) and drain (disk) bursts. The duty cycle
        // follows the phase's actual CPU/disk time split so neither burst
        // over-commits its resource.
        let cycles = d.combine_cycles as usize;
        let cpu_time = cpu_pct_seconds / 100.0;
        let disk_time = busy_seconds.max(1e-9);
        let frac_cpu = (cpu_time / (cpu_time + disk_time)).clamp(0.25, 0.85);
        let cycle_len = dur / cycles as f64;
        let cpu_len = cycle_len * frac_cpu;
        let disk_len = cycle_len - cpu_len;
        for c in 0..cycles {
            let cpu_start = p.start + c as f64 * cycle_len;
            let disk_start = cpu_start + cpu_len;
            deposit_all(
                telemetry,
                ResourceKind::Cpu,
                cpu_start,
                cpu_start + cpu_len,
                cpu_pct_seconds / cycles as f64,
            );
            deposit_all(
                telemetry,
                ResourceKind::DiskIo,
                disk_start,
                disk_start + disk_len,
                (read_node + write_node) / cycles as f64,
            );
            deposit_all(
                telemetry,
                ResourceKind::DiskUtil,
                disk_start,
                disk_start + disk_len,
                util_pct_seconds / cycles as f64,
            );
        }
    } else {
        deposit_all(telemetry, ResourceKind::Cpu, p.start, p.end, cpu_pct_seconds);
        deposit_all(
            telemetry,
            ResourceKind::DiskIo,
            p.start,
            p.end,
            read_node + write_node,
        );
        deposit_all(
            telemetry,
            ResourceKind::DiskUtil,
            p.start,
            p.end,
            util_pct_seconds,
        );
    }
    deposit_all(telemetry, ResourceKind::Network, p.start, p.end, net_node);
    deposit_all(telemetry, ResourceKind::Memory, p.start, p.end, mem_pct_seconds);
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_core::correlate::{correlate, CorrelationConfig};

    fn cluster() -> Cluster {
        Cluster::grid5000(4)
    }

    fn cal() -> Calibration {
        Calibration::default()
    }

    fn cpu_phase(label: &str, core_seconds: f64) -> PhaseDemand {
        PhaseDemand {
            cpu_core_seconds: core_seconds,
            ..PhaseDemand::new(label)
        }
    }

    #[test]
    fn sequential_phases_are_disjoint_and_additive() {
        let groups = vec![PhaseGroup::sequential(vec![
            cpu_phase("a", 6400.0), // 100 s on 64 cores
            cpu_phase("b", 6400.0),
        ])];
        let r = execute(&cluster(), &cal(), &groups, 1);
        assert!(r.seconds > 195.0 && r.seconds < 215.0, "{}", r.seconds);
        assert!(r.trace.pipelining_degree() < 0.05);
        let a = r.trace.span("a").unwrap();
        let b = r.trace.span("b").unwrap();
        assert!(a.end <= b.start + 1e-9);
    }

    #[test]
    fn overlapped_phases_share_the_cluster() {
        // Two phases on *different* resources overlap almost fully: one
        // CPU-bound (100 s solo), one network-bound (100 s solo).
        let net = PhaseDemand {
            net_mib: 1192.0 * 4.0 * 100.0,
            ..PhaseDemand::new("net")
        };
        let groups = vec![PhaseGroup::overlapped(vec![cpu_phase("cpu", 6400.0), net])];
        let r = execute(&cluster(), &cal(), &groups, 1);
        // Pipelined: ~100 s, not ~200 s.
        assert!(r.seconds < 120.0, "{}", r.seconds);
        assert!(r.trace.pipelining_degree() > 0.3, "{}", r.trace.pipelining_degree());
    }

    #[test]
    fn overlapped_same_resource_serialises_demand() {
        // Two CPU-bound phases of 100 s each still need ~200 s of CPU.
        let groups = vec![PhaseGroup::overlapped(vec![
            cpu_phase("a", 6400.0),
            cpu_phase("b", 6400.0),
        ])];
        let r = execute(&cluster(), &cal(), &groups, 1);
        assert!(r.seconds > 180.0 && r.seconds < 220.0, "{}", r.seconds);
    }

    #[test]
    fn dispatch_overhead_scales_with_tasks() {
        let mut few = cpu_phase("few", 640.0);
        few.tasks = 64;
        let mut many = cpu_phase("many", 640.0);
        many.tasks = 6400;
        let t_few = execute(&cluster(), &cal(), &[PhaseGroup::sequential(vec![few])], 1).seconds;
        let t_many =
            execute(&cluster(), &cal(), &[PhaseGroup::sequential(vec![many])], 1).seconds;
        // 6336 extra tasks × 1 ms / 8 streams ≈ 0.8 s.
        let gap = t_many - t_few;
        assert!(gap > 0.5 && gap < 2.0, "{} vs {}", t_few, t_many);
    }

    #[test]
    fn noise_varies_across_seeds_but_not_within() {
        let groups = vec![PhaseGroup::overlapped(vec![PhaseDemand {
            disk_read_mib: 50_000.0,
            disk_write_mib: 50_000.0,
            ..PhaseDemand::new("io")
        }])];
        let a = execute(&cluster(), &cal(), &groups, 1).seconds;
        let a2 = execute(&cluster(), &cal(), &groups, 1).seconds;
        let b = execute(&cluster(), &cal(), &groups, 2).seconds;
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn latency_adds_to_group_time() {
        let base = vec![PhaseGroup::sequential(vec![cpu_phase("a", 640.0)])];
        let with = vec![PhaseGroup::sequential(vec![cpu_phase("a", 640.0)]).with_latency(25.0)];
        let t0 = execute(&cluster(), &cal(), &base, 1).seconds;
        let t1 = execute(&cluster(), &cal(), &with, 1).seconds;
        assert!((t1 - t0 - 25.0).abs() < 1e-6);
    }

    #[test]
    fn telemetry_preserves_io_volume() {
        let phase = PhaseDemand {
            disk_read_mib: 8_000.0,
            disk_write_mib: 4_000.0,
            ..PhaseDemand::new("io")
        };
        let r = execute(&cluster(), &cal(), &[PhaseGroup::sequential(vec![phase])], 1);
        // Mean node Disk I/O integral × nodes = total MiB moved.
        let mean_io = r.telemetry.mean_channel(ResourceKind::DiskIo);
        let total = mean_io.integral() * 4.0;
        assert!((total - 12_000.0).abs() / 12_000.0 < 0.02, "total {total}");
    }

    #[test]
    fn cpu_bound_phase_classified_by_methodology() {
        let groups = vec![PhaseGroup::sequential(vec![cpu_phase("hot", 64_000.0)])];
        let r = execute(&cluster(), &cal(), &groups, 1);
        let report = correlate(&r.trace, &r.telemetry, &CorrelationConfig::default());
        assert!(report.profile("hot").unwrap().is_bound_by(Bound::Cpu));
    }

    #[test]
    fn combine_cycles_produce_anticyclic_disk() {
        let phase = PhaseDemand {
            cpu_core_seconds: 32_000.0,
            disk_write_mib: 40_000.0,
            combine_cycles: 12,
            ..PhaseDemand::new("combine")
        };
        let r = execute(&cluster(), &cal(), &[PhaseGroup::sequential(vec![phase])], 1);
        let report = correlate(&r.trace, &r.telemetry, &CorrelationConfig::default());
        let p = report.profile("combine").unwrap();
        assert!(
            p.anticyclic_disk,
            "expected anti-cyclic pattern, r = {:?}",
            p.cpu_disk_correlation
        );
    }

    #[test]
    fn breaker_phase_starts_late() {
        let src = cpu_phase("src", 6400.0);
        let mut sink = cpu_phase("sink", 6400.0);
        sink.after_breaker = true;
        sink.depth = 2;
        let r = execute(&cluster(), &cal(), &[PhaseGroup::overlapped(vec![src, sink])], 1);
        let s_src = r.trace.span("src").unwrap();
        let s_sink = r.trace.span("sink").unwrap();
        assert!(s_sink.start > s_src.start + 0.05 * r.seconds);
        // Pipelined: still overlapping.
        assert!(s_sink.start < s_src.end);
    }

    #[test]
    fn empty_groups_give_zero_time() {
        let r = execute(&cluster(), &cal(), &[], 1);
        assert_eq!(r.seconds, 0.0);
        assert!(r.trace.is_empty());
    }
}
