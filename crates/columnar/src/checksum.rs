//! Seeded checksums and deterministic corruption hooks for batch types.
//!
//! Both real frameworks checksum every shuffle block — silent corruption
//! would otherwise survive into the final answer — so the columnar data
//! plane carries a cheap seeded 64-bit checksum with every batch. [`Xxh64`]
//! is an xxhash-style one-accumulator hasher implemented locally (no
//! dependency): each 8-byte lane passes through a bijective
//! multiply-rotate round, so *any* single-bit flip inside a lane is
//! **guaranteed** (not just probabilistically) to change the digest, and
//! the final avalanche makes unrelated batches collide with probability
//! ~2⁻⁶⁴.
//!
//! [`Checksummable`] is the pairing of that digest with a *corruption*
//! hook: `corrupt` applies one deterministic, salt-addressed mutation —
//! a payload/offset bit-flip, a validity-mask flip, or a truncated row —
//! and reports which [`CorruptionKind`] it actually managed to apply
//! (falling back down the chain requested → bit-flip → truncate when a
//! shape cannot express the requested kind, e.g. a validity flip on a
//! maskless batch). The fault layer in `flowmark-engine` drives this hook
//! at seeded `(stage, partition, attempt)` points exactly like its task
//! kills.
//!
//! **A corrupted batch exists only to be detected.** Corruption may break
//! internal invariants (UTF-8 of string payloads, offset monotonicity), so
//! after calling `corrupt` the batch must never be row-accessed — verify
//! the checksum first and discard on mismatch, which is precisely what
//! both engines do.

use std::fmt;

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

/// A streaming seeded 64-bit hasher in the xxhash style: one accumulator,
/// a bijective multiply-rotate round per 8-byte lane, length folded in at
/// the end, avalanche finalisation.
#[derive(Debug, Clone)]
pub struct Xxh64 {
    acc: u64,
    total: u64,
    buf: [u8; 8],
    fill: usize,
}

impl Xxh64 {
    /// A fresh hasher; equal seeds replay equal digests.
    pub fn new(seed: u64) -> Self {
        Self {
            acc: seed.wrapping_add(P5),
            total: 0,
            buf: [0; 8],
            fill: 0,
        }
    }

    #[inline]
    fn mix(lane: u64) -> u64 {
        lane.wrapping_mul(P2).rotate_left(31).wrapping_mul(P1)
    }

    #[inline]
    fn absorb(&mut self, lane: u64) {
        self.acc ^= Self::mix(lane);
        self.acc = self.acc.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
    }

    /// Feeds raw bytes into the digest.
    pub fn write(&mut self, mut bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        if self.fill > 0 {
            let take = (8 - self.fill).min(bytes.len());
            self.buf[self.fill..self.fill + take].copy_from_slice(&bytes[..take]);
            self.fill += take;
            bytes = &bytes[take..];
            if self.fill < 8 {
                return;
            }
            self.absorb(u64::from_le_bytes(self.buf));
            self.fill = 0;
        }
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lane = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.absorb(lane);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.fill = rem.len();
    }

    /// Feeds one `u64` (little-endian).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds one `u32` (little-endian).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a slice of `u64` values, equivalent to writing each with
    /// [`Self::write_u64`] but absorbing whole lanes directly when the
    /// stream is lane-aligned — the hot path for offset arrays and value
    /// columns, where byte-at-a-time buffering would dominate the digest
    /// cost.
    pub fn write_u64s(&mut self, vs: &[u64]) {
        if self.fill != 0 {
            for &v in vs {
                self.write_u64(v);
            }
            return;
        }
        self.total = self.total.wrapping_add(8 * vs.len() as u64);
        for &v in vs {
            // from_le_bytes(to_le_bytes(v)) == v, so the lane is the value.
            self.absorb(v);
        }
    }

    /// Feeds a slice of `u32` values, equivalent to writing each with
    /// [`Self::write_u32`] but packing pairs into whole lanes when the
    /// stream is lane-aligned.
    pub fn write_u32s(&mut self, vs: &[u32]) {
        if self.fill != 0 || vs.len() < 2 {
            for &v in vs {
                self.write_u32(v);
            }
            return;
        }
        let pairs = vs.len() / 2;
        self.total = self.total.wrapping_add(8 * pairs as u64);
        for p in vs.chunks_exact(2) {
            self.absorb(u64::from(p[0]) | (u64::from(p[1]) << 32));
        }
        if vs.len() % 2 == 1 {
            self.write_u32(vs[vs.len() - 1]);
        }
    }

    /// Bytes hashed so far — lets checkpoint writers account snapshot
    /// sizes from the same pass that seals them.
    pub fn bytes_written(&self) -> u64 {
        self.total
    }

    /// Finalises the digest: pads the tail lane, folds in the total length
    /// (so `"ab"` and `"ab\0"` differ), then avalanches.
    pub fn finish(mut self) -> u64 {
        if self.fill > 0 {
            let mut tail = [0u8; 8];
            tail[..self.fill].copy_from_slice(&self.buf[..self.fill]);
            self.absorb(u64::from_le_bytes(tail));
        }
        let mut h = self.acc.wrapping_add(self.total);
        h ^= h >> 33;
        h = h.wrapping_mul(P2);
        h ^= h >> 29;
        h = h.wrapping_mul(P3);
        h ^= h >> 32;
        h
    }
}

/// The corruption shapes the fault layer can inject into a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Flip one bit of payload or offset storage.
    BitFlip,
    /// Flip one bit of a validity mask.
    ValidityFlip,
    /// Drop the trailing row (a short write / truncated block).
    Truncate,
}

impl fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionKind::BitFlip => write!(f, "bit-flip"),
            CorruptionKind::ValidityFlip => write!(f, "validity-flip"),
            CorruptionKind::Truncate => write!(f, "truncate"),
        }
    }
}

/// A value that can be checksummed at shuffle-write / verified at read,
/// and deterministically corrupted by the fault layer.
pub trait Checksummable {
    /// Feeds every detection-relevant byte of `self` into the hasher —
    /// payload, structural offsets, row counts and validity words alike.
    fn write_checksum(&self, h: &mut Xxh64);

    /// Applies one deterministic mutation addressed by `salt`. Returns the
    /// kind actually applied (which may differ from the request when the
    /// shape cannot express it), or `None` when the value has nothing to
    /// corrupt (e.g. it is empty). After a `Some` return the value must
    /// only ever be checksummed or dropped — never row-accessed.
    fn corrupt(&mut self, kind: CorruptionKind, salt: u64) -> Option<CorruptionKind>;

    /// The seeded digest of `self`.
    fn checksum(&self, seed: u64) -> u64 {
        let mut h = Xxh64::new(seed);
        self.write_checksum(&mut h);
        h.finish()
    }
}

impl Checksummable for u64 {
    fn write_checksum(&self, h: &mut Xxh64) {
        h.write_u64(*self);
    }

    fn corrupt(&mut self, _kind: CorruptionKind, salt: u64) -> Option<CorruptionKind> {
        *self ^= 1u64 << (salt % 64);
        Some(CorruptionKind::BitFlip)
    }
}

impl<T: Checksummable> Checksummable for Vec<T> {
    fn write_checksum(&self, h: &mut Xxh64) {
        h.write_u64(self.len() as u64);
        for e in self {
            e.write_checksum(h);
        }
    }

    fn corrupt(&mut self, kind: CorruptionKind, salt: u64) -> Option<CorruptionKind> {
        if self.is_empty() {
            return None;
        }
        if kind == CorruptionKind::Truncate {
            self.pop();
            return Some(CorruptionKind::Truncate);
        }
        let i = (salt as usize) % self.len();
        match self[i].corrupt(kind, salt.rotate_right(7)) {
            Some(applied) => Some(applied),
            None => {
                self.pop();
                Some(CorruptionKind::Truncate)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(seed: u64, bytes: &[u8]) -> u64 {
        let mut h = Xxh64::new(seed);
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn bulk_lane_writes_match_scalar_writes() {
        let us: Vec<u64> = (0..37u64).map(|i| i.wrapping_mul(P1)).collect();
        let os: Vec<u32> = (0..41u32).map(|i| i.wrapping_mul(0x9E37)).collect();
        for misalign in [0usize, 3] {
            let prefix = vec![0xABu8; misalign];
            let mut bulk = Xxh64::new(9);
            bulk.write(&prefix);
            bulk.write_u64s(&us);
            bulk.write_u32s(&os);
            let mut scalar = Xxh64::new(9);
            scalar.write(&prefix);
            for &v in &us {
                scalar.write_u64(v);
            }
            for &v in &os {
                scalar.write_u32(v);
            }
            assert_eq!(bulk.finish(), scalar.finish(), "misalign {misalign}");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let data = b"the quick brown fox jumps over the lazy dog";
        assert_eq!(digest(7, data), digest(7, data));
        assert_ne!(digest(7, data), digest(8, data));
        assert_ne!(digest(7, data), digest(7, b"the quick brown fox"));
    }

    #[test]
    fn split_writes_match_one_write() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = digest(3, &data);
        for split in [1usize, 7, 8, 9, 63, 500] {
            let mut h = Xxh64::new(3);
            for chunk in data.chunks(split) {
                h.write(chunk);
            }
            assert_eq!(h.finish(), whole, "split at {split} diverged");
        }
    }

    #[test]
    fn trailing_zero_differs_from_absence() {
        assert_ne!(digest(1, b"ab"), digest(1, b"ab\0"));
        assert_ne!(digest(1, b""), digest(1, b"\0"));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let data: Vec<u8> = (0..64u8).collect();
        let clean = digest(11, &data);
        for bit in 0..data.len() * 8 {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(digest(11, &flipped), clean, "flip of bit {bit} undetected");
        }
    }

    #[test]
    fn vec_checksum_and_corruption() {
        let v: Vec<u64> = (0..32).collect();
        let clean = v.checksum(5);
        assert_eq!(v.checksum(5), clean);

        let mut flipped = v.clone();
        assert_eq!(
            flipped.corrupt(CorruptionKind::BitFlip, 123),
            Some(CorruptionKind::BitFlip)
        );
        assert_ne!(flipped.checksum(5), clean);

        let mut short = v.clone();
        assert_eq!(
            short.corrupt(CorruptionKind::Truncate, 0),
            Some(CorruptionKind::Truncate)
        );
        assert_eq!(short.len(), 31);
        assert_ne!(short.checksum(5), clean);

        let mut empty: Vec<u64> = Vec::new();
        assert_eq!(empty.corrupt(CorruptionKind::BitFlip, 9), None);
    }
}
