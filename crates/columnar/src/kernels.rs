//! Vectorized kernels over column batches.
//!
//! Every kernel follows the same contract:
//!
//! - input rows are the batch rows, narrowed by an optional [`Validity`]
//!   mask and an optional incoming [`SelVec`] (chained selections compose —
//!   the output selection indexes the *original* batch rows);
//! - filters emit a [`SelVec`] and never copy payload bytes;
//! - hash-aggregation probes a **caller-supplied** map batch-at-a-time, so
//!   the engines pass their own pre-sized FxHash maps and this crate stays
//!   dependency-free.

use std::collections::HashMap;
use std::hash::BuildHasher;

use crate::batch::{ColumnBatch, F64Batch, SelVec, StrColumn, Validity};

// ---------------------------------------------------------------------------
// Byte search primitives
// ---------------------------------------------------------------------------

const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

/// First position of `byte` in `hay`, scanning 8 bytes per step (SWAR:
/// a word has a zero byte iff `(w - LO) & !w & HI != 0` after xoring the
/// broadcast needle in).
#[inline]
fn find_byte(hay: &[u8], byte: u8) -> Option<usize> {
    let broadcast = SWAR_LO.wrapping_mul(byte as u64);
    let mut chunks = hay.chunks_exact(8);
    let mut base = 0usize;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]) ^ broadcast;
        let hit = w.wrapping_sub(SWAR_LO) & !w & SWAR_HI;
        if hit != 0 {
            return Some(base + (hit.trailing_zeros() / 8) as usize);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == byte)
        .map(|p| base + p)
}

/// Substring test on raw bytes: first-byte SWAR scan, then a window
/// compare per candidate. The batch equivalent of `str::contains`, minus
/// any per-row `String`.
#[inline]
pub fn contains_bytes(hay: &[u8], needle: &[u8]) -> bool {
    let Some(&first) = needle.first() else {
        return true;
    };
    if hay.len() < needle.len() {
        return false;
    }
    let mut from = 0usize;
    let last_start = hay.len() - needle.len();
    while from <= last_start {
        match find_byte(&hay[from..=last_start], first) {
            Some(off) => {
                let start = from + off;
                if &hay[start..start + needle.len()] == needle {
                    return true;
                }
                from = start + 1;
            }
            None => return false,
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Candidate iteration (validity × chained selection)
// ---------------------------------------------------------------------------

#[inline]
fn for_each_candidate(
    rows: usize,
    validity: Option<&Validity>,
    sel: Option<&SelVec>,
    mut f: impl FnMut(usize),
) {
    match sel {
        Some(sel) => {
            for i in sel.iter() {
                debug_assert!(i < rows);
                if validity.is_none_or(|v| v.is_valid(i)) {
                    f(i);
                }
            }
        }
        None => {
            for i in 0..rows {
                if validity.is_none_or(|v| v.is_valid(i)) {
                    f(i);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Filter kernels
// ---------------------------------------------------------------------------

/// Vectorized substring filter over a string column: rows containing
/// `needle` → selection vector. No payload byte is copied.
///
/// The dense case (no mask, no incoming selection) scans the column's
/// *flat* buffer once — one sequential pass over contiguous memory,
/// whatever the row count — and maps each verified occurrence back to its
/// row through the offset array. Masked or pre-selected batches fall back
/// to a per-row window scan over the candidate rows only.
pub fn filter_str_contains(
    col: &StrColumn,
    needle: &[u8],
    validity: Option<&Validity>,
    sel: Option<&SelVec>,
) -> SelVec {
    let rows = col.len();
    if needle.is_empty() {
        // Empty needle matches every candidate row.
        let mut out = SelVec::with_capacity(rows);
        for_each_candidate(rows, validity, sel, |i| out.push(i as u32));
        return out;
    }
    if validity.is_none() && sel.is_none() {
        return filter_contains_flat(col, needle);
    }
    let mut out = SelVec::new();
    for_each_candidate(rows, validity, sel, |i| {
        if contains_bytes(col.get_bytes(i), needle) {
            out.push(i as u32);
        }
    });
    out
}

/// Dense flat-buffer scan: find candidate first bytes across the whole
/// payload, verify the window, check it does not straddle a row boundary,
/// then skip to the matched row's end (one hit per row).
fn filter_contains_flat(col: &StrColumn, needle: &[u8]) -> SelVec {
    let data = col.data();
    let offsets = col.offsets();
    let first = needle[0];
    let mut out = SelVec::new();
    if data.len() < needle.len() {
        return out;
    }
    let last_start = data.len() - needle.len();
    let mut pos = 0usize;
    let mut row = 0usize;
    while pos <= last_start {
        let Some(off) = find_byte(&data[pos..=last_start], first) else {
            break;
        };
        let start = pos + off;
        if &data[start..start + needle.len()] != needle {
            pos = start + 1;
            continue;
        }
        // Map the occurrence to its row (offsets ascend with `start`).
        while offsets[row + 1] as usize <= start {
            row += 1;
        }
        let row_end = offsets[row + 1] as usize;
        if start + needle.len() <= row_end {
            out.push(row as u32);
            // One hit per row is enough — resume at the row boundary.
            pos = row_end;
        } else {
            // The window straddles a row boundary: not a real match.
            pos = start + 1;
        }
    }
    out
}

/// Vectorized predicate filter over a `u64` column.
pub fn filter_u64(
    col: &[u64],
    validity: Option<&Validity>,
    sel: Option<&SelVec>,
    mut pred: impl FnMut(u64) -> bool,
) -> SelVec {
    let mut out = SelVec::new();
    for_each_candidate(col.len(), validity, sel, |i| {
        if pred(col[i]) {
            out.push(i as u32);
        }
    });
    out
}

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

/// Projection: keeps the named columns, materialising only the selected
/// (and valid) rows. The one place a filter pipeline actually copies.
pub fn project(batch: &ColumnBatch, cols: &[usize], sel: Option<&SelVec>) -> ColumnBatch {
    let full: SelVec;
    let effective: &SelVec = match sel {
        Some(s) if batch.validity().is_none() => s,
        _ => {
            // Materialise the candidate set (validity ∩ selection).
            let mut v = SelVec::new();
            for_each_candidate(batch.rows(), batch.validity(), sel, |i| v.push(i as u32));
            full = v;
            &full
        }
    };
    ColumnBatch::new(
        cols.iter()
            .map(|&c| batch.column(c).gather(effective))
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Hash aggregation
// ---------------------------------------------------------------------------

/// Batch-at-a-time hash aggregation over string keys: probes the
/// caller-supplied map (the engines pass their FxHash maps) row by row,
/// allocating a key `String` only on first sight — repeat keys combine
/// through a borrowed `&str` probe.
pub fn hash_agg_str<S: BuildHasher>(
    keys: &StrColumn,
    vals: &[u64],
    validity: Option<&Validity>,
    sel: Option<&SelVec>,
    agg: &mut HashMap<String, u64, S>,
    combine: impl Fn(&mut u64, u64),
) {
    assert_eq!(keys.len(), vals.len(), "key/value column length mismatch");
    for_each_candidate(keys.len(), validity, sel, |i| {
        let k = keys.get(i);
        match agg.get_mut(k) {
            Some(acc) => combine(acc, vals[i]),
            None => {
                agg.insert(k.to_owned(), vals[i]);
            }
        }
    });
}

/// Batch-at-a-time hash aggregation over fixed-width keys.
pub fn hash_agg_u64<S: BuildHasher>(
    keys: &[u64],
    vals: &[u64],
    validity: Option<&Validity>,
    sel: Option<&SelVec>,
    agg: &mut HashMap<u64, u64, S>,
    combine: impl Fn(&mut u64, u64),
) {
    assert_eq!(keys.len(), vals.len(), "key/value column length mismatch");
    for_each_candidate(keys.len(), validity, sel, |i| {
        match agg.entry(keys[i]) {
            std::collections::hash_map::Entry::Occupied(mut e) => combine(e.get_mut(), vals[i]),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(vals[i]);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Numeric point kernels (dim-major F64 batches)
// ---------------------------------------------------------------------------

/// Index of the squared-Euclidean-nearest center for the point at `row`.
/// Ties break to the lowest center index, matching the scalar reference.
#[inline]
fn nearest_row(points: &F64Batch, centers: &F64Batch, row: usize) -> u32 {
    let k = centers.rows();
    let mut best = 0u32;
    let mut best_d = f64::INFINITY;
    if points.dims() == 2 {
        // Unrolled 2-d hot path: both coordinate streams and all center
        // coordinates stay in registers / L1 across the k-loop.
        let (x, y) = (points.dim(0)[row], points.dim(1)[row]);
        let (cx, cy) = (centers.dim(0), centers.dim(1));
        for c in 0..k {
            let dx = x - cx[c];
            let dy = y - cy[c];
            let d = dx * dx + dy * dy;
            if d < best_d {
                best_d = d;
                best = c as u32;
            }
        }
    } else {
        for c in 0..k {
            let mut d = 0.0;
            for dim in 0..points.dims() {
                let delta = points.dim(dim)[row] - centers.dim(dim)[c];
                d += delta * delta;
            }
            if d < best_d {
                best_d = d;
                best = c as u32;
            }
        }
    }
    best
}

/// Scalar fallback for [`assign_columns_2d`]: row-major walk with the
/// running minimum in registers. Strict `<` keeps ties on the lowest
/// center index, matching the record path's `nearest`.
fn assign_columns_2d_scalar(
    xs: &[f64],
    ys: &[f64],
    cx: &[f64],
    cy: &[f64],
    best_c: &mut [f64],
) {
    let k = cx.len();
    for ((bc, &x), &y) in best_c.iter_mut().zip(xs).zip(ys) {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..k {
            let dx = x - cx[c];
            let dy = y - cy[c];
            let d = dx * dx + dy * dy;
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        *bc = best as f64;
    }
}

/// AVX2+FMA body for [`assign_columns_2d`]: four rows per iteration, the
/// running minimum and its center index held in vector registers (the
/// index rides in an `f64` lane so the whole body is one vector width),
/// one pass over the coordinate columns. `_CMP_LT_OQ` is strict, so ties
/// stay on the lowest center index — identical to the scalar walk.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA, and that `xs`,
/// `ys` and `best_c` all have equal lengths.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn assign_columns_2d_avx2(
    xs: &[f64],
    ys: &[f64],
    cx: &[f64],
    cy: &[f64],
    best_c: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let k = cx.len();
    // Center broadcasts hoisted out of the row loop: three fewer
    // `set1` per center per row-group.
    let cxv: Vec<__m256d> = cx.iter().map(|&v| _mm256_set1_pd(v)).collect();
    let cyv: Vec<__m256d> = cy.iter().map(|&v| _mm256_set1_pd(v)).collect();
    let cv: Vec<__m256d> = (0..k).map(|c| _mm256_set1_pd(c as f64)).collect();
    let mut i = 0;
    // Two independent 4-row groups per iteration: the running-minimum
    // blends form a loop-carried dependency chain per group, so a second
    // group in flight hides the blend latency.
    while i + 8 <= n {
        let x0 = _mm256_loadu_pd(xs.as_ptr().add(i));
        let y0 = _mm256_loadu_pd(ys.as_ptr().add(i));
        let x1 = _mm256_loadu_pd(xs.as_ptr().add(i + 4));
        let y1 = _mm256_loadu_pd(ys.as_ptr().add(i + 4));
        let mut bd0 = _mm256_set1_pd(f64::INFINITY);
        let mut bc0 = _mm256_setzero_pd();
        let mut bd1 = bd0;
        let mut bc1 = bc0;
        for c in 0..k {
            let cxc = *cxv.get_unchecked(c);
            let cyc = *cyv.get_unchecked(c);
            let cc = *cv.get_unchecked(c);
            let dx0 = _mm256_sub_pd(x0, cxc);
            let dy0 = _mm256_sub_pd(y0, cyc);
            let d0 = _mm256_fmadd_pd(dx0, dx0, _mm256_mul_pd(dy0, dy0));
            let m0 = _mm256_cmp_pd::<_CMP_LT_OQ>(d0, bd0);
            bd0 = _mm256_blendv_pd(bd0, d0, m0);
            bc0 = _mm256_blendv_pd(bc0, cc, m0);
            let dx1 = _mm256_sub_pd(x1, cxc);
            let dy1 = _mm256_sub_pd(y1, cyc);
            let d1 = _mm256_fmadd_pd(dx1, dx1, _mm256_mul_pd(dy1, dy1));
            let m1 = _mm256_cmp_pd::<_CMP_LT_OQ>(d1, bd1);
            bd1 = _mm256_blendv_pd(bd1, d1, m1);
            bc1 = _mm256_blendv_pd(bc1, cc, m1);
        }
        _mm256_storeu_pd(best_c.as_mut_ptr().add(i), bc0);
        _mm256_storeu_pd(best_c.as_mut_ptr().add(i + 4), bc1);
        i += 8;
    }
    if i < n {
        assign_columns_2d_scalar(&xs[i..], &ys[i..], cx, cy, &mut best_c[i..]);
    }
}

/// 2-d nearest-center assignment over flat coordinate columns: writes the
/// winning center index (as `f64`, so SIMD lanes stay uniform) per row
/// into `best_c`. Dispatches to an AVX2+FMA kernel where the CPU has it;
/// both paths break ties to the lowest center index, matching the scalar
/// reference.
fn assign_columns_2d(xs: &[f64], ys: &[f64], cx: &[f64], cy: &[f64], best_c: &mut [f64]) {
    let n = xs.len();
    assert!(ys.len() == n && best_c.len() == n, "column length mismatch");
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        // SAFETY: features checked at runtime; lengths asserted above.
        unsafe { assign_columns_2d_avx2(xs, ys, cx, cy, best_c) };
        return;
    }
    assign_columns_2d_scalar(xs, ys, cx, cy, best_c);
}

/// Vectorized nearest-center assignment: appends one center index per batch
/// row to `out`, scanning each dimension as a flat slice.
pub fn nearest_center(points: &F64Batch, centers: &F64Batch, out: &mut Vec<u32>) {
    assert_eq!(points.dims(), centers.dims(), "dimension mismatch");
    assert!(centers.rows() > 0, "need at least one center");
    let n = points.rows();
    if points.dims() == 2 {
        let mut best_c = vec![0.0; n];
        assign_columns_2d(
            points.dim(0),
            points.dim(1),
            centers.dim(0),
            centers.dim(1),
            &mut best_c,
        );
        out.extend(best_c.iter().map(|&c| c as u32));
    } else {
        out.reserve(n);
        for i in 0..n {
            out.push(nearest_row(points, centers, i));
        }
    }
}

/// Assigns every batch row to its nearest center and folds it straight into
/// dim-major running sums — `sums[d * k + c]` accumulates dimension `d` of
/// center `c`'s members, `counts[c]` their population — without
/// materialising assignments or per-point tuples. Returns the rows folded.
pub fn assign_accumulate(
    points: &F64Batch,
    centers: &F64Batch,
    sums: &mut [f64],
    counts: &mut [u64],
) -> usize {
    assert_eq!(points.dims(), centers.dims(), "dimension mismatch");
    let k = centers.rows();
    assert!(k > 0, "need at least one center");
    assert_eq!(sums.len(), points.dims() * k, "sums must be dims x k");
    assert_eq!(counts.len(), k, "counts must have one slot per center");
    let n = points.rows();
    if points.dims() == 2 {
        let (xs, ys) = (points.dim(0), points.dim(1));
        let mut best_c = vec![0.0; n];
        assign_columns_2d(xs, ys, centers.dim(0), centers.dim(1), &mut best_c);
        for i in 0..n {
            let c = best_c[i] as usize;
            sums[c] += xs[i];
            sums[k + c] += ys[i];
            counts[c] += 1;
        }
    } else {
        for i in 0..n {
            let c = nearest_row(points, centers, i) as usize;
            for d in 0..points.dims() {
                sums[d * k + c] += points.dim(d)[i];
            }
            counts[c] += 1;
        }
    }
    n
}

// ---------------------------------------------------------------------------
// Radix sort (u64 keys)
// ---------------------------------------------------------------------------

/// Stable LSD radix sort over a flat `u64` key column: returns the
/// permutation (as ascending-key row indices) that sorts `keys`, without
/// moving any payload. One histogram pre-pass counts all eight byte
/// positions at once; byte positions where every key agrees are skipped
/// entirely, so narrow key distributions pay only for the bytes that vary.
pub fn radix_sort_u64(keys: &[u64]) -> Vec<u32> {
    let n = keys.len();
    assert!(n <= u32::MAX as usize, "radix permutation indexes with u32");
    if n <= 1 {
        return (0..n as u32).collect();
    }
    let mut hist = vec![[0u32; 256]; 8];
    for &key in keys {
        for (b, h) in hist.iter_mut().enumerate() {
            h[((key >> (8 * b)) & 0xFF) as usize] += 1;
        }
    }
    let mut src: Vec<u32> = (0..n as u32).collect();
    let mut dst: Vec<u32> = vec![0; n];
    for (b, h) in hist.iter().enumerate() {
        // A byte position where one value covers every row permutes nothing.
        if h.iter().any(|&c| c as usize == n) {
            continue;
        }
        let mut offsets = [0u32; 256];
        let mut run = 0u32;
        for (o, &c) in offsets.iter_mut().zip(h.iter()) {
            *o = run;
            run += c;
        }
        let shift = 8 * b;
        for &i in &src {
            let byte = ((keys[i as usize] >> shift) & 0xFF) as usize;
            dst[offsets[byte] as usize] = i;
            offsets[byte] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;

    #[test]
    fn find_byte_matches_position() {
        let hay = b"abcdefghijklmnop_qrstuvwxyz";
        for (i, &b) in hay.iter().enumerate() {
            assert_eq!(find_byte(hay, b), Some(i), "byte {b}");
        }
        assert_eq!(find_byte(hay, b'0'), None);
        assert_eq!(find_byte(b"", b'a'), None);
        assert_eq!(find_byte(b"short", b't'), Some(4));
    }

    #[test]
    fn contains_bytes_matches_str_contains() {
        let cases = [
            ("hello world", "world", true),
            ("hello world", "worlds", false),
            ("", "", true),
            ("x", "", true),
            ("", "x", false),
            ("aaaab", "aab", true),
            ("abababac", "abac", true),
            ("abababab", "abac", false),
        ];
        for (hay, needle, expect) in cases {
            assert_eq!(
                contains_bytes(hay.as_bytes(), needle.as_bytes()),
                expect,
                "{hay:?} contains {needle:?}"
            );
            assert_eq!(hay.contains(needle), expect, "oracle disagrees");
        }
    }

    #[test]
    fn dense_flat_filter_matches_per_row_scan() {
        let lines: Vec<String> = (0..500)
            .map(|i| {
                if i % 7 == 0 {
                    format!("row {i} has the needle inside")
                } else {
                    format!("row {i} is plain")
                }
            })
            .collect();
        let col = StrColumn::from_lines(&lines);
        let sel = filter_str_contains(&col, b"needle", None, None);
        let expect: Vec<u32> = (0..500u32).filter(|i| i % 7 == 0).collect();
        assert_eq!(sel.indices(), expect.as_slice());
    }

    #[test]
    fn flat_filter_does_not_match_across_row_boundaries() {
        // "ab" + "cd" adjacent in the flat buffer must not match "bc".
        let col = StrColumn::from_lines(&["ab", "cd", "xbcx"]);
        let sel = filter_str_contains(&col, b"bc", None, None);
        assert_eq!(sel.indices(), &[2]);
    }

    #[test]
    fn chained_selection_composes() {
        let col = StrColumn::from_lines(&["ax", "bx", "a", "axx", "b"]);
        let first = filter_str_contains(&col, b"a", None, None);
        assert_eq!(first.indices(), &[0, 2, 3]);
        let second = filter_str_contains(&col, b"x", None, Some(&first));
        assert_eq!(second.indices(), &[0, 3]);
    }

    #[test]
    fn validity_mask_excludes_rows() {
        let col = StrColumn::from_lines(&["hit", "hit", "hit"]);
        let mut v = Validity::all_valid(3);
        v.set_invalid(1);
        let sel = filter_str_contains(&col, b"hit", Some(&v), None);
        assert_eq!(sel.indices(), &[0, 2]);
    }

    #[test]
    fn filter_u64_with_chain() {
        let col = vec![1u64, 4, 9, 16, 25, 36];
        let even = filter_u64(&col, None, None, |x| x % 2 == 0);
        assert_eq!(even.indices(), &[1, 3, 5]);
        let big = filter_u64(&col, None, Some(&even), |x| x > 10);
        assert_eq!(big.indices(), &[3, 5]);
    }

    #[test]
    fn project_gathers_selected_rows() {
        let batch = ColumnBatch::new(vec![
            Column::U64(vec![1, 2, 3, 4]),
            Column::Str(StrColumn::from_lines(&["a", "b", "c", "d"])),
        ]);
        let sel = SelVec::from_indices(vec![0, 2]);
        let out = project(&batch, &[1], Some(&sel));
        assert_eq!(out.rows(), 2);
        match out.column(0) {
            Column::Str(c) => assert_eq!(c.iter().collect::<Vec<_>>(), vec!["a", "c"]),
            other => panic!("wrong column type: {other:?}"),
        }
    }

    #[test]
    fn project_respects_validity() {
        let mut v = Validity::all_valid(3);
        v.set_invalid(0);
        let batch = ColumnBatch::new(vec![Column::U64(vec![7, 8, 9])]).with_validity(v);
        let out = project(&batch, &[0], None);
        assert_eq!(out.column(0), &Column::U64(vec![8, 9]));
    }

    #[test]
    fn hash_agg_str_combines_repeats() {
        let keys = StrColumn::from_lines(&["a", "b", "a", "a", "b"]);
        let vals = vec![1u64, 10, 2, 3, 20];
        let mut agg: HashMap<String, u64> = HashMap::new();
        hash_agg_str(&keys, &vals, None, None, &mut agg, |a, v| *a += v);
        assert_eq!(agg["a"], 6);
        assert_eq!(agg["b"], 30);
    }

    #[test]
    fn hash_agg_u64_respects_selection() {
        let keys = vec![1u64, 2, 1, 2];
        let vals = vec![10u64, 20, 30, 40];
        let sel = SelVec::from_indices(vec![0, 3]);
        let mut agg: HashMap<u64, u64> = HashMap::new();
        hash_agg_u64(&keys, &vals, None, Some(&sel), &mut agg, |a, v| *a += v);
        assert_eq!(agg[&1], 10);
        assert_eq!(agg[&2], 40);
    }

    #[test]
    fn nearest_center_breaks_ties_low_and_matches_scalar() {
        let points = F64Batch::from_dims(vec![vec![0.0, 5.0, 2.5], vec![0.0, 0.0, 0.0]]);
        // Center 0 and 1 are equidistant from x=2.5: ties go to index 0.
        let centers = F64Batch::from_dims(vec![vec![0.0, 5.0], vec![0.0, 0.0]]);
        let mut out = Vec::new();
        nearest_center(&points, &centers, &mut out);
        assert_eq!(out, vec![0, 1, 0]);
    }

    #[test]
    fn assign_accumulate_folds_sums_and_counts() {
        let points = F64Batch::from_dims(vec![vec![1.0, 2.0, 10.0], vec![1.0, 3.0, -1.0]]);
        let centers = F64Batch::from_dims(vec![vec![0.0, 9.0], vec![0.0, 0.0]]);
        let mut sums = vec![0.0; 4];
        let mut counts = vec![0u64; 2];
        let rows = assign_accumulate(&points, &centers, &mut sums, &mut counts);
        assert_eq!(rows, 3);
        assert_eq!(counts, vec![2, 1]);
        assert_eq!(sums, vec![3.0, 10.0, 4.0, -1.0]); // dim-major: xs then ys
    }

    #[test]
    fn radix_sort_matches_comparison_sort_and_is_stable() {
        let keys = vec![5u64, 1, u64::MAX, 5, 0, 1 << 40, 5];
        let perm = radix_sort_u64(&keys);
        let sorted: Vec<u64> = perm.iter().map(|&i| keys[i as usize]).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        // Stability: equal keys keep their original relative order.
        let fives: Vec<u32> = perm
            .iter()
            .copied()
            .filter(|&i| keys[i as usize] == 5)
            .collect();
        assert_eq!(fives, vec![0, 3, 6]);
        assert_eq!(radix_sort_u64(&[]), Vec::<u32>::new());
        assert_eq!(radix_sort_u64(&[7]), vec![0]);
    }
}
