//! Vectorized kernels over column batches.
//!
//! Every kernel follows the same contract:
//!
//! - input rows are the batch rows, narrowed by an optional [`Validity`]
//!   mask and an optional incoming [`SelVec`] (chained selections compose —
//!   the output selection indexes the *original* batch rows);
//! - filters emit a [`SelVec`] and never copy payload bytes;
//! - hash-aggregation probes a **caller-supplied** map batch-at-a-time, so
//!   the engines pass their own pre-sized FxHash maps and this crate stays
//!   dependency-free.

use std::collections::HashMap;
use std::hash::BuildHasher;

use crate::batch::{ColumnBatch, SelVec, StrColumn, Validity};

// ---------------------------------------------------------------------------
// Byte search primitives
// ---------------------------------------------------------------------------

const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

/// First position of `byte` in `hay`, scanning 8 bytes per step (SWAR:
/// a word has a zero byte iff `(w - LO) & !w & HI != 0` after xoring the
/// broadcast needle in).
#[inline]
fn find_byte(hay: &[u8], byte: u8) -> Option<usize> {
    let broadcast = SWAR_LO.wrapping_mul(byte as u64);
    let mut chunks = hay.chunks_exact(8);
    let mut base = 0usize;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]) ^ broadcast;
        let hit = w.wrapping_sub(SWAR_LO) & !w & SWAR_HI;
        if hit != 0 {
            return Some(base + (hit.trailing_zeros() / 8) as usize);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == byte)
        .map(|p| base + p)
}

/// Substring test on raw bytes: first-byte SWAR scan, then a window
/// compare per candidate. The batch equivalent of `str::contains`, minus
/// any per-row `String`.
#[inline]
pub fn contains_bytes(hay: &[u8], needle: &[u8]) -> bool {
    let Some(&first) = needle.first() else {
        return true;
    };
    if hay.len() < needle.len() {
        return false;
    }
    let mut from = 0usize;
    let last_start = hay.len() - needle.len();
    while from <= last_start {
        match find_byte(&hay[from..=last_start], first) {
            Some(off) => {
                let start = from + off;
                if &hay[start..start + needle.len()] == needle {
                    return true;
                }
                from = start + 1;
            }
            None => return false,
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Candidate iteration (validity × chained selection)
// ---------------------------------------------------------------------------

#[inline]
fn for_each_candidate(
    rows: usize,
    validity: Option<&Validity>,
    sel: Option<&SelVec>,
    mut f: impl FnMut(usize),
) {
    match sel {
        Some(sel) => {
            for i in sel.iter() {
                debug_assert!(i < rows);
                if validity.is_none_or(|v| v.is_valid(i)) {
                    f(i);
                }
            }
        }
        None => {
            for i in 0..rows {
                if validity.is_none_or(|v| v.is_valid(i)) {
                    f(i);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Filter kernels
// ---------------------------------------------------------------------------

/// Vectorized substring filter over a string column: rows containing
/// `needle` → selection vector. No payload byte is copied.
///
/// The dense case (no mask, no incoming selection) scans the column's
/// *flat* buffer once — one sequential pass over contiguous memory,
/// whatever the row count — and maps each verified occurrence back to its
/// row through the offset array. Masked or pre-selected batches fall back
/// to a per-row window scan over the candidate rows only.
pub fn filter_str_contains(
    col: &StrColumn,
    needle: &[u8],
    validity: Option<&Validity>,
    sel: Option<&SelVec>,
) -> SelVec {
    let rows = col.len();
    if needle.is_empty() {
        // Empty needle matches every candidate row.
        let mut out = SelVec::with_capacity(rows);
        for_each_candidate(rows, validity, sel, |i| out.push(i as u32));
        return out;
    }
    if validity.is_none() && sel.is_none() {
        return filter_contains_flat(col, needle);
    }
    let mut out = SelVec::new();
    for_each_candidate(rows, validity, sel, |i| {
        if contains_bytes(col.get_bytes(i), needle) {
            out.push(i as u32);
        }
    });
    out
}

/// Dense flat-buffer scan: find candidate first bytes across the whole
/// payload, verify the window, check it does not straddle a row boundary,
/// then skip to the matched row's end (one hit per row).
fn filter_contains_flat(col: &StrColumn, needle: &[u8]) -> SelVec {
    let data = col.data();
    let offsets = col.offsets();
    let first = needle[0];
    let mut out = SelVec::new();
    if data.len() < needle.len() {
        return out;
    }
    let last_start = data.len() - needle.len();
    let mut pos = 0usize;
    let mut row = 0usize;
    while pos <= last_start {
        let Some(off) = find_byte(&data[pos..=last_start], first) else {
            break;
        };
        let start = pos + off;
        if &data[start..start + needle.len()] != needle {
            pos = start + 1;
            continue;
        }
        // Map the occurrence to its row (offsets ascend with `start`).
        while offsets[row + 1] as usize <= start {
            row += 1;
        }
        let row_end = offsets[row + 1] as usize;
        if start + needle.len() <= row_end {
            out.push(row as u32);
            // One hit per row is enough — resume at the row boundary.
            pos = row_end;
        } else {
            // The window straddles a row boundary: not a real match.
            pos = start + 1;
        }
    }
    out
}

/// Vectorized predicate filter over a `u64` column.
pub fn filter_u64(
    col: &[u64],
    validity: Option<&Validity>,
    sel: Option<&SelVec>,
    mut pred: impl FnMut(u64) -> bool,
) -> SelVec {
    let mut out = SelVec::new();
    for_each_candidate(col.len(), validity, sel, |i| {
        if pred(col[i]) {
            out.push(i as u32);
        }
    });
    out
}

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

/// Projection: keeps the named columns, materialising only the selected
/// (and valid) rows. The one place a filter pipeline actually copies.
pub fn project(batch: &ColumnBatch, cols: &[usize], sel: Option<&SelVec>) -> ColumnBatch {
    let full: SelVec;
    let effective: &SelVec = match sel {
        Some(s) if batch.validity().is_none() => s,
        _ => {
            // Materialise the candidate set (validity ∩ selection).
            let mut v = SelVec::new();
            for_each_candidate(batch.rows(), batch.validity(), sel, |i| v.push(i as u32));
            full = v;
            &full
        }
    };
    ColumnBatch::new(
        cols.iter()
            .map(|&c| batch.column(c).gather(effective))
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Hash aggregation
// ---------------------------------------------------------------------------

/// Batch-at-a-time hash aggregation over string keys: probes the
/// caller-supplied map (the engines pass their FxHash maps) row by row,
/// allocating a key `String` only on first sight — repeat keys combine
/// through a borrowed `&str` probe.
pub fn hash_agg_str<S: BuildHasher>(
    keys: &StrColumn,
    vals: &[u64],
    validity: Option<&Validity>,
    sel: Option<&SelVec>,
    agg: &mut HashMap<String, u64, S>,
    combine: impl Fn(&mut u64, u64),
) {
    assert_eq!(keys.len(), vals.len(), "key/value column length mismatch");
    for_each_candidate(keys.len(), validity, sel, |i| {
        let k = keys.get(i);
        match agg.get_mut(k) {
            Some(acc) => combine(acc, vals[i]),
            None => {
                agg.insert(k.to_owned(), vals[i]);
            }
        }
    });
}

/// Batch-at-a-time hash aggregation over fixed-width keys.
pub fn hash_agg_u64<S: BuildHasher>(
    keys: &[u64],
    vals: &[u64],
    validity: Option<&Validity>,
    sel: Option<&SelVec>,
    agg: &mut HashMap<u64, u64, S>,
    combine: impl Fn(&mut u64, u64),
) {
    assert_eq!(keys.len(), vals.len(), "key/value column length mismatch");
    for_each_candidate(keys.len(), validity, sel, |i| {
        match agg.entry(keys[i]) {
            std::collections::hash_map::Entry::Occupied(mut e) => combine(e.get_mut(), vals[i]),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(vals[i]);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;

    #[test]
    fn find_byte_matches_position() {
        let hay = b"abcdefghijklmnop_qrstuvwxyz";
        for (i, &b) in hay.iter().enumerate() {
            assert_eq!(find_byte(hay, b), Some(i), "byte {b}");
        }
        assert_eq!(find_byte(hay, b'0'), None);
        assert_eq!(find_byte(b"", b'a'), None);
        assert_eq!(find_byte(b"short", b't'), Some(4));
    }

    #[test]
    fn contains_bytes_matches_str_contains() {
        let cases = [
            ("hello world", "world", true),
            ("hello world", "worlds", false),
            ("", "", true),
            ("x", "", true),
            ("", "x", false),
            ("aaaab", "aab", true),
            ("abababac", "abac", true),
            ("abababab", "abac", false),
        ];
        for (hay, needle, expect) in cases {
            assert_eq!(
                contains_bytes(hay.as_bytes(), needle.as_bytes()),
                expect,
                "{hay:?} contains {needle:?}"
            );
            assert_eq!(hay.contains(needle), expect, "oracle disagrees");
        }
    }

    #[test]
    fn dense_flat_filter_matches_per_row_scan() {
        let lines: Vec<String> = (0..500)
            .map(|i| {
                if i % 7 == 0 {
                    format!("row {i} has the needle inside")
                } else {
                    format!("row {i} is plain")
                }
            })
            .collect();
        let col = StrColumn::from_lines(&lines);
        let sel = filter_str_contains(&col, b"needle", None, None);
        let expect: Vec<u32> = (0..500u32).filter(|i| i % 7 == 0).collect();
        assert_eq!(sel.indices(), expect.as_slice());
    }

    #[test]
    fn flat_filter_does_not_match_across_row_boundaries() {
        // "ab" + "cd" adjacent in the flat buffer must not match "bc".
        let col = StrColumn::from_lines(&["ab", "cd", "xbcx"]);
        let sel = filter_str_contains(&col, b"bc", None, None);
        assert_eq!(sel.indices(), &[2]);
    }

    #[test]
    fn chained_selection_composes() {
        let col = StrColumn::from_lines(&["ax", "bx", "a", "axx", "b"]);
        let first = filter_str_contains(&col, b"a", None, None);
        assert_eq!(first.indices(), &[0, 2, 3]);
        let second = filter_str_contains(&col, b"x", None, Some(&first));
        assert_eq!(second.indices(), &[0, 3]);
    }

    #[test]
    fn validity_mask_excludes_rows() {
        let col = StrColumn::from_lines(&["hit", "hit", "hit"]);
        let mut v = Validity::all_valid(3);
        v.set_invalid(1);
        let sel = filter_str_contains(&col, b"hit", Some(&v), None);
        assert_eq!(sel.indices(), &[0, 2]);
    }

    #[test]
    fn filter_u64_with_chain() {
        let col = vec![1u64, 4, 9, 16, 25, 36];
        let even = filter_u64(&col, None, None, |x| x % 2 == 0);
        assert_eq!(even.indices(), &[1, 3, 5]);
        let big = filter_u64(&col, None, Some(&even), |x| x > 10);
        assert_eq!(big.indices(), &[3, 5]);
    }

    #[test]
    fn project_gathers_selected_rows() {
        let batch = ColumnBatch::new(vec![
            Column::U64(vec![1, 2, 3, 4]),
            Column::Str(StrColumn::from_lines(&["a", "b", "c", "d"])),
        ]);
        let sel = SelVec::from_indices(vec![0, 2]);
        let out = project(&batch, &[1], Some(&sel));
        assert_eq!(out.rows(), 2);
        match out.column(0) {
            Column::Str(c) => assert_eq!(c.iter().collect::<Vec<_>>(), vec!["a", "c"]),
            other => panic!("wrong column type: {other:?}"),
        }
    }

    #[test]
    fn project_respects_validity() {
        let mut v = Validity::all_valid(3);
        v.set_invalid(0);
        let batch = ColumnBatch::new(vec![Column::U64(vec![7, 8, 9])]).with_validity(v);
        let out = project(&batch, &[0], None);
        assert_eq!(out.column(0), &Column::U64(vec![8, 9]));
    }

    #[test]
    fn hash_agg_str_combines_repeats() {
        let keys = StrColumn::from_lines(&["a", "b", "a", "a", "b"]);
        let vals = vec![1u64, 10, 2, 3, 20];
        let mut agg: HashMap<String, u64> = HashMap::new();
        hash_agg_str(&keys, &vals, None, None, &mut agg, |a, v| *a += v);
        assert_eq!(agg["a"], 6);
        assert_eq!(agg["b"], 30);
    }

    #[test]
    fn hash_agg_u64_respects_selection() {
        let keys = vec![1u64, 2, 1, 2];
        let vals = vec![10u64, 20, 30, 40];
        let sel = SelVec::from_indices(vec![0, 3]);
        let mut agg: HashMap<u64, u64> = HashMap::new();
        hash_agg_u64(&keys, &vals, None, Some(&sel), &mut agg, |a, v| *a += v);
        assert_eq!(agg[&1], 10);
        assert_eq!(agg[&2], 40);
    }
}
