//! # flowmark-columnar
//!
//! The columnar batch execution core: fixed-size typed column batches with
//! vectorized kernels, shared by both engines.
//!
//! The paper attributes much of the Spark/Flink gap to per-record overhead
//! in the hot paths (shuffle, aggregation, sort): record-at-a-time
//! execution pays a virtual dispatch, a branch and often an allocation per
//! record, leaving the workloads DRAM-latency-bound. This crate replaces
//! that with batch-at-a-time processing:
//!
//! - **[`batch`]** — typed column vectors ([`Column`]: `U64`/`I64`/`F64`/
//!   `Bytes`/`Str`), flat variable-width storage ([`StrColumn`]: one byte
//!   buffer + offsets, no per-row `String`), validity bitmasks
//!   ([`Validity`]) and selection vectors ([`SelVec`]) so filters never
//!   copy data;
//! - **[`kernels`]** — vectorized filter (predicate → selection vector),
//!   project/gather (selection → materialized batch) and hash-aggregation
//!   (batch-at-a-time probe into a caller-supplied map — the engines pass
//!   their pre-sized FxHash maps);
//! - **[`kvbatch`]** — key/value batches whose shuffle routing moves whole
//!   column slices per reducer instead of cloning `(K, V)` pairs one at a
//!   time.
//!
//! The record API stays available during migration: every batch type
//! exposes row iterators (`StrColumn::iter`, `StrU64Batch::iter`) that
//! adapt a batch back into a record stream, so scalar consumers keep
//! working unchanged while hot paths move to the kernels.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod batch;
pub mod checksum;
pub mod kernels;
pub mod kvbatch;

pub use batch::{
    BytesColumn, Column, ColumnBatch, F64Batch, SelVec, StrColumn, Validity, DEFAULT_BATCH_ROWS,
};
pub use checksum::{Checksummable, CorruptionKind, Xxh64};
pub use kvbatch::{route_rows, StrU64Batch};
