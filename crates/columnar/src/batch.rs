//! Typed column batches: the storage layer of the columnar core.
//!
//! A batch holds a fixed number of rows as flat, typed column vectors.
//! Variable-width data ([`BytesColumn`], [`StrColumn`]) lives in one
//! contiguous byte buffer plus a `u32` offset array — no per-row `String`
//! or `Vec<u8>` allocation anywhere. Filters produce [`SelVec`] selection
//! vectors (row indices into the unchanged batch) instead of copying
//! survivors out, and [`Validity`] bitmasks mark rows a kernel must skip.

use crate::checksum::{Checksummable, CorruptionKind, Xxh64};

/// Default number of rows per batch.
///
/// 4096 rows of ~80-byte text is ~320 KiB of flat payload — big enough to
/// amortise per-batch dispatch to nothing, small enough that a batch's
/// working set stays cache-friendly while it is scanned.
pub const DEFAULT_BATCH_ROWS: usize = 4096;

// ---------------------------------------------------------------------------
// Validity
// ---------------------------------------------------------------------------

/// A row-validity bitmask: bit `i` set ⇔ row `i` is live.
///
/// Kernels treat an absent mask (`Option<&Validity>::None`) as all-valid,
/// so fully-dense batches never pay for mask storage or testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validity {
    bits: Vec<u64>,
    len: usize,
}

impl Validity {
    /// A mask of `len` rows, all valid.
    pub fn all_valid(len: usize) -> Self {
        let mut bits = vec![u64::MAX; len.div_ceil(64)];
        // Keep bits beyond `len` clear so masks compare by value.
        let tail = len % 64;
        if tail > 0 {
            if let Some(last) = bits.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        Self { bits, len }
    }

    /// Builds a mask from per-row booleans.
    pub fn from_bools(rows: &[bool]) -> Self {
        let mut v = Self {
            bits: vec![0u64; rows.len().div_ceil(64)],
            len: rows.len(),
        };
        for (i, &ok) in rows.iter().enumerate() {
            if ok {
                v.bits[i / 64] |= 1 << (i % 64);
            }
        }
        v
    }

    /// Number of rows covered by the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether row `i` is valid.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Marks row `i` invalid.
    pub fn set_invalid(&mut self, i: usize) {
        assert!(i < self.len, "row {i} out of {} mask rows", self.len);
        self.bits[i / 64] &= !(1 << (i % 64));
    }

    /// Number of valid rows (popcount over the mask words).
    pub fn count_valid(&self) -> usize {
        let full = self.len / 64;
        let mut n: u32 = self.bits[..full].iter().map(|w| w.count_ones()).sum();
        let tail = self.len % 64;
        if tail > 0 {
            n += (self.bits[full] & ((1u64 << tail) - 1)).count_ones();
        }
        n as usize
    }

    /// The raw mask words (bit `i` of word `i / 64` covers row `i`).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }
}

impl Checksummable for Validity {
    fn write_checksum(&self, h: &mut Xxh64) {
        h.write_u64(self.len as u64);
        h.write_u64s(&self.bits);
    }

    fn corrupt(&mut self, _kind: CorruptionKind, salt: u64) -> Option<CorruptionKind> {
        if self.len == 0 {
            return None;
        }
        let bit = (salt as usize) % self.len;
        self.bits[bit / 64] ^= 1 << (bit % 64);
        Some(CorruptionKind::ValidityFlip)
    }
}

// ---------------------------------------------------------------------------
// Selection vectors
// ---------------------------------------------------------------------------

/// A selection vector: strictly-increasing row indices into a batch.
///
/// This is how filters avoid copying: a predicate kernel scans a column
/// and emits the qualifying row indices; downstream kernels (project,
/// hash-agg, another filter) iterate the selection instead of the whole
/// batch. Chaining filters is selection-vector composition — the data
/// itself is never rewritten until a final gather materialises it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelVec {
    idx: Vec<u32>,
}

impl SelVec {
    /// An empty selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty selection with room for `cap` rows.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            idx: Vec::with_capacity(cap),
        }
    }

    /// The identity selection over `rows` rows.
    pub fn identity(rows: usize) -> Self {
        Self {
            idx: (0..rows as u32).collect(),
        }
    }

    /// Builds from indices; they must be strictly increasing.
    pub fn from_indices(idx: Vec<u32>) -> Self {
        debug_assert!(idx.windows(2).all(|w| w[0] < w[1]), "selection not sorted");
        Self { idx }
    }

    /// Appends a row index (must exceed the last one pushed).
    #[inline]
    pub fn push(&mut self, row: u32) {
        debug_assert!(self.idx.last().is_none_or(|&l| l < row));
        self.idx.push(row);
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// The selected row indices, ascending.
    pub fn indices(&self) -> &[u32] {
        &self.idx
    }

    /// Iterates the selected rows as `usize`.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.idx.iter().map(|&i| i as usize)
    }
}

// ---------------------------------------------------------------------------
// Variable-width columns
// ---------------------------------------------------------------------------

/// Flat variable-width byte storage: one data buffer, `rows + 1` offsets.
///
/// Row `i` is `data[offsets[i] .. offsets[i + 1]]`. Appending is one
/// `extend_from_slice`; reading is two offset loads and a slice — no
/// per-row heap object ever exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BytesColumn {
    data: Vec<u8>,
    /// `rows + 1` cumulative byte offsets; `offsets[0] == 0`.
    offsets: Vec<u32>,
}

impl Default for BytesColumn {
    fn default() -> Self {
        Self::new()
    }
}

impl BytesColumn {
    /// An empty column.
    pub fn new() -> Self {
        Self {
            data: Vec::new(),
            offsets: vec![0],
        }
    }

    /// An empty column with reserved storage for `rows` rows totalling
    /// `bytes` payload bytes.
    pub fn with_capacity(rows: usize, bytes: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Self {
            data: Vec::with_capacity(bytes),
            offsets,
        }
    }

    /// Appends one row.
    #[inline]
    pub fn push(&mut self, row: &[u8]) {
        self.data.extend_from_slice(row);
        assert!(
            self.data.len() <= u32::MAX as usize,
            "BytesColumn overflows u32 offsets"
        );
        self.offsets.push(self.data.len() as u32);
    }

    /// Row `i` as a byte slice.
    #[inline]
    pub fn get(&self, i: usize) -> &[u8] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole flat payload buffer.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The cumulative offsets (`len() + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.data.len()
    }

    /// Iterates rows as byte slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Copies the selected rows into a new column (the gather half of a
    /// filter-then-materialise pipeline).
    pub fn gather(&self, sel: &SelVec) -> BytesColumn {
        let bytes: usize = sel.iter().map(|i| self.get(i).len()).sum();
        let mut out = BytesColumn::with_capacity(sel.len(), bytes);
        for i in sel.iter() {
            out.push(self.get(i));
        }
        out
    }

    /// Removes the last row, if any (the truncated-block corruption shape).
    pub fn pop(&mut self) -> bool {
        if self.len() == 0 {
            return false;
        }
        self.offsets.pop();
        let end = *self.offsets.last().expect("offsets keep their 0 sentinel") as usize;
        self.data.truncate(end);
        true
    }
}

impl Checksummable for BytesColumn {
    fn write_checksum(&self, h: &mut Xxh64) {
        h.write_u64(self.offsets.len() as u64);
        h.write_u32s(&self.offsets);
        h.write(&self.data);
    }

    fn corrupt(&mut self, kind: CorruptionKind, salt: u64) -> Option<CorruptionKind> {
        if kind == CorruptionKind::Truncate && self.pop() {
            return Some(CorruptionKind::Truncate);
        }
        // Bit-flip path (also the fallback for validity flips on an
        // unmasked column and truncation of an empty one): the salt
        // addresses one bit across the payload *and* the non-sentinel
        // offsets, so both storage planes get corruption coverage.
        let data_bits = self.data.len() * 8;
        let offset_bits = (self.offsets.len() - 1) * 32;
        let total = data_bits + offset_bits;
        if total == 0 {
            return None;
        }
        let bit = (salt as usize) % total;
        if bit < data_bits {
            self.data[bit / 8] ^= 1 << (bit % 8);
        } else {
            let bit = bit - data_bits;
            self.offsets[1 + bit / 32] ^= 1 << (bit % 32);
        }
        Some(CorruptionKind::BitFlip)
    }
}

/// A [`BytesColumn`] whose rows are guaranteed valid UTF-8.
///
/// Rows can only enter through `&str` (`push`, `from_lines`), so reads
/// skip re-validation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrColumn {
    raw: BytesColumn,
}

impl StrColumn {
    /// An empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty column with reserved storage.
    pub fn with_capacity(rows: usize, bytes: usize) -> Self {
        Self {
            raw: BytesColumn::with_capacity(rows, bytes),
        }
    }

    /// Builds one column from a slice of lines.
    pub fn from_lines<S: AsRef<str>>(lines: &[S]) -> Self {
        let bytes: usize = lines.iter().map(|l| l.as_ref().len()).sum();
        let mut col = Self::with_capacity(lines.len(), bytes);
        for l in lines {
            col.push(l.as_ref());
        }
        col
    }

    /// Splits a corpus into columns of at most `batch_rows` rows each —
    /// the batching step a source runs once, before the engine ever sees
    /// the data. An empty corpus yields one empty batch so downstream
    /// plans always have at least one partition seed.
    pub fn batches_from_lines<S: AsRef<str>>(lines: &[S], batch_rows: usize) -> Vec<StrColumn> {
        assert!(batch_rows > 0);
        if lines.is_empty() {
            return vec![StrColumn::new()];
        }
        lines.chunks(batch_rows).map(Self::from_lines).collect()
    }

    /// Appends one row.
    #[inline]
    pub fn push(&mut self, row: &str) {
        self.raw.push(row.as_bytes());
    }

    /// Row `i` as `&str`.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        // SAFETY: rows are only ever appended from `&str` and offsets only
        // ever mark push boundaries, so every row slice is valid UTF-8.
        unsafe { std::str::from_utf8_unchecked(self.raw.get(i)) }
    }

    /// Row `i` as raw bytes (for byte-window kernels).
    #[inline]
    pub fn get_bytes(&self, i: usize) -> &[u8] {
        self.raw.get(i)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The whole flat payload buffer.
    pub fn data(&self) -> &[u8] {
        self.raw.data()
    }

    /// The cumulative offsets (`len() + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        self.raw.offsets()
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.raw.total_bytes()
    }

    /// Row iterator — the record-adapter view of the column.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Copies the selected rows into a new column.
    pub fn gather(&self, sel: &SelVec) -> StrColumn {
        StrColumn {
            raw: self.raw.gather(sel),
        }
    }

    /// Removes the last row, if any.
    pub fn pop(&mut self) -> bool {
        self.raw.pop()
    }
}

impl Checksummable for StrColumn {
    fn write_checksum(&self, h: &mut Xxh64) {
        self.raw.write_checksum(h);
    }

    /// Corruption may break the UTF-8 invariant of the payload; a column
    /// this has been applied to must be verified-and-discarded, never
    /// row-accessed (see the [`crate::checksum`] module contract).
    fn corrupt(&mut self, kind: CorruptionKind, salt: u64) -> Option<CorruptionKind> {
        self.raw.corrupt(kind, salt)
    }
}

// ---------------------------------------------------------------------------
// Column + batch
// ---------------------------------------------------------------------------

/// One typed column vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Unsigned 64-bit integers.
    U64(Vec<u64>),
    /// Signed 64-bit integers.
    I64(Vec<i64>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// Variable-width raw bytes.
    Bytes(BytesColumn),
    /// Variable-width UTF-8 strings.
    Str(StrColumn),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::U64(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Bytes(c) => c.len(),
            Column::Str(c) => c.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the selected rows into a new column of the same type.
    pub fn gather(&self, sel: &SelVec) -> Column {
        match self {
            Column::U64(v) => Column::U64(sel.iter().map(|i| v[i]).collect()),
            Column::I64(v) => Column::I64(sel.iter().map(|i| v[i]).collect()),
            Column::F64(v) => Column::F64(sel.iter().map(|i| v[i]).collect()),
            Column::Bytes(c) => Column::Bytes(c.gather(sel)),
            Column::Str(c) => Column::Str(c.gather(sel)),
        }
    }
}

impl Checksummable for Column {
    fn write_checksum(&self, h: &mut Xxh64) {
        // A variant tag keeps an empty U64 column from colliding with an
        // empty Str column.
        match self {
            Column::U64(v) => {
                h.write_u64(1);
                h.write_u64(v.len() as u64);
                h.write_u64s(v);
            }
            Column::I64(v) => {
                h.write_u64(2);
                h.write_u64(v.len() as u64);
                for &x in v {
                    h.write_u64(x as u64);
                }
            }
            Column::F64(v) => {
                h.write_u64(3);
                h.write_u64(v.len() as u64);
                for &x in v {
                    h.write_u64(x.to_bits());
                }
            }
            Column::Bytes(c) => {
                h.write_u64(4);
                c.write_checksum(h);
            }
            Column::Str(c) => {
                h.write_u64(5);
                c.write_checksum(h);
            }
        }
    }

    fn corrupt(&mut self, kind: CorruptionKind, salt: u64) -> Option<CorruptionKind> {
        match self {
            Column::U64(v) => v.corrupt(kind, salt),
            Column::I64(v) => {
                if v.is_empty() {
                    return None;
                }
                let i = (salt as usize) % v.len();
                v[i] ^= 1 << (salt.rotate_right(7) % 64);
                Some(CorruptionKind::BitFlip)
            }
            Column::F64(v) => {
                if v.is_empty() {
                    return None;
                }
                let i = (salt as usize) % v.len();
                v[i] = f64::from_bits(v[i].to_bits() ^ (1 << (salt.rotate_right(7) % 64)));
                Some(CorruptionKind::BitFlip)
            }
            Column::Bytes(c) => c.corrupt(kind, salt),
            Column::Str(c) => c.corrupt(kind, salt),
        }
    }
}

/// A batch: equal-length typed columns plus an optional validity mask.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBatch {
    columns: Vec<Column>,
    validity: Option<Validity>,
    rows: usize,
}

impl ColumnBatch {
    /// Builds a batch from columns; all columns must have the same length.
    pub fn new(columns: Vec<Column>) -> Self {
        let rows = columns.first().map_or(0, Column::len);
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "all batch columns must have equal row counts"
        );
        Self {
            columns,
            validity: None,
            rows,
        }
    }

    /// Attaches a validity mask (length must match the row count).
    pub fn with_validity(mut self, validity: Validity) -> Self {
        assert_eq!(validity.len(), self.rows, "validity mask length mismatch");
        self.validity = Some(validity);
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// The validity mask, if any.
    pub fn validity(&self) -> Option<&Validity> {
        self.validity.as_ref()
    }

    /// Materialises the selected rows of every column into a dense batch
    /// (no validity mask: a gather output is fully live by construction).
    pub fn gather(&self, sel: &SelVec) -> ColumnBatch {
        ColumnBatch {
            columns: self.columns.iter().map(|c| c.gather(sel)).collect(),
            validity: None,
            rows: sel.len(),
        }
    }
}

impl Checksummable for ColumnBatch {
    fn write_checksum(&self, h: &mut Xxh64) {
        h.write_u64(self.rows as u64);
        h.write_u64(self.columns.len() as u64);
        for c in &self.columns {
            c.write_checksum(h);
        }
        match &self.validity {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.write_checksum(h);
            }
        }
    }

    fn corrupt(&mut self, kind: CorruptionKind, salt: u64) -> Option<CorruptionKind> {
        if kind == CorruptionKind::ValidityFlip {
            if let Some(v) = &mut self.validity {
                if let Some(applied) = v.corrupt(kind, salt) {
                    return Some(applied);
                }
            }
        }
        // Bit-flip (and every fallback) walks the columns starting at the
        // salt-addressed one until something has bits to flip.
        let n = self.columns.len();
        for step in 0..n {
            let i = ((salt as usize) + step) % n.max(1);
            if let Some(applied) = self
                .columns
                .get_mut(i)
                .and_then(|c| c.corrupt(CorruptionKind::BitFlip, salt.rotate_right(9)))
            {
                return Some(applied);
            }
        }
        None
    }
}

/// A dim-major flat batch of `f64` points: all rows' coordinates for
/// dimension 0, then all for dimension 1, and so on — `data[d * rows + i]`
/// is coordinate `d` of row `i`. Numeric kernels ([`crate::kernels::nearest_center`],
/// [`crate::kernels::assign_accumulate`]) stream each dimension as one
/// contiguous slice instead of hopping across `Vec<Point>` structs.
#[derive(Debug, Clone, PartialEq)]
pub struct F64Batch {
    dims: usize,
    rows: usize,
    data: Vec<f64>,
}

impl F64Batch {
    /// An empty batch with `dims` dimensions and no rows.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "a point batch needs at least one dimension");
        Self {
            dims,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// Builds a batch from per-dimension coordinate columns; every column
    /// must have the same length (the row count).
    pub fn from_dims(columns: Vec<Vec<f64>>) -> Self {
        assert!(!columns.is_empty(), "a point batch needs at least one dimension");
        let rows = columns[0].len();
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "all dimension columns must have equal row counts"
        );
        let dims = columns.len();
        let mut data = Vec::with_capacity(dims * rows);
        for col in columns {
            data.extend_from_slice(&col);
        }
        Self { dims, rows, data }
    }

    /// Transposes row-major coordinate tuples into dim-major storage.
    pub fn from_rows(dims: usize, rows: impl ExactSizeIterator<Item = [f64; 2]>) -> Self {
        assert_eq!(dims, 2, "from_rows currently packs 2-d tuples");
        let n = rows.len();
        let mut data = vec![0.0; 2 * n];
        for (i, [x, y]) in rows.enumerate() {
            data[i] = x;
            data[n + i] = y;
        }
        Self { dims, rows: n, data }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of rows (points).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The contiguous coordinate slice of dimension `d`, one entry per row.
    pub fn dim(&self, d: usize) -> &[f64] {
        assert!(d < self.dims, "dimension {d} out of range");
        &self.data[d * self.rows..(d + 1) * self.rows]
    }

    /// Coordinate `d` of row `i`.
    pub fn coord(&self, d: usize, i: usize) -> f64 {
        self.dim(d)[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_popcount_and_flags() {
        let mut v = Validity::all_valid(100);
        assert_eq!(v.count_valid(), 100);
        v.set_invalid(0);
        v.set_invalid(63);
        v.set_invalid(64);
        v.set_invalid(99);
        assert_eq!(v.count_valid(), 96);
        assert!(!v.is_valid(0) && !v.is_valid(64) && v.is_valid(1));
        let bools: Vec<bool> = (0..100).map(|i| ![0, 63, 64, 99].contains(&i)).collect();
        assert_eq!(Validity::from_bools(&bools), v);
    }

    #[test]
    fn f64_batch_is_dim_major() {
        let b = F64Batch::from_dims(vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]]);
        assert_eq!((b.dims(), b.rows()), (2, 3));
        assert_eq!(b.dim(0), &[1.0, 2.0, 3.0]);
        assert_eq!(b.dim(1), &[10.0, 20.0, 30.0]);
        assert_eq!(b.coord(1, 2), 30.0);
        let t = F64Batch::from_rows(2, [[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]].into_iter());
        assert_eq!(t, b);
        assert!(F64Batch::new(2).is_empty());
    }

    #[test]
    fn str_column_round_trips_rows() {
        let lines = vec!["hello world", "", "naïve café", "x"];
        let col = StrColumn::from_lines(&lines);
        assert_eq!(col.len(), 4);
        assert_eq!(col.total_bytes(), lines.iter().map(|l| l.len()).sum());
        for (i, l) in lines.iter().enumerate() {
            assert_eq!(col.get(i), *l);
        }
        assert_eq!(col.iter().collect::<Vec<_>>(), lines);
    }

    #[test]
    fn batches_split_and_preserve_order() {
        let lines: Vec<String> = (0..10).map(|i| format!("line{i}")).collect();
        let batches = StrColumn::batches_from_lines(&lines, 4);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches.iter().map(StrColumn::len).sum::<usize>(), 10);
        let flat: Vec<&str> = batches.iter().flat_map(StrColumn::iter).collect();
        assert_eq!(flat, lines.iter().map(String::as_str).collect::<Vec<_>>());
        // Empty corpus still yields one (empty) batch.
        let empty = StrColumn::batches_from_lines(&Vec::<String>::new(), 4);
        assert_eq!(empty.len(), 1);
        assert!(empty[0].is_empty());
    }

    #[test]
    fn gather_materialises_selection() {
        let col = StrColumn::from_lines(&["a", "bb", "ccc", "dddd"]);
        let sel = SelVec::from_indices(vec![1, 3]);
        let out = col.gather(&sel);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec!["bb", "dddd"]);

        let batch = ColumnBatch::new(vec![
            Column::U64(vec![10, 20, 30, 40]),
            Column::Str(col.clone()),
        ]);
        let g = batch.gather(&sel);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.column(0), &Column::U64(vec![20, 40]));
    }

    #[test]
    fn selvec_identity_and_iteration() {
        let sel = SelVec::identity(3);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(SelVec::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "equal row counts")]
    fn mismatched_columns_panic() {
        let _ = ColumnBatch::new(vec![
            Column::U64(vec![1, 2]),
            Column::U64(vec![1]),
        ]);
    }
}
