//! Key/value batches for the shuffle data plane.
//!
//! The record-at-a-time shuffle clones one `(K, V)` pair per record into
//! per-reducer buckets — an allocation and a hash per pair. A
//! [`StrU64Batch`] keeps keys in one flat [`StrColumn`] and values in one
//! `Vec<u64>`; routing appends each row's key bytes and value straight
//! into the target reducer's flat buffers (pre-sized by a counting pass),
//! and the exchange then moves those *whole batches* between tasks instead
//! of per-record messages.

use std::collections::HashMap;
use std::hash::BuildHasher;

use crate::batch::StrColumn;
use crate::checksum::{Checksummable, CorruptionKind, Xxh64};
use crate::kernels;

/// A batch of `(String key, u64 value)` rows in columnar layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrU64Batch {
    keys: StrColumn,
    vals: Vec<u64>,
}

impl StrU64Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with reserved storage for `rows` rows totalling
    /// `key_bytes` key payload bytes.
    pub fn with_capacity(rows: usize, key_bytes: usize) -> Self {
        Self {
            keys: StrColumn::with_capacity(rows, key_bytes),
            vals: Vec::with_capacity(rows),
        }
    }

    /// Drains any `(String, u64)` stream (typically a freshly-aggregated
    /// hash map) into one batch.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, u64)>) -> Self {
        let mut b = Self::new();
        for (k, v) in pairs {
            b.push(&k, v);
        }
        b
    }

    /// Appends one row.
    #[inline]
    pub fn push(&mut self, key: &str, val: u64) {
        self.keys.push(key);
        self.vals.push(val);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The key column.
    pub fn keys(&self) -> &StrColumn {
        &self.keys
    }

    /// The value column.
    pub fn vals(&self) -> &[u64] {
        &self.vals
    }

    /// Total key payload bytes (for shuffle byte accounting).
    pub fn key_bytes(&self) -> usize {
        self.keys.total_bytes()
    }

    /// Row iterator — the record-adapter view of the batch.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        (0..self.len()).map(move |i| (self.keys.get(i), self.vals[i]))
    }

    /// Routes rows into `parts` per-reducer batches.
    ///
    /// Two passes: a counting pass sizes every target batch exactly (rows
    /// *and* key bytes), then the placement pass appends each row's key
    /// bytes and value into its reducer's flat buffers — one `memcpy` per
    /// key, no per-pair allocation, no rehash of already-built storage.
    pub fn partition_by(&self, parts: usize, part_of: impl Fn(&str) -> usize) -> Vec<StrU64Batch> {
        assert!(parts > 0);
        let mut rows = vec![0usize; parts];
        let mut bytes = vec![0usize; parts];
        let mut route: Vec<u32> = Vec::with_capacity(self.len());
        for (k, _) in self.iter() {
            let p = part_of(k);
            debug_assert!(p < parts, "partition function out of range");
            rows[p] += 1;
            bytes[p] += k.len();
            route.push(p as u32);
        }
        let mut out: Vec<StrU64Batch> = rows
            .iter()
            .zip(&bytes)
            .map(|(&r, &b)| StrU64Batch::with_capacity(r, b))
            .collect();
        for (i, (k, v)) in self.iter().enumerate() {
            out[route[i] as usize].push(k, v);
        }
        out
    }

    /// Removes the last row, if any.
    pub fn pop(&mut self) -> bool {
        if self.vals.pop().is_none() {
            return false;
        }
        self.keys.pop();
        true
    }

    /// Batch-at-a-time merge into a caller-supplied hash map (the reduce
    /// side of a shuffled aggregation) via the hash-agg kernel.
    pub fn merge_into<S: BuildHasher>(
        &self,
        agg: &mut HashMap<String, u64, S>,
        combine: impl Fn(&mut u64, u64),
    ) {
        kernels::hash_agg_str(&self.keys, &self.vals, None, None, agg, combine);
    }
}

impl Checksummable for StrU64Batch {
    fn write_checksum(&self, h: &mut Xxh64) {
        self.keys.write_checksum(h);
        h.write_u64(self.vals.len() as u64);
        h.write_u64s(&self.vals);
    }

    /// Bit-flips land in the value column (plain `u64`s — the corrupted
    /// batch stays memory-safe to checksum even if someone were to row-read
    /// it before verification); truncation pops the trailing row from both
    /// columns.
    fn corrupt(&mut self, kind: CorruptionKind, salt: u64) -> Option<CorruptionKind> {
        if kind == CorruptionKind::Truncate && self.pop() {
            return Some(CorruptionKind::Truncate);
        }
        self.vals.corrupt(CorruptionKind::BitFlip, salt)
    }
}

/// Routes owned fixed-width rows into `parts` pre-sized buckets: counting
/// pass, then placement. The generic sibling of
/// [`StrU64Batch::partition_by`] for row types that are already flat
/// (e.g. 100-byte sort records).
pub fn route_rows<T>(rows: Vec<T>, parts: usize, part_of: impl Fn(&T) -> usize) -> Vec<Vec<T>> {
    assert!(parts > 0);
    let mut counts = vec![0usize; parts];
    for r in &rows {
        counts[part_of(r)] += 1;
    }
    let mut out: Vec<Vec<T>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for r in rows {
        let p = part_of(&r);
        out[p].push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iter_round_trip() {
        let mut b = StrU64Batch::new();
        b.push("alpha", 1);
        b.push("beta", 2);
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.iter().collect::<Vec<_>>(),
            vec![("alpha", 1), ("beta", 2)]
        );
        assert_eq!(b.key_bytes(), 9);
    }

    #[test]
    fn partition_by_is_complete_and_consistent() {
        let b = StrU64Batch::from_pairs((0..100).map(|i| (format!("k{i}"), i as u64)));
        let part_of = |k: &str| k.len() % 3;
        let parts = b.partition_by(3, part_of);
        assert_eq!(parts.iter().map(StrU64Batch::len).sum::<usize>(), 100);
        for (p, part) in parts.iter().enumerate() {
            for (k, _) in part.iter() {
                assert_eq!(part_of(k), p, "key {k} routed to wrong partition");
            }
        }
        // Order within a bucket follows the input order.
        let keys0: Vec<&str> = parts[0].iter().map(|(k, _)| k).collect();
        let mut sorted_by_input: Vec<&str> = keys0.clone();
        sorted_by_input.sort_by_key(|k| k[1..].parse::<u32>().unwrap_or(0));
        assert_eq!(keys0, sorted_by_input);
    }

    #[test]
    fn partition_of_empty_batch_yields_empty_parts() {
        let parts = StrU64Batch::new().partition_by(4, |_| 0);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(StrU64Batch::is_empty));
    }

    #[test]
    fn merge_into_combines_across_batches() {
        let a = StrU64Batch::from_pairs(vec![("x".into(), 1), ("y".into(), 2)]);
        let b = StrU64Batch::from_pairs(vec![("x".into(), 10)]);
        let mut agg: HashMap<String, u64> = HashMap::new();
        a.merge_into(&mut agg, |acc, v| *acc += v);
        b.merge_into(&mut agg, |acc, v| *acc += v);
        assert_eq!(agg["x"], 11);
        assert_eq!(agg["y"], 2);
    }

    #[test]
    fn route_rows_presizes_and_preserves_order() {
        let rows: Vec<u32> = (0..20).collect();
        let parts = route_rows(rows, 4, |r| (*r as usize) % 4);
        for (p, part) in parts.iter().enumerate() {
            assert_eq!(part.len(), 5);
            assert!(part.windows(2).all(|w| w[0] < w[1]), "order lost");
            assert!(part.iter().all(|r| (*r as usize) % 4 == p));
        }
    }
}
