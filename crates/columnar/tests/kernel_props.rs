//! Property tests: every vectorized kernel must match a scalar reference
//! implementation on arbitrary batches — empty batches, full and partial
//! validity masks, and chained selection vectors included.

use std::collections::HashMap;

use proptest::prelude::*;

use flowmark_columnar::{kernels, Column, ColumnBatch, SelVec, StrColumn, Validity};

/// Strings over a tiny alphabet so substrings collide often (boundary
/// straddles, repeated prefixes) and needles actually match sometimes.
const ALPHABET: [char; 4] = ['a', 'b', 'x', ' '];

fn arb_string(alphabet_size: usize, max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..alphabet_size, 0..max_len + 1)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect())
}

fn arb_rows() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_string(4, 12), 0..40)
}

fn arb_needle() -> impl Strategy<Value = String> {
    arb_string(3, 3)
}

/// Scalar reference for candidate iteration: validity ∩ selection, in
/// ascending row order.
fn candidates(rows: usize, validity: Option<&Validity>, sel: Option<&SelVec>) -> Vec<usize> {
    let base: Vec<usize> = match sel {
        Some(s) => s.iter().collect(),
        None => (0..rows).collect(),
    };
    base.into_iter()
        .filter(|&i| validity.map(|v| v.is_valid(i)).unwrap_or(true))
        .collect()
}

/// Builds a validity mask over `rows` from a bool seed vector (cycled), or
/// `None` when the seed is empty — exercising the unmasked fast path.
fn mask_from(seed: &[bool], rows: usize) -> Option<Validity> {
    if seed.is_empty() {
        return None;
    }
    let bools: Vec<bool> = (0..rows).map(|i| seed[i % seed.len()]).collect();
    Some(Validity::from_bools(&bools))
}

/// Builds an incoming selection over `rows` by keeping every `step`-th row,
/// or `None` (dense) when `step == 0`.
fn sel_from(step: usize, rows: usize) -> Option<SelVec> {
    if step == 0 {
        return None;
    }
    Some(SelVec::from_indices(
        (0..rows).step_by(step).map(|i| i as u32).collect(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The substring filter (dense flat scan or masked per-row scan) equals
    /// `str::contains` over the candidate rows.
    #[test]
    fn filter_str_contains_matches_scalar(
        rows in arb_rows(),
        needle in arb_needle(),
        mask_seed in prop::collection::vec(any::<bool>(), 0..8),
        sel_step in 0usize..5,
    ) {
        let col = StrColumn::from_lines(&rows);
        let validity = mask_from(&mask_seed, rows.len());
        let sel = sel_from(sel_step, rows.len());
        let got = kernels::filter_str_contains(&col, needle.as_bytes(), validity.as_ref(), sel.as_ref());
        let expect: Vec<u32> = candidates(rows.len(), validity.as_ref(), sel.as_ref())
            .into_iter()
            .filter(|&i| rows[i].contains(&needle))
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(got.indices(), expect.as_slice());
    }

    /// Chaining two filters equals filtering by the conjunction.
    #[test]
    fn chained_filters_compose(rows in arb_rows(), n1 in arb_needle(), n2 in arb_needle()) {
        let col = StrColumn::from_lines(&rows);
        let first = kernels::filter_str_contains(&col, n1.as_bytes(), None, None);
        let second = kernels::filter_str_contains(&col, n2.as_bytes(), None, Some(&first));
        let expect: Vec<u32> = (0..rows.len())
            .filter(|&i| rows[i].contains(&n1) && rows[i].contains(&n2))
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(second.indices(), expect.as_slice());
    }

    /// The u64 predicate filter equals a scalar scan.
    #[test]
    fn filter_u64_matches_scalar(
        vals in prop::collection::vec(any::<u64>(), 0..60),
        mask_seed in prop::collection::vec(any::<bool>(), 0..8),
        sel_step in 0usize..5,
        threshold in any::<u64>(),
    ) {
        let validity = mask_from(&mask_seed, vals.len());
        let sel = sel_from(sel_step, vals.len());
        let got = kernels::filter_u64(&vals, validity.as_ref(), sel.as_ref(), |x| x >= threshold);
        let expect: Vec<u32> = candidates(vals.len(), validity.as_ref(), sel.as_ref())
            .into_iter()
            .filter(|&i| vals[i] >= threshold)
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(got.indices(), expect.as_slice());
    }

    /// Projection materialises exactly the candidate rows, in order.
    #[test]
    fn project_matches_scalar_gather(
        rows in arb_rows(),
        mask_seed in prop::collection::vec(any::<bool>(), 0..8),
        sel_step in 0usize..5,
    ) {
        let vals: Vec<u64> = (0..rows.len() as u64).collect();
        let mut batch = ColumnBatch::new(vec![
            Column::U64(vals.clone()),
            Column::Str(StrColumn::from_lines(&rows)),
        ]);
        let validity = mask_from(&mask_seed, rows.len());
        if let Some(v) = validity.clone() {
            batch = batch.with_validity(v);
        }
        let sel = sel_from(sel_step, rows.len());
        let out = kernels::project(&batch, &[0, 1], sel.as_ref());
        let keep = candidates(rows.len(), validity.as_ref(), sel.as_ref());
        prop_assert_eq!(out.rows(), keep.len());
        let expect_vals: Vec<u64> = keep.iter().map(|&i| vals[i]).collect();
        prop_assert_eq!(out.column(0), &Column::U64(expect_vals));
        match out.column(1) {
            Column::Str(c) => {
                let got: Vec<&str> = c.iter().collect();
                let expect: Vec<&str> = keep.iter().map(|&i| rows[i].as_str()).collect();
                prop_assert_eq!(got, expect);
            }
            other => prop_assert!(false, "wrong column type: {:?}", other),
        }
    }

    /// Batch hash-agg over string keys equals a scalar HashMap fold.
    #[test]
    fn hash_agg_str_matches_scalar(
        pairs in prop::collection::vec((arb_string(2, 3), any::<u64>()), 0..60),
        mask_seed in prop::collection::vec(any::<bool>(), 0..8),
        sel_step in 0usize..5,
    ) {
        let keys: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
        let vals: Vec<u64> = pairs.iter().map(|(_, v)| *v).collect();
        let col = StrColumn::from_lines(&keys);
        let validity = mask_from(&mask_seed, keys.len());
        let sel = sel_from(sel_step, keys.len());
        let mut got: HashMap<String, u64> = HashMap::new();
        kernels::hash_agg_str(&col, &vals, validity.as_ref(), sel.as_ref(), &mut got,
            |a, v| *a = a.wrapping_add(v));
        let mut expect: HashMap<String, u64> = HashMap::new();
        for i in candidates(keys.len(), validity.as_ref(), sel.as_ref()) {
            match expect.get_mut(&keys[i]) {
                Some(a) => *a = a.wrapping_add(vals[i]),
                None => { expect.insert(keys[i].clone(), vals[i]); }
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// Batch hash-agg over u64 keys equals a scalar HashMap fold.
    #[test]
    fn hash_agg_u64_matches_scalar(
        pairs in prop::collection::vec((0u64..16, any::<u64>()), 0..60),
        mask_seed in prop::collection::vec(any::<bool>(), 0..8),
        sel_step in 0usize..5,
    ) {
        let keys: Vec<u64> = pairs.iter().map(|(k, _)| *k).collect();
        let vals: Vec<u64> = pairs.iter().map(|(_, v)| *v).collect();
        let validity = mask_from(&mask_seed, keys.len());
        let sel = sel_from(sel_step, keys.len());
        let mut got: HashMap<u64, u64> = HashMap::new();
        kernels::hash_agg_u64(&keys, &vals, validity.as_ref(), sel.as_ref(), &mut got,
            |a, v| *a = a.wrapping_add(v));
        let mut expect: HashMap<u64, u64> = HashMap::new();
        for i in candidates(keys.len(), validity.as_ref(), sel.as_ref()) {
            match expect.get_mut(&keys[i]) {
                Some(a) => *a = a.wrapping_add(vals[i]),
                None => { expect.insert(keys[i], vals[i]); }
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// `contains_bytes` equals `str::contains` for arbitrary haystacks and
    /// needles (SWAR first-byte scan included).
    #[test]
    fn contains_bytes_matches_str(hay in arb_string(3, 24), needle in arb_string(3, 5)) {
        prop_assert_eq!(
            kernels::contains_bytes(hay.as_bytes(), needle.as_bytes()),
            hay.contains(&needle)
        );
    }

    /// The radix permutation sorts arbitrary keys exactly like `slice::sort`
    /// and is a bijection over the rows.
    #[test]
    fn radix_sort_matches_comparison_sort(keys in prop::collection::vec(any::<u64>(), 0..200)) {
        let perm = kernels::radix_sort_u64(&keys);
        let mut seen = vec![false; keys.len()];
        for &i in &perm { seen[i as usize] = true; }
        prop_assert!(seen.iter().all(|&s| s), "permutation must visit every row");
        let got: Vec<u64> = perm.iter().map(|&i| keys[i as usize]).collect();
        let mut expect = keys.clone();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Duplicate-heavy keys (tiny domain, so most byte passes are trivial
    /// and get skipped) still sort stably: equal keys keep arrival order.
    #[test]
    fn radix_sort_is_stable_on_duplicate_heavy_keys(
        keys in prop::collection::vec(0u64..4, 0..120),
    ) {
        let perm = kernels::radix_sort_u64(&keys);
        let got: Vec<u64> = perm.iter().map(|&i| keys[i as usize]).collect();
        let mut expect = keys.clone();
        expect.sort();
        prop_assert_eq!(&got, &expect);
        // Stability: indices of equal keys must appear in ascending order.
        for w in perm.windows(2) {
            if keys[w[0] as usize] == keys[w[1] as usize] {
                prop_assert!(w[0] < w[1], "equal keys out of arrival order");
            }
        }
    }

    /// Already-sorted input yields the identity permutation (every counting
    /// pass is order-preserving on sorted data).
    #[test]
    fn radix_sort_on_sorted_input_is_identity(
        mut keys in prop::collection::vec(any::<u64>(), 0..120),
    ) {
        keys.sort();
        let perm = kernels::radix_sort_u64(&keys);
        let identity: Vec<u32> = (0..keys.len() as u32).collect();
        // Equal neighbours make identity the unique *stable* answer too.
        prop_assert_eq!(perm, identity);
    }
}
