//! Property tests for the integrity layer: seeded digests must round-trip
//! deterministically, every injectable corruption — payload/offset
//! bit-flips, validity-word flips, truncations — must change the digest,
//! and the raw hasher must detect *any* single-bit flip of its input.

use proptest::prelude::*;

use flowmark_columnar::{
    Checksummable, Column, ColumnBatch, CorruptionKind, StrColumn, Validity, Xxh64,
};

/// Strings over a tiny alphabet so payloads share bytes and offsets repeat.
const ALPHABET: [char; 4] = ['a', 'b', 'x', ' '];

fn arb_string(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..ALPHABET.len(), 0..max_len + 1)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect())
}

fn arb_rows() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_string(12), 0..40)
}

fn arb_kind() -> impl Strategy<Value = CorruptionKind> {
    (0u8..3).prop_map(|k| match k {
        0 => CorruptionKind::BitFlip,
        1 => CorruptionKind::ValidityFlip,
        _ => CorruptionKind::Truncate,
    })
}

/// A batch with a u64 column, a string column and (optionally) a validity
/// mask — every storage region `corrupt` can address.
fn build_batch(rows: &[String], mask_seed: &[bool]) -> ColumnBatch {
    let vals: Vec<u64> = (0..rows.len() as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
    let mut batch =
        ColumnBatch::new(vec![Column::U64(vals), Column::Str(StrColumn::from_lines(rows))]);
    if !mask_seed.is_empty() {
        let bools: Vec<bool> = (0..rows.len()).map(|i| mask_seed[i % mask_seed.len()]).collect();
        batch = batch.with_validity(Validity::from_bools(&bools));
    }
    batch
}

fn digest(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = Xxh64::new(seed);
    h.write(bytes);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: rebuilding the same batch from the same rows replays the
    /// same digest, a clone digests identically, and the digest is bound to
    /// its seed.
    #[test]
    fn checksum_round_trips_and_is_seed_bound(
        rows in arb_rows(),
        mask_seed in prop::collection::vec(any::<bool>(), 0..8),
        seed in any::<u64>(),
    ) {
        let batch = build_batch(&rows, &mask_seed);
        let clean = batch.checksum(seed);
        prop_assert_eq!(batch.checksum(seed), clean, "digest must be deterministic");
        prop_assert_eq!(batch.clone().checksum(seed), clean, "a clone digests identically");
        prop_assert_eq!(build_batch(&rows, &mask_seed).checksum(seed), clean,
            "rebuilding from the same rows replays the digest");
        prop_assert_ne!(batch.checksum(seed ^ 1), clean, "digest must be seed-bound");
    }

    /// Any single-bit flip of the hasher's input bytes changes the digest —
    /// the bijective per-lane round makes this a guarantee, not a
    /// probability, so it holds for every generated (data, bit) pair.
    #[test]
    fn any_single_bit_flip_changes_the_digest(
        data in prop::collection::vec(any::<u8>(), 1..200),
        bit_sel in any::<usize>(),
        seed in any::<u64>(),
    ) {
        let clean = digest(seed, &data);
        let bit = bit_sel % (data.len() * 8);
        let mut flipped = data.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(digest(seed, &flipped), clean, "flip of bit {} undetected", bit);
    }

    /// Every corruption the fault layer can apply — payload/offset
    /// bit-flips, validity-word flips, truncated rows, on any storage
    /// region `salt` addresses — is detected by the digest; and when the
    /// batch has nothing to corrupt, the digest is untouched (parity).
    #[test]
    fn every_applied_corruption_is_detected(
        rows in arb_rows(),
        mask_seed in prop::collection::vec(any::<bool>(), 0..8),
        kind in arb_kind(),
        salt in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut batch = build_batch(&rows, &mask_seed);
        let clean = batch.checksum(seed);
        match batch.corrupt(kind, salt) {
            Some(_) => prop_assert_ne!(
                batch.checksum(seed), clean,
                "a corruption that reported success must change the digest"
            ),
            None => prop_assert_eq!(
                batch.checksum(seed), clean,
                "a no-op corruption must leave the digest untouched"
            ),
        }
    }

    /// Corruption-free parity for string columns (the Grep sealed-source
    /// shape): shipping a clone of a sealed column verifies against the
    /// digest taken at seal time.
    #[test]
    fn uncorrupted_clone_verifies_against_the_sealed_digest(
        rows in arb_rows(),
        seed in any::<u64>(),
    ) {
        let col = StrColumn::from_lines(&rows);
        let sealed = col.checksum(seed);
        let shipped = col.clone();
        prop_assert_eq!(shipped.checksum(seed), sealed);
    }
}
