//! Wikipedia-like text generation for Word Count and Grep.
//!
//! The paper builds RDDs/DataSets "by reading Wikipedia text files from
//! HDFS" (§III). What Word Count is sensitive to is the *word frequency
//! distribution* (a map-side combiner collapses duplicates, so skew drives
//! the combine ratio), and what Grep is sensitive to is the *selectivity* of
//! the needle. Natural language word frequencies famously follow Zipf's law,
//! so we generate Zipf-distributed words over a synthetic vocabulary.

use rand::Rng;

use crate::seeded_rng;

/// A Zipf-distributed sampler over ranks `1..=n` with exponent `s`,
/// implemented by inverse-transform sampling on the precomputed CDF.
/// Construction is O(n); sampling is O(log n).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s` (s ≈ 1.0 for
    /// natural language).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Samples a rank in `0..n` (0 = most frequent).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: constructor requires n > 0.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Builds the synthetic vocabulary: `word000000`, `word000001`, ... with
/// slightly varying lengths so records are not all identical in size.
pub fn vocabulary(size: usize) -> Vec<String> {
    (0..size)
        .map(|i| {
            // Mix in short high-frequency "stop words" at the head of the
            // distribution, as in real text.
            match i {
                0 => "the".to_string(),
                1 => "of".to_string(),
                2 => "and".to_string(),
                3 => "in".to_string(),
                4 => "to".to_string(),
                _ => format!("word{i:06}"),
            }
        })
        .collect()
}

/// Configuration of the text corpus generator.
#[derive(Debug, Clone)]
pub struct TextGenConfig {
    /// Vocabulary size (distinct words).
    pub vocabulary: usize,
    /// Zipf exponent.
    pub exponent: f64,
    /// Words per line (articles are line sequences).
    pub words_per_line: usize,
    /// Fraction of lines containing the Grep needle, in `[0, 1]`.
    pub needle_selectivity: f64,
    /// The Grep needle injected into selected lines.
    pub needle: String,
}

impl Default for TextGenConfig {
    fn default() -> Self {
        Self {
            vocabulary: 20_000,
            exponent: 1.05,
            words_per_line: 12,
            needle_selectivity: 0.01,
            needle: "flowmark".to_string(),
        }
    }
}

/// Seeded generator of text lines.
#[derive(Debug)]
pub struct TextGen {
    config: TextGenConfig,
    vocab: Vec<String>,
    zipf: Zipf,
    rng: rand::rngs::SmallRng,
}

impl TextGen {
    /// Creates a generator with the given config and seed.
    pub fn new(config: TextGenConfig, seed: u64) -> Self {
        let vocab = vocabulary(config.vocabulary);
        let zipf = Zipf::new(config.vocabulary, config.exponent);
        Self {
            config,
            vocab,
            zipf,
            rng: seeded_rng(seed),
        }
    }

    /// Generates the next line.
    pub fn line(&mut self) -> String {
        let mut words = Vec::with_capacity(self.config.words_per_line);
        let inject = self.rng.gen::<f64>() < self.config.needle_selectivity;
        let needle_pos = if inject {
            Some(self.rng.gen_range(0..self.config.words_per_line))
        } else {
            None
        };
        for i in 0..self.config.words_per_line {
            if Some(i) == needle_pos {
                words.push(self.config.needle.as_str());
            } else {
                let rank = self.zipf.sample(&mut self.rng);
                words.push(self.vocab[rank].as_str());
            }
        }
        words.join(" ")
    }

    /// Generates `n` lines.
    pub fn lines(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.line()).collect()
    }

    /// Generates lines until roughly `bytes` of text (UTF-8, including a
    /// newline per line) has been produced.
    pub fn lines_of_bytes(&mut self, bytes: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut total = 0usize;
        while total < bytes {
            let line = self.line();
            total += line.len() + 1;
            out.push(line);
        }
        out
    }

    /// The configured Grep needle.
    pub fn needle(&self) -> &str {
        &self.config.needle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipf_is_skewed() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = seeded_rng(7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate rank 99 by roughly 100× (1/k law).
        assert!(counts[0] > 30 * counts[99].max(1));
        // And all samples are in range (indexing would have panicked).
        assert!(counts.iter().sum::<u32>() == 100_000);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = TextGen::new(TextGenConfig::default(), 42);
        let mut b = TextGen::new(TextGenConfig::default(), 42);
        assert_eq!(a.lines(50), b.lines(50));
        let mut c = TextGen::new(TextGenConfig::default(), 43);
        assert_ne!(a.lines(50), c.lines(50));
    }

    #[test]
    fn needle_selectivity_respected() {
        let config = TextGenConfig {
            needle_selectivity: 0.2,
            ..TextGenConfig::default()
        };
        let needle = config.needle.clone();
        let mut g = TextGen::new(config, 1);
        let lines = g.lines(5_000);
        let hits = lines.iter().filter(|l| l.contains(&needle)).count();
        let rate = hits as f64 / lines.len() as f64;
        assert!((rate - 0.2).abs() < 0.03, "selectivity {rate} too far from 0.2");
    }

    #[test]
    fn zero_selectivity_means_no_needles() {
        let config = TextGenConfig {
            needle_selectivity: 0.0,
            ..TextGenConfig::default()
        };
        let needle = config.needle.clone();
        let mut g = TextGen::new(config, 1);
        assert!(g.lines(1_000).iter().all(|l| !l.contains(&needle)));
    }

    #[test]
    fn lines_of_bytes_reaches_target() {
        let mut g = TextGen::new(TextGenConfig::default(), 5);
        let lines = g.lines_of_bytes(10_000);
        let total: usize = lines.iter().map(|l| l.len() + 1).sum();
        assert!(total >= 10_000);
        assert!(total < 10_000 + 200, "overshoot bounded by one line");
    }

    #[test]
    fn word_frequencies_follow_zipf_head() {
        let mut g = TextGen::new(TextGenConfig::default(), 9);
        let mut freq: HashMap<String, u32> = HashMap::new();
        for line in g.lines(20_000) {
            for w in line.split_whitespace() {
                *freq.entry(w.to_string()).or_default() += 1;
            }
        }
        let the = freq.get("the").copied().unwrap_or(0);
        // "the" is rank 0 and must be the most frequent word.
        assert!(freq.values().all(|&c| c <= the));
    }

    #[test]
    fn vocabulary_has_distinct_words() {
        let v = vocabulary(1000);
        let mut sorted = v.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), v.len());
    }
}
