//! HiBench-style K-Means input generation.
//!
//! The paper generates K-Means input "using the HiBench suite (training
//! records with 2 dimensions)" (§III). HiBench's GenKMeansDataset draws
//! points from Gaussian clusters around randomly placed centers; we do the
//! same: `k` true centers uniform in a box, points normal around a uniformly
//! chosen center.

use rand::Rng;

use crate::seeded_rng;

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Squared Euclidean distance to another point.
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// Configuration for the clustered point generator.
#[derive(Debug, Clone, Copy)]
pub struct PointsConfig {
    /// Number of true clusters.
    pub clusters: usize,
    /// Half-width of the box true centers are drawn from.
    pub box_half_width: f64,
    /// Standard deviation of points around their center.
    pub sigma: f64,
}

impl Default for PointsConfig {
    fn default() -> Self {
        Self {
            clusters: 8,
            box_half_width: 100.0,
            sigma: 4.0,
        }
    }
}

/// Seeded generator of clustered 2-D points.
#[derive(Debug)]
pub struct PointsGen {
    centers: Vec<Point>,
    sigma: f64,
    rng: rand::rngs::SmallRng,
}

impl PointsGen {
    /// Creates a generator; centers are drawn from the seed too.
    ///
    /// # Panics
    /// Panics when `clusters == 0` or `sigma <= 0`.
    pub fn new(config: PointsConfig, seed: u64) -> Self {
        assert!(config.clusters > 0, "need at least one cluster");
        assert!(config.sigma > 0.0, "sigma must be positive");
        let mut rng = seeded_rng(seed);
        let w = config.box_half_width;
        let centers = (0..config.clusters)
            .map(|_| Point {
                x: rng.gen_range(-w..w),
                y: rng.gen_range(-w..w),
            })
            .collect();
        Self {
            centers,
            sigma: config.sigma,
            rng,
        }
    }

    /// The true cluster centers.
    pub fn true_centers(&self) -> &[Point] {
        &self.centers
    }

    /// Samples one point: pick a center uniformly, add Gaussian noise
    /// (Box–Muller; avoids a distribution-crate dependency).
    pub fn point(&mut self) -> Point {
        let c = self.centers[self.rng.gen_range(0..self.centers.len())];
        let (gx, gy) = self.gauss_pair();
        Point {
            x: c.x + self.sigma * gx,
            y: c.y + self.sigma * gy,
        }
    }

    /// Samples `n` points.
    pub fn points(&mut self, n: usize) -> Vec<Point> {
        (0..n).map(|_| self.point()).collect()
    }

    fn gauss_pair(&mut self) -> (f64, f64) {
        // Box–Muller transform on two uniforms in (0, 1].
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = PointsGen::new(PointsConfig::default(), 11);
        let mut b = PointsGen::new(PointsConfig::default(), 11);
        assert_eq!(a.points(100), b.points(100));
    }

    #[test]
    fn points_cluster_around_true_centers() {
        let config = PointsConfig {
            clusters: 4,
            box_half_width: 1000.0,
            sigma: 2.0,
        };
        let mut g = PointsGen::new(config, 3);
        let centers = g.true_centers().to_vec();
        let pts = g.points(10_000);
        // Every point must be within ~6σ of *some* true center.
        let max_d2 = (6.0 * config.sigma).powi(2);
        let ok = pts
            .iter()
            .filter(|p| centers.iter().any(|c| p.dist2(c) < max_d2))
            .count();
        assert!(ok as f64 / pts.len() as f64 > 0.999);
    }

    #[test]
    fn gaussian_moments_plausible() {
        let config = PointsConfig {
            clusters: 1,
            box_half_width: 1.0,
            sigma: 5.0,
        };
        let mut g = PointsGen::new(config, 8);
        let c = g.true_centers()[0];
        let pts = g.points(50_000);
        let mean_x = pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64;
        let var_x = pts.iter().map(|p| (p.x - mean_x).powi(2)).sum::<f64>() / pts.len() as f64;
        assert!((mean_x - c.x).abs() < 0.2);
        assert!((var_x.sqrt() - 5.0).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        let _ = PointsGen::new(
            PointsConfig {
                clusters: 0,
                ..PointsConfig::default()
            },
            1,
        );
    }

    #[test]
    fn dist2_is_squared_euclidean() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        assert!((a.dist2(&b) - 25.0).abs() < 1e-12);
    }
}
