//! # flowmark-datagen
//!
//! Deterministic synthetic data generators replacing the datasets the paper
//! used but which we cannot ship (Wikipedia dumps, TeraGen output, HiBench
//! K-Means records, and the Twitter / Friendster / WebDataCommons graphs).
//!
//! Each generator is seeded and pure: the same seed always yields the same
//! bytes, so real-engine runs, tests and benchmarks are reproducible. The
//! substitutions preserve the statistical properties the workloads are
//! sensitive to:
//!
//! - [`text`] — Zipf-distributed word frequencies (Word Count aggregation
//!   skew, Grep match selectivity);
//! - [`terasort`] — Hadoop TeraGen-format 100-byte records with uniform
//!   10-byte keys (range-partitioner interaction);
//! - [`points`] — Gaussian clusters in 2-D (K-Means convergence structure);
//! - [`graph`] — R-MAT power-law graphs with presets matching Table IV's
//!   node/edge counts and sizes;
//! - [`nexmark`] — Nexmark-style auction streams (persons / auctions /
//!   bids with logical event times) for the streaming workload family.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod graph;
pub mod nexmark;
pub mod points;
pub mod terasort;
pub mod text;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Creates the crate-standard seeded RNG.
///
/// `SmallRng` (xoshiro-based) is deterministic for a fixed rand version and
/// fast enough to generate gigabytes per second, per the HPC guides'
/// recommendation to keep generation off the critical path.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
