//! Graph generation for Page Rank and Connected Components.
//!
//! The paper uses three real graphs (Table IV): a Small Twitter social graph
//! (24.7 M vertices / 0.8 B edges, 13.7 GB), a Medium Friendster graph
//! (65.6 M / 1.8 B, 30.1 GB) and the Large WebDataCommons hyperlink graph
//! (1.7 B / 64 B, 1.2 TB). All three are heavy-tailed; we substitute R-MAT
//! graphs (Chakrabarti et al.) whose parameters reproduce the power-law
//! degree skew, with presets matching Table IV's vertex/edge counts and
//! on-disk sizes. Real-engine runs use [`GraphPreset::scaled`]-down
//! instances; the simulator uses the full-size preset metadata.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::seeded_rng;

/// A directed edge (source, target).
pub type Edge = (u64, u64);

/// R-MAT quadrant probabilities. The classic (0.57, 0.19, 0.19, 0.05)
/// parameters yield the power-law degree distributions observed in web and
/// social graphs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

impl RmatParams {
    /// The implied bottom-right probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Seeded R-MAT edge generator over `2^scale` vertices.
#[derive(Debug)]
pub struct RmatGen {
    scale: u32,
    params: RmatParams,
    rng: rand::rngs::SmallRng,
}

impl RmatGen {
    /// Creates a generator for a graph with `2^scale` vertices.
    ///
    /// # Panics
    /// Panics when probabilities are invalid or scale is 0 or > 40.
    pub fn new(scale: u32, params: RmatParams, seed: u64) -> Self {
        assert!(scale > 0 && scale <= 40, "scale must be in 1..=40");
        let d = params.d();
        assert!(
            params.a > 0.0 && params.b >= 0.0 && params.c >= 0.0 && d >= 0.0,
            "invalid RMAT probabilities"
        );
        Self {
            scale,
            params,
            rng: seeded_rng(seed),
        }
    }

    /// Number of vertices (`2^scale`).
    pub fn vertex_count(&self) -> u64 {
        1u64 << self.scale
    }

    /// Generates one edge by recursive quadrant descent.
    pub fn edge(&mut self) -> Edge {
        let mut src = 0u64;
        let mut dst = 0u64;
        let ab = self.params.a + self.params.b;
        let abc = ab + self.params.c;
        for _ in 0..self.scale {
            src <<= 1;
            dst <<= 1;
            let u: f64 = self.rng.gen();
            if u < self.params.a {
                // top-left: no bits set
            } else if u < ab {
                dst |= 1;
            } else if u < abc {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        (src, dst)
    }

    /// Generates `n` edges (self-loops allowed, like raw web crawls).
    pub fn edges(&mut self, n: usize) -> Vec<Edge> {
        (0..n).map(|_| self.edge()).collect()
    }
}

/// Table IV graph presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphPreset {
    /// Twitter social graph: 24.7 M vertices, 0.8 B edges, 13.7 GB.
    Small,
    /// Friendster: 65.6 M vertices, 1.8 B edges, 30.1 GB.
    Medium,
    /// WDC hyperlink graph: 1.7 B vertices, 64 B edges, 1.2 TB.
    Large,
}

impl GraphPreset {
    /// All presets in Table IV order.
    pub const ALL: [GraphPreset; 3] = [GraphPreset::Small, GraphPreset::Medium, GraphPreset::Large];

    /// Vertex count at paper scale.
    pub fn vertices(self) -> u64 {
        match self {
            GraphPreset::Small => 24_700_000,
            GraphPreset::Medium => 65_600_000,
            GraphPreset::Large => 1_700_000_000,
        }
    }

    /// Edge count at paper scale.
    pub fn edges(self) -> u64 {
        match self {
            GraphPreset::Small => 800_000_000,
            GraphPreset::Medium => 1_800_000_000,
            GraphPreset::Large => 64_000_000_000,
        }
    }

    /// On-disk size in bytes at paper scale (Table IV).
    pub fn size_bytes(self) -> u64 {
        match self {
            GraphPreset::Small => (13.7 * 1e9) as u64,
            GraphPreset::Medium => (30.1 * 1e9) as u64,
            GraphPreset::Large => (1.2 * 1e12) as u64,
        }
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            GraphPreset::Small => "Small",
            GraphPreset::Medium => "Medium",
            GraphPreset::Large => "Large",
        }
    }

    /// Average out-degree, which the substitution preserves.
    pub fn avg_degree(self) -> f64 {
        self.edges() as f64 / self.vertices() as f64
    }

    /// Builds a laptop-scale instance preserving the preset's edge/vertex
    /// ratio: `2^scale` vertices and `avg_degree × 2^scale` edges.
    pub fn scaled(self, scale: u32, seed: u64) -> ScaledGraph {
        let mut gen = RmatGen::new(scale, RmatParams::default(), seed);
        let n_edges = (self.avg_degree() * gen.vertex_count() as f64).round() as usize;
        let edges = gen.edges(n_edges);
        ScaledGraph {
            preset: self,
            vertices: gen.vertex_count(),
            edges,
        }
    }
}

/// A concrete scaled-down graph instance.
#[derive(Debug, Clone)]
pub struct ScaledGraph {
    /// The preset this instance was scaled from.
    pub preset: GraphPreset,
    /// Vertex id space size.
    pub vertices: u64,
    /// Edge list.
    pub edges: Vec<Edge>,
}

impl ScaledGraph {
    /// Out-degree histogram over occupied vertices.
    pub fn out_degrees(&self) -> std::collections::HashMap<u64, u64> {
        let mut d = std::collections::HashMap::new();
        for &(s, _) in &self.edges {
            *d.entry(s).or_insert(0) += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_edges_in_range() {
        let mut g = RmatGen::new(10, RmatParams::default(), 1);
        for (s, d) in g.edges(10_000) {
            assert!(s < 1024 && d < 1024);
        }
    }

    #[test]
    fn rmat_is_deterministic() {
        let mut a = RmatGen::new(12, RmatParams::default(), 77);
        let mut b = RmatGen::new(12, RmatParams::default(), 77);
        assert_eq!(a.edges(1000), b.edges(1000));
    }

    #[test]
    fn rmat_degree_distribution_is_skewed() {
        let g = GraphPreset::Small.scaled(12, 5);
        let degrees = g.out_degrees();
        let max = degrees.values().copied().max().unwrap();
        let mean = g.edges.len() as f64 / degrees.len() as f64;
        // Power-law: the hottest vertex far exceeds the mean degree.
        assert!(
            max as f64 > 10.0 * mean,
            "max {max} not ≫ mean {mean:.1}; degree distribution too uniform"
        );
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_panics() {
        let _ = RmatGen::new(0, RmatParams::default(), 1);
    }

    #[test]
    fn presets_match_table_iv() {
        assert_eq!(GraphPreset::Small.vertices(), 24_700_000);
        assert_eq!(GraphPreset::Small.edges(), 800_000_000);
        assert_eq!(GraphPreset::Medium.vertices(), 65_600_000);
        assert_eq!(GraphPreset::Medium.edges(), 1_800_000_000);
        assert_eq!(GraphPreset::Large.vertices(), 1_700_000_000);
        assert_eq!(GraphPreset::Large.edges(), 64_000_000_000);
        // Sizes: 13.7 GB, 30.1 GB, 1.2 TB.
        assert!((GraphPreset::Small.size_bytes() as f64 / 1e9 - 13.7).abs() < 0.1);
        assert!((GraphPreset::Medium.size_bytes() as f64 / 1e9 - 30.1).abs() < 0.1);
        assert!((GraphPreset::Large.size_bytes() as f64 / 1e12 - 1.2).abs() < 0.01);
    }

    #[test]
    fn scaled_preserves_degree_ratio() {
        let g = GraphPreset::Medium.scaled(10, 2);
        let ratio = g.edges.len() as f64 / g.vertices as f64;
        assert!((ratio - GraphPreset::Medium.avg_degree()).abs() < 0.5);
        assert_eq!(g.preset, GraphPreset::Medium);
    }

    #[test]
    fn rmat_params_sum_to_one() {
        let p = RmatParams::default();
        assert!((p.a + p.b + p.c + p.d() - 1.0).abs() < 1e-12);
    }
}
