//! Nexmark-style auction event stream (persons, auctions, bids).
//!
//! A deterministic stand-in for the Nexmark benchmark's generator: an
//! interleaved stream of [`Person`] registrations, [`Auction`] openings
//! and [`Bid`]s, stamped with monotonically increasing logical event
//! times. Identities are plain `u64` codes (state, city and category are
//! small numeric domains) so downstream operators can hash, join and
//! digest them without string handling.
//!
//! The interleave ratio follows the original benchmark's 1 : 3 : 46
//! person : auction : bid proportions, and bids reference a recent
//! auction with a hot-item skew (half of all bids hit one of the 4 most
//! recent auctions), so windowed aggregates see realistic key skew.

use rand::Rng;

use crate::seeded_rng;

/// Number of distinct person states (the q3 filter's domain).
pub const STATES: u64 = 8;
/// Number of distinct person cities.
pub const CITIES: u64 = 100;
/// Number of distinct auction categories (the q3 join's filter domain).
pub const CATEGORIES: u64 = 16;

/// A person registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Person {
    /// Unique person id.
    pub id: u64,
    /// Home state code, `0..STATES`.
    pub state: u64,
    /// Home city code, `0..CITIES`.
    pub city: u64,
}

/// An auction opening.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Auction {
    /// Unique auction id.
    pub id: u64,
    /// The person who opened it (always a previously generated id).
    pub seller: u64,
    /// Category code, `0..CATEGORIES`.
    pub category: u64,
}

/// A bid on an open auction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bid {
    /// The auction being bid on (always a previously generated id).
    pub auction: u64,
    /// Bid price.
    pub price: u64,
}

/// One event of the auction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NexmarkEvent {
    /// A person registration.
    Person(Person),
    /// An auction opening.
    Auction(Auction),
    /// A bid.
    Bid(Bid),
}

/// Generator knobs.
#[derive(Debug, Clone)]
pub struct NexmarkConfig {
    /// Maximum tick gap between consecutive events (gaps are uniform in
    /// `1..=gap_max`).
    pub gap_max: u64,
    /// Out of every 50 events: 1 person, 3 auctions, 46 bids.
    pub events_per_person: u64,
}

impl Default for NexmarkConfig {
    fn default() -> Self {
        Self {
            gap_max: 4,
            events_per_person: 50,
        }
    }
}

/// Generates `n` events in event-time order: `(time, event)` pairs with
/// strictly increasing-or-equal times. The same `(seed, n, config)`
/// always yields the same stream.
pub fn generate(seed: u64, n: usize, config: &NexmarkConfig) -> Vec<(u64, NexmarkEvent)> {
    let mut rng = seeded_rng(seed ^ 0x4E45_584D_4152_4B21);
    let per = config.events_per_person.max(5);
    let mut out = Vec::with_capacity(n);
    let mut time = 0u64;
    let mut persons = 0u64;
    let mut auctions = 0u64;
    for i in 0..n as u64 {
        time += rng.gen_range(1..=config.gap_max.max(1));
        let slot = i % per;
        // First event is always a person, the next two are auctions, so
        // sellers and bid targets always exist.
        let ev = if slot == 0 || persons == 0 {
            persons += 1;
            NexmarkEvent::Person(Person {
                id: persons - 1,
                state: rng.gen_range(0..STATES),
                city: rng.gen_range(0..CITIES),
            })
        } else if slot <= 3 || auctions == 0 {
            auctions += 1;
            NexmarkEvent::Auction(Auction {
                id: auctions - 1,
                seller: rng.gen_range(0..persons),
                category: rng.gen_range(0..CATEGORIES),
            })
        } else {
            // Hot-item skew: half the bids target the 4 newest auctions.
            let auction = if rng.gen_range(0..2) == 0 {
                auctions - 1 - rng.gen_range(0..auctions.min(4))
            } else {
                rng.gen_range(0..auctions)
            };
            NexmarkEvent::Bid(Bid {
                auction,
                price: rng.gen_range(1..=10_000),
            })
        };
        out.push((time, ev));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7, 500, &NexmarkConfig::default());
        let b = generate(7, 500, &NexmarkConfig::default());
        assert_eq!(a, b);
        let c = generate(8, 500, &NexmarkConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn times_are_monotone_and_references_valid() {
        let events = generate(11, 2_000, &NexmarkConfig::default());
        let mut last = 0;
        let mut persons = 0u64;
        let mut auctions = 0u64;
        for (t, ev) in &events {
            assert!(*t >= last);
            last = *t;
            match ev {
                NexmarkEvent::Person(p) => {
                    assert_eq!(p.id, persons, "person ids are dense");
                    assert!(p.state < STATES);
                    assert!(p.city < CITIES);
                    persons += 1;
                }
                NexmarkEvent::Auction(a) => {
                    assert_eq!(a.id, auctions, "auction ids are dense");
                    assert!(a.seller < persons, "seller must already exist");
                    assert!(a.category < CATEGORIES);
                    auctions += 1;
                }
                NexmarkEvent::Bid(b) => {
                    assert!(b.auction < auctions, "bid target must already exist");
                    assert!(b.price >= 1);
                }
            }
        }
        // Roughly the 1:3:46 interleave.
        let bids = events.len() as u64 - persons - auctions;
        assert!(persons >= 30 && persons <= 50, "{persons}");
        assert!(auctions >= 100 && auctions <= 140, "{auctions}");
        assert!(bids > 1_700, "{bids}");
    }
}
