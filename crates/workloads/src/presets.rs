//! Experiment configurations from the paper's tables.
//!
//! Tables II, III, V and VI give the exact parameter values used per
//! cluster size; this module encodes them verbatim (with documented choices
//! where the paper omits a value, e.g. Table VII's memory settings).

use flowmark_core::config::{ClusterConfig, FlinkConfig, RunConfig, SparkConfig};

/// Table II: Word Count and Grep, fixed 24 GB per node.
///
/// "Other parameters: HDFS.block.size = 256MB, flink.nw.buffers =
/// Nodes*2048, buffer.size = 64KB."
pub fn wordcount_config(nodes: u32) -> RunConfig {
    let (spark_par, flink_par, flink_mem) = match nodes {
        2 => (192, 32, 4.0),
        4 => (384, 64, 4.0),
        8 => (768, 128, 4.0),
        16 => (1536, 256, 4.0),
        32 => (1024, 512, 11.0),
        // Interpolate outside the table: Spark = cores × 6, Flink = cores.
        n => (n * 16 * 6, n * 16, 4.0),
    };
    RunConfig {
        cluster: ClusterConfig {
            nodes,
            cores_per_node: 16,
            ram_gb: 128.0,
            hdfs_block_mb: 256,
        },
        spark: SparkConfig {
            default_parallelism: spark_par,
            executor_memory_gb: 22.0,
            shuffle_file_buffer_kb: 64,
            ..SparkConfig::default()
        },
        flink: FlinkConfig {
            default_parallelism: flink_par,
            taskmanager_memory_gb: flink_mem,
            network_buffers: nodes * 2048,
            buffer_size_kb: 64,
            ..FlinkConfig::default()
        },
    }
}

/// Table II applies to Grep too.
pub fn grep_config(nodes: u32) -> RunConfig {
    wordcount_config(nodes)
}

/// Table III: Tera Sort.
///
/// "Both Flink and Spark use 62 GB memory. The number of partitions is
/// equal to the Flink parallelism number. Other parameters:
/// HDFS.block.size = 1024MB, flink.nw.buffers = Nodes*1024,
/// buffer.size = 128KB."
pub fn terasort_config(nodes: u32) -> RunConfig {
    let (spark_par, flink_par) = match nodes {
        17 => (544, 134),
        34 => (1088, 270),
        63 => (1984, 500),
        55 => (1760, 475),
        73 => (2336, 580),
        97 => (3104, 750),
        27 => (864, 216), // the 27-node / 75 GB-per-node ablation (§VI-C)
        n => (n * 32, n * 8),
    };
    RunConfig {
        cluster: ClusterConfig {
            nodes,
            cores_per_node: 16,
            ram_gb: 128.0,
            hdfs_block_mb: 1024,
        },
        spark: SparkConfig {
            default_parallelism: spark_par,
            executor_memory_gb: 62.0,
            shuffle_file_buffer_kb: 128,
            ..SparkConfig::default()
        },
        flink: FlinkConfig {
            default_parallelism: flink_par,
            taskmanager_memory_gb: 62.0,
            network_buffers: nodes * 1024,
            buffer_size_kb: 128,
            ..FlinkConfig::default()
        },
    }
}

/// Table V: Small graph — formulas, not fixed values.
///
/// spark.def.parallelism = nodes × cores × 6; flink.def.parallelism =
/// nodes × cores; spark.edge.partition = nodes × cores;
/// flink.nw.buffers = cores² × nodes × 16.
pub fn small_graph_config(nodes: u32) -> RunConfig {
    let cores = 16u32;
    let total = nodes * cores;
    RunConfig {
        cluster: ClusterConfig {
            nodes,
            cores_per_node: cores,
            ram_gb: 128.0,
            hdfs_block_mb: 256,
        },
        spark: SparkConfig {
            default_parallelism: total * 6,
            executor_memory_gb: 22.0,
            edge_partitions: Some(total),
            ..SparkConfig::default()
        },
        flink: FlinkConfig {
            default_parallelism: total,
            taskmanager_memory_gb: 18.0,
            network_buffers: cores * cores * nodes * 16,
            ..FlinkConfig::default()
        },
    }
}

/// Table VI: Medium graph — fixed values per cluster size.
pub fn medium_graph_config(nodes: u32) -> RunConfig {
    let (spark_par, flink_par, spark_mem, flink_mem, edge_partitions) = match nodes {
        24 => (1440, 288, 22.0, 18.0, 1440),
        27 => (1620, 297, 96.0, 18.0, 256),
        34 => (1632, 442, 62.0, 62.0, 320),
        55 => (2640, 715, 62.0, 62.0, 480),
        n => (n * 16 * 6, n * 16, 62.0, 62.0, n * 16),
    };
    RunConfig {
        cluster: ClusterConfig {
            nodes,
            cores_per_node: 16,
            ram_gb: 128.0,
            hdfs_block_mb: 256,
        },
        spark: SparkConfig {
            default_parallelism: spark_par,
            executor_memory_gb: spark_mem,
            edge_partitions: Some(edge_partitions),
            ..SparkConfig::default()
        },
        flink: FlinkConfig {
            default_parallelism: flink_par,
            taskmanager_memory_gb: flink_mem,
            network_buffers: 16 * 16 * nodes * 16,
            ..FlinkConfig::default()
        },
    }
}

/// Large graph (Table VII). The paper does not list the memory settings;
/// we use 62 GB Spark executors (as TeraSort) and 18 GB Flink task
/// managers (as the graph configs of Tables V/VI), and reproduce §VI-E's
/// parallelism note: at 97 nodes Flink runs at ¾ of the cores
/// ("we set the parallelism to three quarters of the total number of
/// cores in order to allocate more memory to each CoGroup operator").
pub fn large_graph_config(nodes: u32) -> RunConfig {
    let cores = 16u32;
    let total = nodes * cores;
    let flink_par = if nodes >= 97 { total * 3 / 4 } else { total };
    RunConfig {
        cluster: ClusterConfig {
            nodes,
            cores_per_node: cores,
            ram_gb: 128.0,
            hdfs_block_mb: 1024,
        },
        spark: SparkConfig {
            default_parallelism: total * 6,
            executor_memory_gb: 62.0,
            // §VI-E: load only succeeded once edge partitions were doubled.
            edge_partitions: Some(total * 2),
            ..SparkConfig::default()
        },
        flink: FlinkConfig {
            default_parallelism: flink_par,
            taskmanager_memory_gb: 18.0,
            network_buffers: cores * cores * nodes * 16,
            ..FlinkConfig::default()
        },
    }
}

/// K-Means (§VI-D): 51 GB / 1.2 B samples, 8-24 nodes. The paper reuses
/// the batch parameter style; we use the §IV formulas with 22 GB Spark
/// executors and 11 GB Flink task managers.
pub fn kmeans_config(nodes: u32) -> RunConfig {
    let cores = 16u32;
    let total = nodes * cores;
    RunConfig {
        cluster: ClusterConfig {
            nodes,
            cores_per_node: cores,
            ram_gb: 128.0,
            hdfs_block_mb: 256,
        },
        spark: SparkConfig {
            default_parallelism: total * 6,
            executor_memory_gb: 22.0,
            ..SparkConfig::default()
        },
        flink: FlinkConfig {
            default_parallelism: total,
            taskmanager_memory_gb: 11.0,
            network_buffers: nodes * 2048,
            ..FlinkConfig::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_core::config::Framework;

    #[test]
    fn table_ii_values_verbatim() {
        for (nodes, spark, flink) in [
            (2u32, 192u32, 32u32),
            (4, 384, 64),
            (8, 768, 128),
            (16, 1536, 256),
            (32, 1024, 512),
        ] {
            let c = wordcount_config(nodes);
            assert_eq!(c.parallelism(Framework::Spark), spark, "{nodes} nodes");
            assert_eq!(c.parallelism(Framework::Flink), flink, "{nodes} nodes");
            assert_eq!(c.flink.network_buffers, nodes * 2048);
            assert!(c.validate().is_ok(), "{nodes} nodes must validate");
        }
        assert_eq!(wordcount_config(32).flink.taskmanager_memory_gb, 11.0);
        assert_eq!(wordcount_config(16).flink.taskmanager_memory_gb, 4.0);
        assert_eq!(wordcount_config(2).spark.executor_memory_gb, 22.0);
    }

    #[test]
    fn table_iii_values_verbatim() {
        for (nodes, spark, flink) in [
            (17u32, 544u32, 134u32),
            (34, 1088, 270),
            (63, 1984, 500),
            (55, 1760, 475),
            (73, 2336, 580),
            (97, 3104, 750),
        ] {
            let c = terasort_config(nodes);
            assert_eq!(c.parallelism(Framework::Spark), spark);
            assert_eq!(c.parallelism(Framework::Flink), flink);
            assert_eq!(c.spark.executor_memory_gb, 62.0);
            assert_eq!(c.flink.taskmanager_memory_gb, 62.0);
            assert_eq!(c.cluster.hdfs_block_mb, 1024);
            assert!(c.validate().is_ok(), "{nodes} nodes must validate");
        }
    }

    #[test]
    fn table_v_formulas() {
        let c = small_graph_config(27);
        assert_eq!(c.spark.default_parallelism, 27 * 16 * 6);
        assert_eq!(c.flink.default_parallelism, 27 * 16);
        assert_eq!(c.spark.edge_partitions, Some(27 * 16));
        assert_eq!(c.flink.network_buffers, 16 * 16 * 27 * 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn table_vi_values_verbatim() {
        for (nodes, spark, flink, smem, fmem, ep) in [
            (24u32, 1440u32, 288u32, 22.0, 18.0, 1440u32),
            (27, 1620, 297, 96.0, 18.0, 256),
            (34, 1632, 442, 62.0, 62.0, 320),
            (55, 2640, 715, 62.0, 62.0, 480),
        ] {
            let c = medium_graph_config(nodes);
            assert_eq!(c.spark.default_parallelism, spark);
            assert_eq!(c.flink.default_parallelism, flink);
            assert_eq!(c.spark.executor_memory_gb, smem);
            assert_eq!(c.flink.taskmanager_memory_gb, fmem);
            assert_eq!(c.spark.edge_partitions, Some(ep));
            assert!(c.validate().is_ok(), "{nodes} nodes must validate");
        }
    }

    #[test]
    fn large_graph_reduces_flink_parallelism_at_97() {
        assert_eq!(large_graph_config(97).flink.default_parallelism, 97 * 16 * 3 / 4);
        assert_eq!(large_graph_config(27).flink.default_parallelism, 27 * 16);
    }
}
