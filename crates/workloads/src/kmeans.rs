//! K-Means (§III, §VI-D): "evaluates the effectiveness of the caching
//! mechanism and the basic transformations", 10 iterations over 1.2 billion
//! 2-D samples.
//!
//! - Spark: per-iteration `map → reduceByKey → collectAsMap` driver loop on
//!   a persisted points RDD (Fig 10's `MC` waves);
//! - Flink: `bulk iterate` with the centroids broadcast per round
//!   (`withBroadcastSet`) — the whole loop deploys once.

use flowmark_core::config::Framework;
use flowmark_dataflow::operator::OperatorKind;
use flowmark_dataflow::plan::{CostAnnotation, IterationKind, LogicalPlan};
use flowmark_datagen::points::Point;
use flowmark_engine::cache::StorageLevel;
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::iterate::bulk_iterate;
use flowmark_engine::spark::SparkContext;

use crate::costs::*;

/// Problem size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansScale {
    /// Number of samples.
    pub points: u64,
    /// Iterations to run (the paper uses 10).
    pub iterations: u32,
}

impl KMeansScale {
    /// The paper's dataset: 1.2 billion samples, 10 iterations.
    pub fn paper() -> Self {
        Self {
            points: 1_200_000_000,
            iterations: 10,
        }
    }
}

/// Builds the annotated simulator plan for one engine.
pub fn plan(fw: Framework, scale: &KMeansScale) -> LogicalPlan {
    let mut body = LogicalPlan::new();
    let cached = body.source_cached(scale.points, KM_POINT_BYTES);
    let assign = body.unary(
        cached,
        OperatorKind::Map,
        CostAnnotation::new(1.0, KM_ASSIGN_NS, KM_POINT_BYTES + 8.0),
    );
    let agg_sel = KM_CENTERS / scale.points as f64;
    match fw {
        Framework::Spark => {
            let rbk = body.unary(
                assign,
                OperatorKind::ReduceByKey,
                CostAnnotation::new(agg_sel, 200.0, 24.0),
            );
            body.unary(
                rbk,
                OperatorKind::CollectAsMap,
                CostAnnotation::new(1.0, 100.0, 24.0),
            );
        }
        Framework::Flink => {
            body.unary(
                assign,
                OperatorKind::GroupReduce,
                CostAnnotation::new(agg_sel, 200.0, 24.0),
            );
        }
    }

    let mut p = LogicalPlan::new();
    let src = p.source(scale.points, KM_TEXT_BYTES);
    let parse = p.unary(
        src,
        OperatorKind::Map,
        CostAnnotation::new(1.0, KM_PARSE_NS, KM_POINT_BYTES),
    );
    let it = p.iterate(parse, IterationKind::Bulk, scale.iterations, body, 1.0);
    p.unary(
        it,
        OperatorKind::DataSink,
        CostAnnotation::new(agg_sel, 100.0, 24.0),
    );
    p
}

/// Table I row.
pub fn operator_table(fw: Framework) -> Vec<OperatorKind> {
    use OperatorKind::*;
    match fw {
        Framework::Spark => vec![Map, ReduceByKey, CollectAsMap, DataSink],
        Framework::Flink => vec![Map, GroupReduce, BulkIteration, WithBroadcastSet, DataSink],
    }
}

fn nearest(centers: &[Point], p: &Point) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d = p.dist2(c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Per-center running sums for one round.
#[derive(Debug, Clone, Default)]
pub struct Partial {
    sums: Vec<(f64, f64, u64)>,
}

impl Partial {
    fn new(k: usize) -> Self {
        Self {
            sums: vec![(0.0, 0.0, 0); k],
        }
    }

    fn add(&mut self, center: usize, p: &Point) {
        let s = &mut self.sums[center];
        s.0 += p.x;
        s.1 += p.y;
        s.2 += 1;
    }

    fn merge(mut self, other: Partial) -> Partial {
        for (a, b) in self.sums.iter_mut().zip(other.sums) {
            a.0 += b.0;
            a.1 += b.1;
            a.2 += b.2;
        }
        self
    }

    fn centers(&self, fallback: &[Point]) -> Vec<Point> {
        self.sums
            .iter()
            .zip(fallback)
            .map(|((x, y, n), old)| {
                if *n > 0 {
                    Point {
                        x: x / *n as f64,
                        y: y / *n as f64,
                    }
                } else {
                    *old
                }
            })
            .collect()
    }
}

/// Runs K-Means on the staged engine: driver loop over a persisted RDD.
pub fn run_spark(
    sc: &SparkContext,
    points: Vec<Point>,
    mut centers: Vec<Point>,
    iterations: u32,
    partitions: usize,
) -> Vec<Point> {
    let k = centers.len();
    let rdd = sc
        .parallelize(points, partitions)
        .persist(StorageLevel::MemoryOnly);
    for _ in 0..iterations {
        let current = centers.clone();
        let assigned = rdd.map(move |p| (nearest(&current, p), (p.x, p.y, 1u64)));
        let sums = assigned
            .reduce_by_key(|a, b| {
                a.0 += b.0;
                a.1 += b.1;
                a.2 += b.2;
            })
            .collect_as_map();
        let mut partial = Partial::new(k);
        for (c, (x, y, n)) in sums {
            partial.sums[c] = (x, y, n);
        }
        centers = partial.centers(&centers);
        sc.metrics().add_iterations_run(1);
    }
    centers
}

/// Iteration state: the broadcast centroids, plus the in-flight partial
/// sums while a round's partials are being merged.
#[derive(Debug, Clone)]
struct KState {
    centers: Vec<Point>,
    partial: Option<Partial>,
}

/// Runs K-Means on the pipelined engine: a native bulk iteration with the
/// centroids as broadcast state.
pub fn run_flink(
    env: &FlinkEnv,
    points: Vec<Point>,
    centers: Vec<Point>,
    iterations: u32,
) -> Vec<Point> {
    let k = centers.len();
    let parallelism = env.parallelism();
    let chunk = points.len().div_ceil(parallelism).max(1);
    let parts: Vec<Vec<Point>> = points.chunks(chunk).map(<[Point]>::to_vec).collect();
    let state = KState {
        centers,
        partial: None,
    };
    let result = bulk_iterate(
        env,
        parts,
        state,
        iterations,
        |s, part| {
            let mut partial = Partial::new(k);
            for p in part {
                partial.add(nearest(&s.centers, p), p);
            }
            KState {
                centers: s.centers.clone(),
                partial: Some(partial),
            }
        },
        |a, b| KState {
            centers: a.centers,
            partial: match (a.partial, b.partial) {
                (Some(x), Some(y)) => Some(x.merge(y)),
                (x, y) => x.or(y),
            },
        },
        |s| KState {
            centers: s
                .partial
                .as_ref()
                .map(|p| p.centers(&s.centers))
                .unwrap_or(s.centers),
            partial: None,
        },
    );
    result.centers
}

/// Sequential oracle.
pub fn oracle(points: &[Point], mut centers: Vec<Point>, iterations: u32) -> Vec<Point> {
    let k = centers.len();
    for _ in 0..iterations {
        let mut partial = Partial::new(k);
        for p in points {
            partial.add(nearest(&centers, p), p);
        }
        centers = partial.centers(&centers);
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_datagen::points::{PointsConfig, PointsGen};

    fn dataset(n: usize) -> (Vec<Point>, Vec<Point>) {
        let mut g = PointsGen::new(
            PointsConfig {
                clusters: 4,
                box_half_width: 100.0,
                sigma: 3.0,
            },
            5,
        );
        let centers = g.true_centers().to_vec();
        // Perturbed initial centers.
        let init: Vec<Point> = centers
            .iter()
            .map(|c| Point {
                x: c.x + 10.0,
                y: c.y - 8.0,
            })
            .collect();
        (g.points(n), init)
    }

    fn close_points(a: &[Point], b: &[Point], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(p, q)| (p.x - q.x).abs() < tol && (p.y - q.y).abs() < tol)
    }

    #[test]
    fn both_engines_match_the_oracle() {
        let (points, init) = dataset(4000);
        let expect = oracle(&points, init.clone(), 10);
        let sc = SparkContext::new(4, 64 << 20);
        let spark = run_spark(&sc, points.clone(), init.clone(), 10, 4);
        assert!(close_points(&spark, &expect, 1e-9), "spark drifted");
        let env = FlinkEnv::new(4);
        let flink = run_flink(&env, points, init, 10);
        assert!(close_points(&flink, &expect, 1e-9), "flink drifted");
    }

    #[test]
    fn converges_to_true_centers() {
        let (points, init) = dataset(8000);
        let out = oracle(&points, init, 10);
        // Every true cluster center has a learned center within ~1 sigma.
        let g = PointsGen::new(
            PointsConfig {
                clusters: 4,
                box_half_width: 100.0,
                sigma: 3.0,
            },
            5,
        );
        for c in g.true_centers() {
            let best = out
                .iter()
                .map(|p| p.dist2(c).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(best < 3.0, "center {c:?} missed by {best}");
        }
    }

    #[test]
    fn flink_schedules_once_spark_unrolls() {
        let (points, init) = dataset(2000);
        let sc = SparkContext::new(4, 64 << 20);
        let _ = run_spark(&sc, points.clone(), init.clone(), 8, 4);
        let env = FlinkEnv::new(4);
        let _ = run_flink(&env, points, init, 8);
        // Spark: ≥ partitions × iterations task launches; Flink: one wave.
        assert!(sc.metrics().tasks_launched() >= 4 * 8);
        assert!(env.metrics().tasks_launched() <= 8);
        assert_eq!(env.metrics().iterations_run(), 8);
    }

    #[test]
    fn spark_cache_serves_iterations() {
        let (points, init) = dataset(1000);
        let sc = SparkContext::new(2, 64 << 20);
        let _ = run_spark(&sc, points, init, 5, 2);
        // Iterations 2..5 must hit the persisted points RDD.
        assert!(sc.metrics().cache_hits() >= 2 * 4);
    }

    #[test]
    fn plans_validate_and_iterate() {
        let scale = KMeansScale::paper();
        for fw in Framework::BOTH {
            let p = plan(fw, &scale);
            assert!(p.validate().is_ok(), "{fw}");
            let it = p
                .nodes()
                .iter()
                .find(|n| n.iteration.is_some())
                .expect("iteration node");
            assert_eq!(it.iteration.as_ref().unwrap().iterations, 10);
        }
    }
}
