//! K-Means (§III, §VI-D): "evaluates the effectiveness of the caching
//! mechanism and the basic transformations", 10 iterations over 1.2 billion
//! 2-D samples.
//!
//! - Spark: per-iteration `map → reduceByKey → collectAsMap` driver loop on
//!   a persisted points RDD (Fig 10's `MC` waves);
//! - Flink: `bulk iterate` with the centroids broadcast per round
//!   (`withBroadcastSet`) — the whole loop deploys once.

use flowmark_columnar::{kernels, F64Batch};
use flowmark_core::config::Framework;
use flowmark_dataflow::operator::OperatorKind;
use flowmark_dataflow::plan::{CostAnnotation, IterationKind, LogicalPlan};
use flowmark_datagen::points::Point;
use flowmark_engine::cache::StorageLevel;
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::iterate::bulk_iterate;
use flowmark_engine::spark::SparkContext;

use crate::costs::*;

/// Problem size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansScale {
    /// Number of samples.
    pub points: u64,
    /// Iterations to run (the paper uses 10).
    pub iterations: u32,
}

impl KMeansScale {
    /// The paper's dataset: 1.2 billion samples, 10 iterations.
    pub fn paper() -> Self {
        Self {
            points: 1_200_000_000,
            iterations: 10,
        }
    }
}

/// Builds the annotated simulator plan for one engine.
pub fn plan(fw: Framework, scale: &KMeansScale) -> LogicalPlan {
    let mut body = LogicalPlan::new();
    let cached = body.source_cached(scale.points, KM_POINT_BYTES);
    let assign = body.unary(
        cached,
        OperatorKind::Map,
        CostAnnotation::new(1.0, KM_ASSIGN_NS, KM_POINT_BYTES + 8.0),
    );
    let agg_sel = KM_CENTERS / scale.points as f64;
    match fw {
        Framework::Spark => {
            let rbk = body.unary(
                assign,
                OperatorKind::ReduceByKey,
                CostAnnotation::new(agg_sel, 200.0, 24.0),
            );
            body.unary(
                rbk,
                OperatorKind::CollectAsMap,
                CostAnnotation::new(1.0, 100.0, 24.0),
            );
        }
        Framework::Flink => {
            body.unary(
                assign,
                OperatorKind::GroupReduce,
                CostAnnotation::new(agg_sel, 200.0, 24.0),
            );
        }
    }

    let mut p = LogicalPlan::new();
    let src = p.source(scale.points, KM_TEXT_BYTES);
    let parse = p.unary(
        src,
        OperatorKind::Map,
        CostAnnotation::new(1.0, KM_PARSE_NS, KM_POINT_BYTES),
    );
    let it = p.iterate(parse, IterationKind::Bulk, scale.iterations, body, 1.0);
    p.unary(
        it,
        OperatorKind::DataSink,
        CostAnnotation::new(agg_sel, 100.0, 24.0),
    );
    p
}

/// Table I row.
pub fn operator_table(fw: Framework) -> Vec<OperatorKind> {
    use OperatorKind::*;
    match fw {
        Framework::Spark => vec![Map, ReduceByKey, CollectAsMap, DataSink],
        Framework::Flink => vec![Map, GroupReduce, BulkIteration, WithBroadcastSet, DataSink],
    }
}

fn nearest(centers: &[Point], p: &Point) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d = p.dist2(c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Per-center running sums for one round.
#[derive(Debug, Clone, Default)]
pub struct Partial {
    sums: Vec<(f64, f64, u64)>,
}

impl Partial {
    fn new(k: usize) -> Self {
        Self {
            sums: vec![(0.0, 0.0, 0); k],
        }
    }

    fn add(&mut self, center: usize, p: &Point) {
        let s = &mut self.sums[center];
        s.0 += p.x;
        s.1 += p.y;
        s.2 += 1;
    }

    fn merge(mut self, other: Partial) -> Partial {
        for (a, b) in self.sums.iter_mut().zip(other.sums) {
            a.0 += b.0;
            a.1 += b.1;
            a.2 += b.2;
        }
        self
    }

    fn centers(&self, fallback: &[Point]) -> Vec<Point> {
        self.sums
            .iter()
            .zip(fallback)
            .map(|((x, y, n), old)| {
                if *n > 0 {
                    Point {
                        x: x / *n as f64,
                        y: y / *n as f64,
                    }
                } else {
                    *old
                }
            })
            .collect()
    }
}

/// Point dimensionality (the paper's samples are 2-D).
const DIMS: usize = 2;

/// Packs a point slice into dim-major [`F64Batch`]es of at most
/// [`flowmark_columnar::DEFAULT_BATCH_ROWS`] rows each.
fn batch_points(points: &[Point]) -> Vec<F64Batch> {
    if points.is_empty() {
        return vec![F64Batch::new(DIMS)];
    }
    points
        .chunks(flowmark_columnar::DEFAULT_BATCH_ROWS)
        .map(|chunk| {
            F64Batch::from_rows(DIMS, chunk.iter().map(|p| [p.x, p.y]))
        })
        .collect()
}

/// The current centroids as one dim-major batch for the distance kernel.
fn centers_batch(centers: &[Point]) -> F64Batch {
    F64Batch::from_rows(DIMS, centers.iter().map(|c| [c.x, c.y]))
}

/// Folds every point of a partition's batches into per-center sums via the
/// vectorized [`kernels::assign_accumulate`] path, counting the rows it
/// assigned.
fn assign_partition(
    batches: &[F64Batch],
    centers: &F64Batch,
    metrics: &flowmark_engine::metrics::EngineMetrics,
) -> Partial {
    let k = centers.rows();
    let mut sums = vec![0.0f64; DIMS * k];
    let mut counts = vec![0u64; k];
    for b in batches {
        let rows = kernels::assign_accumulate(b, centers, &mut sums, &mut counts);
        metrics.add_batches_processed(1);
        metrics.add_points_assigned_vectorized(rows as u64);
    }
    Partial {
        sums: (0..k).map(|c| (sums[c], sums[k + c], counts[c])).collect(),
    }
}

/// Runs K-Means on the staged engine: driver loop over a persisted RDD of
/// dim-major column batches. Each map task folds its whole partition
/// through [`kernels::assign_accumulate`] and ships exactly `k`
/// `(center, sum)` triples into the `reduceByKey` exchange — the per-point
/// tuple stream of [`run_spark_records`] never materialises.
pub fn run_spark(
    sc: &SparkContext,
    points: Vec<Point>,
    mut centers: Vec<Point>,
    iterations: u32,
    partitions: usize,
) -> Vec<Point> {
    let k = centers.len();
    // Chunk points per partition exactly like `parallelize` would, then
    // batch within each chunk, so partition boundaries (and the per-
    // partition fold order) match the record path.
    let chunk = points.len().div_ceil(partitions).max(1);
    let parts: Vec<Vec<F64Batch>> = points.chunks(chunk).map(batch_points).collect();
    let metrics = sc.metrics().clone();
    let rdd = sc
        .parallelize(parts, partitions)
        .persist(StorageLevel::MemoryOnly);
    for _ in 0..iterations {
        let cb = centers_batch(&centers);
        let m = metrics.clone();
        let sums = rdd
            .map_partitions(move |groups: &[Vec<F64Batch>]| {
                let mut partial: Option<Partial> = None;
                for g in groups {
                    let p = assign_partition(g, &cb, &m);
                    partial = Some(match partial {
                        Some(acc) => acc.merge(p),
                        None => p,
                    });
                }
                partial
                    .unwrap_or_else(|| Partial::new(k))
                    .sums
                    .into_iter()
                    .enumerate()
                    .collect::<Vec<(usize, (f64, f64, u64))>>()
            })
            .reduce_by_key(|a, b| {
                a.0 += b.0;
                a.1 += b.1;
                a.2 += b.2;
            })
            .collect_as_map();
        let mut partial = Partial::new(k);
        for (c, (x, y, n)) in sums {
            partial.sums[c] = (x, y, n);
        }
        centers = partial.centers(&centers);
        sc.metrics().add_iterations_run(1);
    }
    centers
}

/// Runs K-Means on the staged engine record-at-a-time (the pre-columnar
/// plan, kept as the scalar reference for parity tests).
pub fn run_spark_records(
    sc: &SparkContext,
    points: Vec<Point>,
    mut centers: Vec<Point>,
    iterations: u32,
    partitions: usize,
) -> Vec<Point> {
    let k = centers.len();
    let rdd = sc
        .parallelize(points, partitions)
        .persist(StorageLevel::MemoryOnly);
    for _ in 0..iterations {
        let current = centers.clone();
        let assigned = rdd.map(move |p| (nearest(&current, p), (p.x, p.y, 1u64)));
        let sums = assigned
            .reduce_by_key(|a, b| {
                a.0 += b.0;
                a.1 += b.1;
                a.2 += b.2;
            })
            .collect_as_map();
        let mut partial = Partial::new(k);
        for (c, (x, y, n)) in sums {
            partial.sums[c] = (x, y, n);
        }
        centers = partial.centers(&centers);
        sc.metrics().add_iterations_run(1);
    }
    centers
}

/// Iteration state: the broadcast centroids, plus the in-flight partial
/// sums while a round's partials are being merged.
#[derive(Debug, Clone)]
struct KState {
    centers: Vec<Point>,
    partial: Option<Partial>,
}

/// Runs K-Means on the pipelined engine: a native bulk iteration whose
/// workers hold dim-major column batches and fold each round through the
/// vectorized [`kernels::assign_accumulate`] kernel.
pub fn run_flink(
    env: &FlinkEnv,
    points: Vec<Point>,
    centers: Vec<Point>,
    iterations: u32,
) -> Vec<Point> {
    let parallelism = env.parallelism();
    let chunk = points.len().div_ceil(parallelism).max(1);
    let parts: Vec<Vec<F64Batch>> = points.chunks(chunk).map(batch_points).collect();
    let metrics = env.metrics().clone();
    let state = KState {
        centers,
        partial: None,
    };
    let result = bulk_iterate(
        env,
        parts,
        state,
        iterations,
        move |s, part: &[F64Batch]| {
            let cb = centers_batch(&s.centers);
            KState {
                centers: s.centers.clone(),
                partial: Some(assign_partition(part, &cb, &metrics)),
            }
        },
        |a, b| KState {
            centers: a.centers,
            partial: match (a.partial, b.partial) {
                (Some(x), Some(y)) => Some(x.merge(y)),
                (x, y) => x.or(y),
            },
        },
        |s| KState {
            centers: s
                .partial
                .as_ref()
                .map(|p| p.centers(&s.centers))
                .unwrap_or(s.centers),
            partial: None,
        },
    );
    result.centers
}

/// Runs K-Means on the pipelined engine record-at-a-time (scalar
/// reference).
pub fn run_flink_records(
    env: &FlinkEnv,
    points: Vec<Point>,
    centers: Vec<Point>,
    iterations: u32,
) -> Vec<Point> {
    let k = centers.len();
    let parallelism = env.parallelism();
    let chunk = points.len().div_ceil(parallelism).max(1);
    let parts: Vec<Vec<Point>> = points.chunks(chunk).map(<[Point]>::to_vec).collect();
    let state = KState {
        centers,
        partial: None,
    };
    let result = bulk_iterate(
        env,
        parts,
        state,
        iterations,
        |s, part| {
            let mut partial = Partial::new(k);
            for p in part {
                partial.add(nearest(&s.centers, p), p);
            }
            KState {
                centers: s.centers.clone(),
                partial: Some(partial),
            }
        },
        |a, b| KState {
            centers: a.centers,
            partial: match (a.partial, b.partial) {
                (Some(x), Some(y)) => Some(x.merge(y)),
                (x, y) => x.or(y),
            },
        },
        |s| KState {
            centers: s
                .partial
                .as_ref()
                .map(|p| p.centers(&s.centers))
                .unwrap_or(s.centers),
            partial: None,
        },
    );
    result.centers
}

/// Sequential oracle.
pub fn oracle(points: &[Point], mut centers: Vec<Point>, iterations: u32) -> Vec<Point> {
    let k = centers.len();
    for _ in 0..iterations {
        let mut partial = Partial::new(k);
        for p in points {
            partial.add(nearest(&centers, p), p);
        }
        centers = partial.centers(&centers);
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_datagen::points::{PointsConfig, PointsGen};

    fn dataset(n: usize) -> (Vec<Point>, Vec<Point>) {
        let mut g = PointsGen::new(
            PointsConfig {
                clusters: 4,
                box_half_width: 100.0,
                sigma: 3.0,
            },
            5,
        );
        let centers = g.true_centers().to_vec();
        // Perturbed initial centers.
        let init: Vec<Point> = centers
            .iter()
            .map(|c| Point {
                x: c.x + 10.0,
                y: c.y - 8.0,
            })
            .collect();
        (g.points(n), init)
    }

    fn close_points(a: &[Point], b: &[Point], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(p, q)| (p.x - q.x).abs() < tol && (p.y - q.y).abs() < tol)
    }

    #[test]
    fn both_engines_match_the_oracle() {
        let (points, init) = dataset(4000);
        let expect = oracle(&points, init.clone(), 10);
        let sc = SparkContext::new(4, 64 << 20);
        let spark = run_spark(&sc, points.clone(), init.clone(), 10, 4);
        assert!(close_points(&spark, &expect, 1e-9), "spark drifted");
        let env = FlinkEnv::new(4);
        let flink = run_flink(&env, points, init, 10);
        assert!(close_points(&flink, &expect, 1e-9), "flink drifted");
    }

    /// Batch-vs-record parity, iteration by iteration: running `i`
    /// iterations through the vectorized path must land on the same
    /// centroids as the record adapters (identical assignment decisions;
    /// summation order differs only across partition merges, hence the
    /// tight float tolerance rather than bit equality).
    #[test]
    fn batch_path_matches_record_adapters_each_iteration() {
        let (points, init) = dataset(3000);
        for iters in 1..=4u32 {
            let sc_b = SparkContext::new(4, 64 << 20);
            let batch = run_spark(&sc_b, points.clone(), init.clone(), iters, 4);
            let sc_r = SparkContext::new(4, 64 << 20);
            let record = run_spark_records(&sc_r, points.clone(), init.clone(), iters, 4);
            assert!(
                close_points(&batch, &record, 1e-9),
                "spark batch/record diverged at iteration {iters}"
            );
            assert!(
                sc_b.metrics().points_assigned_vectorized() >= iters as u64 * 3000,
                "batch path must assign every point through the kernel"
            );
            assert_eq!(
                sc_r.metrics().points_assigned_vectorized(),
                0,
                "record adapter must stay off the vectorized path"
            );

            let env_b = FlinkEnv::new(4);
            let fbatch = run_flink(&env_b, points.clone(), init.clone(), iters);
            let env_r = FlinkEnv::new(4);
            let frecord = run_flink_records(&env_r, points.clone(), init.clone(), iters);
            assert!(
                close_points(&fbatch, &frecord, 1e-9),
                "flink batch/record diverged at iteration {iters}"
            );
            assert!(env_b.metrics().points_assigned_vectorized() >= iters as u64 * 3000);
            assert_eq!(env_r.metrics().points_assigned_vectorized(), 0);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        /// Parity holds for arbitrary point clouds, center counts, and
        /// partitionings — not just the Gaussian test dataset.
        #[test]
        fn batch_record_parity_on_arbitrary_inputs(
            coords in proptest::collection::vec((-1000.0f64..1000.0, -1000.0f64..1000.0), 1..400),
            k in 1usize..6,
            partitions in 1usize..6,
            iters in 1u32..4,
        ) {
            let points: Vec<Point> = coords.iter().map(|&(x, y)| Point { x, y }).collect();
            let init: Vec<Point> = (0..k)
                .map(|i| {
                    let p = points[i % points.len()];
                    Point { x: p.x + i_f(i), y: p.y - i_f(i) }
                })
                .collect();
            let sc_b = SparkContext::new(partitions, 64 << 20);
            let batch = run_spark(&sc_b, points.clone(), init.clone(), iters, partitions);
            let sc_r = SparkContext::new(partitions, 64 << 20);
            let record = run_spark_records(&sc_r, points.clone(), init.clone(), iters, partitions);
            proptest::prop_assert!(close_points(&batch, &record, 1e-9), "spark diverged");
            let env_b = FlinkEnv::new(partitions);
            let fbatch = run_flink(&env_b, points.clone(), init.clone(), iters);
            let env_r = FlinkEnv::new(partitions);
            let frecord = run_flink_records(&env_r, points, init, iters);
            proptest::prop_assert!(close_points(&fbatch, &frecord, 1e-9), "flink diverged");
        }
    }

    /// Deterministic small offset so duplicate seed points still yield
    /// distinct initial centers.
    fn i_f(i: usize) -> f64 {
        i as f64 * 0.125
    }

    #[test]
    fn converges_to_true_centers() {
        let (points, init) = dataset(8000);
        let out = oracle(&points, init, 10);
        // Every true cluster center has a learned center within ~1 sigma.
        let g = PointsGen::new(
            PointsConfig {
                clusters: 4,
                box_half_width: 100.0,
                sigma: 3.0,
            },
            5,
        );
        for c in g.true_centers() {
            let best = out
                .iter()
                .map(|p| p.dist2(c).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(best < 3.0, "center {c:?} missed by {best}");
        }
    }

    #[test]
    fn flink_schedules_once_spark_unrolls() {
        let (points, init) = dataset(2000);
        let sc = SparkContext::new(4, 64 << 20);
        let _ = run_spark(&sc, points.clone(), init.clone(), 8, 4);
        let env = FlinkEnv::new(4);
        let _ = run_flink(&env, points, init, 8);
        // Spark: ≥ partitions × iterations task launches; Flink: one wave.
        assert!(sc.metrics().tasks_launched() >= 4 * 8);
        assert!(env.metrics().tasks_launched() <= 8);
        assert_eq!(env.metrics().iterations_run(), 8);
    }

    #[test]
    fn spark_cache_serves_iterations() {
        let (points, init) = dataset(1000);
        let sc = SparkContext::new(2, 64 << 20);
        let _ = run_spark(&sc, points, init, 5, 2);
        // Iterations 2..5 must hit the persisted points RDD.
        assert!(sc.metrics().cache_hits() >= 2 * 4);
    }

    #[test]
    fn plans_validate_and_iterate() {
        let scale = KMeansScale::paper();
        for fw in Framework::BOTH {
            let p = plan(fw, &scale);
            assert!(p.validate().is_ok(), "{fw}");
            let it = p
                .nodes()
                .iter()
                .find(|n| n.iteration.is_some())
                .expect("iteration node");
            assert_eq!(it.iteration.as_ref().unwrap().iterations, 10);
        }
    }
}
