//! Word Count (§III, §VI-A): "a good fit for evaluating the aggregation
//! component in each framework, since both Spark and Flink use a map side
//! combiner to reduce the intermediate data."
//!
//! - Flink: `flatMap → groupBy → sum → writeAsText`
//! - Spark: `flatMap → mapToPair → reduceByKey → saveAsTextFile`

use std::collections::HashMap;

use flowmark_core::config::Framework;
use flowmark_dataflow::operator::OperatorKind;
use flowmark_dataflow::plan::{CostAnnotation, LogicalPlan};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::hash::{fx_map_with_capacity, FxHashMap};
use flowmark_engine::spark::SparkContext;

use crate::costs::*;

/// Problem size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordCountScale {
    /// Total input bytes across the cluster.
    pub total_bytes: f64,
}

impl WordCountScale {
    /// The paper's weak-scaling setup: `gb_per_node` GB on each node.
    pub fn per_node(nodes: u32, gb_per_node: f64) -> Self {
        Self {
            total_bytes: nodes as f64 * gb_per_node * 1e9,
        }
    }
}

/// Builds the annotated simulator plan for one engine.
pub fn plan(fw: Framework, scale: &WordCountScale) -> LogicalPlan {
    let lines = (scale.total_bytes / TEXT_LINE_BYTES) as u64;
    let words = lines as f64 * WORDS_PER_LINE;
    let reduce_sel = (VOCABULARY / words).min(1.0);
    let mut p = LogicalPlan::new();
    let src = p.source(lines, TEXT_LINE_BYTES);
    match fw {
        Framework::Spark => {
            let fm = p.unary(
                src,
                OperatorKind::FlatMap,
                CostAnnotation::new(WORDS_PER_LINE, WC_FLATMAP_NS, TEXT_LINE_BYTES / WORDS_PER_LINE),
            );
            let mtp = p.unary(
                fm,
                OperatorKind::MapToPair,
                CostAnnotation::new(1.0, 50.0, WORD_PAIR_BYTES),
            );
            let rbk = p.unary(
                mtp,
                OperatorKind::ReduceByKey,
                CostAnnotation::new(reduce_sel, WC_REDUCE_NS, WORD_PAIR_BYTES),
            );
            p.unary(
                rbk,
                OperatorKind::DataSink,
                CostAnnotation::new(1.0, 200.0, WORD_PAIR_BYTES),
            );
        }
        Framework::Flink => {
            // Flink's flatMap emits the pairs directly.
            let fm = p.unary(
                src,
                OperatorKind::FlatMap,
                CostAnnotation::new(WORDS_PER_LINE, WC_FLATMAP_NS, WORD_PAIR_BYTES),
            );
            let gr = p.unary(
                fm,
                OperatorKind::GroupReduce,
                CostAnnotation::new(reduce_sel, WC_REDUCE_NS, WORD_PAIR_BYTES),
            );
            p.unary(
                gr,
                OperatorKind::DataSink,
                CostAnnotation::new(1.0, 200.0, WORD_PAIR_BYTES),
            );
        }
    }
    p
}

/// Table I row: operators used by Word Count.
pub fn operator_table(fw: Framework) -> Vec<OperatorKind> {
    use OperatorKind::*;
    match fw {
        Framework::Spark => vec![FlatMap, MapToPair, ReduceByKey, DataSink],
        Framework::Flink => vec![FlatMap, GroupReduce, DataSink],
    }
}

/// Counts one word occurrence, allocating a `String` only on first sight —
/// the tokenizer works on `&str` subslices of the line, so a token costs an
/// allocation once per *distinct* word instead of once per occurrence.
fn count_word(counts: &mut FxHashMap<String, u64>, word: &str) {
    match counts.get_mut(word) {
        Some(c) => *c += 1,
        None => {
            counts.insert(word.to_owned(), 1);
        }
    }
}

/// Tokenizes and pre-aggregates one partition's lines (the map-side
/// combiner's local half, run before records are even handed to the
/// engine's shuffle machinery).
fn count_partition<'a>(lines: impl IntoIterator<Item = &'a String>) -> Vec<(String, u64)> {
    let mut counts: FxHashMap<String, u64> = fx_map_with_capacity(1024);
    for line in lines {
        for w in line.split_whitespace() {
            count_word(&mut counts, w);
        }
    }
    counts.into_iter().collect()
}

/// Runs Word Count on the staged engine.
pub fn run_spark(sc: &SparkContext, lines: Vec<String>, partitions: usize) -> HashMap<String, u64> {
    sc.parallelize(lines, partitions)
        .map_partitions(|part| count_partition(part))
        .reduce_by_key(|a, b| *a += b)
        .collect_as_map()
}

/// Runs Word Count on the pipelined engine.
pub fn run_flink(env: &FlinkEnv, lines: Vec<String>) -> HashMap<String, u64> {
    env.from_collection(lines)
        .map_partition(|lines: Vec<String>| count_partition(&lines))
        .group_reduce(|a, b| *a += b)
        .collect()
        .into_iter()
        .collect()
}

/// Sequential oracle.
pub fn oracle(lines: &[String]) -> HashMap<String, u64> {
    let mut m = HashMap::new();
    for line in lines {
        for w in line.split_whitespace() {
            match m.get_mut(w) {
                Some(c) => *c += 1,
                None => {
                    m.insert(w.to_owned(), 1);
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_datagen::text::{TextGen, TextGenConfig};

    fn corpus(n: usize) -> Vec<String> {
        TextGen::new(TextGenConfig::default(), 7).lines(n)
    }

    #[test]
    fn both_engines_match_the_oracle() {
        let lines = corpus(2000);
        let expect = oracle(&lines);
        let sc = SparkContext::new(4, 64 << 20);
        let spark = run_spark(&sc, lines.clone(), 4);
        assert_eq!(spark, expect);
        let env = FlinkEnv::new(4);
        let flink = run_flink(&env, lines);
        assert_eq!(flink, expect);
    }

    #[test]
    fn plans_validate_for_both_frameworks() {
        let scale = WordCountScale::per_node(8, 24.0);
        for fw in Framework::BOTH {
            let p = plan(fw, &scale);
            assert!(p.validate().is_ok(), "{fw}");
        }
    }

    #[test]
    fn operator_table_matches_table_i() {
        use OperatorKind::*;
        let spark = operator_table(Framework::Spark);
        assert!(spark.contains(&MapToPair) && spark.contains(&ReduceByKey));
        assert!(!spark.contains(&GroupReduce));
        let flink = operator_table(Framework::Flink);
        assert!(flink.contains(&GroupReduce));
        assert!(!flink.contains(&ReduceByKey) && !flink.contains(&MapToPair));
        // Common operators appear in both.
        assert!(spark.contains(&FlatMap) && flink.contains(&FlatMap));
    }

    #[test]
    fn scale_accounting() {
        let s = WordCountScale::per_node(32, 24.0);
        assert!((s.total_bytes - 768e9).abs() < 1.0);
        let p = plan(Framework::Flink, &s);
        let cards = p.cardinalities();
        // flatMap output = lines × 10.
        assert!((cards[1] - 768e9 / 80.0 * 10.0).abs() / cards[1] < 1e-9);
    }
}
