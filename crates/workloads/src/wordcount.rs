//! Word Count (§III, §VI-A): "a good fit for evaluating the aggregation
//! component in each framework, since both Spark and Flink use a map side
//! combiner to reduce the intermediate data."
//!
//! - Flink: `flatMap → groupBy → sum → writeAsText`
//! - Spark: `flatMap → mapToPair → reduceByKey → saveAsTextFile`

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use flowmark_columnar::{StrColumn, StrU64Batch, DEFAULT_BATCH_ROWS};
use flowmark_core::config::Framework;
use flowmark_dataflow::operator::OperatorKind;
use flowmark_dataflow::plan::{CostAnnotation, LogicalPlan};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::hash::{fx_map_with_capacity, FxHasher64, FxHashMap};
use flowmark_engine::metrics::EngineMetrics;
use flowmark_engine::spark::SparkContext;

use crate::costs::*;

/// Problem size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordCountScale {
    /// Total input bytes across the cluster.
    pub total_bytes: f64,
}

impl WordCountScale {
    /// The paper's weak-scaling setup: `gb_per_node` GB on each node.
    pub fn per_node(nodes: u32, gb_per_node: f64) -> Self {
        Self {
            total_bytes: nodes as f64 * gb_per_node * 1e9,
        }
    }
}

/// Builds the annotated simulator plan for one engine.
pub fn plan(fw: Framework, scale: &WordCountScale) -> LogicalPlan {
    let lines = (scale.total_bytes / TEXT_LINE_BYTES) as u64;
    let words = lines as f64 * WORDS_PER_LINE;
    let reduce_sel = (VOCABULARY / words).min(1.0);
    let mut p = LogicalPlan::new();
    let src = p.source(lines, TEXT_LINE_BYTES);
    match fw {
        Framework::Spark => {
            let fm = p.unary(
                src,
                OperatorKind::FlatMap,
                CostAnnotation::new(WORDS_PER_LINE, WC_FLATMAP_NS, TEXT_LINE_BYTES / WORDS_PER_LINE),
            );
            let mtp = p.unary(
                fm,
                OperatorKind::MapToPair,
                CostAnnotation::new(1.0, 50.0, WORD_PAIR_BYTES),
            );
            let rbk = p.unary(
                mtp,
                OperatorKind::ReduceByKey,
                CostAnnotation::new(reduce_sel, WC_REDUCE_NS, WORD_PAIR_BYTES),
            );
            p.unary(
                rbk,
                OperatorKind::DataSink,
                CostAnnotation::new(1.0, 200.0, WORD_PAIR_BYTES),
            );
        }
        Framework::Flink => {
            // Flink's flatMap emits the pairs directly.
            let fm = p.unary(
                src,
                OperatorKind::FlatMap,
                CostAnnotation::new(WORDS_PER_LINE, WC_FLATMAP_NS, WORD_PAIR_BYTES),
            );
            let gr = p.unary(
                fm,
                OperatorKind::GroupReduce,
                CostAnnotation::new(reduce_sel, WC_REDUCE_NS, WORD_PAIR_BYTES),
            );
            p.unary(
                gr,
                OperatorKind::DataSink,
                CostAnnotation::new(1.0, 200.0, WORD_PAIR_BYTES),
            );
        }
    }
    p
}

/// Table I row: operators used by Word Count.
pub fn operator_table(fw: Framework) -> Vec<OperatorKind> {
    use OperatorKind::*;
    match fw {
        Framework::Spark => vec![FlatMap, MapToPair, ReduceByKey, DataSink],
        Framework::Flink => vec![FlatMap, GroupReduce, DataSink],
    }
}

/// Counts one word occurrence, allocating a `String` only on first sight —
/// the tokenizer works on `&str` subslices of the line, so a token costs an
/// allocation once per *distinct* word instead of once per occurrence.
fn count_word(counts: &mut FxHashMap<String, u64>, word: &str) {
    match counts.get_mut(word) {
        Some(c) => *c += 1,
        None => {
            counts.insert(word.to_owned(), 1);
        }
    }
}

/// Tokenizes and pre-aggregates one partition's lines (the map-side
/// combiner's local half, run before records are even handed to the
/// engine's shuffle machinery).
fn count_partition<'a>(lines: impl IntoIterator<Item = &'a String>) -> Vec<(String, u64)> {
    let mut counts: FxHashMap<String, u64> = fx_map_with_capacity(1024);
    for line in lines {
        for w in line.split_whitespace() {
            count_word(&mut counts, w);
        }
    }
    counts.into_iter().collect()
}

/// Shuffle routing for word keys: plain FxHash of the word's bytes, modulo
/// the reducer count. Only self-consistency across map tasks matters.
fn word_partition(word: &str, parts: usize) -> usize {
    let mut h = FxHasher64::default();
    word.hash(&mut h);
    (h.finish() as usize) % parts
}

/// Tokenizes and locally aggregates one partition's column batches, then
/// routes the aggregate into per-reducer [`StrU64Batch`]es tagged with
/// their target partition — the map half of the batch-granularity shuffle.
fn count_batches(
    cols: &[StrColumn],
    out_parts: usize,
    metrics: &EngineMetrics,
) -> Vec<(usize, StrU64Batch)> {
    let mut counts: FxHashMap<String, u64> = fx_map_with_capacity(1024);
    for col in cols {
        for i in 0..col.len() {
            for w in col.get(i).split_whitespace() {
                count_word(&mut counts, w);
            }
        }
        metrics.add_batches_processed(1);
        metrics.add_rows_selected(col.len() as u64);
    }
    StrU64Batch::from_pairs(counts)
        .partition_by(out_parts, |w| word_partition(w, out_parts))
        .into_iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .collect()
}

/// Merges one reducer's routed batches with the batch-at-a-time hash-agg
/// kernel (a `String` is allocated only the first time a key is seen).
fn merge_batches(batches: &[StrU64Batch], metrics: &EngineMetrics) -> FxHashMap<String, u64> {
    let total: usize = batches.iter().map(StrU64Batch::len).sum();
    let mut agg: FxHashMap<String, u64> = fx_map_with_capacity(total);
    for b in batches {
        b.merge_into(&mut agg, |a, v| *a += v);
    }
    metrics.add_rows_selected(total as u64);
    agg
}

/// Splits a line corpus into column batches plus the row count the source
/// metric misses (sources count batch *elements*, not the rows inside).
fn batch_lines(lines: Vec<String>) -> (Vec<StrColumn>, u64) {
    let rows = lines.len();
    let batches = StrColumn::batches_from_lines(&lines, DEFAULT_BATCH_ROWS);
    let extra = (rows - batches.len().min(rows)) as u64;
    (batches, extra)
}

/// Runs Word Count on the staged engine: columnar tokenize + local
/// aggregation, then a batch-granularity shuffle whose reduce-side merge
/// runs inside the shuffle materialisation.
pub fn run_spark(sc: &SparkContext, lines: Vec<String>, partitions: usize) -> HashMap<String, u64> {
    let metrics = sc.metrics().clone();
    let merge_metrics = sc.metrics().clone();
    let (batches, extra_rows) = batch_lines(lines);
    metrics.add_records_read(extra_rows);
    sc.parallelize(batches, partitions)
        .map_partitions(move |cols| count_batches(cols, partitions, &metrics))
        .exchange_by_index_with(partitions, move |bs| {
            vec![StrU64Batch::from_pairs(merge_batches(&bs, &merge_metrics))]
        })
        .collect()
        .into_iter()
        .flat_map(|b| b.iter().map(|(k, v)| (k.to_owned(), v)).collect::<Vec<_>>())
        .collect()
}

/// Runs Word Count on the pipelined engine, on the same batch path (whole
/// routed batches stream through the bounded channels).
pub fn run_flink(env: &FlinkEnv, lines: Vec<String>) -> HashMap<String, u64> {
    let metrics = env.metrics().clone();
    let merge_metrics = env.metrics().clone();
    let out_parts = env.parallelism();
    let (batches, extra_rows) = batch_lines(lines);
    metrics.add_records_read(extra_rows);
    env.from_collection(batches)
        .map_partition(move |cols: Vec<StrColumn>| count_batches(&cols, out_parts, &metrics))
        .exchange_by_index(out_parts)
        .map_partition(move |bs: Vec<StrU64Batch>| {
            merge_batches(&bs, &merge_metrics).into_iter().collect::<Vec<_>>()
        })
        .collect()
        .into_iter()
        .collect()
}

/// Runs Word Count on the staged engine record-at-a-time (the pre-columnar
/// plan, kept as the scalar reference for parity tests).
pub fn run_spark_records(
    sc: &SparkContext,
    lines: Vec<String>,
    partitions: usize,
) -> HashMap<String, u64> {
    sc.parallelize(lines, partitions)
        .map_partitions(|part| count_partition(part))
        .reduce_by_key(|a, b| *a += b)
        .collect_as_map()
}

/// Runs Word Count on the pipelined engine record-at-a-time (scalar
/// reference).
pub fn run_flink_records(env: &FlinkEnv, lines: Vec<String>) -> HashMap<String, u64> {
    env.from_collection(lines)
        .map_partition(|lines: Vec<String>| count_partition(&lines))
        .group_reduce(|a, b| *a += b)
        .collect()
        .into_iter()
        .collect()
}

/// Sequential oracle.
pub fn oracle(lines: &[String]) -> HashMap<String, u64> {
    let mut m = HashMap::new();
    for line in lines {
        for w in line.split_whitespace() {
            match m.get_mut(w) {
                Some(c) => *c += 1,
                None => {
                    m.insert(w.to_owned(), 1);
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_datagen::text::{TextGen, TextGenConfig};

    fn corpus(n: usize) -> Vec<String> {
        TextGen::new(TextGenConfig::default(), 7).lines(n)
    }

    #[test]
    fn both_engines_match_the_oracle() {
        let lines = corpus(2000);
        let expect = oracle(&lines);
        let sc = SparkContext::new(4, 64 << 20);
        let spark = run_spark(&sc, lines.clone(), 4);
        assert_eq!(spark, expect);
        let env = FlinkEnv::new(4);
        let flink = run_flink(&env, lines);
        assert_eq!(flink, expect);
    }

    #[test]
    fn plans_validate_for_both_frameworks() {
        let scale = WordCountScale::per_node(8, 24.0);
        for fw in Framework::BOTH {
            let p = plan(fw, &scale);
            assert!(p.validate().is_ok(), "{fw}");
        }
    }

    #[test]
    fn operator_table_matches_table_i() {
        use OperatorKind::*;
        let spark = operator_table(Framework::Spark);
        assert!(spark.contains(&MapToPair) && spark.contains(&ReduceByKey));
        assert!(!spark.contains(&GroupReduce));
        let flink = operator_table(Framework::Flink);
        assert!(flink.contains(&GroupReduce));
        assert!(!flink.contains(&ReduceByKey) && !flink.contains(&MapToPair));
        // Common operators appear in both.
        assert!(spark.contains(&FlatMap) && flink.contains(&FlatMap));
    }

    #[test]
    fn scale_accounting() {
        let s = WordCountScale::per_node(32, 24.0);
        assert!((s.total_bytes - 768e9).abs() < 1.0);
        let p = plan(Framework::Flink, &s);
        let cards = p.cardinalities();
        // flatMap output = lines × 10.
        assert!((cards[1] - 768e9 / 80.0 * 10.0).abs() / cards[1] < 1e-9);
    }
}
