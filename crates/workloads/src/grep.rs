//! Grep (§III, §VI-B): "we use it to evaluate the filter transformation and
//! the count action."
//!
//! Both engines run `filter → count`, but their physical plans differ in
//! exactly the way Fig 6 shows: Spark fuses the filter and the count into
//! one stage; Flink 0.10's plan is `DataSource->Filter->FlatMap` feeding a
//! `DataSink` that materialises the matches before counting — "Flink's
//! current implementation of the filter → count operator is leading to
//! inefficient use of the resources in the latter phase."

use flowmark_columnar::{kernels, StrColumn, DEFAULT_BATCH_ROWS};
use flowmark_core::config::Framework;
use flowmark_dataflow::operator::OperatorKind;
use flowmark_dataflow::plan::{CostAnnotation, LogicalPlan};
use flowmark_engine::faults::FaultPlan;
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::metrics::EngineMetrics;
use flowmark_engine::shuffle::{read_verified, seal_all, Sealed};
use flowmark_engine::spark::SparkContext;

use crate::costs::*;

/// Problem size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrepScale {
    /// Total input bytes.
    pub total_bytes: f64,
    /// Fraction of lines matching the needle.
    pub selectivity: f64,
}

impl GrepScale {
    /// The paper's setup: `gb_per_node` GB per node, a common search term.
    pub fn per_node(nodes: u32, gb_per_node: f64) -> Self {
        Self {
            total_bytes: nodes as f64 * gb_per_node * 1e9,
            selectivity: GREP_SELECTIVITY,
        }
    }
}

/// Builds the annotated simulator plan for one engine.
pub fn plan(fw: Framework, scale: &GrepScale) -> LogicalPlan {
    let lines = (scale.total_bytes / TEXT_LINE_BYTES) as u64;
    let mut p = LogicalPlan::new();
    let src = p.source(lines, TEXT_LINE_BYTES);
    let filter = p.unary(
        src,
        OperatorKind::Filter,
        CostAnnotation::new(scale.selectivity, GREP_FILTER_NS, TEXT_LINE_BYTES),
    );
    match fw {
        Framework::Spark => {
            // filter → count fused in one stage; only a count to the driver.
            p.unary(filter, OperatorKind::Count, CostAnnotation::new(1e-9, 50.0, 8.0));
        }
        Framework::Flink => {
            // The 0.10 plan materialises the matched lines through the
            // output machinery before the count is available (Fig 6).
            let fm = p.unary(
                filter,
                OperatorKind::FlatMap,
                CostAnnotation::new(1.0, 300.0, TEXT_LINE_BYTES),
            );
            p.unary(
                fm,
                OperatorKind::DataSink,
                CostAnnotation::new(1.0, 200.0, TEXT_LINE_BYTES),
            );
        }
    }
    p
}

/// Table I row: operators used by Grep.
pub fn operator_table(fw: Framework) -> Vec<OperatorKind> {
    use OperatorKind::*;
    match fw {
        Framework::Spark => vec![Filter, Count],
        Framework::Flink => vec![Filter, FlatMap, DataSink, Count],
    }
}

/// Counts matches in a run of *sealed* column batches with the vectorized
/// substring kernel: one flat scan over each batch's byte payload, zero
/// per-line `String` allocations or `&str` re-slicing in the hot loop.
/// Every batch's digest is re-verified before the kernel touches its bytes
/// — Grep has no exchange, so the sealed source read is its integrity
/// surface (a mismatch unwinds for the engine's recovery wrapper to
/// re-run this task against the clean bytes).
fn count_matches(
    cols: &[Sealed<StrColumn>],
    needle: &[u8],
    seed: u64,
    plan: &FaultPlan,
    metrics: &EngineMetrics,
) -> u64 {
    let mut hits = 0u64;
    for sealed in cols {
        let col = read_verified(sealed, seed, plan, metrics);
        let sel = kernels::filter_str_contains(col, needle, None, None);
        metrics.add_batches_processed(1);
        metrics.add_rows_selected(sel.len() as u64);
        hits += sel.len() as u64;
    }
    hits
}

/// Splits a line corpus into column batches and returns the row count the
/// source metric misses (sources count *elements*, and a batch element
/// carries many rows).
fn batch_lines(lines: Vec<String>) -> (Vec<StrColumn>, u64) {
    let rows = lines.len();
    let batches = StrColumn::batches_from_lines(&lines, DEFAULT_BATCH_ROWS);
    let extra = (rows - batches.len().min(rows)) as u64;
    (batches, extra)
}

/// Runs Grep on the staged engine: count of matching lines. The corpus is
/// packed into [`StrColumn`] batches and filtered by the vectorized
/// substring kernel.
pub fn run_spark(sc: &SparkContext, lines: Vec<String>, needle: &str, partitions: usize) -> u64 {
    let needle = needle.as_bytes().to_vec();
    let metrics = sc.metrics().clone();
    let plan = sc.faults().clone();
    let seed = plan.checksum_seed();
    let (batches, extra_rows) = batch_lines(lines);
    metrics.add_records_read(extra_rows);
    let sealed: Vec<Sealed<StrColumn>> = seal_all(batches, seed, &metrics);
    sc.parallelize(sealed, partitions)
        .map_partitions(move |cols| vec![count_matches(cols, &needle, seed, &plan, &metrics)])
        .collect()
        .into_iter()
        .sum()
}

/// Runs Grep on the pipelined engine, on the same vectorized batch path.
pub fn run_flink(env: &FlinkEnv, lines: Vec<String>, needle: &str) -> u64 {
    let needle = needle.as_bytes().to_vec();
    let metrics = env.metrics().clone();
    let plan = env.faults().clone();
    let seed = plan.checksum_seed();
    let (batches, extra_rows) = batch_lines(lines);
    metrics.add_records_read(extra_rows);
    let sealed: Vec<Sealed<StrColumn>> = seal_all(batches, seed, &metrics);
    env.from_collection(sealed)
        .map_partition(move |cols: Vec<Sealed<StrColumn>>| {
            vec![count_matches(&cols, &needle, seed, &plan, &metrics)]
        })
        .collect()
        .into_iter()
        .sum()
}

/// Runs Grep on the staged engine record-at-a-time (the pre-columnar plan,
/// kept as the scalar reference for parity tests).
pub fn run_spark_records(
    sc: &SparkContext,
    lines: Vec<String>,
    needle: &str,
    partitions: usize,
) -> u64 {
    let needle = needle.to_owned();
    sc.parallelize(lines, partitions)
        .filter(move |line| line.contains(&needle))
        .count()
}

/// Runs Grep on the pipelined engine record-at-a-time (scalar reference).
pub fn run_flink_records(env: &FlinkEnv, lines: Vec<String>, needle: &str) -> u64 {
    let needle = needle.to_owned();
    env.from_collection(lines)
        .filter(move |line| line.contains(&needle))
        .count()
}

/// Sequential oracle.
pub fn oracle(lines: &[String], needle: &str) -> u64 {
    lines.iter().filter(|l| l.contains(needle)).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_datagen::text::{TextGen, TextGenConfig};

    #[test]
    fn both_engines_match_the_oracle() {
        let config = TextGenConfig {
            needle_selectivity: 0.05,
            ..TextGenConfig::default()
        };
        let needle = config.needle.clone();
        let lines = TextGen::new(config, 3).lines(3000);
        let expect = oracle(&lines, &needle);
        assert!(expect > 0, "corpus must contain matches");
        let sc = SparkContext::new(4, 64 << 20);
        assert_eq!(run_spark(&sc, lines.clone(), &needle, 4), expect);
        let env = FlinkEnv::new(4);
        assert_eq!(run_flink(&env, lines, &needle), expect);
    }

    #[test]
    fn sealed_source_corruption_recovers_on_both_engines() {
        use flowmark_engine::faults::{install_quiet_hook, FaultConfig};
        install_quiet_hook();
        let config = TextGenConfig {
            needle_selectivity: 0.05,
            ..TextGenConfig::default()
        };
        let needle = config.needle.clone();
        let lines = TextGen::new(config, 7).lines(3000);
        let expect = oracle(&lines, &needle);
        let plan = |seed| {
            FaultPlan::new(FaultConfig {
                seed,
                corrupt_first_n: 1,
                ..FaultConfig::default()
            })
        };

        let sc = SparkContext::with_faults(4, 64 << 20, plan(41));
        assert_eq!(run_spark(&sc, lines.clone(), &needle, 4), expect);
        let rec = sc.metrics().recovery();
        assert!(rec.corruptions_detected >= 1, "spark must detect the rot");
        assert!(rec.integrity_recomputes >= 1, "spark recovers by recompute");
        assert_eq!(rec.region_restarts, 0);

        let env = FlinkEnv::with_faults(4, plan(43));
        assert_eq!(run_flink(&env, lines, &needle), expect);
        let rec = env.metrics().recovery();
        assert!(rec.corruptions_detected >= 1, "flink must detect the rot");
        assert!(rec.region_restarts >= 1, "flink recovers by region restart");
        assert_eq!(rec.partitions_recomputed, 0);
    }

    #[test]
    fn flink_plan_has_the_sink_phase_spark_does_not() {
        let scale = GrepScale::per_node(16, 24.0);
        let spark = plan(Framework::Spark, &scale);
        let flink = plan(Framework::Flink, &scale);
        assert!(spark.nodes().iter().all(|n| n.op != OperatorKind::DataSink));
        assert!(flink.nodes().iter().any(|n| n.op == OperatorKind::DataSink));
        assert!(spark.validate().is_ok() && flink.validate().is_ok());
    }

    #[test]
    fn selectivity_drives_flink_sink_volume() {
        let scale = GrepScale {
            total_bytes: 1e12,
            selectivity: 0.3,
        };
        let p = plan(Framework::Flink, &scale);
        let bytes = p.output_bytes();
        let sink_in = bytes[p.len() - 2]; // flatMap output feeding the sink
        assert!((sink_in - 0.3 * 1e12).abs() / sink_in < 1e-6);
    }
}
