//! Streaming workload family: Nexmark-style queries with oracles.
//!
//! Two queries over the [`flowmark_datagen::nexmark`] auction stream,
//! each runnable on both checkpointed runtimes and verifiable against an
//! independent sequential oracle:
//!
//! - **q3** ([`Q3Join`]) — filter-join: persons from a set of states
//!   joined with auctions in one category on `auction.seller ==
//!   person.id`. Stateful and unwindowed; every matched pair is emitted
//!   exactly once, whichever side arrives first.
//! - **q6** ([`q6_operator`]) — windowed aggregate: bids keyed by
//!   auction id, folded into tumbling windows (sum / count / max of the
//!   price), fired as the watermark passes each window's end.
//!
//! The oracles ([`q3_oracle`], [`q6_oracle`]) re-derive the expected
//! output from the raw event vector with a *sequential* watermark
//! simulation — no channels, no checkpoints, no faults — so a chaos run
//! that detects, recovers and replays must still match them byte-for-
//! byte (after canonical sorting) to count as exactly-once.

use std::collections::BTreeMap;

use flowmark_columnar::checksum::Xxh64;
use flowmark_datagen::nexmark::NexmarkEvent;
use flowmark_engine::streaming::window::{StreamOperator, WindowAssigner, WindowResult, WindowedAggregate};
use flowmark_engine::streaming::{SourceConfig, StreamEvent, StreamSource};

/// q3's person filter: home state in `0..Q3_STATE_CUT`.
pub const Q3_STATE_CUT: u64 = 3;
/// q3's auction filter: this category only.
pub const Q3_CATEGORY: u64 = 10;
/// q6's tumbling window size in ticks.
pub const Q6_WINDOW: u64 = 64;

/// Partition routing shared by every Nexmark query: persons by id,
/// auctions by seller, bids by auction. This colocates each q3 join key
/// (person id = auction seller) and each q6 window key on one task.
pub fn route_nexmark(e: &NexmarkEvent) -> u64 {
    match e {
        NexmarkEvent::Person(p) => p.id,
        NexmarkEvent::Auction(a) => a.seller,
        NexmarkEvent::Bid(b) => b.auction,
    }
}

/// q6's extractor: bids become `(auction, price)` pairs, everything else
/// passes through unaggregated.
pub fn bid_price(e: &NexmarkEvent) -> Option<(u64, u64)> {
    match e {
        NexmarkEvent::Bid(b) => Some((b.auction, b.price)),
        _ => None,
    }
}

/// Builds the q6 operator: tumbling [`Q6_WINDOW`]-tick windows over bid
/// prices keyed by auction.
pub fn q6_operator() -> WindowedAggregate<NexmarkEvent> {
    WindowedAggregate::new(WindowAssigner::Tumbling { size: Q6_WINDOW }, bid_price)
}

/// One q3 output row: an in-state person's in-category auction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Q3Row {
    /// The auction id.
    pub auction: u64,
    /// The seller (person) id.
    pub seller: u64,
    /// The seller's state code.
    pub state: u64,
    /// The seller's city code.
    pub city: u64,
}

/// q3 filter-join operator. State is two keyed tables: filtered persons
/// seen so far, and filtered auctions whose seller has not yet arrived.
/// Whichever side arrives second emits the row, so each pair is emitted
/// exactly once regardless of arrival order.
#[derive(Debug, Default)]
pub struct Q3Join {
    /// Filtered persons: `id → (state, city)`.
    persons: BTreeMap<u64, (u64, u64)>,
    /// Filtered auctions waiting for their seller: `(seller, auction)`.
    pending: BTreeMap<(u64, u64), ()>,
    /// Reusable buffer for auctions flushed by an arriving person —
    /// keeps the hot per-person path allocation-free after warm-up.
    /// Deliberately not part of [`Self::State`]: it is always drained
    /// before `on_event` returns.
    ready: Vec<(u64, u64)>,
}

impl Q3Join {
    /// Fresh empty join state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamOperator for Q3Join {
    type In = NexmarkEvent;
    type Out = Q3Row;
    /// `(persons sorted by id, pending sorted by (seller, auction))`.
    type State = (Vec<[u64; 3]>, Vec<[u64; 2]>);

    fn on_event(&mut self, event: &StreamEvent<NexmarkEvent>, out: &mut Vec<Q3Row>) {
        match event.payload {
            NexmarkEvent::Person(p) => {
                if p.state < Q3_STATE_CUT {
                    self.persons.insert(p.id, (p.state, p.city));
                    // Flush auctions that were waiting for this seller.
                    self.ready.extend(
                        self.pending
                            .range((p.id, 0)..=(p.id, u64::MAX))
                            .map(|(&k, ())| k),
                    );
                    for i in 0..self.ready.len() {
                        let key = self.ready[i];
                        self.pending.remove(&key);
                        out.push(Q3Row {
                            auction: key.1,
                            seller: p.id,
                            state: p.state,
                            city: p.city,
                        });
                    }
                    self.ready.clear();
                }
            }
            NexmarkEvent::Auction(a) => {
                if a.category == Q3_CATEGORY {
                    if let Some(&(state, city)) = self.persons.get(&a.seller) {
                        out.push(Q3Row {
                            auction: a.id,
                            seller: a.seller,
                            state,
                            city,
                        });
                    } else {
                        self.pending.insert((a.seller, a.id), ());
                    }
                }
            }
            NexmarkEvent::Bid(_) => {}
        }
    }

    fn on_watermark(&mut self, _watermark: u64, _out: &mut Vec<Q3Row>) {}

    fn state(&self) -> Self::State {
        (
            self.persons
                .iter()
                .map(|(&id, &(state, city))| [id, state, city])
                .collect(),
            self.pending.keys().map(|&(s, a)| [s, a]).collect(),
        )
    }

    fn restore(&mut self, state: Self::State) {
        self.persons = state.0.into_iter().map(|[id, s, c]| (id, (s, c))).collect();
        self.pending = state.1.into_iter().map(|[s, a]| ((s, a), ())).collect();
    }

    fn write_state(state: &Self::State, h: &mut Xxh64) {
        h.write_u64(state.0.len() as u64);
        for row in &state.0 {
            h.write_u64s(row);
        }
        h.write_u64(state.1.len() as u64);
        for row in &state.1 {
            h.write_u64s(row);
        }
    }
}

/// Wraps `(time, event)` pairs from the generator as a stream source.
pub fn nexmark_source(
    events: Vec<(u64, NexmarkEvent)>,
    config: SourceConfig,
) -> StreamSource<NexmarkEvent> {
    StreamSource::with_config(
        events
            .into_iter()
            .map(|(t, e)| StreamEvent::new(t, e))
            .collect(),
        config,
    )
}

/// Sequential watermark simulation: which events survive the late-data
/// policy, given the exact arrival order. Mirrors the runtimes'
/// semantics — an event is dropped iff its time is behind the watermark
/// in force when it arrives, and the watermark advances to
/// `max time seen − allowance` after every `watermark_every` arrivals
/// (unless stalled).
fn kept_events<'a, T>(
    events: &'a [StreamEvent<T>],
    cfg: &SourceConfig,
) -> Vec<&'a StreamEvent<T>> {
    let wm_every = cfg.watermark_every.max(1);
    let mut frontier = 0u64;
    let mut wm = 0u64;
    let mut kept = Vec::with_capacity(events.len());
    for (idx, ev) in events.iter().enumerate() {
        if ev.time >= wm {
            kept.push(ev);
        }
        frontier = frontier.max(ev.time);
        let emitted = idx as u64 + 1;
        let stalled = cfg.stall_watermark_after.is_some_and(|cut| emitted > cut);
        if emitted % wm_every == 0 && !stalled {
            wm = frontier.saturating_sub(cfg.allowance);
        }
    }
    kept
}

/// Independent q3 oracle: the full filter-join over surviving events,
/// sorted canonically.
pub fn q3_oracle(source: &StreamSource<NexmarkEvent>) -> Vec<Q3Row> {
    let mut persons: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut auctions: Vec<(u64, u64)> = Vec::new();
    for ev in kept_events(&source.events, &source.config) {
        match ev.payload {
            NexmarkEvent::Person(p) if p.state < Q3_STATE_CUT => {
                persons.insert(p.id, (p.state, p.city));
            }
            NexmarkEvent::Auction(a) if a.category == Q3_CATEGORY => {
                auctions.push((a.seller, a.id));
            }
            _ => {}
        }
    }
    let mut rows: Vec<Q3Row> = auctions
        .into_iter()
        .filter_map(|(seller, auction)| {
            persons.get(&seller).map(|&(state, city)| Q3Row {
                auction,
                seller,
                state,
                city,
            })
        })
        .collect();
    rows.sort();
    rows
}

/// Independent q6 oracle: arithmetic window assignment and aggregation
/// over surviving bids, sorted canonically. The final MAX watermark
/// flushes every window, so every assigned window appears.
pub fn q6_oracle(source: &StreamSource<NexmarkEvent>) -> Vec<WindowResult> {
    let mut windows: BTreeMap<(u64, u64), (u64, u64, u64)> = BTreeMap::new();
    for ev in kept_events(&source.events, &source.config) {
        if let NexmarkEvent::Bid(b) = ev.payload {
            let start = ev.time - ev.time % Q6_WINDOW;
            let w = windows.entry((b.auction, start)).or_insert((0, 0, 0));
            w.0 = w.0.wrapping_add(b.price);
            w.1 += 1;
            w.2 = w.2.max(b.price);
        }
    }
    let mut out: Vec<WindowResult> = windows
        .into_iter()
        .map(|((key, start), (sum, count, max))| WindowResult {
            key,
            start,
            end: start + Q6_WINDOW,
            sum,
            count,
            max,
        })
        .collect();
    out.sort();
    out
}

/// Sorts committed outputs into the oracles' canonical order (strips
/// epoch tags).
pub fn canonical<Out: Ord + Clone>(committed: &[(u64, Out)]) -> Vec<Out> {
    let mut v: Vec<Out> = committed.iter().map(|(_, o)| o.clone()).collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_datagen::nexmark::{generate, NexmarkConfig};
    use flowmark_engine::faults::{install_quiet_hook, CancelToken, FaultConfig, FaultPlan};
    use flowmark_engine::metrics::EngineMetrics;
    use flowmark_engine::streaming::runtime::{
        run_continuous_checkpointed, run_micro_batch_checkpointed, StreamJobConfig,
    };
    use flowmark_engine::streaming::source::shuffle_bounded;

    fn source(n: usize, seed: u64) -> StreamSource<NexmarkEvent> {
        let events = generate(seed, n, &NexmarkConfig::default());
        nexmark_source(
            events,
            SourceConfig {
                allowance: 32,
                watermark_every: 16,
                stall_watermark_after: None,
                hold_at_end: false,
            },
        )
    }

    #[test]
    fn q3_matches_oracle_on_both_runtimes() {
        let src = source(1_500, 3);
        let cfg = StreamJobConfig::default();
        let plan = FaultPlan::disabled();
        let m = EngineMetrics::new();
        let c = CancelToken::new();
        let ct =
            run_continuous_checkpointed(&src, |_| Q3Join::new(), route_nexmark, &cfg, &plan, &m, &c);
        let mb =
            run_micro_batch_checkpointed(&src, |_| Q3Join::new(), route_nexmark, &cfg, &plan, &m, &c);
        let oracle = q3_oracle(&src);
        assert!(!oracle.is_empty(), "q3 oracle produced nothing");
        assert_eq!(canonical(&ct.committed), oracle);
        assert_eq!(canonical(&mb.committed), oracle);
        assert_eq!(ct.committed, mb.committed);
    }

    #[test]
    fn q6_matches_oracle_under_chaos_and_disorder() {
        install_quiet_hook();
        let mut src = source(1_500, 5);
        src.events = shuffle_bounded(src.events, 17, 6);
        let cfg = StreamJobConfig::default();
        let plan = FaultPlan::new(FaultConfig::corruption(23));
        let m = EngineMetrics::new();
        let c = CancelToken::new();
        let ct =
            run_continuous_checkpointed(&src, |_| q6_operator(), route_nexmark, &cfg, &plan, &m, &c);
        let oracle = q6_oracle(&src);
        assert!(!oracle.is_empty(), "q6 oracle produced nothing");
        assert_eq!(canonical(&ct.committed), oracle, "chaos broke exactly-once");
        assert!(m.recovery().injected_failures > 0, "kill never fired");
        assert!(m.recovery().region_restarts > 0, "no restart happened");
        assert!(m.recovery().checkpoints_rejected > 0, "no rotten checkpoint");
        assert!(m.windows_emitted() > 0);
    }

    #[test]
    fn late_events_are_dropped_consistently() {
        // Delay every 10th event far beyond the allowance (guaranteed
        // late) and jitter the rest within it (lag, not lateness): the
        // oracle and the runtimes must agree on exactly which events
        // died.
        let src0 = source(1_200, 9);
        let delayed = flowmark_engine::streaming::source::delay_every(
            shuffle_bounded(src0.events.clone(), 13, 2),
            10,
            60,
        );
        let src = StreamSource::with_config(
            delayed,
            SourceConfig {
                allowance: 8,
                watermark_every: 8,
                stall_watermark_after: None,
                hold_at_end: false,
            },
        );
        let cfg = StreamJobConfig::default();
        let plan = FaultPlan::disabled();
        let m = EngineMetrics::new();
        let c = CancelToken::new();
        let ct =
            run_continuous_checkpointed(&src, |_| q6_operator(), route_nexmark, &cfg, &plan, &m, &c);
        assert_eq!(canonical(&ct.committed), q6_oracle(&src));
        assert!(m.late_events_dropped() > 0, "no late drops despite delays");
        assert!(m.watermark_lag_events() > 0, "no out-of-order arrivals seen");
    }
}
