//! Page Rank (§III, §VI-E): vertex-centric iteration (Gelly) on Flink vs
//! the GraphX standalone implementation on Spark, over the Table IV graphs.
//!
//! The paper's plan shapes (Fig 16): Flink first runs a *count vertices*
//! job ("Flink's implementation will first execute a job to count the
//! vertices, reading the dataset one more time"), then loads the graph
//! (CoGroup builds the vertex state) and runs bulk iterations. Spark loads
//! with `map → coalesce → load graph`, then per-iteration
//! `mapPartitions → foreachPartition` waves.

use std::collections::HashMap;

use flowmark_core::config::Framework;
use flowmark_dataflow::operator::OperatorKind;
use flowmark_dataflow::plan::{CostAnnotation, ExchangeMode, IterationKind, LogicalPlan};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::iterate::{vertex_centric_with_combiner, IterationMode, PartitionedGraph};
use flowmark_engine::spark::SparkContext;
use flowmark_engine::IterationError;

use crate::costs::*;

/// Damping factor used by every implementation.
pub const DAMPING: f64 = 0.85;

/// Problem size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphScale {
    /// Vertex count.
    pub vertices: u64,
    /// Edge count.
    pub edges: u64,
    /// Iterations.
    pub iterations: u32,
}

impl GraphScale {
    /// Small graph (Table IV), 20 Page Rank iterations (Fig 16).
    pub fn small(iterations: u32) -> Self {
        Self {
            vertices: 24_700_000,
            edges: 800_000_000,
            iterations,
        }
    }

    /// Medium graph (Table IV).
    pub fn medium(iterations: u32) -> Self {
        Self {
            vertices: 65_600_000,
            edges: 1_800_000_000,
            iterations,
        }
    }

    /// Large graph (Table IV); Table VII runs 5 PR iterations.
    pub fn large(iterations: u32) -> Self {
        Self {
            vertices: 1_700_000_000,
            edges: 64_000_000_000,
            iterations,
        }
    }
}

/// Builds the annotated simulator plan (load + iterate + save).
pub fn plan(fw: Framework, scale: &GraphScale) -> LogicalPlan {
    plan_with_decay(fw, scale, IterationKind::Bulk, 1.0, PR_EDGE_NS)
}

/// Shared plan builder for PR (bulk) and CC (delta on Flink); `edge_ns` is
/// the per-edge-per-round user CPU cost (PR and CC differ).
pub(crate) fn plan_with_decay(
    fw: Framework,
    scale: &GraphScale,
    kind: IterationKind,
    decay: f64,
    edge_ns: f64,
) -> LogicalPlan {
    let e = scale.edges;
    let v = scale.vertices;
    let v_over_e = v as f64 / e as f64;

    // Per-round body: scatter along edges, gather per vertex.
    let mut body = LogicalPlan::new();
    let cached = body.source_cached(e, 8.0);
    let scatter = body.unary(
        cached,
        OperatorKind::GraphOp,
        CostAnnotation::new(1.0, edge_ns, GRAPH_MSG_BYTES),
    );
    match fw {
        Framework::Spark => {
            body.unary(
                scatter,
                OperatorKind::ReduceByKey,
                CostAnnotation::new(v_over_e, 300.0, GRAPH_VERTEX_BYTES),
            );
        }
        Framework::Flink => {
            body.unary(
                scatter,
                OperatorKind::GroupReduce,
                CostAnnotation::new(v_over_e, 300.0, GRAPH_VERTEX_BYTES),
            );
        }
    }

    let mut p = LogicalPlan::new();
    match fw {
        Framework::Spark => {
            // LD = Map -> Coalesce -> Load Graph (Fig 16 right).
            let src = p.source(e, GRAPH_EDGE_TEXT_BYTES);
            let parse = p.unary(
                src,
                OperatorKind::Map,
                CostAnnotation::new(1.0, GRAPH_PARSE_NS, 16.0),
            );
            let co = p.unary(
                parse,
                OperatorKind::Coalesce,
                CostAnnotation::new(1.0, 200.0, 16.0),
            );
            let load = p.unary_via(
                co,
                ExchangeMode::HashShuffle,
                OperatorKind::GraphOp,
                CostAnnotation::new(1.0, GRAPH_BUILD_NS, 16.0),
            );
            let it = p.iterate(load, kind, scale.iterations, body, decay);
            p.unary(
                it,
                OperatorKind::DataSink,
                CostAnnotation::new(v_over_e, 200.0, GRAPH_VERTEX_BYTES),
            );
        }
        Framework::Flink => {
            // CV: count vertices — a full extra read of the dataset.
            let cv_src = p.source(e, GRAPH_EDGE_TEXT_BYTES);
            let cv_fm = p.unary(
                cv_src,
                OperatorKind::FlatMap,
                CostAnnotation::new(2.0, GRAPH_PARSE_NS, 8.0),
            );
            let cv_d = p.unary(
                cv_fm,
                OperatorKind::Distinct,
                CostAnnotation::new(v as f64 / (2.0 * e as f64), 200.0, 8.0),
            );
            p.unary(cv_d, OperatorKind::Collect, CostAnnotation::new(1e-9, 20.0, 8.0));
            // LD: load graph, CoGroup builds the vertex state in memory.
            let src = p.source(e, GRAPH_EDGE_TEXT_BYTES);
            let parse = p.unary(
                src,
                OperatorKind::FlatMap,
                CostAnnotation::new(1.0, GRAPH_PARSE_NS, 16.0),
            );
            let adj = p.unary(
                parse,
                OperatorKind::GroupReduce,
                CostAnnotation::new(v_over_e, GRAPH_BUILD_NS, 24.0),
            );
            let ranks = p.source_cached(v, GRAPH_VERTEX_BYTES);
            let cg = p.binary(
                (adj, ExchangeMode::Forward),
                (ranks, ExchangeMode::HashShuffle),
                OperatorKind::CoGroup,
                CostAnnotation::new(1.0, 400.0, 24.0),
            );
            let it = p.iterate(cg, kind, scale.iterations, body, decay);
            p.unary(
                it,
                OperatorKind::DataSink,
                CostAnnotation::new(v_over_e, 200.0, GRAPH_VERTEX_BYTES),
            );
        }
    }
    p
}

/// Table I row.
pub fn operator_table(fw: Framework) -> Vec<OperatorKind> {
    use OperatorKind::*;
    match fw {
        Framework::Spark => vec![Map, Coalesce, MapPartitions, GraphOp, DataSink],
        Framework::Flink => vec![FlatMap, GroupReduce, CoGroup, GraphOp, BulkIteration, DataSink],
    }
}

/// Runs Page Rank on the pipelined engine's native vertex-centric runtime.
pub fn run_flink(
    env: &FlinkEnv,
    edges: &[(u64, u64)],
    iterations: u32,
    partitions: usize,
) -> Result<HashMap<u64, f64>, IterationError> {
    let graph = PartitionedGraph::from_edges(edges, partitions);
    let n = graph.vertex_count() as f64;
    let base = (1.0 - DAMPING) / n;
    // Vertex value carries (rank, supersteps done): superstep 0 only
    // scatters the initial ranks; each later superstep recomputes the rank
    // from the gathered shares — zero shares still re-rank to `base`, like
    // the oracle's dangling-in-degree vertices.
    let values = vertex_centric_with_combiner(
        env,
        &graph,
        |_, _| (1.0 / n, 0u32),
        &move |_v, value: &(f64, u32), msgs: &[f64], ns: &[u64]| {
            let (rank, round) = *value;
            let new_rank = if round == 0 {
                rank
            } else {
                base + DAMPING * msgs.iter().sum::<f64>()
            };
            let out = if ns.is_empty() {
                Vec::new()
            } else {
                let share = new_rank / ns.len() as f64;
                ns.iter().map(|&t| (t, share)).collect()
            };
            ((new_rank, round + 1), true, out)
        },
        // Rank shares fold with `+`: combine before the channel.
        Some(|a: f64, b: f64| a + b),
        iterations + 1, // superstep 0 is the initial scatter
        IterationMode::Bulk,
    )?;
    Ok(values.into_iter().map(|(v, (r, _))| (v, r)).collect())
}

/// Runs Page Rank on the staged engine with the classic RDD join loop
/// (loop unrolling, ranks recomputed via shuffle each round).
pub fn run_spark(
    sc: &SparkContext,
    edges: &[(u64, u64)],
    iterations: u32,
    partitions: usize,
) -> HashMap<u64, f64> {
    use flowmark_engine::cache::StorageLevel;
    // Adjacency lists, persisted like GraphX keeps the graph.
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(s, t) in edges {
        adj.entry(s).or_default().push(t);
        adj.entry(t).or_default();
    }
    let n = adj.len() as f64;
    let base = (1.0 - DAMPING) / n;
    let links = sc
        .parallelize(adj.into_iter().collect::<Vec<_>>(), partitions)
        .persist(StorageLevel::MemoryOnly);
    let mut ranks: HashMap<u64, f64> = links
        .map(move |(v, _)| (*v, 1.0 / n))
        .collect_as_map();
    for _ in 0..iterations {
        let current = ranks.clone();
        let contribs = links.flat_map(move |(v, ns)| {
            let r = current.get(v).copied().unwrap_or(0.0);
            if ns.is_empty() {
                Vec::new()
            } else {
                let share = r / ns.len() as f64;
                ns.iter().map(|&t| (t, share)).collect::<Vec<_>>()
            }
        });
        // The wave's map-side combine is the staged engine's sender-side
        // message combining; the counter deltas measure what it eliminated.
        let combine_in = sc.metrics().combine_input();
        let combine_out = sc.metrics().combine_output();
        let sums = contribs.reduce_by_key(|a, b| *a += b).collect_as_map();
        sc.metrics().add_messages_combined(
            (sc.metrics().combine_input() - combine_in)
                .saturating_sub(sc.metrics().combine_output() - combine_out),
        );
        for (v, r) in ranks.iter_mut() {
            *r = base + DAMPING * sums.get(v).copied().unwrap_or(0.0);
        }
        sc.metrics().add_iterations_run(1);
    }
    ranks
}

/// Sequential oracle.
pub fn oracle(edges: &[(u64, u64)], iterations: u32) -> HashMap<u64, f64> {
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(s, t) in edges {
        adj.entry(s).or_default().push(t);
        adj.entry(t).or_default();
    }
    let n = adj.len() as f64;
    let base = (1.0 - DAMPING) / n;
    let mut ranks: HashMap<u64, f64> = adj.keys().map(|&v| (v, 1.0 / n)).collect();
    for _ in 0..iterations {
        let mut sums: HashMap<u64, f64> = HashMap::new();
        for (v, ns) in &adj {
            if ns.is_empty() {
                continue;
            }
            let share = ranks[v] / ns.len() as f64;
            for t in ns {
                *sums.entry(*t).or_insert(0.0) += share;
            }
        }
        for (v, r) in ranks.iter_mut() {
            *r = base + DAMPING * sums.get(v).copied().unwrap_or(0.0);
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_datagen::graph::{RmatGen, RmatParams};

    fn test_edges() -> Vec<(u64, u64)> {
        let mut g = RmatGen::new(9, RmatParams::default(), 21);
        let mut edges = g.edges(4000);
        edges.dedup();
        edges
    }

    fn ranks_close(a: &HashMap<u64, f64>, b: &HashMap<u64, f64>, tol: f64) -> bool {
        a.len() == b.len()
            && a.iter().all(|(v, r)| (b.get(v).copied().unwrap_or(f64::NAN) - r).abs() < tol)
    }

    #[test]
    fn flink_vertex_centric_matches_oracle() {
        // The Flink path iterates vertex-centrically; with the same fixed
        // round count it must agree with the oracle.
        let edges = test_edges();
        let expect = oracle(&edges, 10);
        let env = FlinkEnv::new(4);
        let flink = run_flink(&env, &edges, 10, 4).unwrap();
        assert!(ranks_close(&flink, &expect, 1e-9), "flink drifted");
    }

    #[test]
    fn spark_join_loop_matches_oracle() {
        let edges = test_edges();
        let expect = oracle(&edges, 10);
        let sc = SparkContext::new(4, 64 << 20);
        let spark = run_spark(&sc, &edges, 10, 4);
        assert!(ranks_close(&spark, &expect, 1e-9), "spark drifted");
    }

    #[test]
    fn ranks_sum_to_roughly_one() {
        let edges = test_edges();
        let ranks = oracle(&edges, 15);
        let total: f64 = ranks.values().sum();
        // Dangling mass leaks a little; stays in (0.5, 1.001).
        assert!(total > 0.5 && total < 1.001, "total {total}");
    }

    #[test]
    fn high_degree_vertices_rank_higher() {
        let edges = test_edges();
        let ranks = oracle(&edges, 15);
        let mut indeg: HashMap<u64, u64> = HashMap::new();
        for &(_, t) in &edges {
            *indeg.entry(t).or_default() += 1;
        }
        let hottest = indeg.iter().max_by_key(|(_, d)| **d).unwrap().0;
        let coldest = ranks
            .keys()
            .find(|v| indeg.get(v).copied().unwrap_or(0) == 0)
            .expect("some vertex without in-edges");
        assert!(ranks[hottest] > ranks[coldest]);
    }

    #[test]
    fn plans_validate_and_flink_counts_vertices_first() {
        let scale = GraphScale::small(20);
        let spark = plan(Framework::Spark, &scale);
        let flink = plan(Framework::Flink, &scale);
        assert!(spark.validate().is_ok() && flink.validate().is_ok());
        // Flink reads the dataset twice (count-vertices job + load).
        let flink_sources = flink
            .nodes()
            .iter()
            .filter(|n| n.op == OperatorKind::DataSource)
            .count();
        let spark_sources = spark
            .nodes()
            .iter()
            .filter(|n| n.op == OperatorKind::DataSource)
            .count();
        assert_eq!(flink_sources, 2);
        assert_eq!(spark_sources, 1);
        assert!(flink.nodes().iter().any(|n| n.op == OperatorKind::CoGroup));
    }
}
