//! Per-record user-code cost constants for the simulator's plans.
//!
//! These are the *workload* halves of the cost model (the framework halves
//! live in `flowmark_sim::Calibration`). Each constant is the CPU cost of
//! the user-defined function per input record on the paper's Xeon E5-2630v3
//! cores, JVM-realistic (object churn included), chosen once against the
//! paper's absolute execution times and then frozen.

/// Average bytes of one text line in the Wikipedia-like corpus.
pub const TEXT_LINE_BYTES: f64 = 80.0;
/// Words per line.
pub const WORDS_PER_LINE: f64 = 10.0;
/// Serialized bytes of one (word, count) pair.
pub const WORD_PAIR_BYTES: f64 = 18.0;
/// Distinct words in the corpus (Wikipedia-scale vocabulary incl. typos,
/// numbers, markup tokens).
pub const VOCABULARY: f64 = 1.0e7;

/// CPU ns to split one line into words and emit pairs (flatMap + mapToPair).
pub const WC_FLATMAP_NS: f64 = 24_000.0;
/// CPU ns of user reduce code per word entering an aggregation.
pub const WC_REDUCE_NS: f64 = 250.0;

/// CPU ns to match one line against the Grep pattern.
pub const GREP_FILTER_NS: f64 = 13_800.0;
/// Fraction of lines matching the Grep needle (a common term).
pub const GREP_SELECTIVITY: f64 = 0.20;

/// TeraSort record size (fixed by the benchmark).
pub const TS_RECORD_BYTES: f64 = 100.0;
/// CPU ns per record for key extraction + range partitioning.
pub const TS_MAP_NS: f64 = 900.0;
/// CPU ns per record for the local sort (comparisons + moves, amortised).
pub const TS_SORT_NS: f64 = 2_800.0;

/// Bytes of one K-Means point record in the HiBench text input.
pub const KM_TEXT_BYTES: f64 = 42.0;
/// Bytes of one parsed 2-D point.
pub const KM_POINT_BYTES: f64 = 16.0;
/// Number of cluster centers.
pub const KM_CENTERS: f64 = 10.0;
/// CPU ns to parse one text point.
pub const KM_PARSE_NS: f64 = 50_000.0;
/// CPU ns to assign one point to its nearest center (k distance
/// computations + JVM overhead).
pub const KM_ASSIGN_NS: f64 = 2_100.0;

/// Bytes of one edge in the text edge-list inputs (two decimal ids).
pub const GRAPH_EDGE_TEXT_BYTES: f64 = 17.0;
/// Serialized bytes of one in-flight graph message (rank / label + framing).
pub const GRAPH_MSG_BYTES: f64 = 8.0;
/// CPU ns to parse one edge line.
pub const GRAPH_PARSE_NS: f64 = 6_000.0;
/// CPU ns to build one adjacency entry during graph load.
pub const GRAPH_BUILD_NS: f64 = 1_500.0;
/// CPU ns per edge per Page Rank iteration (scatter + gather share).
pub const PR_EDGE_NS: f64 = 3_300.0;
/// CPU ns per edge per Connected Components iteration.
pub const CC_EDGE_NS: f64 = 6_200.0;
/// Bytes per vertex of the materialised rank/label vector.
pub const GRAPH_VERTEX_BYTES: f64 = 12.0;
/// Workset decay per round for delta-iteration Connected Components
/// (label propagation converges geometrically on power-law graphs).
pub const CC_WORKSET_DECAY: f64 = 0.70;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_geometry_is_consistent() {
        // ~7 bytes per word plus separators fills an 80-byte line.
        let per_word = TEXT_LINE_BYTES / WORDS_PER_LINE;
        assert!(per_word >= 6.0 && per_word <= 10.0);
    }

    #[test]
    fn graph_edge_bytes_match_table_iv() {
        // Small graph: 0.8 B edges at 17 B/edge ≈ 13.6 GB (Table IV: 13.7).
        let small_gb = 0.8e9 * GRAPH_EDGE_TEXT_BYTES / 1e9;
        assert!((small_gb - 13.7).abs() < 0.3, "{small_gb}");
        // Medium: 1.8 B × 17 B ≈ 30.6 GB (Table IV: 30.1).
        let medium_gb = 1.8e9 * GRAPH_EDGE_TEXT_BYTES / 1e9;
        assert!((medium_gb - 30.1).abs() < 0.6, "{medium_gb}");
    }

    #[test]
    fn costs_are_positive() {
        for c in [
            WC_FLATMAP_NS, WC_REDUCE_NS, GREP_FILTER_NS, TS_MAP_NS, TS_SORT_NS,
            KM_PARSE_NS, KM_ASSIGN_NS, GRAPH_PARSE_NS, PR_EDGE_NS, CC_EDGE_NS,
        ] {
            assert!(c > 0.0);
        }
        assert!(GREP_SELECTIVITY > 0.0 && GREP_SELECTIVITY < 1.0);
        assert!(CC_WORKSET_DECAY > 0.0 && CC_WORKSET_DECAY < 1.0);
    }
}
