//! # flowmark-workloads
//!
//! The paper's six workloads (§III), each in three forms:
//!
//! 1. **Annotated logical plans** (`plan(...)`) for the cluster simulator,
//!    one per framework, shaped exactly like the paper's per-figure plan
//!    plots (including asymmetries like Flink's Grep sink phase and its
//!    Page Rank count-vertices job);
//! 2. **Real implementations** (`run_spark` / `run_flink`) on the two
//!    engines in `flowmark-engine`, validated against sequential oracles;
//! 3. **Table I operator inventories** (`operator_table(...)`).
//!
//! [`presets`] holds the parameter tables (II, III, V, VI) verbatim;
//! [`costs`] holds the per-record user-code cost constants the plans are
//! annotated with.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod connected;
pub mod costs;
pub mod grep;
pub mod kmeans;
pub mod pagerank;
pub mod presets;
pub mod stream;
pub mod terasort;
pub mod wordcount;

use flowmark_core::config::Framework;
use flowmark_dataflow::operator::{OperatorKind, OperatorOrigin};

/// The six workloads, in Table I column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Word Count (WC).
    WordCount,
    /// Grep (G).
    Grep,
    /// Tera Sort (TS).
    TeraSort,
    /// K-Means (KM).
    KMeans,
    /// Page Rank (PR).
    PageRank,
    /// Connected Components (CC).
    ConnectedComponents,
}

impl Workload {
    /// All workloads in Table I order.
    pub const ALL: [Workload; 6] = [
        Workload::WordCount,
        Workload::Grep,
        Workload::TeraSort,
        Workload::KMeans,
        Workload::PageRank,
        Workload::ConnectedComponents,
    ];

    /// Paper abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Workload::WordCount => "WC",
            Workload::Grep => "G",
            Workload::TeraSort => "TS",
            Workload::KMeans => "KM",
            Workload::PageRank => "PR",
            Workload::ConnectedComponents => "CC",
        }
    }

    /// True for the iterative (loop-caching) workloads.
    pub fn is_iterative(self) -> bool {
        matches!(
            self,
            Workload::KMeans | Workload::PageRank | Workload::ConnectedComponents
        )
    }

    /// Table I operator row for one framework.
    pub fn operator_table(self, fw: Framework) -> Vec<OperatorKind> {
        match self {
            Workload::WordCount => wordcount::operator_table(fw),
            Workload::Grep => grep::operator_table(fw),
            Workload::TeraSort => terasort::operator_table(fw),
            Workload::KMeans => kmeans::operator_table(fw),
            Workload::PageRank => pagerank::operator_table(fw),
            Workload::ConnectedComponents => connected::operator_table(fw),
        }
    }
}

/// Checks that a framework's operator inventory only uses operators that
/// exist in that framework (Table I's F/S annotations).
pub fn validate_operator_table(workload: Workload, fw: Framework) -> Result<(), String> {
    for op in workload.operator_table(fw) {
        let ok = match op.origin() {
            OperatorOrigin::Common => true,
            OperatorOrigin::SparkOnly => fw == Framework::Spark,
            OperatorOrigin::FlinkOnly => fw == Framework::Flink,
        };
        if !ok {
            return Err(format!(
                "{:?}/{fw}: operator {op} belongs to the other framework",
                workload
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_table_is_framework_consistent() {
        for w in Workload::ALL {
            for fw in Framework::BOTH {
                validate_operator_table(w, fw).unwrap();
            }
        }
    }

    #[test]
    fn iterative_classification_matches_section_iii() {
        assert!(!Workload::WordCount.is_iterative());
        assert!(!Workload::Grep.is_iterative());
        assert!(!Workload::TeraSort.is_iterative());
        assert!(Workload::KMeans.is_iterative());
        assert!(Workload::PageRank.is_iterative());
        assert!(Workload::ConnectedComponents.is_iterative());
    }

    #[test]
    fn abbreviations_match_table_i() {
        let abbrevs: Vec<&str> = Workload::ALL.iter().map(|w| w.abbrev()).collect();
        assert_eq!(abbrevs, vec!["WC", "G", "TS", "KM", "PR", "CC"]);
    }

    #[test]
    fn iterative_workloads_use_iteration_operators_in_flink() {
        use OperatorKind::*;
        let km = Workload::KMeans.operator_table(Framework::Flink);
        assert!(km.contains(&BulkIteration));
        let cc = Workload::ConnectedComponents.operator_table(Framework::Flink);
        assert!(cc.contains(&DeltaIteration));
    }
}
