//! Tera Sort (§III, §VI-C): "a sorting algorithm suitable for measuring the
//! I/O and the communication performance of the two engines", on 100-byte
//! records with 10-byte keys and a shared Hadoop-style range partitioner.
//!
//! - Spark: `newAPIHadoopFile → repartitionAndSortWithinPartitions → save`
//! - Flink: `map (OptimizedText) → partitionCustom → sortPartition → save`

use flowmark_core::config::Framework;
use flowmark_dataflow::operator::OperatorKind;
use flowmark_dataflow::partitioner::RangePartitioner;
use flowmark_dataflow::plan::{CostAnnotation, ExchangeMode, LogicalPlan};
use flowmark_datagen::terasort::{sample_split_points, Record, KEY_BYTES};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::spark::SparkContext;

use crate::costs::*;

/// Problem size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TeraSortScale {
    /// Total bytes to sort.
    pub total_bytes: f64,
}

impl TeraSortScale {
    /// Fixed data per node (Fig 7).
    pub fn per_node(nodes: u32, gb_per_node: f64) -> Self {
        Self {
            total_bytes: nodes as f64 * gb_per_node * 1e9,
        }
    }

    /// Fixed total dataset (Fig 8: 3.5 TB).
    pub fn total_tb(tb: f64) -> Self {
        Self {
            total_bytes: tb * 1e12,
        }
    }
}

/// Builds the annotated simulator plan for one engine.
pub fn plan(fw: Framework, scale: &TeraSortScale) -> LogicalPlan {
    let records = (scale.total_bytes / TS_RECORD_BYTES) as u64;
    let mut p = LogicalPlan::new();
    let src = p.source(records, TS_RECORD_BYTES);
    match fw {
        Framework::Spark => {
            let rs = p.unary_via(
                src,
                ExchangeMode::RangeShuffle,
                OperatorKind::RepartitionAndSort,
                CostAnnotation::new(1.0, TS_MAP_NS + TS_SORT_NS, TS_RECORD_BYTES),
            );
            p.unary(
                rs,
                OperatorKind::DataSink,
                CostAnnotation::new(1.0, 200.0, TS_RECORD_BYTES),
            );
        }
        Framework::Flink => {
            let map = p.unary(
                src,
                OperatorKind::Map,
                CostAnnotation::new(1.0, TS_MAP_NS, TS_RECORD_BYTES),
            );
            let part = p.unary_via(
                map,
                ExchangeMode::RangeShuffle,
                OperatorKind::PartitionCustom,
                CostAnnotation::new(1.0, 200.0, TS_RECORD_BYTES),
            );
            let sort = p.unary(
                part,
                OperatorKind::SortPartition,
                CostAnnotation::new(1.0, TS_SORT_NS, TS_RECORD_BYTES),
            );
            p.unary(
                sort,
                OperatorKind::DataSink,
                CostAnnotation::new(1.0, 200.0, TS_RECORD_BYTES),
            );
        }
    }
    p
}

/// Table I row.
pub fn operator_table(fw: Framework) -> Vec<OperatorKind> {
    use OperatorKind::*;
    match fw {
        Framework::Spark => vec![RepartitionAndSort, DataSink],
        Framework::Flink => vec![Map, PartitionCustom, SortPartition, DataSink],
    }
}

/// Runs TeraSort on the staged engine; returns the per-partition sorted
/// output (concatenation is globally sorted).
pub fn run_spark(
    sc: &SparkContext,
    records: Vec<Record>,
    partitions: usize,
) -> Vec<Vec<Record>> {
    let splits = sample_split_points(&records, partitions, 10_000);
    let partitioner = std::sync::Arc::new(KeyRange::new(splits));
    let keyed: Vec<([u8; KEY_BYTES], Record)> = records
        .into_iter()
        .map(|r| {
            let mut k = [0u8; KEY_BYTES];
            k.copy_from_slice(r.key());
            (k, r)
        })
        .collect();
    let rdd = sc
        .parallelize(keyed, partitions)
        .repartition_and_sort_within_partitions(partitioner);
    (0..rdd.num_partitions())
        .map(|part| {
            flowmark_engine::shuffle::take_partition(rdd.compute(part))
                .into_iter()
                .map(|(_, r)| r)
                .collect()
        })
        .collect()
}

/// Runs TeraSort on the pipelined engine.
pub fn run_flink(env: &FlinkEnv, records: Vec<Record>, partitions: usize) -> Vec<Vec<Record>> {
    let splits = sample_split_points(&records, partitions, 10_000);
    let partitioner = std::sync::Arc::new(KeyRange::new(splits));
    env.from_collection(records)
        .partition_custom(partitioner, |r: &Record| {
            let mut k = [0u8; KEY_BYTES];
            k.copy_from_slice(r.key());
            k
        })
        .sort_partition(|a, b| a.key().cmp(b.key()))
        .collect_partitions()
}

/// Sequential oracle: fully sorted records.
pub fn oracle(mut records: Vec<Record>) -> Vec<Record> {
    records.sort();
    records
}

/// Checks the TeraSort output contract: each partition sorted, partitions
/// in global key order, and the multiset of records preserved.
pub fn validate_output(input_len: usize, output: &[Vec<Record>]) -> Result<(), String> {
    let total: usize = output.iter().map(Vec::len).sum();
    if total != input_len {
        return Err(format!("record count changed: {input_len} → {total}"));
    }
    let mut last_key: Option<Vec<u8>> = None;
    for (i, part) in output.iter().enumerate() {
        for r in part {
            if let Some(prev) = &last_key {
                if prev.as_slice() > r.key() {
                    return Err(format!("order violated at partition {i}"));
                }
            }
            last_key = Some(r.key().to_vec());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_datagen::terasort::TeraGen;

    #[test]
    fn both_engines_produce_globally_sorted_output() {
        let records = TeraGen::new(11).records(5000);
        let expect = oracle(records.clone());

        let sc = SparkContext::new(4, 64 << 20);
        let spark = run_spark(&sc, records.clone(), 8);
        validate_output(records.len(), &spark).unwrap();
        let spark_flat: Vec<Record> = spark.into_iter().flatten().collect();
        assert_eq!(
            spark_flat.iter().map(|r| r.key().to_vec()).collect::<Vec<_>>(),
            expect.iter().map(|r| r.key().to_vec()).collect::<Vec<_>>()
        );

        let env = FlinkEnv::new(4);
        let flink = run_flink(&env, records.clone(), 8);
        validate_output(records.len(), &flink).unwrap();
        let flink_flat: Vec<Record> = flink.into_iter().flatten().collect();
        assert_eq!(
            flink_flat.iter().map(|r| r.key().to_vec()).collect::<Vec<_>>(),
            expect.iter().map(|r| r.key().to_vec()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn plans_validate_and_differ_per_table_i() {
        let scale = TeraSortScale::total_tb(3.5);
        let spark = plan(Framework::Spark, &scale);
        let flink = plan(Framework::Flink, &scale);
        assert!(spark.validate().is_ok() && flink.validate().is_ok());
        assert!(spark
            .nodes()
            .iter()
            .any(|n| n.op == OperatorKind::RepartitionAndSort));
        assert!(flink
            .nodes()
            .iter()
            .any(|n| n.op == OperatorKind::SortPartition));
        // Record count: 3.5 TB / 100 B.
        assert_eq!(spark.nodes()[0].source_records, Some(35_000_000_000));
    }

    #[test]
    fn validate_output_catches_disorder() {
        let records = TeraGen::new(3).records(100);
        let sorted = oracle(records.clone());
        let mut bad = vec![sorted.clone()];
        bad[0].swap(0, 50);
        assert!(validate_output(100, &bad).is_err());
        assert!(validate_output(100, &[sorted]).is_ok());
        assert!(validate_output(99, &[oracle(records)]).is_err());
    }
}

/// A range partitioner over fixed-size keys.
pub struct KeyRange {
    inner: RangePartitioner<[u8; KEY_BYTES]>,
}

impl KeyRange {
    /// Creates a key-range partitioner from split points.
    pub fn new(splits: Vec<[u8; KEY_BYTES]>) -> Self {
        Self {
            inner: RangePartitioner::new(splits),
        }
    }
}

impl flowmark_dataflow::partitioner::Partitioner<[u8; KEY_BYTES]> for KeyRange {
    fn partitions(&self) -> usize {
        self.inner.partitions()
    }
    fn partition(&self, key: &[u8; KEY_BYTES]) -> usize {
        self.inner.partition(key)
    }
}
