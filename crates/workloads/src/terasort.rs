//! Tera Sort (§III, §VI-C): "a sorting algorithm suitable for measuring the
//! I/O and the communication performance of the two engines", on 100-byte
//! records with 10-byte keys and a shared Hadoop-style range partitioner.
//!
//! - Spark: `newAPIHadoopFile → repartitionAndSortWithinPartitions → save`
//! - Flink: `map (OptimizedText) → partitionCustom → sortPartition → save`

use flowmark_core::config::Framework;
use flowmark_dataflow::operator::OperatorKind;
use flowmark_dataflow::partitioner::RangePartitioner;
use flowmark_dataflow::plan::{CostAnnotation, ExchangeMode, LogicalPlan};
use flowmark_datagen::terasort::{sample_split_points, Record, KEY_BYTES};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::spark::SparkContext;

use crate::costs::*;

/// Problem size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TeraSortScale {
    /// Total bytes to sort.
    pub total_bytes: f64,
}

impl TeraSortScale {
    /// Fixed data per node (Fig 7).
    pub fn per_node(nodes: u32, gb_per_node: f64) -> Self {
        Self {
            total_bytes: nodes as f64 * gb_per_node * 1e9,
        }
    }

    /// Fixed total dataset (Fig 8: 3.5 TB).
    pub fn total_tb(tb: f64) -> Self {
        Self {
            total_bytes: tb * 1e12,
        }
    }
}

/// Builds the annotated simulator plan for one engine.
pub fn plan(fw: Framework, scale: &TeraSortScale) -> LogicalPlan {
    let records = (scale.total_bytes / TS_RECORD_BYTES) as u64;
    let mut p = LogicalPlan::new();
    let src = p.source(records, TS_RECORD_BYTES);
    match fw {
        Framework::Spark => {
            let rs = p.unary_via(
                src,
                ExchangeMode::RangeShuffle,
                OperatorKind::RepartitionAndSort,
                CostAnnotation::new(1.0, TS_MAP_NS + TS_SORT_NS, TS_RECORD_BYTES),
            );
            p.unary(
                rs,
                OperatorKind::DataSink,
                CostAnnotation::new(1.0, 200.0, TS_RECORD_BYTES),
            );
        }
        Framework::Flink => {
            let map = p.unary(
                src,
                OperatorKind::Map,
                CostAnnotation::new(1.0, TS_MAP_NS, TS_RECORD_BYTES),
            );
            let part = p.unary_via(
                map,
                ExchangeMode::RangeShuffle,
                OperatorKind::PartitionCustom,
                CostAnnotation::new(1.0, 200.0, TS_RECORD_BYTES),
            );
            let sort = p.unary(
                part,
                OperatorKind::SortPartition,
                CostAnnotation::new(1.0, TS_SORT_NS, TS_RECORD_BYTES),
            );
            p.unary(
                sort,
                OperatorKind::DataSink,
                CostAnnotation::new(1.0, 200.0, TS_RECORD_BYTES),
            );
        }
    }
    p
}

/// Table I row.
pub fn operator_table(fw: Framework) -> Vec<OperatorKind> {
    use OperatorKind::*;
    match fw {
        Framework::Spark => vec![RepartitionAndSort, DataSink],
        Framework::Flink => vec![Map, PartitionCustom, SortPartition, DataSink],
    }
}

/// Partition index for one record under the shared range partitioner.
fn range_part(partitioner: &KeyRange, r: &Record) -> usize {
    use flowmark_dataflow::partitioner::Partitioner;
    let mut k = [0u8; KEY_BYTES];
    k.copy_from_slice(r.key());
    partitioner.partition(&k)
}

/// Chunks a record vector into fixed-size batches, moving each record
/// exactly once: batches split off the *tail* (so `split_off` copies one
/// batch, not the whole remainder) and the list is reversed at the end.
fn batch_records(records: Vec<Record>, batch_rows: usize) -> Vec<Vec<Record>> {
    let mut batches = Vec::with_capacity(records.len().div_ceil(batch_rows).max(1));
    let mut rest = records;
    while rest.len() > batch_rows {
        batches.push(rest.split_off(rest.len() - batch_rows));
    }
    batches.push(rest);
    batches.reverse();
    batches
}

/// Routes one map partition's record batches into per-reducer batches
/// tagged with their target partition: one counting pass pre-sizes every
/// bucket, then each record moves exactly once.
fn route_batches(
    chunks: &[Vec<Record>],
    partitioner: &KeyRange,
) -> Vec<(usize, Vec<Record>)> {
    use flowmark_dataflow::partitioner::Partitioner;
    let parts = partitioner.partitions();
    let mut counts = vec![0usize; parts];
    for chunk in chunks {
        for r in chunk {
            counts[range_part(partitioner, r)] += 1;
        }
    }
    let mut buckets: Vec<Vec<Record>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for chunk in chunks {
        for r in chunk {
            buckets[range_part(partitioner, r)].push(r.clone());
        }
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .collect()
}

/// Big-endian `u64` over a record's first 8 key bytes: integer order on the
/// prefix equals lexicographic order on those bytes, so a flat `u64` column
/// stands in for the 10-byte key in the radix passes.
#[inline]
/// First 4 key bytes as a big-endian integer: 4 radix passes order the
/// records by their 32-bit prefix (the upper 4 bytes of the `u64` are
/// zero, so the histogram pre-pass skips them), and 32-bit collisions are
/// rare enough at per-reducer scale that the comparison tie-break on the
/// key tail costs almost nothing.
fn key_prefix(r: &Record) -> u64 {
    u32::from_be_bytes(r.key()[..4].try_into().expect("keys have 10 bytes")) as u64
}

/// Concatenates a reducer's routed batches and sorts them by key through
/// the columnar radix path (the reduce half, run inside the shuffle on the
/// staged engine): one pass extracts a flat `u64` prefix column,
/// [`flowmark_columnar::kernels::radix_sort_u64`] produces the permutation
/// without touching the 100-byte payloads, runs of equal prefixes tie-break
/// on the key tail, and a single gather pass moves each record exactly
/// once.
fn merge_sort_batches(
    batches: Vec<Vec<Record>>,
    metrics: &flowmark_engine::metrics::EngineMetrics,
) -> Vec<Record> {
    let total: usize = batches.iter().map(Vec::len).sum();
    let mut all = Vec::with_capacity(total);
    for mut b in batches {
        all.append(&mut b);
    }
    let keys: Vec<u64> = all.iter().map(key_prefix).collect();
    let mut perm = flowmark_columnar::kernels::radix_sort_u64(&keys);
    // Records agreeing on the 32-bit prefix (rare for random printable
    // keys, common in adversarial inputs) still need the remaining key
    // bytes compared.
    let mut i = 0;
    while i < perm.len() {
        let prefix = keys[perm[i] as usize];
        let mut j = i + 1;
        while j < perm.len() && keys[perm[j] as usize] == prefix {
            j += 1;
        }
        if j - i > 1 {
            perm[i..j].sort_unstable_by(|&a, &b| {
                all[a as usize].key()[4..].cmp(&all[b as usize].key()[4..])
            });
        }
        i = j;
    }
    metrics.add_radix_sort_runs(1);
    perm.iter().map(|&i| all[i as usize].clone()).collect()
}

/// Runs TeraSort on the staged engine; returns the per-partition sorted
/// output (concatenation is globally sorted). Records move through the
/// shuffle as whole routed batches; the per-partition sort runs inside the
/// shuffle materialisation.
pub fn run_spark(
    sc: &SparkContext,
    records: Vec<Record>,
    partitions: usize,
) -> Vec<Vec<Record>> {
    use flowmark_dataflow::partitioner::Partitioner;
    let splits = sample_split_points(&records, partitions, 10_000);
    let partitioner = std::sync::Arc::new(KeyRange::new(splits));
    let out_parts = partitioner.partitions();
    let rows = records.len();
    let batches = batch_records(records, flowmark_columnar::DEFAULT_BATCH_ROWS);
    sc.metrics()
        .add_records_read((rows - batches.len().min(rows)) as u64);
    let metrics = sc.metrics().clone();
    let rdd = sc
        .parallelize(batches, partitions)
        .map_partitions(move |chunks| route_batches(chunks, &partitioner))
        .exchange_by_index_with(out_parts, move |bs| vec![merge_sort_batches(bs, &metrics)]);
    (0..rdd.num_partitions())
        .map(|part| {
            flowmark_engine::shuffle::take_partition(rdd.compute(part))
                .into_iter()
                .flatten()
                .collect()
        })
        .collect()
}

/// Runs TeraSort on the pipelined engine: whole routed batches stream
/// through the bounded channels (one send per batch), then each partition
/// sorts locally.
pub fn run_flink(env: &FlinkEnv, records: Vec<Record>, partitions: usize) -> Vec<Vec<Record>> {
    use flowmark_dataflow::partitioner::Partitioner;
    let splits = sample_split_points(&records, partitions, 10_000);
    let partitioner = std::sync::Arc::new(KeyRange::new(splits));
    let out_parts = partitioner.partitions();
    let rows = records.len();
    let batches = batch_records(records, flowmark_columnar::DEFAULT_BATCH_ROWS);
    env.metrics()
        .add_records_read((rows - batches.len().min(rows)) as u64);
    env.from_collection(batches)
        .map_partition(move |chunks: Vec<Vec<Record>>| {
            let mut counts = vec![0usize; partitioner.partitions()];
            for chunk in &chunks {
                for r in chunk {
                    counts[range_part(&partitioner, r)] += 1;
                }
            }
            let mut routed: Vec<Vec<Record>> =
                counts.iter().map(|&c| Vec::with_capacity(c)).collect();
            for chunk in chunks {
                for r in chunk {
                    routed[range_part(&partitioner, &r)].push(r);
                }
            }
            routed
                .into_iter()
                .enumerate()
                .filter(|(_, b)| !b.is_empty())
                .collect::<Vec<(usize, Vec<Record>)>>()
        })
        .exchange_by_index(out_parts)
        .map_partition({
            let metrics = env.metrics().clone();
            move |bs: Vec<Vec<Record>>| merge_sort_batches(bs, &metrics)
        })
        .collect_partitions()
}

/// Runs TeraSort on the staged engine record-at-a-time (the pre-columnar
/// plan, kept as the scalar reference for parity tests).
pub fn run_spark_records(
    sc: &SparkContext,
    records: Vec<Record>,
    partitions: usize,
) -> Vec<Vec<Record>> {
    let splits = sample_split_points(&records, partitions, 10_000);
    let partitioner = std::sync::Arc::new(KeyRange::new(splits));
    let keyed: Vec<([u8; KEY_BYTES], Record)> = records
        .into_iter()
        .map(|r| {
            let mut k = [0u8; KEY_BYTES];
            k.copy_from_slice(r.key());
            (k, r)
        })
        .collect();
    let rdd = sc
        .parallelize(keyed, partitions)
        .repartition_and_sort_within_partitions(partitioner);
    (0..rdd.num_partitions())
        .map(|part| {
            flowmark_engine::shuffle::take_partition(rdd.compute(part))
                .into_iter()
                .map(|(_, r)| r)
                .collect()
        })
        .collect()
}

/// Runs TeraSort on the pipelined engine record-at-a-time (scalar
/// reference).
pub fn run_flink_records(
    env: &FlinkEnv,
    records: Vec<Record>,
    partitions: usize,
) -> Vec<Vec<Record>> {
    let splits = sample_split_points(&records, partitions, 10_000);
    let partitioner = std::sync::Arc::new(KeyRange::new(splits));
    env.from_collection(records)
        .partition_custom(partitioner, |r: &Record| {
            let mut k = [0u8; KEY_BYTES];
            k.copy_from_slice(r.key());
            k
        })
        .sort_partition(|a, b| a.key().cmp(b.key()))
        .collect_partitions()
}

/// Sequential oracle: fully sorted records.
pub fn oracle(mut records: Vec<Record>) -> Vec<Record> {
    records.sort();
    records
}

/// Checks the TeraSort output contract: each partition sorted, partitions
/// in global key order, and the multiset of records preserved.
pub fn validate_output(input_len: usize, output: &[Vec<Record>]) -> Result<(), String> {
    let total: usize = output.iter().map(Vec::len).sum();
    if total != input_len {
        return Err(format!("record count changed: {input_len} → {total}"));
    }
    let mut last_key: Option<Vec<u8>> = None;
    for (i, part) in output.iter().enumerate() {
        for r in part {
            if let Some(prev) = &last_key {
                if prev.as_slice() > r.key() {
                    return Err(format!("order violated at partition {i}"));
                }
            }
            last_key = Some(r.key().to_vec());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_datagen::terasort::TeraGen;

    #[test]
    fn both_engines_produce_globally_sorted_output() {
        let records = TeraGen::new(11).records(5000);
        let expect = oracle(records.clone());

        let sc = SparkContext::new(4, 64 << 20);
        let spark = run_spark(&sc, records.clone(), 8);
        validate_output(records.len(), &spark).unwrap();
        let spark_flat: Vec<Record> = spark.into_iter().flatten().collect();
        assert_eq!(
            spark_flat.iter().map(|r| r.key().to_vec()).collect::<Vec<_>>(),
            expect.iter().map(|r| r.key().to_vec()).collect::<Vec<_>>()
        );

        let env = FlinkEnv::new(4);
        let flink = run_flink(&env, records.clone(), 8);
        validate_output(records.len(), &flink).unwrap();
        let flink_flat: Vec<Record> = flink.into_iter().flatten().collect();
        assert_eq!(
            flink_flat.iter().map(|r| r.key().to_vec()).collect::<Vec<_>>(),
            expect.iter().map(|r| r.key().to_vec()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn radix_merge_counts_runs_and_matches_the_record_adapters() {
        let records = TeraGen::new(29).records(3000);
        let expect_keys: Vec<Vec<u8>> = oracle(records.clone())
            .iter()
            .map(|r| r.key().to_vec())
            .collect();

        let sc = SparkContext::new(4, 64 << 20);
        let batch: Vec<Vec<u8>> = run_spark(&sc, records.clone(), 4)
            .into_iter()
            .flatten()
            .map(|r| r.key().to_vec())
            .collect();
        assert_eq!(batch, expect_keys);
        assert!(
            sc.metrics().radix_sort_runs() > 0,
            "batch path must sort through the radix kernel"
        );

        let sc2 = SparkContext::new(4, 64 << 20);
        let rec: Vec<Vec<u8>> = run_spark_records(&sc2, records.clone(), 4)
            .into_iter()
            .flatten()
            .map(|r| r.key().to_vec())
            .collect();
        assert_eq!(rec, expect_keys);
        assert_eq!(
            sc2.metrics().radix_sort_runs(),
            0,
            "the record adapter must stay off the radix path"
        );
    }

    #[test]
    fn radix_merge_tie_breaks_equal_prefixes_on_the_key_tail() {
        // Adversarial keys: all records share the first 8 key bytes, so
        // every radix pass is trivial and ordering rests entirely on the
        // 2-byte tail comparison.
        let mut records: Vec<Record> = (0..100u8)
            .rev()
            .map(|i| {
                let mut bytes = [b'A'; 100];
                bytes[8] = b' ' + (i % 20);
                bytes[9] = b' ' + (i / 20);
                Record(bytes)
            })
            .collect();
        records.rotate_left(37);
        let expect = oracle(records.clone());
        let metrics = flowmark_engine::metrics::EngineMetrics::new();
        let sorted = merge_sort_batches(vec![records], &metrics);
        assert_eq!(sorted, expect);
        assert_eq!(metrics.radix_sort_runs(), 1);
    }

    #[test]
    fn plans_validate_and_differ_per_table_i() {
        let scale = TeraSortScale::total_tb(3.5);
        let spark = plan(Framework::Spark, &scale);
        let flink = plan(Framework::Flink, &scale);
        assert!(spark.validate().is_ok() && flink.validate().is_ok());
        assert!(spark
            .nodes()
            .iter()
            .any(|n| n.op == OperatorKind::RepartitionAndSort));
        assert!(flink
            .nodes()
            .iter()
            .any(|n| n.op == OperatorKind::SortPartition));
        // Record count: 3.5 TB / 100 B.
        assert_eq!(spark.nodes()[0].source_records, Some(35_000_000_000));
    }

    #[test]
    fn validate_output_catches_disorder() {
        let records = TeraGen::new(3).records(100);
        let sorted = oracle(records.clone());
        let mut bad = vec![sorted.clone()];
        bad[0].swap(0, 50);
        assert!(validate_output(100, &bad).is_err());
        assert!(validate_output(100, &[sorted]).is_ok());
        assert!(validate_output(99, &[oracle(records)]).is_err());
    }
}

/// A range partitioner over fixed-size keys.
pub struct KeyRange {
    inner: RangePartitioner<[u8; KEY_BYTES]>,
}

impl KeyRange {
    /// Creates a key-range partitioner from split points.
    pub fn new(splits: Vec<[u8; KEY_BYTES]>) -> Self {
        Self {
            inner: RangePartitioner::new(splits),
        }
    }
}

impl flowmark_dataflow::partitioner::Partitioner<[u8; KEY_BYTES]> for KeyRange {
    fn partitions(&self) -> usize {
        self.inner.partitions()
    }
    fn partition(&self, key: &[u8; KEY_BYTES]) -> usize {
        self.inner.partition(key)
    }
}
