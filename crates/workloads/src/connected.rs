//! Connected Components (§III, §VI-E): label propagation to a fixpoint.
//!
//! "In Flink's case, we evaluated a second algorithm expressed using delta
//! iterations in order to assess their speedup over classic bulk
//! iterations" — the delta variant is the headline: "Flink's Connected
//! Components outperforms Spark by a much larger factor ... (up to 30%)
//! mainly because of its efficient delta iteration operator."

use std::collections::HashMap;

use flowmark_core::config::Framework;
use flowmark_dataflow::operator::OperatorKind;
use flowmark_dataflow::plan::{IterationKind, LogicalPlan};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::iterate::{vertex_centric_with_combiner, IterationMode, PartitionedGraph};
use flowmark_engine::spark::SparkContext;
use flowmark_engine::IterationError;

use crate::costs::{CC_EDGE_NS, CC_WORKSET_DECAY};
use crate::pagerank::{plan_with_decay, GraphScale};

/// Which iteration flavour the Flink side uses (the paper compares both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcVariant {
    /// Classic bulk iterations (full recomputation).
    Bulk,
    /// Delta iterations (workset shrinks every round).
    Delta,
}

/// Builds the annotated simulator plan.
///
/// Spark's GraphX implementation re-joins the full graph every round, so
/// its per-round cost decays only mildly (messages shrink, the join does
/// not); Flink's delta variant decays with the workset.
pub fn plan(fw: Framework, scale: &GraphScale, variant: CcVariant) -> LogicalPlan {
    match (fw, variant) {
        (Framework::Spark, _) => plan_with_decay(fw, scale, IterationKind::Bulk, 0.88, CC_EDGE_NS),
        (Framework::Flink, CcVariant::Bulk) => {
            plan_with_decay(fw, scale, IterationKind::Bulk, 1.0, CC_EDGE_NS)
        }
        (Framework::Flink, CcVariant::Delta) => {
            plan_with_decay(fw, scale, IterationKind::Delta, CC_WORKSET_DECAY, CC_EDGE_NS)
        }
    }
}

/// Table I row.
pub fn operator_table(fw: Framework) -> Vec<OperatorKind> {
    use OperatorKind::*;
    match fw {
        Framework::Spark => vec![Map, Coalesce, MapPartitions, GraphOp, ReduceByKey, DataSink],
        Framework::Flink => vec![
            FlatMap,
            GroupReduce,
            Join,
            CoGroup,
            DeltaIteration,
            DataSink,
        ],
    }
}

/// The label-propagation vertex program shared by both engines: adopt the
/// smallest component id seen, notify neighbours on change.
fn propagate(
    _v: u64,
    value: &u64,
    msgs: &[u64],
    ns: &[u64],
) -> (u64, bool, Vec<(u64, u64)>) {
    let candidate = msgs.iter().copied().min().map_or(*value, |m| m.min(*value));
    let changed = candidate < *value;
    let out = if changed || msgs.is_empty() {
        ns.iter().map(|&t| (t, candidate)).collect()
    } else {
        Vec::new()
    };
    (candidate, changed, out)
}

/// Runs Connected Components on the pipelined engine.
///
/// `budget` caps the solution-set entries (None = unbounded); the cap is
/// the Table VII failure mechanism.
pub fn run_flink(
    env: &FlinkEnv,
    edges: &[(u64, u64)],
    max_rounds: u32,
    partitions: usize,
    variant: CcVariant,
    budget: Option<usize>,
) -> Result<HashMap<u64, u64>, IterationError> {
    // CC needs the undirected closure.
    let sym: Vec<(u64, u64)> = edges
        .iter()
        .flat_map(|&(s, t)| [(s, t), (t, s)])
        .collect();
    let graph = PartitionedGraph::from_edges(&sym, partitions);
    let mode = match variant {
        CcVariant::Bulk => IterationMode::Bulk,
        CcVariant::Delta => IterationMode::Delta {
            solution_set_budget: budget,
        },
    };
    // Component labels fold with `min`: combine before the channel.
    vertex_centric_with_combiner(
        env,
        &graph,
        |v, _| v,
        &propagate,
        Some(u64::min),
        max_rounds,
        mode,
    )
}

/// Runs Connected Components on the staged engine: RDD label propagation
/// with a join per round (GraphX-like), loop-unrolled by the driver.
pub fn run_spark(
    sc: &SparkContext,
    edges: &[(u64, u64)],
    max_rounds: u32,
    partitions: usize,
) -> HashMap<u64, u64> {
    use flowmark_engine::cache::StorageLevel;
    let sym: Vec<(u64, u64)> = edges
        .iter()
        .flat_map(|&(s, t)| [(s, t), (t, s)])
        .collect();
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(s, t) in &sym {
        adj.entry(s).or_default().push(t);
    }
    let links = sc
        .parallelize(adj.into_iter().collect::<Vec<_>>(), partitions)
        .persist(StorageLevel::MemoryOnly);
    let mut labels: HashMap<u64, u64> = links.map(|(v, _)| (*v, *v)).collect_as_map();
    for _ in 0..max_rounds {
        let current = labels.clone();
        let msgs = links.flat_map(move |(v, ns)| {
            let l = current.get(v).copied().unwrap_or(*v);
            ns.iter().map(|&t| (t, l)).collect::<Vec<_>>()
        });
        // Map-side combine == sender-side message combining (counter delta).
        let combine_in = sc.metrics().combine_input();
        let combine_out = sc.metrics().combine_output();
        let mins = msgs.reduce_by_key(|a, b| *a = (*a).min(b)).collect_as_map();
        sc.metrics().add_messages_combined(
            (sc.metrics().combine_input() - combine_in)
                .saturating_sub(sc.metrics().combine_output() - combine_out),
        );
        let mut changed = false;
        for (v, l) in labels.iter_mut() {
            if let Some(m) = mins.get(v) {
                if m < l {
                    *l = *m;
                    changed = true;
                }
            }
        }
        sc.metrics().add_iterations_run(1);
        if !changed {
            break;
        }
    }
    labels
}

/// Sequential oracle: union-find.
pub fn oracle(edges: &[(u64, u64)]) -> HashMap<u64, u64> {
    let mut parent: HashMap<u64, u64> = HashMap::new();
    fn find(parent: &mut HashMap<u64, u64>, v: u64) -> u64 {
        let p = *parent.entry(v).or_insert(v);
        if p == v {
            v
        } else {
            let root = find(parent, p);
            parent.insert(v, root);
            root
        }
    }
    for &(s, t) in edges {
        let rs = find(&mut parent, s);
        let rt = find(&mut parent, t);
        if rs != rt {
            // Union by smaller id so labels match label propagation.
            let (lo, hi) = if rs < rt { (rs, rt) } else { (rt, rs) };
            parent.insert(hi, lo);
        }
    }
    let vs: Vec<u64> = parent.keys().copied().collect();
    vs.into_iter()
        .map(|v| {
            let root = find(&mut parent, v);
            (v, root)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_datagen::graph::{RmatGen, RmatParams};

    fn test_edges() -> Vec<(u64, u64)> {
        let mut g = RmatGen::new(8, RmatParams::default(), 33);
        g.edges(1500)
    }

    #[test]
    fn all_three_implementations_agree() {
        let edges = test_edges();
        let expect = oracle(&edges);
        let sc = SparkContext::new(4, 64 << 20);
        let spark = run_spark(&sc, &edges, 200, 4);
        assert_eq!(spark, expect, "spark differs from union-find");
        let env = FlinkEnv::new(4);
        for variant in [CcVariant::Bulk, CcVariant::Delta] {
            let flink = run_flink(&env, &edges, 200, 4, variant, None).unwrap();
            assert_eq!(flink, expect, "flink {variant:?} differs");
        }
    }

    #[test]
    fn delta_converges_in_fewer_total_messages() {
        // Delta terminates as soon as no labels change; on a long path the
        // iteration count equals the graph diameter either way, but delta
        // stops early once converged.
        let edges: Vec<(u64, u64)> = (0..40).map(|i| (i, i + 1)).collect();
        let env = FlinkEnv::new(2);
        let before = env.metrics().iterations_run();
        let _ = run_flink(&env, &edges, 500, 2, CcVariant::Delta, None).unwrap();
        let delta_rounds = env.metrics().iterations_run() - before;
        assert!(delta_rounds <= 45, "delta ran {delta_rounds} rounds");
    }

    #[test]
    fn solution_set_budget_reproduces_table_vii_failure() {
        let edges = test_edges();
        let env = FlinkEnv::new(2);
        let err = run_flink(&env, &edges, 10, 2, CcVariant::Delta, Some(10)).unwrap_err();
        assert!(matches!(err, IterationError::SolutionSetOom { .. }));
    }

    #[test]
    fn plans_validate_and_flink_delta_is_delta() {
        let scale = GraphScale::medium(23);
        let spark = plan(Framework::Spark, &scale, CcVariant::Delta);
        let flink = plan(Framework::Flink, &scale, CcVariant::Delta);
        assert!(spark.validate().is_ok() && flink.validate().is_ok());
        let spec = flink
            .nodes()
            .iter()
            .find_map(|n| n.iteration.as_ref())
            .unwrap();
        assert_eq!(spec.kind, IterationKind::Delta);
        assert!(spec.workset_decay < 1.0);
        let sspec = spark
            .nodes()
            .iter()
            .find_map(|n| n.iteration.as_ref())
            .unwrap();
        assert_eq!(sspec.kind, IterationKind::Bulk);
    }

    #[test]
    fn oracle_handles_disjoint_components() {
        let edges = vec![(1, 2), (2, 3), (10, 11)];
        let cc = oracle(&edges);
        assert_eq!(cc[&1], 1);
        assert_eq!(cc[&3], 1);
        assert_eq!(cc[&10], 10);
        assert_eq!(cc[&11], 10);
    }
}
