//! The Flink-style plan optimizer.
//!
//! Flink ships "an automatic cost-based optimizer, that is able to reorder
//! the operators" (§I) and fuses forward-connected operators into chained
//! tasks. The paper credits this optimizer for TeraSort: "The importance of
//! the execution pipeline implemented by the smart optimizer in Flink is
//! clearly illustrated by this workload. Reordering the operators enables
//! more efficient resource usage" (§VI-C).
//!
//! Three rewrites are implemented:
//!
//! 1. **Combiner insertion** — put a `GroupCombine` on the map side of every
//!    shuffle feeding a combinable aggregation (both engines do this for
//!    Word Count, §III; in Spark it is part of `reduceByKey` itself).
//! 2. **Filter pushdown** — move a `Filter` in front of an adjacent
//!    record-preserving `Map` so fewer records pay the map cost.
//! 3. **Operator chaining** — computed by [`crate::stage::JobGraph`], which
//!    consumes the rewritten plan.

use crate::operator::OperatorKind;
use crate::plan::{CostAnnotation, ExchangeMode, LogicalPlan, NodeId, PlanNode};

/// Inserts a map-side combiner before every shuffle edge that feeds a
/// combinable aggregation ([`OperatorKind::has_map_side_combine`]).
///
/// The combiner's selectivity defaults to `sqrt` of the downstream
/// aggregation's selectivity: with `n` records collapsing to `k` keys
/// globally, a per-partition combine typically reaches an intermediate
/// reduction (each partition still holds up to `k` keys). The downstream
/// aggregation's selectivity is rescaled so end-to-end cardinality is
/// unchanged.
pub fn insert_combiners(plan: &LogicalPlan) -> LogicalPlan {
    let mut out = LogicalPlan::new();
    // Maps old node ids to new ids (combiners shift indices).
    let mut remap: Vec<NodeId> = Vec::with_capacity(plan.len());
    for node in plan.nodes() {
        let combinable = node.op.has_map_side_combine()
            && node.inputs.len() == 1
            && node.inputs[0].1.is_shuffle();
        if combinable {
            let (old_input, mode) = node.inputs[0];
            let combine_sel = node.cost.selectivity.sqrt().clamp(0.0, 1.0);
            let combiner = out.unary_via(
                remap[old_input.0],
                ExchangeMode::Forward,
                OperatorKind::GroupCombine,
                CostAnnotation::new(
                    combine_sel,
                    node.cost.cpu_ns_per_record,
                    node.cost.bytes_per_record,
                ),
            );
            let rescaled = if combine_sel > 0.0 {
                node.cost.selectivity / combine_sel
            } else {
                1.0
            };
            let agg = out.unary_via(
                combiner,
                mode,
                node.op,
                CostAnnotation::new(
                    rescaled.min(1.0),
                    node.cost.cpu_ns_per_record,
                    node.cost.bytes_per_record,
                ),
            );
            out.label(agg, node.label.clone());
            remap.push(agg);
        } else {
            remap.push(copy_node(&mut out, node, &remap));
        }
    }
    out
}

/// Pushes `Filter` nodes in front of an immediately preceding
/// record-preserving `Map` when both sit on a forward edge and the map has
/// no other consumer. Returns the rewritten plan and how many swaps fired.
pub fn push_down_filters(plan: &LogicalPlan) -> (LogicalPlan, usize) {
    // Count consumers so we never duplicate a shared map.
    let mut consumers = vec![0usize; plan.len()];
    for n in plan.nodes() {
        for (input, _) in &n.inputs {
            consumers[input.0] += 1;
        }
    }
    let mut swapped = 0usize;
    let mut out = LogicalPlan::new();
    let mut remap: Vec<NodeId> = Vec::with_capacity(plan.len());
    // `pending_swap[old_map_id]` records that the map must be emitted when
    // its filter consumer is reached.
    let mut skip: Vec<bool> = vec![false; plan.len()];
    for node in plan.nodes() {
        if skip[node.id.0] {
            // Placeholder; the actual new id was recorded already.
            continue;
        }
        // Look ahead: is our single consumer a filter we should swap with?
        let is_swappable_map = node.op == OperatorKind::Map
            && node.cost.selectivity == 1.0
            && consumers[node.id.0] == 1
            && node.inputs.len() == 1
            && node.inputs[0].1 == ExchangeMode::Forward;
        let filter_consumer = plan.nodes().iter().find(|m| {
            m.op == OperatorKind::Filter
                && m.inputs.len() == 1
                && m.inputs[0].0 == node.id
                && m.inputs[0].1 == ExchangeMode::Forward
        });
        if let (true, Some(filter)) = (is_swappable_map, filter_consumer) {
            // Emit filter first (reading from the map's input), then map.
            let upstream = remap[node.inputs[0].0 .0];
            let new_filter = out.unary_via(
                upstream,
                ExchangeMode::Forward,
                OperatorKind::Filter,
                filter.cost,
            );
            out.label(new_filter, filter.label.clone());
            let new_map =
                out.unary_via(new_filter, ExchangeMode::Forward, OperatorKind::Map, node.cost);
            out.label(new_map, node.label.clone());
            // The old map id now resolves to the new filter, and the old
            // filter id to the new map (so downstream consumers see the
            // map's output, preserving semantics).
            remap.push(new_filter); // position of `node`
            debug_assert_eq!(remap.len() - 1, node.id.0);
            // Reserve the filter's slot when we reach it.
            skip[filter.id.0] = true;
            // We must record the filter's remap at the filter's index; do it
            // by padding remap when we skip it below. Store out-of-band:
            swapped += 1;
            // Pad remap for any nodes between map and filter (builder order
            // guarantees filter comes later; intermediate nodes are handled
            // normally because they cannot consume the filter).
            // Record the filter's new id for later consumers.
            // We push it when iteration reaches the filter (skip branch).
            // To make that work, stash it:
            pending_push(&mut remap, filter.id.0, new_map);
            continue;
        }
        remap.push(copy_node(&mut out, node, &remap));
    }
    (out, swapped)
}

/// Ensures `remap` has a slot for `idx` holding `id`, padding with
/// placeholders that will be overwritten in order. Builder order guarantees
/// intermediate slots get filled before use.
fn pending_push(remap: &mut Vec<NodeId>, idx: usize, id: NodeId) {
    if remap.len() == idx {
        remap.push(id);
    } else {
        while remap.len() <= idx {
            remap.push(NodeId(usize::MAX));
        }
        remap[idx] = id;
    }
}

/// Copies one node into `out`, remapping inputs.
fn copy_node(out: &mut LogicalPlan, node: &PlanNode, remap: &[NodeId]) -> NodeId {
    let id = match (&node.iteration, node.source_records) {
        (_, Some(records)) if node.op == OperatorKind::CachedSource => {
            out.source_cached(records, node.cost.bytes_per_record)
        }
        (_, Some(records)) => out.source(records, node.cost.bytes_per_record),
        (Some(spec), _) => out.iterate(
            remap[node.inputs[0].0 .0],
            spec.kind,
            spec.iterations,
            (*spec.body).clone(),
            spec.workset_decay,
        ),
        _ if node.inputs.len() == 1 => {
            let (input, mode) = node.inputs[0];
            out.unary_via(remap[input.0], mode, node.op, node.cost)
        }
        _ => {
            let left = (remap[node.inputs[0].0 .0], node.inputs[0].1);
            let right = (remap[node.inputs[1].0 .0], node.inputs[1].1);
            out.binary(left, right, node.op, node.cost)
        }
    };
    out.label(id, node.label.clone());
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OperatorKind::*;

    #[test]
    fn combiner_inserted_before_shuffle() {
        let mut p = LogicalPlan::new();
        let src = p.source(1_000_000, 80.0);
        let fm = p.unary(src, FlatMap, CostAnnotation::new(10.0, 150.0, 12.0));
        let rbk = p.unary(fm, ReduceByKey, CostAnnotation::new(0.01, 200.0, 20.0));
        let _ = p.unary(rbk, DataSink, CostAnnotation::default());

        let opt = insert_combiners(&p);
        assert!(opt.validate().is_ok());
        let ops: Vec<_> = opt.nodes().iter().map(|n| n.op).collect();
        assert_eq!(
            ops,
            vec![DataSource, FlatMap, GroupCombine, ReduceByKey, DataSink]
        );
        // The combiner sits on a forward edge; the shuffle moved after it.
        let combine = &opt.nodes()[2];
        assert_eq!(combine.inputs[0].1, ExchangeMode::Forward);
        let reduce = &opt.nodes()[3];
        assert!(reduce.inputs[0].1.is_shuffle());
    }

    #[test]
    fn combiner_reduces_shuffle_volume_but_preserves_output() {
        let mut p = LogicalPlan::new();
        let src = p.source(1_000_000, 80.0);
        let fm = p.unary(src, FlatMap, CostAnnotation::new(10.0, 150.0, 12.0));
        let rbk = p.unary(fm, ReduceByKey, CostAnnotation::new(0.01, 200.0, 20.0));
        let sink = p.unary(rbk, DataSink, CostAnnotation::default());

        let before = p.cardinalities();
        let opt = insert_combiners(&p);
        let after = opt.cardinalities();
        // End-to-end output unchanged...
        assert!((before[sink.0] - after[opt.len() - 1]).abs() / before[sink.0] < 1e-9);
        // ...but the records entering the shuffle shrank by ~10× (sqrt(0.01)).
        let shuffle_in_before = before[1];
        let shuffle_in_after = after[2];
        assert!(shuffle_in_after < shuffle_in_before * 0.15);
    }

    #[test]
    fn non_combinable_shuffles_untouched() {
        let mut p = LogicalPlan::new();
        let a = p.source(100, 8.0);
        let b = p.source(100, 8.0);
        let j = p.binary(
            (a, ExchangeMode::HashShuffle),
            (b, ExchangeMode::HashShuffle),
            Join,
            CostAnnotation::default(),
        );
        let _ = p.unary(j, DataSink, CostAnnotation::default());
        let opt = insert_combiners(&p);
        assert_eq!(opt.len(), p.len());
        let ops: Vec<_> = opt.nodes().iter().map(|n| n.op).collect();
        assert!(!ops.contains(&GroupCombine));
    }

    #[test]
    fn filter_pushed_before_map() {
        let mut p = LogicalPlan::new();
        let src = p.source(1000, 80.0);
        let m = p.unary(src, Map, CostAnnotation::new(1.0, 500.0, 80.0));
        let f = p.unary(m, Filter, CostAnnotation::new(0.01, 50.0, 80.0));
        let _ = p.unary(f, Count, CostAnnotation::new(0.0, 10.0, 8.0));

        let (opt, swaps) = push_down_filters(&p);
        assert_eq!(swaps, 1);
        assert!(opt.validate().is_ok());
        let ops: Vec<_> = opt.nodes().iter().map(|n| n.op).collect();
        assert_eq!(ops, vec![DataSource, Filter, Map, Count]);
        // After pushdown only 1 % of records pay the map cost.
        let c = opt.cardinalities();
        assert!((c[1] - 10.0).abs() < 1e-9); // filter output
        assert!((c[2] - 10.0).abs() < 1e-9); // map output
    }

    #[test]
    fn selective_map_not_swapped() {
        // A map with selectivity ≠ 1 (e.g. flatMap-like) must not commute.
        let mut p = LogicalPlan::new();
        let src = p.source(1000, 80.0);
        let m = p.unary(src, Map, CostAnnotation::new(0.5, 500.0, 80.0));
        let f = p.unary(m, Filter, CostAnnotation::new(0.1, 50.0, 80.0));
        let _ = p.unary(f, Count, CostAnnotation::new(0.0, 10.0, 8.0));
        let (opt, swaps) = push_down_filters(&p);
        assert_eq!(swaps, 0);
        assert_eq!(opt.nodes()[1].op, Map);
    }

    #[test]
    fn pushdown_noop_without_filters() {
        let mut p = LogicalPlan::new();
        let src = p.source(10, 8.0);
        let m = p.unary(src, Map, CostAnnotation::default());
        let _ = p.unary(m, DataSink, CostAnnotation::default());
        let (opt, swaps) = push_down_filters(&p);
        assert_eq!(swaps, 0);
        assert_eq!(opt.len(), 3);
        assert!(opt.validate().is_ok());
    }

    #[test]
    fn copy_preserves_iterations() {
        let mut body = LogicalPlan::new();
        let bsrc = body.source(10, 8.0);
        body.unary(bsrc, Map, CostAnnotation::default());
        let mut p = LogicalPlan::new();
        let src = p.source(10, 8.0);
        let it = p.iterate(src, crate::plan::IterationKind::Bulk, 3, body, 1.0);
        let _ = p.unary(it, DataSink, CostAnnotation::default());
        let opt = insert_combiners(&p);
        assert!(opt.validate().is_ok());
        assert!(opt.nodes().iter().any(|n| n.iteration.is_some()));
    }
}
