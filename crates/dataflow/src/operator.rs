//! The operator vocabulary of Table I.
//!
//! Table I lists the operators each workload uses, split into common
//! operators and framework-specific ones (annotated F or S in the paper).
//! [`OperatorKind`] is that vocabulary; the properties on it (does it
//! shuffle, does it break the pipeline, does it combine map-side) are what
//! the optimizer, the stage splitter and the simulator reason about.

use serde::{Deserialize, Serialize};

/// Which framework an operator belongs to (Table I's F/S annotations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorOrigin {
    /// Available in both frameworks.
    Common,
    /// Spark-specific (S).
    SparkOnly,
    /// Flink-specific (F).
    FlinkOnly,
}

/// A logical dataflow operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // Variants are the operator names themselves.
pub enum OperatorKind {
    // -- sources and sinks -------------------------------------------------
    /// Reads input splits from distributed storage.
    DataSource,
    /// Reads an in-memory dataset: a persisted RDD or an iteration's
    /// feedback/workset input. No storage I/O.
    CachedSource,
    /// Writes results to distributed storage (save / writeAsText /
    /// saveAsTextFile / DataSink).
    DataSink,
    /// Returns a small result to the driver (count / collect).
    Collect,

    // -- element-wise ------------------------------------------------------
    Map,
    FlatMap,
    Filter,
    /// Spark's `mapToPair` (key extraction before reduceByKey).
    MapToPair,
    /// Spark's `mapPartitionsWithIndex` / `mapPartitions`.
    MapPartitions,

    // -- aggregation -------------------------------------------------------
    /// Flink `groupBy` followed by `sum`/`reduce` (sort-based combine +
    /// reduce).
    GroupReduce,
    /// Map-side combiner (Flink GroupCombine; Spark's combiner inside
    /// reduceByKey).
    GroupCombine,
    /// Spark `reduceByKey` (map-side combine + hash-partitioned reduce).
    ReduceByKey,
    /// Spark `collectAsMap` (reduce to driver as a map).
    CollectAsMap,
    /// `distinct`.
    Distinct,
    /// Count action after a filter (Grep).
    Count,

    // -- partitioning and sorting -------------------------------------------
    /// Spark `repartitionAndSortWithinPartitions`.
    RepartitionAndSort,
    /// Flink `partitionCustom`.
    PartitionCustom,
    /// Flink `sortPartition` (local per-partition sort).
    SortPartition,
    /// Spark `coalesce`.
    Coalesce,

    // -- binary ------------------------------------------------------------
    Join,
    /// Flink CoGroup — builds the delta-iteration solution set in memory
    /// (§VI-E: the operator whose in-memory solution set OOMs).
    CoGroup,

    // -- iteration ---------------------------------------------------------
    /// Flink bulk iteration operator (cyclic dataflow).
    BulkIteration,
    /// Flink delta iteration operator (workset + solution set).
    DeltaIteration,
    /// Flink `withBroadcastSet` (broadcast of the current centroids in
    /// K-Means).
    WithBroadcastSet,

    // -- graph library operators --------------------------------------------
    /// Gelly/GraphX graph-loading and vertex-degree operators
    /// (outDegrees, joinWithEdgesOnSource, withEdges / outerJoinVertices,
    /// mapTriplets, ...).
    GraphOp,
}

impl OperatorKind {
    /// Framework annotation from Table I.
    pub fn origin(self) -> OperatorOrigin {
        use OperatorKind::*;
        match self {
            MapToPair | ReduceByKey | CollectAsMap | RepartitionAndSort | Coalesce
            | MapPartitions => OperatorOrigin::SparkOnly,
            GroupReduce | GroupCombine | PartitionCustom | SortPartition | CoGroup
            | BulkIteration | DeltaIteration | WithBroadcastSet => OperatorOrigin::FlinkOnly,
            _ => OperatorOrigin::Common,
        }
    }

    /// True when the operator's input must be repartitioned across the
    /// cluster (a shuffle / wide dependency).
    pub fn requires_shuffle(self) -> bool {
        use OperatorKind::*;
        matches!(
            self,
            GroupReduce
                | ReduceByKey
                | Distinct
                | RepartitionAndSort
                | PartitionCustom
                | Join
                | CoGroup
                | Coalesce
        )
    }

    /// True when the operator must consume its whole input before emitting
    /// output — a *pipeline breaker* in Flink's optimizer terminology
    /// (sort-based grouping and full sorts are breakers; element-wise
    /// operators are not).
    pub fn is_pipeline_breaker(self) -> bool {
        use OperatorKind::*;
        matches!(self, GroupReduce | SortPartition | CoGroup | Distinct)
    }

    /// True when the engine can run a map-side combiner for this operator,
    /// halving shuffle volume for skewed keys ("both Spark and Flink use a
    /// map side combiner to reduce the intermediate data", §III).
    pub fn has_map_side_combine(self) -> bool {
        use OperatorKind::*;
        matches!(self, GroupReduce | ReduceByKey | Distinct)
    }

    /// True for driver-bound actions that end a job.
    pub fn is_action(self) -> bool {
        use OperatorKind::*;
        matches!(self, DataSink | Collect | Count | CollectAsMap)
    }

    /// Operator display name as it appears in the paper's plan plots.
    pub fn display_name(self) -> &'static str {
        use OperatorKind::*;
        match self {
            DataSource => "DataSource",
            CachedSource => "CachedSource",
            DataSink => "DataSink",
            Collect => "Collect",
            Map => "Map",
            FlatMap => "FlatMap",
            Filter => "Filter",
            MapToPair => "MapToPair",
            MapPartitions => "MapPartitions",
            GroupReduce => "GroupReduce",
            GroupCombine => "GroupCombine",
            ReduceByKey => "ReduceByKey",
            CollectAsMap => "CollectAsMap",
            Distinct => "Distinct",
            Count => "Count",
            RepartitionAndSort => "RepartitionAndSort",
            PartitionCustom => "Partition",
            SortPartition => "Sort-Partition",
            Coalesce => "Coalesce",
            Join => "Join",
            CoGroup => "CoGroup",
            BulkIteration => "BulkIteration",
            DeltaIteration => "DeltaIteration",
            WithBroadcastSet => "WithBroadcastSet",
            GraphOp => "GraphOp",
        }
    }
}

impl std::fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use OperatorKind::*;

    #[test]
    fn table_i_framework_annotations() {
        // Spark-only operators per Table I.
        for op in [MapToPair, ReduceByKey, CollectAsMap, RepartitionAndSort, Coalesce] {
            assert_eq!(op.origin(), OperatorOrigin::SparkOnly, "{op}");
        }
        // Flink-only operators per Table I.
        for op in [
            GroupReduce,
            PartitionCustom,
            SortPartition,
            DeltaIteration,
            BulkIteration,
            WithBroadcastSet,
        ] {
            assert_eq!(op.origin(), OperatorOrigin::FlinkOnly, "{op}");
        }
        // Common operators.
        for op in [Map, FlatMap, Filter, Distinct, DataSink, Join] {
            assert_eq!(op.origin(), OperatorOrigin::Common, "{op}");
        }
    }

    #[test]
    fn shuffles_and_breakers() {
        assert!(ReduceByKey.requires_shuffle());
        assert!(GroupReduce.requires_shuffle());
        assert!(Join.requires_shuffle());
        assert!(!Map.requires_shuffle());
        assert!(!Filter.requires_shuffle());
        assert!(!SortPartition.requires_shuffle()); // local sort

        assert!(GroupReduce.is_pipeline_breaker());
        assert!(SortPartition.is_pipeline_breaker());
        assert!(!FlatMap.is_pipeline_breaker());
        assert!(!PartitionCustom.is_pipeline_breaker()); // streams through
    }

    #[test]
    fn combiners_match_paper() {
        assert!(ReduceByKey.has_map_side_combine());
        assert!(GroupReduce.has_map_side_combine());
        assert!(!Join.has_map_side_combine());
    }

    #[test]
    fn actions_end_jobs() {
        for op in [DataSink, Collect, Count, CollectAsMap] {
            assert!(op.is_action(), "{op}");
        }
        assert!(!Map.is_action());
    }

    #[test]
    fn display_names_unique() {
        let ops = [
            DataSource, DataSink, Collect, Map, FlatMap, Filter, MapToPair, MapPartitions,
            GroupReduce, GroupCombine, ReduceByKey, CollectAsMap, Distinct, Count,
            RepartitionAndSort, PartitionCustom, SortPartition, Coalesce, Join, CoGroup,
            BulkIteration, DeltaIteration, WithBroadcastSet, GraphOp,
        ];
        let mut names: Vec<&str> = ops.iter().map(|o| o.display_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ops.len());
    }
}
