//! # flowmark-dataflow
//!
//! The logical dataflow layer shared by the cluster simulator and the
//! experiment harness. Both engines in the paper "implement a driver program
//! that describes the high-level control flow of the application, which
//! relies on two main parallel programming abstractions: (1) structures to
//! describe the data and (2) parallel operations on these data" (§II).
//!
//! Here those parallel operations are a [`plan::LogicalPlan`]: a DAG of
//! [`operator::OperatorKind`] nodes connected by [`plan::ExchangeMode`]
//! edges, annotated with per-record cost estimates. The two engines consume
//! the same logical plan differently:
//!
//! - the Flink-side [`optimizer`] chains forward-connected operators,
//!   inserts combiners before shuffles and computes the pipelined job graph
//!   ([`stage::JobGraph`]);
//! - the Spark-side [`stage`] module splits the DAG into stages at shuffle
//!   boundaries the way the DAGScheduler does ([`stage::StagePlan`]).
//!
//! [`partitioner`] implements the hash and range (TotalOrderPartitioner-
//! like) partitioners both engines share in the TeraSort comparison.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod operator;
pub mod optimizer;
pub mod partitioner;
pub mod plan;
pub mod stage;

pub use operator::OperatorKind;
pub use plan::{CostAnnotation, ExchangeMode, LogicalPlan, NodeId, PlanNode};
