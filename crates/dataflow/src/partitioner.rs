//! Partitioners: hash and sampled-range (TotalOrderPartitioner-like).
//!
//! Spark's `reduceByKey` "hash-partitions the output with the number of
//! partitions (i.e. the default parallelism)" (§VI-A); TeraSort uses "the
//! same range partitioner ... based on Hadoop's TotalOrderPartitioner"
//! in both engines (§III). Both are implemented generically here and shared
//! by the real engine; the simulator uses their balance statistics.

use std::hash::{Hash, Hasher};

/// A fast, deterministic 64-bit hasher (FxHash-style multiply-xor), local so
/// partition assignment is stable across Rust releases — `DefaultHasher` is
/// explicitly not stability-guaranteed.
#[derive(Debug, Clone, Copy)]
pub struct FxHasher64 {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Default for FxHasher64 {
    fn default() -> Self {
        Self { state: 0 }
    }
}

impl Hasher for FxHasher64 {
    // `#[inline]` matters here: these non-generic methods otherwise stay
    // opaque across the crate boundary, and `fxhash` sits on the per-message
    // routing path of the iteration runtimes (`PartitionedGraph::owner`).
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state.rotate_left(5) ^ i).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// Hashes one value with [`FxHasher64`].
#[inline]
pub fn fxhash<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher64::default();
    value.hash(&mut h);
    h.finish()
}

/// Assigns keys to partitions.
pub trait Partitioner<K: ?Sized> {
    /// Number of partitions.
    fn partitions(&self) -> usize;
    /// Partition of a key, in `0..partitions()`.
    fn partition(&self, key: &K) -> usize;
}

/// Hash partitioner over any hashable key.
#[derive(Debug, Clone, Copy)]
pub struct HashPartitioner {
    partitions: usize,
}

impl HashPartitioner {
    /// Creates a hash partitioner.
    ///
    /// # Panics
    /// Panics when `partitions == 0`.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        Self { partitions }
    }
}

impl<K: Hash + ?Sized> Partitioner<K> for HashPartitioner {
    fn partitions(&self) -> usize {
        self.partitions
    }

    fn partition(&self, key: &K) -> usize {
        (fxhash(&key) % self.partitions as u64) as usize
    }
}

/// Range partitioner over ordered keys with explicit split points, the
/// TotalOrderPartitioner's contract: `partition(k) = #splits ≤ k`.
#[derive(Debug, Clone)]
pub struct RangePartitioner<K: Ord> {
    splits: Vec<K>,
}

impl<K: Ord> RangePartitioner<K> {
    /// Creates a range partitioner from split points (will be sorted).
    pub fn new(mut splits: Vec<K>) -> Self {
        splits.sort();
        Self { splits }
    }

    /// Builds split points by sampling: sorts the sample and takes
    /// `partitions − 1` evenly spaced quantiles.
    pub fn from_sample(mut sample: Vec<K>, partitions: usize) -> Self
    where
        K: Clone,
    {
        assert!(partitions > 0, "need at least one partition");
        sample.sort();
        if sample.is_empty() || partitions == 1 {
            return Self { splits: Vec::new() };
        }
        let mut splits = Vec::with_capacity(partitions - 1);
        for i in 1..partitions {
            let idx = (i * sample.len() / partitions).min(sample.len() - 1);
            splits.push(sample[idx].clone());
        }
        splits.dedup();
        Self { splits }
    }
}

impl<K: Ord> Partitioner<K> for RangePartitioner<K> {
    fn partitions(&self) -> usize {
        self.splits.len() + 1
    }

    fn partition(&self, key: &K) -> usize {
        self.splits.partition_point(|s| s <= key)
    }
}

/// Measures partition balance: the ratio of the largest partition to the
/// ideal (`total / partitions`). 1.0 is perfectly balanced; the paper's
/// skew-related slowdowns ("more files to handle ... inefficient resource
/// usage", §VI-E) grow with this ratio.
pub fn skew_factor(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return 1.0;
    }
    let ideal = total as f64 / counts.len() as f64;
    let max = *counts.iter().max().expect("non-empty") as f64;
    max / ideal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fxhash_is_deterministic_and_spreads() {
        assert_eq!(fxhash(&"hello"), fxhash(&"hello"));
        assert_ne!(fxhash(&"hello"), fxhash(&"hellp"));
        assert_ne!(fxhash(&1u64), fxhash(&2u64));
    }

    #[test]
    fn hash_partitioner_balances_distinct_keys() {
        let p = HashPartitioner::new(16);
        let mut counts = vec![0usize; 16];
        for i in 0..16_000u64 {
            let part = p.partition(&format!("key{i}"));
            assert!(part < 16);
            counts[part] += 1;
        }
        assert!(
            skew_factor(&counts) < 1.25,
            "hash partitions unbalanced: {counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = HashPartitioner::new(0);
    }

    #[test]
    fn same_key_same_partition() {
        let p = HashPartitioner::new(7);
        for key in ["a", "the", "word123456"] {
            assert_eq!(p.partition(key), p.partition(key));
        }
    }

    #[test]
    fn range_partitioner_is_monotone() {
        let p = RangePartitioner::new(vec![10u64, 20, 30]);
        assert_eq!(p.partitions(), 4);
        assert_eq!(p.partition(&5), 0);
        assert_eq!(p.partition(&10), 1); // boundary goes right
        assert_eq!(p.partition(&15), 1);
        assert_eq!(p.partition(&30), 3);
        assert_eq!(p.partition(&1000), 3);
    }

    #[test]
    fn from_sample_balances_uniform_keys() {
        let sample: Vec<u64> = (0..10_000).map(|i| (i * 2654435761) % 1_000_000).collect();
        let p = RangePartitioner::from_sample(sample.clone(), 8);
        let mut counts = vec![0usize; p.partitions()];
        for k in &sample {
            counts[p.partition(k)] += 1;
        }
        assert!(skew_factor(&counts) < 1.3, "range skew: {counts:?}");
    }

    #[test]
    fn from_sample_single_partition() {
        let p = RangePartitioner::from_sample(vec![1u32, 2, 3], 1);
        assert_eq!(p.partitions(), 1);
        assert_eq!(p.partition(&100), 0);
    }

    #[test]
    fn from_sample_empty_sample() {
        let p = RangePartitioner::<u32>::from_sample(vec![], 8);
        assert_eq!(p.partitions(), 1);
    }

    #[test]
    fn skew_factor_extremes() {
        assert!((skew_factor(&[100, 100, 100, 100]) - 1.0).abs() < 1e-9);
        assert!((skew_factor(&[400, 0, 0, 0]) - 4.0).abs() < 1e-9);
        assert_eq!(skew_factor(&[]), 1.0);
        assert_eq!(skew_factor(&[0, 0]), 1.0);
    }
}
