//! Logical plan DAGs with cost annotations.
//!
//! A [`LogicalPlan`] is the engine-neutral description of a job: operator
//! nodes connected by exchange edges, each node annotated with the
//! per-record costs the simulator prices. Workloads build one plan and hand
//! it to either the Spark-style stage splitter or the Flink-style optimizer.

use serde::{Deserialize, Serialize};

use crate::operator::OperatorKind;

/// Index of a node within its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// How data moves along an edge between two operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExchangeMode {
    /// Same-partition, same-worker handoff (chainable).
    Forward,
    /// Hash repartition by key (all-to-all).
    HashShuffle,
    /// Range repartition with a sampled total-order partitioner.
    RangeShuffle,
    /// Replicate to every partition (e.g. K-Means centroids broadcast).
    Broadcast,
}

impl ExchangeMode {
    /// True when the edge crosses the network (a wide dependency).
    pub fn is_shuffle(self) -> bool {
        matches!(self, ExchangeMode::HashShuffle | ExchangeMode::RangeShuffle)
    }
}

/// Per-record cost annotations consumed by the simulator's cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostAnnotation {
    /// Output records per input record (e.g. ~10 for a flatMap splitting
    /// lines into words, 0.01 for a selective filter, 1.0 for a map).
    pub selectivity: f64,
    /// CPU nanoseconds of user + framework code per input record, before
    /// serializer multipliers.
    pub cpu_ns_per_record: f64,
    /// Bytes per *output* record before serializer size multipliers.
    pub bytes_per_record: f64,
}

impl Default for CostAnnotation {
    fn default() -> Self {
        Self {
            selectivity: 1.0,
            cpu_ns_per_record: 100.0,
            bytes_per_record: 64.0,
        }
    }
}

impl CostAnnotation {
    /// Convenience constructor.
    pub fn new(selectivity: f64, cpu_ns_per_record: f64, bytes_per_record: f64) -> Self {
        Self {
            selectivity,
            cpu_ns_per_record,
            bytes_per_record,
        }
    }
}

/// Iteration flavour for iteration nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IterationKind {
    /// Full recomputation every round (Flink bulk iterate; Spark for-loop).
    Bulk,
    /// Incremental: only the changed workset flows, a solution set is
    /// updated in place (Flink delta iterations, §II-C).
    Delta,
}

/// An iteration node's nested body and trip count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationSpec {
    /// Bulk or delta.
    pub kind: IterationKind,
    /// Number of rounds (the paper uses fixed counts: 10 for K-Means,
    /// 5/20 for Page Rank, 10/23 for Connected Components).
    pub iterations: u32,
    /// The per-round dataflow; its source consumes the loop input, its last
    /// node produces the next partial solution / workset.
    pub body: Box<LogicalPlan>,
    /// For delta iterations: expected workset shrink factor per round
    /// (< 1.0); "the work in each iteration decreases", §II-C.
    pub workset_decay: f64,
}

/// One node of a logical plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// This node's id.
    pub id: NodeId,
    /// Operator kind.
    pub op: OperatorKind,
    /// Display label (defaults to the operator's display name).
    pub label: String,
    /// Cost annotations.
    pub cost: CostAnnotation,
    /// Input edges: upstream node plus exchange mode.
    pub inputs: Vec<(NodeId, ExchangeMode)>,
    /// Present on `BulkIteration` / `DeltaIteration` nodes.
    pub iteration: Option<IterationSpec>,
    /// For sources: number of input records.
    pub source_records: Option<u64>,
}

/// A dataflow DAG. Nodes are stored in insertion order, which the builder
/// guarantees to be a topological order (inputs must already exist).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LogicalPlan {
    nodes: Vec<PlanNode>,
}

impl LogicalPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a source node producing `records` records of
    /// `bytes_per_record` bytes each.
    pub fn source(&mut self, records: u64, bytes_per_record: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(PlanNode {
            id,
            op: OperatorKind::DataSource,
            label: OperatorKind::DataSource.display_name().to_string(),
            cost: CostAnnotation::new(1.0, 50.0, bytes_per_record),
            inputs: Vec::new(),
            iteration: None,
            source_records: Some(records),
        });
        id
    }

    /// Adds a source that reads an in-memory dataset (persisted RDD /
    /// iteration feedback) — no storage I/O is priced for it.
    pub fn source_cached(&mut self, records: u64, bytes_per_record: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(PlanNode {
            id,
            op: OperatorKind::CachedSource,
            label: OperatorKind::CachedSource.display_name().to_string(),
            cost: CostAnnotation::new(1.0, 20.0, bytes_per_record),
            inputs: Vec::new(),
            iteration: None,
            source_records: Some(records),
        });
        id
    }

    /// Adds a unary operator downstream of `input`.
    ///
    /// The exchange mode defaults to the operator's nature: shuffling
    /// operators get a hash shuffle, everything else a forward edge. Use
    /// [`LogicalPlan::unary_via`] to override (e.g. range shuffles).
    pub fn unary(&mut self, input: NodeId, op: OperatorKind, cost: CostAnnotation) -> NodeId {
        let mode = if op.requires_shuffle() {
            ExchangeMode::HashShuffle
        } else {
            ExchangeMode::Forward
        };
        self.unary_via(input, mode, op, cost)
    }

    /// Adds a unary operator with an explicit exchange mode.
    pub fn unary_via(
        &mut self,
        input: NodeId,
        mode: ExchangeMode,
        op: OperatorKind,
        cost: CostAnnotation,
    ) -> NodeId {
        assert!(input.0 < self.nodes.len(), "input node does not exist");
        let id = NodeId(self.nodes.len());
        self.nodes.push(PlanNode {
            id,
            op,
            label: op.display_name().to_string(),
            cost,
            inputs: vec![(input, mode)],
            iteration: None,
            source_records: None,
        });
        id
    }

    /// Adds a binary operator (join / coGroup).
    pub fn binary(
        &mut self,
        left: (NodeId, ExchangeMode),
        right: (NodeId, ExchangeMode),
        op: OperatorKind,
        cost: CostAnnotation,
    ) -> NodeId {
        assert!(left.0 .0 < self.nodes.len() && right.0 .0 < self.nodes.len());
        let id = NodeId(self.nodes.len());
        self.nodes.push(PlanNode {
            id,
            op,
            label: op.display_name().to_string(),
            cost,
            inputs: vec![left, right],
            iteration: None,
            source_records: None,
        });
        id
    }

    /// Adds an iteration node wrapping `body`.
    pub fn iterate(
        &mut self,
        input: NodeId,
        kind: IterationKind,
        iterations: u32,
        body: LogicalPlan,
        workset_decay: f64,
    ) -> NodeId {
        assert!(input.0 < self.nodes.len(), "input node does not exist");
        assert!(iterations > 0, "iterations must be positive");
        assert!(
            workset_decay > 0.0 && workset_decay <= 1.0,
            "workset decay must be in (0, 1]"
        );
        let op = match kind {
            IterationKind::Bulk => OperatorKind::BulkIteration,
            IterationKind::Delta => OperatorKind::DeltaIteration,
        };
        let id = NodeId(self.nodes.len());
        self.nodes.push(PlanNode {
            id,
            op,
            label: op.display_name().to_string(),
            cost: CostAnnotation::new(1.0, 0.0, 64.0),
            inputs: vec![(input, ExchangeMode::Forward)],
            iteration: Some(IterationSpec {
                kind,
                iterations,
                body: Box::new(body),
                workset_decay,
            }),
            source_records: None,
        });
        id
    }

    /// Renames the last-added node (plan plots use fused labels like
    /// `"DataSource->FlatMap->GroupCombine"`).
    pub fn label(&mut self, id: NodeId, label: impl Into<String>) {
        self.nodes[id.0].label = label.into();
    }

    /// All nodes in topological (insertion) order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of nodes with no consumers (the job's outputs).
    pub fn sinks(&self) -> Vec<NodeId> {
        let mut consumed = vec![false; self.nodes.len()];
        for n in &self.nodes {
            for (input, _) in &n.inputs {
                consumed[input.0] = true;
            }
        }
        self.nodes
            .iter()
            .filter(|n| !consumed[n.id.0])
            .map(|n| n.id)
            .collect()
    }

    /// Estimated record count flowing *out of* each node, propagating source
    /// cardinalities through selectivities. Iteration nodes pass their input
    /// cardinality through (the loop's steady-state output).
    pub fn cardinalities(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.nodes.len()];
        for n in &self.nodes {
            let input: f64 = if let Some(r) = n.source_records {
                r as f64
            } else {
                n.inputs.iter().map(|(id, _)| out[id.0]).sum()
            };
            out[n.id.0] = input * n.cost.selectivity;
        }
        out
    }

    /// Estimated bytes flowing out of each node.
    pub fn output_bytes(&self) -> Vec<f64> {
        self.cardinalities()
            .iter()
            .zip(&self.nodes)
            .map(|(records, n)| records * n.cost.bytes_per_record)
            .collect()
    }

    /// Validates DAG structural invariants: inputs precede consumers
    /// (acyclicity by construction), at least one source, every non-source
    /// has inputs, iteration specs only on iteration operators.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("plan has no nodes".to_string());
        }
        let mut has_source = false;
        for n in &self.nodes {
            for (input, _) in &n.inputs {
                if input.0 >= n.id.0 {
                    return Err(format!("node {} consumes a later node", n.id.0));
                }
            }
            match n.op {
                OperatorKind::DataSource | OperatorKind::CachedSource => {
                    has_source = true;
                    if !n.inputs.is_empty() {
                        return Err("source with inputs".to_string());
                    }
                    if n.source_records.is_none() {
                        return Err("source without cardinality".to_string());
                    }
                }
                OperatorKind::BulkIteration | OperatorKind::DeltaIteration => {
                    let spec = n
                        .iteration
                        .as_ref()
                        .ok_or("iteration node without spec")?;
                    spec.body.validate()?;
                }
                _ => {
                    if n.inputs.is_empty() {
                        return Err(format!("non-source node {} has no inputs", n.id.0));
                    }
                    if n.iteration.is_some() {
                        return Err("iteration spec on non-iteration node".to_string());
                    }
                }
            }
        }
        if !has_source {
            return Err("plan has no source".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OperatorKind::*;

    fn wordcount_like() -> LogicalPlan {
        let mut p = LogicalPlan::new();
        let src = p.source(1_000_000, 80.0);
        let fm = p.unary(src, FlatMap, CostAnnotation::new(10.0, 150.0, 12.0));
        let rbk = p.unary(fm, ReduceByKey, CostAnnotation::new(0.02, 200.0, 20.0));
        let _sink = p.unary(rbk, DataSink, CostAnnotation::new(1.0, 80.0, 20.0));
        p
    }

    #[test]
    fn builder_produces_valid_plan() {
        let p = wordcount_like();
        assert_eq!(p.len(), 4);
        assert!(p.validate().is_ok());
        assert_eq!(p.sinks(), vec![NodeId(3)]);
    }

    #[test]
    fn shuffling_operator_gets_shuffle_edge() {
        let p = wordcount_like();
        assert_eq!(p.node(NodeId(2)).inputs[0].1, ExchangeMode::HashShuffle);
        assert_eq!(p.node(NodeId(1)).inputs[0].1, ExchangeMode::Forward);
    }

    #[test]
    fn cardinality_propagation() {
        let p = wordcount_like();
        let c = p.cardinalities();
        assert!((c[0] - 1e6).abs() < 1.0);
        assert!((c[1] - 1e7).abs() < 1.0); // flatMap ×10
        assert!((c[2] - 2e5).abs() < 1.0); // combine to 2 %
        let bytes = p.output_bytes();
        assert!((bytes[1] - 1e7 * 12.0).abs() < 1.0);
    }

    #[test]
    fn validate_catches_missing_source_records() {
        let mut p = LogicalPlan::new();
        let src = p.source(10, 8.0);
        let _ = p.unary(src, Map, CostAnnotation::default());
        // Corrupt: remove cardinality.
        let mut bad = p.clone();
        bad.nodes[0].source_records = None;
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "input node does not exist")]
    fn unary_with_bogus_input_panics() {
        let mut p = LogicalPlan::new();
        let _ = p.unary(NodeId(5), Map, CostAnnotation::default());
    }

    #[test]
    fn iteration_body_is_validated() {
        let mut body = LogicalPlan::new();
        let bsrc = body.source(100, 16.0);
        let _ = body.unary(bsrc, Map, CostAnnotation::default());

        let mut p = LogicalPlan::new();
        let src = p.source(100, 16.0);
        let it = p.iterate(src, IterationKind::Bulk, 10, body, 1.0);
        let _ = p.unary(it, DataSink, CostAnnotation::default());
        assert!(p.validate().is_ok());
        assert_eq!(p.node(it).op, BulkIteration);
    }

    #[test]
    #[should_panic(expected = "iterations must be positive")]
    fn zero_iterations_panics() {
        let mut body = LogicalPlan::new();
        body.source(1, 1.0);
        let mut p = LogicalPlan::new();
        let src = p.source(1, 1.0);
        let _ = p.iterate(src, IterationKind::Bulk, 0, body, 1.0);
    }

    #[test]
    fn binary_join_cardinality_sums_inputs() {
        let mut p = LogicalPlan::new();
        let a = p.source(100, 8.0);
        let b = p.source(200, 8.0);
        let j = p.binary(
            (a, ExchangeMode::HashShuffle),
            (b, ExchangeMode::HashShuffle),
            Join,
            CostAnnotation::new(0.5, 300.0, 16.0),
        );
        let c = p.cardinalities();
        assert!((c[j.0] - 150.0).abs() < 1e-9);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn empty_plan_is_invalid() {
        assert!(LogicalPlan::new().validate().is_err());
    }

    #[test]
    fn delta_iteration_kind_maps_to_operator() {
        let mut body = LogicalPlan::new();
        body.source(1, 1.0);
        let mut p = LogicalPlan::new();
        let src = p.source(1, 1.0);
        let it = p.iterate(src, IterationKind::Delta, 5, body, 0.5);
        assert_eq!(p.node(it).op, DeltaIteration);
        assert_eq!(p.node(it).iteration.as_ref().unwrap().workset_decay, 0.5);
    }
}
