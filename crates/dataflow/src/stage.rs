//! Physical plan shapes: Spark stages and Flink job graphs.
//!
//! The same logical plan is executed with fundamentally different physical
//! structure by the two engines (§II-C, §VI-C):
//!
//! - Spark's DAGScheduler splits the DAG into **stages** at shuffle
//!   boundaries; each stage materialises its shuffle output before the next
//!   starts ("in Spark the separation between stages is very clear").
//! - Flink compiles the DAG into a **job graph** of chained operator
//!   vertices connected by pipelined channels; all vertices are deployed at
//!   once ("Flink pipelines the execution, hence it is visualized in a
//!   single stage").

use serde::{Deserialize, Serialize};

use crate::operator::OperatorKind;
use crate::plan::{ExchangeMode, LogicalPlan, NodeId};

/// One Spark stage: a set of nodes executed as fused tasks, bounded by
/// shuffle edges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    /// Stage index (topological order).
    pub id: usize,
    /// Plan nodes fused into this stage, in topological order.
    pub nodes: Vec<NodeId>,
    /// Stages whose shuffle output this stage reads.
    pub parents: Vec<usize>,
}

/// A staged physical plan (Spark DAGScheduler result).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagePlan {
    /// Stages in execution (topological) order.
    pub stages: Vec<Stage>,
}

impl StagePlan {
    /// Splits a logical plan into stages at shuffle boundaries.
    ///
    /// A node joins its upstream's stage when it has exactly one
    /// non-broadcast input connected by a forward edge; otherwise it starts
    /// a new stage whose parents are the stages of all its inputs.
    pub fn from_plan(plan: &LogicalPlan) -> Self {
        let mut node_stage: Vec<usize> = vec![usize::MAX; plan.len()];
        let mut stages: Vec<Stage> = Vec::new();
        let is_iteration = |op: OperatorKind| {
            matches!(
                op,
                OperatorKind::BulkIteration | OperatorKind::DeltaIteration
            )
        };
        for node in plan.nodes() {
            let data_inputs: Vec<_> = node
                .inputs
                .iter()
                .filter(|(_, m)| *m != ExchangeMode::Broadcast)
                .collect();
            // Iteration nodes are scheduled as their own (unrolled) stage
            // sequence; nothing fuses into or out of them.
            let fuse_with = match data_inputs.as_slice() {
                [(input, ExchangeMode::Forward)]
                    if !is_iteration(node.op) && !is_iteration(plan.node(*input).op) =>
                {
                    Some(node_stage[input.0])
                }
                _ => None,
            };
            match fuse_with {
                Some(sid) => {
                    stages[sid].nodes.push(node.id);
                    node_stage[node.id.0] = sid;
                }
                None => {
                    let sid = stages.len();
                    let mut parents: Vec<usize> = node
                        .inputs
                        .iter()
                        .map(|(input, _)| node_stage[input.0])
                        .filter(|&p| p != usize::MAX)
                        .collect();
                    parents.sort_unstable();
                    parents.dedup();
                    stages.push(Stage {
                        id: sid,
                        nodes: vec![node.id],
                        parents,
                    });
                    node_stage[node.id.0] = sid;
                }
            }
        }
        Self { stages }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when no stages exist.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage containing a given node.
    pub fn stage_of(&self, node: NodeId) -> Option<&Stage> {
        self.stages.iter().find(|s| s.nodes.contains(&node))
    }

    /// Display label of a stage, e.g. `"Read->Sort"`.
    pub fn label(&self, plan: &LogicalPlan, stage: &Stage) -> String {
        stage
            .nodes
            .iter()
            .map(|&id| plan.node(id).op.display_name())
            .collect::<Vec<_>>()
            .join("->")
    }
}

/// One Flink job-graph vertex: a chain of forward-connected operators
/// deployed as a single task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainVertex {
    /// Vertex index.
    pub id: usize,
    /// Chained plan nodes in order.
    pub nodes: Vec<NodeId>,
    /// Input channels: upstream vertex plus exchange mode.
    pub inputs: Vec<(usize, ExchangeMode)>,
}

impl ChainVertex {
    /// True when the chain contains a pipeline breaker (its output only
    /// begins flowing after the breaker has consumed all input).
    pub fn has_breaker(&self, plan: &LogicalPlan) -> bool {
        self.nodes
            .iter()
            .any(|&id| plan.node(id).op.is_pipeline_breaker())
    }

    /// Display label, e.g. `"DataSource->FlatMap->GroupCombine"` as in the
    /// paper's Fig 3.
    pub fn label(&self, plan: &LogicalPlan) -> String {
        self.nodes
            .iter()
            .map(|&id| plan.node(id).op.display_name())
            .collect::<Vec<_>>()
            .join("->")
    }
}

/// A pipelined physical plan (Flink JobGraph).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobGraph {
    /// Chained vertices in topological order.
    pub vertices: Vec<ChainVertex>,
}

impl JobGraph {
    /// Chains forward-connected operators into vertices.
    ///
    /// A node joins its upstream chain when it has exactly one non-broadcast
    /// input, connected forward, and the upstream's chain has not been ended
    /// by a pipeline breaker mid-chain. Iteration nodes always start their
    /// own vertex (they deploy the cyclic dataflow).
    pub fn from_plan(plan: &LogicalPlan) -> Self {
        let mut consumers = vec![0usize; plan.len()];
        for n in plan.nodes() {
            for (input, _) in &n.inputs {
                consumers[input.0] += 1;
            }
        }
        let mut node_vertex: Vec<usize> = vec![usize::MAX; plan.len()];
        let mut vertices: Vec<ChainVertex> = Vec::new();
        for node in plan.nodes() {
            let data_inputs: Vec<_> = node
                .inputs
                .iter()
                .filter(|(_, m)| *m != ExchangeMode::Broadcast)
                .collect();
            let is_iteration = |op: OperatorKind| {
                matches!(
                    op,
                    OperatorKind::BulkIteration | OperatorKind::DeltaIteration
                )
            };
            // Flink 0.10 granularity (visible in the paper's plan plots):
            // pipeline breakers and sinks are deployed as their own
            // vertices; nothing chains onto an iteration or a breaker.
            let chainable = !is_iteration(node.op)
                && !node.op.is_pipeline_breaker()
                && node.op != OperatorKind::DataSink
                && matches!(data_inputs.as_slice(), [(input, ExchangeMode::Forward)]
                    if consumers[input.0] == 1
                        && !is_iteration(plan.node(*input).op)
                        && !plan.node(*input).op.is_pipeline_breaker());
            if chainable {
                let vid = node_vertex[data_inputs[0].0 .0];
                vertices[vid].nodes.push(node.id);
                node_vertex[node.id.0] = vid;
            } else {
                let vid = vertices.len();
                let mut inputs: Vec<(usize, ExchangeMode)> = node
                    .inputs
                    .iter()
                    .map(|(input, m)| (node_vertex[input.0], *m))
                    .collect();
                inputs.dedup();
                vertices.push(ChainVertex {
                    id: vid,
                    nodes: vec![node.id],
                    inputs,
                });
                node_vertex[node.id.0] = vid;
            }
        }
        Self { vertices }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OperatorKind::*;
    use crate::plan::CostAnnotation;

    /// TeraSort-like plan: source → map → range shuffle → sort → sink.
    fn terasort_plan() -> LogicalPlan {
        let mut p = LogicalPlan::new();
        let src = p.source(1_000_000, 100.0);
        let map = p.unary(src, Map, CostAnnotation::new(1.0, 100.0, 100.0));
        let part = p.unary_via(
            map,
            ExchangeMode::RangeShuffle,
            PartitionCustom,
            CostAnnotation::new(1.0, 50.0, 100.0),
        );
        let sort = p.unary(part, SortPartition, CostAnnotation::new(1.0, 300.0, 100.0));
        let _ = p.unary(sort, DataSink, CostAnnotation::new(1.0, 80.0, 100.0));
        p
    }

    #[test]
    fn terasort_splits_into_two_stages() {
        let p = terasort_plan();
        let sp = StagePlan::from_plan(&p);
        // Spark: Read->Sort | Shuffling->Sort->Write (Fig 9 right).
        assert_eq!(sp.len(), 2);
        assert_eq!(sp.stages[0].nodes.len(), 2); // source + map
        assert_eq!(sp.stages[1].nodes.len(), 3); // partition + sort + sink
        assert_eq!(sp.stages[1].parents, vec![0]);
        assert_eq!(sp.label(&p, &sp.stages[0]), "DataSource->Map");
    }

    #[test]
    fn job_graph_chains_forward_runs() {
        let p = terasort_plan();
        let jg = JobGraph::from_plan(&p);
        // Flink 0.10 vertex granularity, matching the paper's Fig 9 spans:
        // DM=DataSource->Map, P=Partition, SM=Sort-Partition, DS=DataSink.
        assert_eq!(jg.len(), 4);
        assert_eq!(jg.vertices[0].label(&p), "DataSource->Map");
        assert_eq!(jg.vertices[1].label(&p), "Partition");
        assert_eq!(jg.vertices[2].label(&p), "Sort-Partition");
        assert_eq!(jg.vertices[3].label(&p), "DataSink");
        assert!(jg.vertices[2].has_breaker(&p));
        assert!(!jg.vertices[0].has_breaker(&p));
        assert_eq!(jg.vertices[1].inputs, vec![(0, ExchangeMode::RangeShuffle)]);
        assert_eq!(jg.vertices[3].inputs, vec![(2, ExchangeMode::Forward)]);
    }

    #[test]
    fn join_starts_new_stage_with_two_parents() {
        let mut p = LogicalPlan::new();
        let a = p.source(100, 8.0);
        let am = p.unary(a, Map, CostAnnotation::default());
        let b = p.source(100, 8.0);
        let j = p.binary(
            (am, ExchangeMode::HashShuffle),
            (b, ExchangeMode::HashShuffle),
            Join,
            CostAnnotation::default(),
        );
        let _ = p.unary(j, DataSink, CostAnnotation::default());
        let sp = StagePlan::from_plan(&p);
        assert_eq!(sp.len(), 3);
        let join_stage = sp.stage_of(j).unwrap();
        assert_eq!(join_stage.parents.len(), 2);
    }

    #[test]
    fn broadcast_does_not_split_stage() {
        // K-Means-like: points → map (with broadcast centroids) stays fused.
        let mut p = LogicalPlan::new();
        let centroids = p.source(10, 16.0);
        let points = p.source(1000, 16.0);
        let assign = p.unary(points, Map, CostAnnotation::default());
        // Attach broadcast input by building a binary node manually.
        let reduce = {
            let m = p.binary(
                (assign, ExchangeMode::Forward),
                (centroids, ExchangeMode::Broadcast),
                WithBroadcastSet,
                CostAnnotation::default(),
            );
            p.unary(m, ReduceByKey, CostAnnotation::new(0.01, 100.0, 16.0))
        };
        let _ = p.unary(reduce, DataSink, CostAnnotation::default());
        let sp = StagePlan::from_plan(&p);
        // Stages: [centroids], [points, assign, withBroadcast], [reduce, sink].
        assert_eq!(sp.len(), 3);
        let s = sp.stage_of(assign).unwrap();
        assert!(s.nodes.len() >= 3, "broadcast consumer fused: {s:?}");
    }

    #[test]
    fn shared_output_breaks_chain_but_not_stage_logic() {
        // A node consumed twice cannot be chained into either consumer.
        let mut p = LogicalPlan::new();
        let src = p.source(100, 8.0);
        let m = p.unary(src, Map, CostAnnotation::default());
        let f1 = p.unary(m, Filter, CostAnnotation::new(0.5, 10.0, 8.0));
        let f2 = p.unary(m, Filter, CostAnnotation::new(0.5, 10.0, 8.0));
        let _ = p.unary(f1, DataSink, CostAnnotation::default());
        let _ = p.unary(f2, Count, CostAnnotation::default());
        let jg = JobGraph::from_plan(&p);
        // src+map chain, then each filter(+action) its own vertex.
        assert_eq!(jg.vertices[0].nodes.len(), 2);
        assert!(jg.len() >= 3);
    }

    #[test]
    fn iteration_node_is_own_vertex() {
        let mut body = LogicalPlan::new();
        let bsrc = body.source(10, 8.0);
        body.unary(bsrc, Map, CostAnnotation::default());
        let mut p = LogicalPlan::new();
        let src = p.source(10, 8.0);
        let it = p.iterate(src, crate::plan::IterationKind::Bulk, 5, body, 1.0);
        let _ = p.unary(it, DataSink, CostAnnotation::default());
        let jg = JobGraph::from_plan(&p);
        let v = jg
            .vertices
            .iter()
            .find(|v| v.nodes.contains(&it))
            .unwrap();
        assert_eq!(v.nodes.len(), 1, "iteration must not be chained");
    }

    #[test]
    fn single_chain_when_no_shuffles() {
        let mut p = LogicalPlan::new();
        let src = p.source(100, 8.0);
        let f = p.unary(src, Filter, CostAnnotation::new(0.1, 10.0, 8.0));
        let _ = p.unary(f, Count, CostAnnotation::default());
        let sp = StagePlan::from_plan(&p);
        assert_eq!(sp.len(), 1);
        let jg = JobGraph::from_plan(&p);
        assert_eq!(jg.len(), 1);
        assert_eq!(jg.vertices[0].label(&p), "DataSource->Filter->Count");
    }
}
