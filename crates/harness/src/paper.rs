//! Reference values transcribed from the paper's figures and tables.
//!
//! Time figures are read off the plots (± plot-reading error, which is why
//! EXPERIMENTS.md compares *shapes* — winners, gaps, crossovers — and
//! treats absolute times as approximate targets). Figures 3, 6, 9, 10, 16
//! and 17 state the total execution times in their captions; those are
//! exact.

/// One paper reference point: expected Spark and Flink times, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ref {
    /// X value (nodes or GB/node).
    pub x: f64,
    /// Spark seconds (None when the paper does not give it).
    pub spark: Option<f64>,
    /// Flink seconds.
    pub flink: Option<f64>,
}

/// Fig 3 caption: Word Count, 32 nodes, 768 GB.
pub const WC_32_NODES: Ref = Ref {
    x: 32.0,
    spark: Some(572.0),
    flink: Some(543.0),
};

/// Fig 6 caption: Grep, 32 nodes, 768 GB.
pub const GREP_32_NODES: Ref = Ref {
    x: 32.0,
    spark: Some(275.0),
    flink: Some(331.0),
};

/// Fig 9 caption: Tera Sort, 55 nodes, 3.5 TB.
pub const TERASORT_55_NODES: Ref = Ref {
    x: 55.0,
    spark: Some(5079.0),
    flink: Some(4669.0),
};

/// Fig 10 caption: K-Means, 24 nodes, 10 iterations, 1.2 B samples.
pub const KMEANS_24_NODES: Ref = Ref {
    x: 24.0,
    spark: Some(278.0),
    flink: Some(244.0),
};

/// Fig 16 caption: Page Rank, 27 nodes, 20 iterations, Small graph.
pub const PAGERANK_SMALL_27_NODES: Ref = Ref {
    x: 27.0,
    spark: Some(232.0),
    flink: Some(192.0),
};

/// Fig 17 caption: Connected Components, 27 nodes, 23 iterations, Medium
/// graph.
pub const CC_MEDIUM_27_NODES: Ref = Ref {
    x: 27.0,
    spark: Some(388.0),
    flink: Some(267.0),
};

/// Table VII, exactly as printed ("no" = failure).
/// Rows: (nodes, spark_pr_load, spark_pr_iter, flink_pr_load,
/// flink_pr_iter, spark_cc_load, spark_cc_iter, flink_cc_load,
/// flink_cc_iter); `None` = "no".
pub const TABLE_VII: [(u32, Option<f64>, Option<f64>, Option<f64>, Option<f64>, Option<f64>, Option<f64>, Option<f64>, Option<f64>); 3] = [
    (
        27,
        Some(3977.0),
        None,
        None,
        None,
        Some(3717.0),
        Some(3948.0),
        None,
        None,
    ),
    (
        44,
        Some(667.0),
        None,
        None,
        None,
        Some(798.0),
        Some(978.0),
        None,
        None,
    ),
    (
        97,
        Some(418.0),
        Some(596.0),
        Some(1096.0),
        Some(645.0),
        Some(357.0),
        Some(529.0),
        Some(580.0),
        Some(1268.0),
    ),
];

/// §VIII headline ratios: "Spark is about 1.7x faster than Flink for large
/// graph processing, while the latter outperforms Spark up to 1.5x for
/// batch and small graph workloads."
pub const LARGE_GRAPH_SPARK_ADVANTAGE: f64 = 1.7;

/// Expected winners per experiment family (the shape EXPERIMENTS.md
/// verifies). `true` = Flink wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedWinner {
    /// Flink faster.
    Flink,
    /// Spark faster.
    Spark,
    /// Within noise of each other.
    Tie,
}

/// The paper's qualitative verdicts.
pub fn expected_winner(experiment: &str) -> ExpectedWinner {
    match experiment {
        // Word Count: "Flink performs slightly better" at 16/32 nodes,
        // "Flink constantly outperforming Spark by 10%" on Fig 2.
        "fig1-large" | "fig2" => ExpectedWinner::Flink,
        "fig1-small" => ExpectedWinner::Tie,
        // Grep: "an improved execution for Spark, with up to 20% smaller
        // times for large datasets".
        "fig4" | "fig5" => ExpectedWinner::Spark,
        // Tera Sort: "Flink is performing on average better than Spark".
        "fig7" | "fig8" => ExpectedWinner::Flink,
        // K-Means: Flink "outperform[s] by more than 10%".
        "fig11" => ExpectedWinner::Flink,
        // Small graphs: Flink better; CC medium: Flink up to 30% better.
        "fig12" | "fig14" | "fig15" => ExpectedWinner::Flink,
        // PR medium: the paper's text asserts no winner (§VIII claims
        // Flink's advantage only for batch and *small graph* workloads;
        // §VI-E discusses configuration sensitivity for both engines).
        // Our model leans Spark here because Flink's count-vertices job
        // re-reads the 30 GB dataset and Table VI caps Flink's parallelism
        // below the core count.
        "fig13" => ExpectedWinner::Tie,
        // Large graph at 97 nodes: Spark ~1.7×.
        "table7" => ExpectedWinner::Spark,
        _ => ExpectedWinner::Tie,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caption_totals_are_transcribed() {
        assert_eq!(WC_32_NODES.spark, Some(572.0));
        assert_eq!(WC_32_NODES.flink, Some(543.0));
        assert_eq!(TERASORT_55_NODES.flink, Some(4669.0));
        assert_eq!(CC_MEDIUM_27_NODES.spark, Some(388.0));
    }

    #[test]
    fn table_vii_failures_match_paper() {
        // Flink fails everywhere except 97 nodes.
        let (n27, .., f27_load, f27_iter) = (
            TABLE_VII[0].0,
            TABLE_VII[0].7,
            TABLE_VII[0].8,
        );
        assert_eq!(n27, 27);
        assert!(f27_load.is_none() && f27_iter.is_none());
        let row97 = TABLE_VII[2];
        assert_eq!(row97.0, 97);
        assert!(row97.3.is_some() && row97.4.is_some());
    }

    #[test]
    fn winners_cover_all_families() {
        assert_eq!(expected_winner("fig4"), ExpectedWinner::Spark);
        assert_eq!(expected_winner("fig8"), ExpectedWinner::Flink);
        assert_eq!(expected_winner("unknown"), ExpectedWinner::Tie);
    }
}
