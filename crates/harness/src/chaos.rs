//! `repro chaos`: a seeded fault-injection drill over all six workloads on
//! both engines.
//!
//! Every workload/engine cell runs under a fresh deterministic
//! [`FaultPlan`] that guarantees at least one task kill and at least one
//! straggler (plus background failure probability), then the output is
//! checked against the sequential oracle. A cell passes only if recovery —
//! lineage re-execution and speculation on the staged engine,
//! checkpoint restart on the pipelined engine — reproduced the fault-free
//! answer exactly. The per-cell recovery counters are the paper-facing
//! artifact: they show *which* mechanism each engine used to survive.

use flowmark_datagen::graph::{RmatGen, RmatParams};
use flowmark_datagen::points::{Point, PointsConfig, PointsGen};
use flowmark_datagen::terasort::TeraGen;
use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::metrics::RecoverySnapshot;
use flowmark_engine::spark::SparkContext;
use flowmark_engine::{FaultConfig, FaultPlan};
use flowmark_workloads::connected::{self, CcVariant};
use flowmark_workloads::{grep, kmeans, pagerank, terasort, wordcount};
use serde::{Deserialize, Serialize};

/// Fixed dataset seeds, mirroring the smoke bench.
const WC_SEED: u64 = 7;
const GREP_SEED: u64 = 3;
const TS_SEED: u64 = 11;
const KM_SEED: u64 = 5;
const PR_SEED: u64 = 21;
const CC_SEED: u64 = 33;

/// Fault-drill knobs, settable from the `repro chaos` CLI.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Root seed; each cell derives its own plan seed from it, so every
    /// cell's injections are independent and the whole drill replays
    /// bit-for-bit under the same seed.
    pub seed: u64,
    /// Background probability a task's first attempt is killed
    /// (on top of the guaranteed first kill).
    pub task_failure_prob: f64,
    /// Background probability a task's first attempt straggles
    /// (on top of the guaranteed first straggler).
    pub straggler_prob: f64,
}

impl ChaosConfig {
    /// The default drill: the chaos preset's background probabilities.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            task_failure_prob: 0.05,
            straggler_prob: 0.02,
        }
    }

    /// A fresh per-cell plan: guaranteed ≥1 kill and ≥1 straggler, seeded
    /// by cell index so no two cells share injection decisions.
    fn plan(&self, cell: u64) -> FaultPlan {
        let mut cfg = FaultConfig::chaos(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(cell));
        cfg.task_failure_prob = self.task_failure_prob;
        cfg.straggler_prob = self.straggler_prob;
        FaultPlan::new(cfg)
    }
}

/// Input sizes for one drill.
#[derive(Debug, Clone, Copy)]
pub struct ChaosScale {
    /// Word Count / Grep corpus lines.
    pub lines: usize,
    /// TeraSort records.
    pub ts_records: usize,
    /// K-Means points.
    pub points: usize,
    /// Page Rank / Connected Components edges.
    pub edges: usize,
    /// Iterations for the iterative workloads.
    pub rounds: u32,
    /// Engine parallelism.
    pub partitions: usize,
}

impl ChaosScale {
    /// CLI scale.
    pub fn full() -> Self {
        Self {
            lines: 30_000,
            ts_records: 30_000,
            points: 20_000,
            edges: 8_000,
            rounds: 8,
            partitions: 8,
        }
    }

    /// Test scale: small datasets, few rounds, still enough tasks per cell
    /// for the guaranteed kill and straggler to land.
    pub fn tiny() -> Self {
        Self {
            lines: 1_500,
            ts_records: 1_500,
            points: 2_000,
            edges: 1_200,
            rounds: 5,
            partitions: 4,
        }
    }
}

/// One drilled cell: a workload on one engine under injected faults.
/// ([`RecoverySnapshot`] serialises directly now that the engine's metrics
/// are serde types.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Workload id.
    pub workload: String,
    /// Engine id: `spark` (staged) or `flink` (pipelined).
    pub engine: String,
    /// True when the faulted output matched the sequential oracle.
    pub verified: bool,
    /// The engine's recovery counters after the run.
    pub recovery: RecoverySnapshot,
}

/// A full drill: twelve cells plus the knobs that produced them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Root seed of the drill.
    pub seed: u64,
    /// Background kill probability used.
    pub task_failure_prob: f64,
    /// Background straggler probability used.
    pub straggler_prob: f64,
    /// Engine parallelism.
    pub partitions: usize,
    /// All drilled cells, workload-major, spark before flink.
    pub cells: Vec<ChaosCell>,
}

fn cell(workload: &str, engine: &str, verified: bool, recovery: RecoverySnapshot) -> ChaosCell {
    ChaosCell {
        workload: workload.into(),
        engine: engine.into(),
        verified,
        recovery,
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + b.abs())
}

/// Runs the drill: each workload once per engine under a fresh fault plan,
/// every cell verified against the sequential oracle.
pub fn run_chaos(config: ChaosConfig, scale: ChaosScale) -> ChaosReport {
    let parts = scale.partitions;
    let mut cells = Vec::new();
    let mut next_cell = 0u64;
    let mut plan = || {
        let p = config.plan(next_cell);
        next_cell += 1;
        p
    };

    // --- Word Count -------------------------------------------------------
    let wc_lines = TextGen::new(TextGenConfig::default(), WC_SEED).lines(scale.lines);
    let wc_expect = wordcount::oracle(&wc_lines);
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan());
        let out = wordcount::run_spark(&sc, wc_lines.clone(), parts);
        cells.push(cell("wordcount", "spark", out == wc_expect, sc.metrics().recovery()));
    }
    {
        let env = FlinkEnv::with_faults(parts, plan());
        let out = wordcount::run_flink(&env, wc_lines.clone());
        cells.push(cell("wordcount", "flink", out == wc_expect, env.metrics().recovery()));
    }

    // --- Grep -------------------------------------------------------------
    let grep_config = TextGenConfig {
        needle_selectivity: 0.05,
        ..TextGenConfig::default()
    };
    let needle = grep_config.needle.clone();
    let grep_lines = TextGen::new(grep_config, GREP_SEED).lines(scale.lines);
    let grep_expect = grep::oracle(&grep_lines, &needle);
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan());
        let out = grep::run_spark(&sc, grep_lines.clone(), &needle, parts);
        cells.push(cell("grep", "spark", out == grep_expect, sc.metrics().recovery()));
    }
    {
        let env = FlinkEnv::with_faults(parts, plan());
        let out = grep::run_flink(&env, grep_lines.clone(), &needle);
        cells.push(cell("grep", "flink", out == grep_expect, env.metrics().recovery()));
    }

    // --- TeraSort ---------------------------------------------------------
    let ts_records = TeraGen::new(TS_SEED).records(scale.ts_records);
    let ts_expect: Vec<Vec<u8>> = terasort::oracle(ts_records.clone())
        .iter()
        .map(|r| r.key().to_vec())
        .collect();
    let ts_ok = |out: &[Vec<flowmark_datagen::terasort::Record>]| {
        terasort::validate_output(ts_records.len(), out).is_ok()
            && out
                .iter()
                .flatten()
                .map(|r| r.key().to_vec())
                .eq(ts_expect.iter().cloned())
    };
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan());
        let out = terasort::run_spark(&sc, ts_records.clone(), parts);
        cells.push(cell("terasort", "spark", ts_ok(&out), sc.metrics().recovery()));
    }
    {
        let env = FlinkEnv::with_faults(parts, plan());
        let out = terasort::run_flink(&env, ts_records.clone(), parts);
        cells.push(cell("terasort", "flink", ts_ok(&out), env.metrics().recovery()));
    }

    // --- K-Means ----------------------------------------------------------
    let mut km_gen = PointsGen::new(
        PointsConfig {
            clusters: 4,
            box_half_width: 100.0,
            sigma: 3.0,
        },
        KM_SEED,
    );
    let km_init: Vec<Point> = km_gen
        .true_centers()
        .iter()
        .map(|c| Point {
            x: c.x + 10.0,
            y: c.y - 8.0,
        })
        .collect();
    let km_points = km_gen.points(scale.points);
    let km_expect = kmeans::oracle(&km_points, km_init.clone(), scale.rounds);
    let km_ok = |out: &[Point]| {
        out.len() == km_expect.len()
            && out
                .iter()
                .zip(&km_expect)
                .all(|(p, q)| close(p.x, q.x) && close(p.y, q.y))
    };
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan());
        let out = kmeans::run_spark(&sc, km_points.clone(), km_init.clone(), scale.rounds, parts);
        cells.push(cell("kmeans", "spark", km_ok(&out), sc.metrics().recovery()));
    }
    {
        let env = FlinkEnv::with_faults(parts, plan());
        let out = kmeans::run_flink(&env, km_points.clone(), km_init.clone(), scale.rounds);
        cells.push(cell("kmeans", "flink", km_ok(&out), env.metrics().recovery()));
    }

    // --- Page Rank --------------------------------------------------------
    let mut pr_edges = RmatGen::new(9, RmatParams::default(), PR_SEED).edges(scale.edges);
    pr_edges.dedup();
    let pr_expect = pagerank::oracle(&pr_edges, scale.rounds);
    let pr_ok = |out: &std::collections::HashMap<u64, f64>| {
        out.len() == pr_expect.len()
            && out
                .iter()
                .all(|(v, r)| close(*r, pr_expect.get(v).copied().unwrap_or(f64::NAN)))
    };
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan());
        let out = pagerank::run_spark(&sc, &pr_edges, scale.rounds, parts);
        cells.push(cell("pagerank", "spark", pr_ok(&out), sc.metrics().recovery()));
    }
    {
        let env = FlinkEnv::with_faults(parts, plan());
        let verified = match pagerank::run_flink(&env, &pr_edges, scale.rounds, parts) {
            Ok(out) => pr_ok(&out),
            Err(_) => false,
        };
        cells.push(cell("pagerank", "flink", verified, env.metrics().recovery()));
    }

    // --- Connected Components ---------------------------------------------
    let cc_edges = RmatGen::new(8, RmatParams::default(), CC_SEED).edges(scale.edges);
    let cc_expect = connected::oracle(&cc_edges);
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan());
        let out = connected::run_spark(&sc, &cc_edges, 200, parts);
        cells.push(cell("connected", "spark", out == cc_expect, sc.metrics().recovery()));
    }
    {
        // Delta variant: exercises the vertex-centric solution-set
        // snapshot/restore path.
        let env = FlinkEnv::with_faults(parts, plan());
        let verified =
            match connected::run_flink(&env, &cc_edges, 200, parts, CcVariant::Delta, None) {
                Ok(out) => out == cc_expect,
                Err(_) => false,
            };
        cells.push(cell("connected", "flink", verified, env.metrics().recovery()));
    }

    ChaosReport {
        seed: config.seed,
        task_failure_prob: config.task_failure_prob,
        straggler_prob: config.straggler_prob,
        partitions: parts,
        cells,
    }
}

/// Renders the drill as a human-readable table.
pub fn render(report: &ChaosReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "chaos drill — seed {}, kill prob {:.2}, straggle prob {:.2}, {} partitions\n",
        report.seed, report.task_failure_prob, report.straggler_prob, report.partitions
    ));
    out.push_str(&format!(
        "{:<10} {:<6} {:>5} {:>6} {:>7} {:>7} {:>8} {:>6} {:>9} {:>9} {:>8}\n",
        "workload", "engine", "kills", "strag", "retries", "recomp", "restarts", "ckpts",
        "ckpt-B", "spec-wins", "verified"
    ));
    for c in &report.cells {
        let r = &c.recovery;
        out.push_str(&format!(
            "{:<10} {:<6} {:>5} {:>6} {:>7} {:>7} {:>8} {:>6} {:>9} {:>9} {:>8}\n",
            c.workload,
            c.engine,
            r.injected_failures,
            r.injected_stragglers,
            r.task_retries,
            r.partitions_recomputed,
            r.region_restarts,
            r.checkpoints_taken,
            r.checkpoint_bytes,
            format!("{}/{}", r.speculative_wins, r.speculative_launched),
            c.verified,
        ));
    }
    let spark: Vec<&ChaosCell> = report.cells.iter().filter(|c| c.engine == "spark").collect();
    let flink: Vec<&ChaosCell> = report.cells.iter().filter(|c| c.engine == "flink").collect();
    let sum = |cs: &[&ChaosCell], f: fn(&RecoverySnapshot) -> u64| -> u64 {
        cs.iter().map(|c| f(&c.recovery)).sum()
    };
    out.push_str(&format!(
        "staged    engine recovered {} kill(s) by recomputing {} partition(s) from lineage; \
         {}/{} speculative backup(s) won\n",
        sum(&spark, |r| r.injected_failures),
        sum(&spark, |r| r.partitions_recomputed),
        sum(&spark, |r| r.speculative_wins),
        sum(&spark, |r| r.speculative_launched),
    ));
    out.push_str(&format!(
        "pipelined engine recovered {} kill(s) by {} region restart(s) from {} checkpoint(s)\n",
        sum(&flink, |r| r.injected_failures),
        sum(&flink, |r| r.region_restarts),
        sum(&flink, |r| r.checkpoints_taken),
    ));
    out
}

// The drill itself is exercised (at tiny scale, every cell asserted) by the
// tier-1 integration test `tests/chaos_smoke.rs`.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_plans_are_independent_and_active() {
        let cfg = ChaosConfig::new(42);
        let a = cfg.plan(0);
        let b = cfg.plan(1);
        assert!(a.active() && b.active());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = ChaosReport {
            seed: 7,
            task_failure_prob: 0.05,
            straggler_prob: 0.02,
            partitions: 4,
            cells: vec![cell(
                "wordcount",
                "spark",
                true,
                RecoverySnapshot {
                    injected_failures: 1,
                    task_retries: 1,
                    partitions_recomputed: 1,
                    ..Default::default()
                },
            )],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ChaosReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.cells[0].recovery.partitions_recomputed, 1);
        assert!(render(&back).contains("wordcount"));
    }
}
