//! `repro chaos`: a seeded fault-injection drill over all six workloads on
//! both engines.
//!
//! Every workload/engine cell runs under a fresh deterministic
//! [`FaultPlan`] that guarantees at least one task kill and at least one
//! straggler (plus background failure probability), then the output is
//! checked against the sequential oracle. A cell passes only if recovery —
//! lineage re-execution and speculation on the staged engine,
//! checkpoint restart on the pipelined engine — reproduced the fault-free
//! answer exactly. The per-cell recovery counters are the paper-facing
//! artifact: they show *which* mechanism each engine used to survive.

use flowmark_datagen::graph::{RmatGen, RmatParams};
use flowmark_datagen::points::{Point, PointsConfig, PointsGen};
use flowmark_datagen::terasort::TeraGen;
use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::metrics::RecoverySnapshot;
use flowmark_engine::spark::SparkContext;
use flowmark_engine::{FaultConfig, FaultPlan};
use flowmark_workloads::connected::{self, CcVariant};
use flowmark_workloads::{grep, kmeans, pagerank, terasort, wordcount};
use serde::{Deserialize, Serialize};

/// Fixed dataset seeds, mirroring the smoke bench.
const WC_SEED: u64 = 7;
const GREP_SEED: u64 = 3;
const TS_SEED: u64 = 11;
const KM_SEED: u64 = 5;
const PR_SEED: u64 = 21;
const CC_SEED: u64 = 33;

/// Workloads migrated to the columnar batch path. Under `--corruption`
/// these are the cells whose shuffle / sealed-source bytes get damaged and
/// whose integrity counters carry hard expectations.
pub const BATCH_MIGRATED: [&str; 3] = ["wordcount", "grep", "terasort"];

/// Fault-drill knobs, settable from the `repro chaos` CLI.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Root seed; each cell derives its own plan seed from it, so every
    /// cell's injections are independent and the whole drill replays
    /// bit-for-bit under the same seed.
    pub seed: u64,
    /// Background probability a task's first attempt is killed
    /// (on top of the guaranteed first kill).
    pub task_failure_prob: f64,
    /// Background probability a task's first attempt straggles
    /// (on top of the guaranteed first straggler).
    pub straggler_prob: f64,
    /// When set, batch-migrated cells also run under the corruption preset:
    /// a guaranteed in-flight batch corruption plus a guaranteed rotten
    /// checkpoint snapshot, layered on top of the kill/straggler plan.
    pub corruption: bool,
}

impl ChaosConfig {
    /// The default drill: the chaos preset's background probabilities.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            task_failure_prob: 0.05,
            straggler_prob: 0.02,
            corruption: false,
        }
    }

    /// A fresh per-cell plan: guaranteed ≥1 kill and ≥1 straggler, seeded
    /// by cell index so no two cells share injection decisions. Cells on
    /// the batch path additionally get the corruption preset when the
    /// drill runs in `--corruption` mode.
    fn plan(&self, cell: u64, batch: bool) -> FaultPlan {
        let seed = self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(cell);
        let mut cfg = if batch && self.corruption {
            FaultConfig::corruption(seed)
        } else {
            FaultConfig::chaos(seed)
        };
        cfg.task_failure_prob = self.task_failure_prob;
        cfg.straggler_prob = self.straggler_prob;
        FaultPlan::new(cfg)
    }
}

/// Input sizes for one drill.
#[derive(Debug, Clone, Copy)]
pub struct ChaosScale {
    /// Word Count / Grep corpus lines.
    pub lines: usize,
    /// TeraSort records.
    pub ts_records: usize,
    /// K-Means points.
    pub points: usize,
    /// Page Rank / Connected Components edges.
    pub edges: usize,
    /// Iterations for the iterative workloads.
    pub rounds: u32,
    /// Engine parallelism.
    pub partitions: usize,
}

impl ChaosScale {
    /// CLI scale.
    pub fn full() -> Self {
        Self {
            lines: 30_000,
            ts_records: 30_000,
            points: 20_000,
            edges: 8_000,
            rounds: 8,
            partitions: 8,
        }
    }

    /// Test scale: small datasets, few rounds, still enough tasks per cell
    /// for the guaranteed kill and straggler to land.
    pub fn tiny() -> Self {
        Self {
            lines: 1_500,
            ts_records: 1_500,
            points: 2_000,
            edges: 1_200,
            rounds: 5,
            partitions: 4,
        }
    }
}

/// One drilled cell: a workload on one engine under injected faults.
/// ([`RecoverySnapshot`] serialises directly now that the engine's metrics
/// are serde types.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Workload id.
    pub workload: String,
    /// Engine id: `spark` (staged) or `flink` (pipelined).
    pub engine: String,
    /// True when the faulted output matched the sequential oracle.
    pub verified: bool,
    /// Column batches the cell pushed through a vectorized kernel or a
    /// batch-granularity exchange — proof the batch path actually ran;
    /// `default` keeps pre-existing drill artifacts parseable.
    #[serde(default)]
    pub batches_processed: u64,
    /// The engine's recovery counters after the run.
    pub recovery: RecoverySnapshot,
}

/// A full drill: twelve cells plus the knobs that produced them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Root seed of the drill.
    pub seed: u64,
    /// Background kill probability used.
    pub task_failure_prob: f64,
    /// Background straggler probability used.
    pub straggler_prob: f64,
    /// Engine parallelism.
    pub partitions: usize,
    /// True when batch-migrated cells ran under the corruption preset.
    #[serde(default)]
    pub corruption: bool,
    /// All drilled cells, workload-major, spark before flink.
    pub cells: Vec<ChaosCell>,
}

fn cell(
    workload: &str,
    engine: &str,
    verified: bool,
    metrics: &flowmark_engine::metrics::EngineMetrics,
) -> ChaosCell {
    ChaosCell {
        workload: workload.into(),
        engine: engine.into(),
        verified,
        batches_processed: metrics.snapshot().batches_processed,
        recovery: metrics.recovery(),
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + b.abs())
}

/// Runs the drill: each workload once per engine under a fresh fault plan,
/// every cell verified against the sequential oracle.
pub fn run_chaos(config: ChaosConfig, scale: ChaosScale) -> ChaosReport {
    let parts = scale.partitions;
    let mut cells = Vec::new();
    let mut next_cell = 0u64;
    // `batch` marks cells on the columnar batch path — the only ones the
    // corruption preset can reach (the others have nothing sealed to rot).
    let mut plan = |batch: bool| {
        let p = config.plan(next_cell, batch);
        next_cell += 1;
        p
    };

    // --- Word Count -------------------------------------------------------
    let wc_lines = TextGen::new(TextGenConfig::default(), WC_SEED).lines(scale.lines);
    let wc_expect = wordcount::oracle(&wc_lines);
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan(true));
        let out = wordcount::run_spark(&sc, wc_lines.clone(), parts);
        cells.push(cell("wordcount", "spark", out == wc_expect, sc.metrics()));
    }
    {
        let env = FlinkEnv::with_faults(parts, plan(true));
        let out = wordcount::run_flink(&env, wc_lines.clone());
        cells.push(cell("wordcount", "flink", out == wc_expect, env.metrics()));
    }

    // --- Grep -------------------------------------------------------------
    let grep_config = TextGenConfig {
        needle_selectivity: 0.05,
        ..TextGenConfig::default()
    };
    let needle = grep_config.needle.clone();
    let grep_lines = TextGen::new(grep_config, GREP_SEED).lines(scale.lines);
    let grep_expect = grep::oracle(&grep_lines, &needle);
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan(true));
        let out = grep::run_spark(&sc, grep_lines.clone(), &needle, parts);
        cells.push(cell("grep", "spark", out == grep_expect, sc.metrics()));
    }
    {
        let env = FlinkEnv::with_faults(parts, plan(true));
        let out = grep::run_flink(&env, grep_lines.clone(), &needle);
        cells.push(cell("grep", "flink", out == grep_expect, env.metrics()));
    }

    // --- TeraSort ---------------------------------------------------------
    let ts_records = TeraGen::new(TS_SEED).records(scale.ts_records);
    let ts_expect: Vec<Vec<u8>> = terasort::oracle(ts_records.clone())
        .iter()
        .map(|r| r.key().to_vec())
        .collect();
    let ts_ok = |out: &[Vec<flowmark_datagen::terasort::Record>]| {
        terasort::validate_output(ts_records.len(), out).is_ok()
            && out
                .iter()
                .flatten()
                .map(|r| r.key().to_vec())
                .eq(ts_expect.iter().cloned())
    };
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan(true));
        let out = terasort::run_spark(&sc, ts_records.clone(), parts);
        cells.push(cell("terasort", "spark", ts_ok(&out), sc.metrics()));
    }
    {
        let env = FlinkEnv::with_faults(parts, plan(true));
        let out = terasort::run_flink(&env, ts_records.clone(), parts);
        cells.push(cell("terasort", "flink", ts_ok(&out), env.metrics()));
    }

    // --- K-Means ----------------------------------------------------------
    let mut km_gen = PointsGen::new(
        PointsConfig {
            clusters: 4,
            box_half_width: 100.0,
            sigma: 3.0,
        },
        KM_SEED,
    );
    let km_init: Vec<Point> = km_gen
        .true_centers()
        .iter()
        .map(|c| Point {
            x: c.x + 10.0,
            y: c.y - 8.0,
        })
        .collect();
    let km_points = km_gen.points(scale.points);
    let km_expect = kmeans::oracle(&km_points, km_init.clone(), scale.rounds);
    let km_ok = |out: &[Point]| {
        out.len() == km_expect.len()
            && out
                .iter()
                .zip(&km_expect)
                .all(|(p, q)| close(p.x, q.x) && close(p.y, q.y))
    };
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan(false));
        let out = kmeans::run_spark(&sc, km_points.clone(), km_init.clone(), scale.rounds, parts);
        cells.push(cell("kmeans", "spark", km_ok(&out), sc.metrics()));
    }
    {
        let env = FlinkEnv::with_faults(parts, plan(false));
        let out = kmeans::run_flink(&env, km_points.clone(), km_init.clone(), scale.rounds);
        cells.push(cell("kmeans", "flink", km_ok(&out), env.metrics()));
    }

    // --- Page Rank --------------------------------------------------------
    let mut pr_edges = RmatGen::new(9, RmatParams::default(), PR_SEED).edges(scale.edges);
    pr_edges.dedup();
    let pr_expect = pagerank::oracle(&pr_edges, scale.rounds);
    let pr_ok = |out: &std::collections::HashMap<u64, f64>| {
        out.len() == pr_expect.len()
            && out
                .iter()
                .all(|(v, r)| close(*r, pr_expect.get(v).copied().unwrap_or(f64::NAN)))
    };
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan(false));
        let out = pagerank::run_spark(&sc, &pr_edges, scale.rounds, parts);
        cells.push(cell("pagerank", "spark", pr_ok(&out), sc.metrics()));
    }
    {
        let env = FlinkEnv::with_faults(parts, plan(false));
        let verified = match pagerank::run_flink(&env, &pr_edges, scale.rounds, parts) {
            Ok(out) => pr_ok(&out),
            Err(_) => false,
        };
        cells.push(cell("pagerank", "flink", verified, env.metrics()));
    }

    // --- Connected Components ---------------------------------------------
    let cc_edges = RmatGen::new(8, RmatParams::default(), CC_SEED).edges(scale.edges);
    let cc_expect = connected::oracle(&cc_edges);
    {
        let sc = SparkContext::with_faults(parts, 256 << 20, plan(false));
        let out = connected::run_spark(&sc, &cc_edges, 200, parts);
        cells.push(cell("connected", "spark", out == cc_expect, sc.metrics()));
    }
    {
        // Delta variant: exercises the vertex-centric solution-set
        // snapshot/restore path.
        let env = FlinkEnv::with_faults(parts, plan(false));
        let verified =
            match connected::run_flink(&env, &cc_edges, 200, parts, CcVariant::Delta, None) {
                Ok(out) => out == cc_expect,
                Err(_) => false,
            };
        cells.push(cell("connected", "flink", verified, env.metrics()));
    }

    ChaosReport {
        seed: config.seed,
        task_failure_prob: config.task_failure_prob,
        straggler_prob: config.straggler_prob,
        partitions: parts,
        corruption: config.corruption,
        cells,
    }
}

/// Checks the drill's hard invariants, returning one human-readable line
/// per violation (empty means the drill passed).
///
/// Every cell must have reproduced the oracle, and every batch-migrated
/// cell must actually have exercised the batch path. Under `--corruption`
/// the integrity counters carry expectations too: each batch-migrated cell
/// must have *detected* its guaranteed corruption, the staged engine must
/// have recovered by recomputing (`integrity_recomputes`), and the
/// pipelined engine must have rejected a rotten checkpoint — except
/// Grep, whose pipelined plan has no exchange and therefore no
/// checkpointed channel to reject (its sealed source read is the
/// integrity surface instead).
pub fn integrity_violations(report: &ChaosReport) -> Vec<String> {
    let mut bad = Vec::new();
    for c in &report.cells {
        let r = &c.recovery;
        let id = format!("{}-{}", c.workload, c.engine);
        if !c.verified {
            bad.push(format!("{id}: output diverged from the sequential oracle"));
        }
        let batch = BATCH_MIGRATED.contains(&c.workload.as_str());
        if batch && c.batches_processed == 0 {
            bad.push(format!("{id}: batch-migrated cell processed no columnar batches"));
        }
        if report.corruption && batch {
            if r.corruptions_detected == 0 {
                bad.push(format!("{id}: armed corruption was never detected"));
            }
            if c.engine == "spark" && r.integrity_recomputes == 0 {
                bad.push(format!("{id}: no integrity-driven recompute recovered the rot"));
            }
            if c.engine == "flink" && c.workload != "grep" && r.checkpoints_rejected == 0 {
                bad.push(format!("{id}: no rotten checkpoint snapshot was rejected"));
            }
        }
    }
    bad
}

/// Renders the drill as a human-readable table.
pub fn render(report: &ChaosReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "chaos drill — seed {}, kill prob {:.2}, straggle prob {:.2}, {} partitions{}\n",
        report.seed,
        report.task_failure_prob,
        report.straggler_prob,
        report.partitions,
        if report.corruption { ", corruption armed" } else { "" },
    ));
    out.push_str(&format!(
        "{:<10} {:<6} {:>5} {:>6} {:>7} {:>7} {:>8} {:>6} {:>9} {:>7} {:>8} {:>9} {:>8}\n",
        "workload", "engine", "kills", "strag", "retries", "recomp", "restarts", "ckpts",
        "ckpt-B", "corrupt", "ckpt-rej", "spec-wins", "verified"
    ));
    for c in &report.cells {
        let r = &c.recovery;
        out.push_str(&format!(
            "{:<10} {:<6} {:>5} {:>6} {:>7} {:>7} {:>8} {:>6} {:>9} {:>7} {:>8} {:>9} {:>8}\n",
            c.workload,
            c.engine,
            r.injected_failures,
            r.injected_stragglers,
            r.task_retries,
            r.partitions_recomputed,
            r.region_restarts,
            r.checkpoints_taken,
            r.checkpoint_bytes,
            r.corruptions_detected,
            r.checkpoints_rejected,
            format!("{}/{}", r.speculative_wins, r.speculative_launched),
            c.verified,
        ));
    }
    let spark: Vec<&ChaosCell> = report.cells.iter().filter(|c| c.engine == "spark").collect();
    let flink: Vec<&ChaosCell> = report.cells.iter().filter(|c| c.engine == "flink").collect();
    let sum = |cs: &[&ChaosCell], f: fn(&RecoverySnapshot) -> u64| -> u64 {
        cs.iter().map(|c| f(&c.recovery)).sum()
    };
    out.push_str(&format!(
        "staged    engine recovered {} kill(s) by recomputing {} partition(s) from lineage; \
         {}/{} speculative backup(s) won\n",
        sum(&spark, |r| r.injected_failures),
        sum(&spark, |r| r.partitions_recomputed),
        sum(&spark, |r| r.speculative_wins),
        sum(&spark, |r| r.speculative_launched),
    ));
    out.push_str(&format!(
        "pipelined engine recovered {} kill(s) by {} region restart(s) from {} checkpoint(s)\n",
        sum(&flink, |r| r.injected_failures),
        sum(&flink, |r| r.region_restarts),
        sum(&flink, |r| r.checkpoints_taken),
    ));
    if report.corruption {
        let all: Vec<&ChaosCell> = report.cells.iter().collect();
        out.push_str(&format!(
            "integrity: {} batch(es) checksummed, {} corruption(s) detected, \
             {} recompute(s), {} checkpoint(s) rejected\n",
            sum(&all, |r| r.batches_checksummed),
            sum(&all, |r| r.corruptions_detected),
            sum(&all, |r| r.integrity_recomputes),
            sum(&all, |r| r.checkpoints_rejected),
        ));
    }
    out
}

// The drill itself is exercised (at tiny scale, every cell asserted) by the
// tier-1 integration test `tests/chaos_smoke.rs`.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_plans_are_independent_and_active() {
        let cfg = ChaosConfig::new(42);
        let a = cfg.plan(0, false);
        let b = cfg.plan(1, true);
        assert!(a.active() && b.active());
    }

    fn mock_cell(workload: &str, engine: &str, recovery: RecoverySnapshot) -> ChaosCell {
        ChaosCell {
            workload: workload.into(),
            engine: engine.into(),
            verified: true,
            batches_processed: 4,
            recovery,
        }
    }

    #[test]
    fn integrity_violations_flag_missed_detection_only_where_expected() {
        let recovered = RecoverySnapshot {
            corruptions_detected: 1,
            integrity_recomputes: 1,
            checkpoints_rejected: 1,
            ..Default::default()
        };
        let report = ChaosReport {
            seed: 7,
            task_failure_prob: 0.05,
            straggler_prob: 0.02,
            partitions: 4,
            corruption: true,
            cells: vec![
                mock_cell("wordcount", "spark", recovered),
                mock_cell("wordcount", "flink", RecoverySnapshot::default()),
                // Grep's pipelined plan has no exchange: detection is still
                // required, a rejected checkpoint is not.
                mock_cell(
                    "grep",
                    "flink",
                    RecoverySnapshot {
                        corruptions_detected: 1,
                        ..Default::default()
                    },
                ),
                // Non-batch cells carry no integrity expectations at all.
                mock_cell("kmeans", "spark", RecoverySnapshot::default()),
            ],
        };
        let bad = integrity_violations(&report);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad[0].contains("wordcount-flink") && bad[0].contains("never detected"));
        assert!(bad[1].contains("wordcount-flink") && bad[1].contains("rotten checkpoint"));

        // The same counters pass when the drill never armed corruption,
        // but oracle divergence and an idle batch path always fail.
        let mut clean = report.clone();
        clean.corruption = false;
        assert!(integrity_violations(&clean).is_empty());
        clean.cells[0].verified = false;
        clean.cells[1].batches_processed = 0;
        assert_eq!(integrity_violations(&clean).len(), 2);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = ChaosReport {
            seed: 7,
            task_failure_prob: 0.05,
            straggler_prob: 0.02,
            partitions: 4,
            corruption: false,
            cells: vec![mock_cell(
                "wordcount",
                "spark",
                RecoverySnapshot {
                    injected_failures: 1,
                    task_retries: 1,
                    partitions_recomputed: 1,
                    ..Default::default()
                },
            )],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ChaosReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.cells[0].recovery.partitions_recomputed, 1);
        assert!(render(&back).contains("wordcount"));

        // A drill artifact from before the integrity fields still loads.
        let legacy = json
            .replace("\"corruption\": false,\n", "")
            .replace("\"batches_processed\": 4,\n", "");
        let old: ChaosReport = serde_json::from_str(&legacy).unwrap();
        assert!(!old.corruption);
    }
}
