//! `repro soak`: a seeded chaos-soak drill of the supervised job service.
//!
//! Where `repro chaos` exercises *task-level* recovery inside a single
//! job, the soak drives the whole [`flowmark_serve::JobService`] stack:
//! admission control, deadlines, explicit cancellation, retry budgets and
//! per-engine circuit breakers — all while the jobs themselves run the six
//! paper workloads on both engines under `FaultConfig::chaos` injection
//! and verify every completion against the sequential oracle.
//!
//! The drill is phased so each supervision mechanism is *guaranteed* to
//! fire at least once for any seed, then a seeded randomized mix of
//! workload × engine cells soaks the service. At exit it asserts the
//! ledger: every submission resolved (none lost), oracle checks clean,
//! memory budget drained to zero, workers joined.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

use flowmark_core::config::{EngineConfig, FairShareConfig, Framework, ServiceConfig, TenantSpec};
use flowmark_datagen::graph::{RmatGen, RmatParams};
use flowmark_datagen::nexmark::{generate, NexmarkConfig};
use flowmark_datagen::points::{Point, PointsConfig, PointsGen};
use flowmark_datagen::terasort::{Record, TeraGen};
use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_engine::faults::check_cancelled;
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::spark::SparkContext;
use flowmark_engine::streaming::{
    run_continuous_checkpointed, run_micro_batch_checkpointed, SourceConfig, StreamJobConfig,
};
use flowmark_engine::{CancelToken, EngineMetrics, FaultConfig, FaultPlan};
use flowmark_serve::{
    BreakerState, HealthSnapshot, JobRequest, JobService, LivenessSlo, Rejected, Resolution,
};
use flowmark_workloads::connected::{self, CcVariant};
use flowmark_workloads::stream::{canonical, nexmark_source, q6_operator, q6_oracle, route_nexmark};
use flowmark_workloads::{grep, kmeans, pagerank, terasort, wordcount};
use serde::{Deserialize, Serialize};

/// Fixed dataset seeds, mirroring the chaos drill and the smoke bench.
const WC_SEED: u64 = 7;
const GREP_SEED: u64 = 3;
const TS_SEED: u64 = 11;
const KM_SEED: u64 = 5;
const PR_SEED: u64 = 21;
const CC_SEED: u64 = 33;

/// The six workload ids, in mix-phase selection order.
const WORKLOADS: [&str; 6] = [
    "wordcount",
    "grep",
    "terasort",
    "kmeans",
    "pagerank",
    "connected",
];

/// splitmix64, the workspace-standard deterministic bit mixer.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + b.abs())
}

/// Soak knobs, settable from the `repro soak` CLI.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Root seed: drives the service's breaker/backoff jitter, every mix
    /// cell's workload choice, and every injected fault plan.
    pub seed: u64,
}

impl SoakConfig {
    /// The default drill at a given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The service the soak supervises: a deliberately tight queue (so
    /// overload sheds are reachable), two workers, a generous default
    /// deadline, and breakers that trip after two consecutive failures.
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            queue_capacity: 4,
            memory_budget_bytes: 8 << 30,
            default_deadline_ms: 120_000,
            retry_budget: 2,
            backoff_base_ms: 1,
            backoff_cap_ms: 8,
            seed: self.seed,
            breaker_threshold: 2,
            // Cooldown 2 jitters to a shed target in [2, 4], so an open
            // breaker always sheds at least one submission before probing.
            breaker_cooldown: 2,
            workers: 2,
        }
    }
}

/// Input sizes and mix length for one soak.
#[derive(Debug, Clone, Copy)]
pub struct SoakScale {
    /// Word Count / Grep corpus lines.
    pub lines: usize,
    /// TeraSort records.
    pub ts_records: usize,
    /// K-Means points.
    pub points: usize,
    /// Page Rank / Connected Components edges.
    pub edges: usize,
    /// Iterations for the iterative workloads.
    pub rounds: u32,
    /// Engine parallelism.
    pub partitions: usize,
    /// Mixed-phase jobs (each a seeded workload × engine cell under
    /// chaos injection).
    pub mix_jobs: usize,
}

impl SoakScale {
    /// CLI scale.
    pub fn full() -> Self {
        Self {
            lines: 20_000,
            ts_records: 20_000,
            points: 12_000,
            edges: 6_000,
            rounds: 6,
            partitions: 8,
            mix_jobs: 36,
        }
    }

    /// Smoke scale: small datasets, few mix jobs, still enough tasks per
    /// cell for the guaranteed kill and straggler to land.
    pub fn smoke() -> Self {
        Self {
            lines: 1_200,
            ts_records: 1_200,
            points: 1_500,
            edges: 1_000,
            rounds: 4,
            partitions: 4,
            mix_jobs: 12,
        }
    }
}

/// Per-engine job ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineTally {
    /// Jobs admitted for this engine.
    pub submitted: u64,
    /// Jobs that ran to completion (oracle-verified for mix cells).
    pub completed: u64,
    /// Jobs whose every attempt failed.
    pub failed: u64,
    /// Jobs torn down by deadline expiry.
    pub timed_out: u64,
    /// Jobs torn down by explicit cancellation.
    pub cancelled: u64,
    /// Submissions shed at admission for this engine.
    pub shed: u64,
}

/// The soak artifact: the ledger, the exercised-mechanism counters, and
/// the service's final health snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoakReport {
    /// Root seed of the drill.
    pub seed: u64,
    /// Engine parallelism inside each job.
    pub partitions: usize,
    /// Mixed-phase jobs run.
    pub mix_jobs: usize,
    /// Staged-engine ledger.
    pub spark: EngineTally,
    /// Pipelined-engine ledger.
    pub flink: EngineTally,
    /// Submissions shed because the bounded queue was full.
    pub shed_queue_full: u64,
    /// Submissions shed because they would overcommit the memory budget.
    pub shed_over_budget: u64,
    /// Submissions shed by an open circuit breaker.
    pub shed_breaker_open: u64,
    /// Jobs that timed out at their deadline.
    pub timeouts: u64,
    /// Jobs cancelled explicitly via their handle.
    pub explicit_cancels: u64,
    /// Jobs that failed at least one whole attempt and then completed.
    pub retries_then_success: u64,
    /// Whether a circuit breaker opened (and was later healed by a probe).
    pub breaker_opened: bool,
    /// Whether a streaming tenant's liveness SLO fired (watermark lag
    /// held above the ceiling and the watchdog failed the job);
    /// `default` keeps pre-existing soak artifacts parseable.
    #[serde(default)]
    pub stream_slo_fired: bool,
    /// Whether consecutive SLO violations tripped the pipelined engine's
    /// circuit breaker (the lag breaker) before a probe healed it;
    /// `default` keeps pre-existing soak artifacts parseable.
    #[serde(default)]
    pub stream_lag_breaker_opened: bool,
    /// Completions whose output diverged from the sequential oracle.
    pub oracle_failures: u64,
    /// Whether `JobService::shutdown` returned, i.e. every worker thread
    /// was joined.
    pub workers_joined: bool,
    /// The service's final health snapshot, taken at shutdown.
    pub health: HealthSnapshot,
}

impl SoakReport {
    /// The exit invariants, as human-readable violations; empty means the
    /// soak passed.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !self.health.drained() {
            v.push(format!(
                "ledger does not balance: {} admitted vs {} resolved ({} queued, {} in flight)",
                self.health.jobs_admitted,
                self.health.jobs_completed
                    + self.health.jobs_failed
                    + self.health.jobs_timed_out
                    + self.health.jobs_cancelled,
                self.health.queue_depth,
                self.health.in_flight,
            ));
        }
        if self.health.budget_in_use_bytes != 0 {
            v.push(format!(
                "memory budget not drained: {} B still reserved",
                self.health.budget_in_use_bytes
            ));
        }
        if self.oracle_failures != 0 {
            v.push(format!(
                "{} completion(s) diverged from the oracle",
                self.oracle_failures
            ));
        }
        if !self.workers_joined {
            v.push("worker threads were not joined".into());
        }
        let must_fire = [
            (self.shed_queue_full, "queue-full shed"),
            (self.shed_over_budget, "over-budget shed"),
            (self.shed_breaker_open, "breaker-open shed"),
            (self.timeouts, "deadline timeout"),
            (self.explicit_cancels, "explicit cancel"),
            (self.retries_then_success, "retry-then-success"),
        ];
        for (count, what) in must_fire {
            if count == 0 {
                v.push(format!("mechanism never exercised: {what}"));
            }
        }
        if !self.breaker_opened {
            v.push("mechanism never exercised: breaker open".into());
        }
        if !self.stream_slo_fired {
            v.push("mechanism never exercised: streaming liveness SLO".into());
        }
        if !self.stream_lag_breaker_opened {
            v.push("mechanism never exercised: lag breaker open".into());
        }
        v
    }

    /// Whether every exit invariant held.
    pub fn passed(&self) -> bool {
        self.violations().is_empty()
    }
}

/// Datasets and oracles shared by every mix-phase job (generated once;
/// attempts clone out of the `Arc`).
struct SoakData {
    wc_lines: Vec<String>,
    wc_expect: std::collections::HashMap<String, u64>,
    needle: String,
    grep_lines: Vec<String>,
    grep_expect: u64,
    ts_records: Vec<Record>,
    ts_expect: Vec<Vec<u8>>,
    km_points: Vec<Point>,
    km_init: Vec<Point>,
    km_expect: Vec<Point>,
    pr_edges: Vec<(u64, u64)>,
    pr_expect: std::collections::HashMap<u64, f64>,
    cc_edges: Vec<(u64, u64)>,
    cc_expect: std::collections::HashMap<u64, u64>,
    rounds: u32,
}

impl SoakData {
    fn generate(scale: SoakScale) -> Self {
        let wc_lines = TextGen::new(TextGenConfig::default(), WC_SEED).lines(scale.lines);
        let wc_expect = wordcount::oracle(&wc_lines);

        let grep_config = TextGenConfig {
            needle_selectivity: 0.05,
            ..TextGenConfig::default()
        };
        let needle = grep_config.needle.clone();
        let grep_lines = TextGen::new(grep_config, GREP_SEED).lines(scale.lines);
        let grep_expect = grep::oracle(&grep_lines, &needle);

        let ts_records = TeraGen::new(TS_SEED).records(scale.ts_records);
        let ts_expect: Vec<Vec<u8>> = terasort::oracle(ts_records.clone())
            .iter()
            .map(|r| r.key().to_vec())
            .collect();

        let mut km_gen = PointsGen::new(
            PointsConfig {
                clusters: 4,
                box_half_width: 100.0,
                sigma: 3.0,
            },
            KM_SEED,
        );
        let km_init: Vec<Point> = km_gen
            .true_centers()
            .iter()
            .map(|c| Point {
                x: c.x + 10.0,
                y: c.y - 8.0,
            })
            .collect();
        let km_points = km_gen.points(scale.points);
        let km_expect = kmeans::oracle(&km_points, km_init.clone(), scale.rounds);

        let mut pr_edges = RmatGen::new(9, RmatParams::default(), PR_SEED).edges(scale.edges);
        pr_edges.dedup();
        let pr_expect = pagerank::oracle(&pr_edges, scale.rounds);

        let cc_edges = RmatGen::new(8, RmatParams::default(), CC_SEED).edges(scale.edges);
        let cc_expect = connected::oracle(&cc_edges);

        Self {
            wc_lines,
            wc_expect,
            needle,
            grep_lines,
            grep_expect,
            ts_records,
            ts_expect,
            km_points,
            km_init,
            km_expect,
            pr_edges,
            pr_expect,
            cc_edges,
            cc_expect,
            rounds: scale.rounds,
        }
    }

    /// Runs one workload on one engine under the given fault plan and the
    /// job's cancel token, verifying against the oracle. `Err` means a
    /// divergence (the message says so) or an engine-fatal error.
    fn run_cell(
        &self,
        workload: usize,
        engine: Framework,
        parts: usize,
        plan: FaultPlan,
        cancel: &CancelToken,
    ) -> Result<(), String> {
        let config = EngineConfig::with_parallelism(parts);
        let name = WORKLOADS[workload % WORKLOADS.len()];
        let diverged = || Err(format!("{name}/{engine:?} diverged from oracle"));
        let ok = match (workload % WORKLOADS.len(), engine) {
            (0, Framework::Spark) => {
                let sc = SparkContext::with_config_faults_cancel(&config, plan, cancel.clone());
                wordcount::run_spark(&sc, self.wc_lines.clone(), parts) == self.wc_expect
            }
            (0, Framework::Flink) => {
                let env = FlinkEnv::with_config_faults_cancel(&config, plan, cancel.clone());
                wordcount::run_flink(&env, self.wc_lines.clone()) == self.wc_expect
            }
            (1, Framework::Spark) => {
                let sc = SparkContext::with_config_faults_cancel(&config, plan, cancel.clone());
                grep::run_spark(&sc, self.grep_lines.clone(), &self.needle, parts)
                    == self.grep_expect
            }
            (1, Framework::Flink) => {
                let env = FlinkEnv::with_config_faults_cancel(&config, plan, cancel.clone());
                grep::run_flink(&env, self.grep_lines.clone(), &self.needle) == self.grep_expect
            }
            (2, fw) => {
                let out = match fw {
                    Framework::Spark => {
                        let sc =
                            SparkContext::with_config_faults_cancel(&config, plan, cancel.clone());
                        terasort::run_spark(&sc, self.ts_records.clone(), parts)
                    }
                    Framework::Flink => {
                        let env =
                            FlinkEnv::with_config_faults_cancel(&config, plan, cancel.clone());
                        terasort::run_flink(&env, self.ts_records.clone(), parts)
                    }
                };
                terasort::validate_output(self.ts_records.len(), &out).is_ok()
                    && out
                        .iter()
                        .flatten()
                        .map(|r| r.key().to_vec())
                        .eq(self.ts_expect.iter().cloned())
            }
            (3, fw) => {
                let out = match fw {
                    Framework::Spark => {
                        let sc =
                            SparkContext::with_config_faults_cancel(&config, plan, cancel.clone());
                        kmeans::run_spark(
                            &sc,
                            self.km_points.clone(),
                            self.km_init.clone(),
                            self.rounds,
                            parts,
                        )
                    }
                    Framework::Flink => {
                        let env =
                            FlinkEnv::with_config_faults_cancel(&config, plan, cancel.clone());
                        kmeans::run_flink(
                            &env,
                            self.km_points.clone(),
                            self.km_init.clone(),
                            self.rounds,
                        )
                    }
                };
                out.len() == self.km_expect.len()
                    && out
                        .iter()
                        .zip(&self.km_expect)
                        .all(|(p, q)| close(p.x, q.x) && close(p.y, q.y))
            }
            (4, fw) => {
                let out = match fw {
                    Framework::Spark => {
                        let sc =
                            SparkContext::with_config_faults_cancel(&config, plan, cancel.clone());
                        pagerank::run_spark(&sc, &self.pr_edges, self.rounds, parts)
                    }
                    Framework::Flink => {
                        let env =
                            FlinkEnv::with_config_faults_cancel(&config, plan, cancel.clone());
                        match pagerank::run_flink(&env, &self.pr_edges, self.rounds, parts) {
                            Ok(out) => out,
                            Err(_) => return Err(format!("{name}/flink: engine-fatal error")),
                        }
                    }
                };
                out.len() == self.pr_expect.len()
                    && out
                        .iter()
                        .all(|(v, r)| close(*r, self.pr_expect.get(v).copied().unwrap_or(f64::NAN)))
            }
            (5, fw) => {
                let out = match fw {
                    Framework::Spark => {
                        let sc =
                            SparkContext::with_config_faults_cancel(&config, plan, cancel.clone());
                        connected::run_spark(&sc, &self.cc_edges, 200, parts)
                    }
                    Framework::Flink => {
                        let env =
                            FlinkEnv::with_config_faults_cancel(&config, plan, cancel.clone());
                        match connected::run_flink(
                            &env,
                            &self.cc_edges,
                            200,
                            parts,
                            CcVariant::Delta,
                            None,
                        ) {
                            Ok(out) => out,
                            Err(_) => return Err(format!("{name}/flink: engine-fatal error")),
                        }
                    }
                };
                out == self.cc_expect
            }
            _ => unreachable!("workload index is taken modulo 6"),
        };
        if ok {
            Ok(())
        } else {
            diverged()
        }
    }
}

/// A job body that sleeps cooperatively until cancelled (by deadline or
/// handle), then tears down through the engine's cancellation point.
fn straggler_body() -> flowmark_serve::JobFn {
    Arc::new(|_, cancel: &CancelToken| {
        cancel.sleep(Duration::from_secs(600));
        check_cancelled(cancel, &EngineMetrics::new(), 0, 0);
        Ok(())
    })
}

fn trivial(name: &str, engine: Framework) -> JobRequest {
    JobRequest::new(
        name,
        engine,
        EngineConfig::default(),
        Arc::new(|_, _| Ok(())),
    )
}

/// Tracks a resolution into the report's ledgers.
fn settle(report: &mut SoakReport, engine: Framework, resolution: &Resolution) {
    let tally = match engine {
        Framework::Spark => &mut report.spark,
        Framework::Flink => &mut report.flink,
    };
    match resolution {
        Resolution::Completed { attempts } => {
            tally.completed += 1;
            if *attempts > 1 {
                report.retries_then_success += 1;
            }
        }
        Resolution::Failed { error, .. } => {
            tally.failed += 1;
            if error.contains("diverged") {
                report.oracle_failures += 1;
            }
        }
        Resolution::TimedOut => {
            tally.timed_out += 1;
            report.timeouts += 1;
        }
        Resolution::Cancelled => {
            tally.cancelled += 1;
            report.explicit_cancels += 1;
        }
    }
}

fn shed(report: &mut SoakReport, engine: Framework, rejected: &Rejected) {
    let tally = match engine {
        Framework::Spark => &mut report.spark,
        Framework::Flink => &mut report.flink,
    };
    tally.shed += 1;
    match rejected {
        Rejected::QueueFull { .. } => report.shed_queue_full += 1,
        Rejected::OverBudget { .. } => report.shed_over_budget += 1,
        Rejected::BreakerOpen { .. } => report.shed_breaker_open += 1,
        Rejected::ShuttingDown { .. } | Rejected::UnknownTenant { .. } => {}
    }
}

/// Spin-waits (cancellation-free, bounded) until `pred` holds on the
/// service's health; used to make phase boundaries deterministic.
fn await_health(service: &JobService, what: &str, pred: impl Fn(&HealthSnapshot) -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if pred(&service.health()) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "soak phase barrier timed out waiting for: {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs the full soak: five mechanism phases, then the seeded mix, then
/// shutdown and the exit ledger.
pub fn run_soak(config: SoakConfig, scale: SoakScale) -> SoakReport {
    let service_cfg = config.service_config();
    let workers = service_cfg.workers;
    let queue_capacity = service_cfg.queue_capacity;
    // Two fair-share lanes: batch jobs bill tenant 0, streaming tenants
    // bill tenant 1, so the long-running lane cannot starve the batch mix.
    let service = JobService::start_fair(
        service_cfg,
        FairShareConfig {
            tenants: vec![TenantSpec::unbounded(0), TenantSpec::unbounded(1)],
            quantum_bytes: FairShareConfig::DEFAULT_QUANTUM_BYTES,
        },
    );
    let data = Arc::new(SoakData::generate(scale));
    let parts = scale.partitions;

    let mut report = SoakReport {
        seed: config.seed,
        partitions: parts,
        mix_jobs: scale.mix_jobs,
        spark: EngineTally::default(),
        flink: EngineTally::default(),
        shed_queue_full: 0,
        shed_over_budget: 0,
        shed_breaker_open: 0,
        timeouts: 0,
        explicit_cancels: 0,
        retries_then_success: 0,
        breaker_opened: false,
        stream_slo_fired: false,
        stream_lag_breaker_opened: false,
        oracle_failures: 0,
        workers_joined: false,
        health: service.health(),
    };

    let submit = |report: &mut SoakReport, service: &JobService, job: JobRequest| {
        let engine = job.engine;
        match service.submit(job) {
            Ok(handle) => {
                match engine {
                    Framework::Spark => report.spark.submitted += 1,
                    Framework::Flink => report.flink.submitted += 1,
                }
                Some(handle)
            }
            Err(rejected) => {
                shed(report, engine, &rejected);
                None
            }
        }
    };

    // --- Phase 1: overload → queue-full shed ------------------------------
    // Stragglers pin every worker, quick jobs fill the bounded queue, and
    // one more submission must shed with `QueueFull`.
    let blockers: Vec<_> = (0..workers)
        .filter_map(|i| {
            let mut job = JobRequest::new(
                format!("blocker-{i}"),
                Framework::Spark,
                EngineConfig::default(),
                straggler_body(),
            );
            job.deadline = Some(Duration::from_secs(300));
            submit(&mut report, &service, job)
        })
        .collect();
    assert_eq!(blockers.len(), workers, "blockers must admit");
    await_health(&service, "workers pinned by blockers", |h| {
        h.in_flight == workers
    });
    let queued: Vec<_> = (0..queue_capacity)
        .filter_map(|i| submit(&mut report, &service, trivial(&format!("queued-{i}"), Framework::Spark)))
        .collect();
    assert_eq!(queued.len(), queue_capacity, "queue must fill exactly");
    let overflow = submit(&mut report, &service, trivial("overflow", Framework::Spark));
    assert!(overflow.is_none(), "overflow submission must shed");
    for b in &blockers {
        b.cancel();
    }
    for b in &blockers {
        let r = b.wait();
        settle(&mut report, Framework::Spark, &r);
    }
    for q in &queued {
        let r = q.wait();
        settle(&mut report, Framework::Spark, &r);
    }

    // --- Phase 2: over-budget shed ----------------------------------------
    let mut fat = trivial("fat", Framework::Flink);
    fat.config.cache_bytes = u64::MAX / 2;
    let fat = submit(&mut report, &service, fat);
    assert!(fat.is_none(), "oversized job must shed");
    assert!(report.shed_over_budget >= 1);

    // --- Phase 3: deadline timeout ----------------------------------------
    let mut slow = JobRequest::new(
        "deadline-straggler",
        Framework::Flink,
        EngineConfig::default(),
        straggler_body(),
    );
    slow.deadline = Some(Duration::from_millis(40));
    if let Some(h) = submit(&mut report, &service, slow) {
        let r = h.wait();
        assert_eq!(r, Resolution::TimedOut, "tiny deadline must expire");
        settle(&mut report, Framework::Flink, &r);
    }
    // Reset the pipelined breaker's consecutive-failure count (a timeout
    // counts as a failure) before the mix phase.
    if let Some(h) = submit(&mut report, &service, trivial("flink-reset", Framework::Flink)) {
        let r = h.wait();
        settle(&mut report, Framework::Flink, &r);
    }

    // --- Phase 4: explicit cancellation -----------------------------------
    if let Some(h) = submit(
        &mut report,
        &service,
        JobRequest::new(
            "cancel-target",
            Framework::Spark,
            EngineConfig::default(),
            straggler_body(),
        ),
    ) {
        await_health(&service, "cancel target claimed", |hs| hs.in_flight >= 1);
        h.cancel();
        let r = h.wait();
        assert_eq!(r, Resolution::Cancelled, "explicit cancel must win");
        settle(&mut report, Framework::Spark, &r);
    }

    // --- Phase 5: breaker open → shed → probe heals ------------------------
    for i in 0..2 {
        let mut bad = JobRequest::new(
            format!("poisoned-{i}"),
            Framework::Spark,
            EngineConfig::default(),
            Arc::new(|_, _| Err("poisoned (injected)".into())),
        );
        bad.retry_budget = Some(0);
        if let Some(h) = submit(&mut report, &service, bad) {
            let r = h.wait();
            settle(&mut report, Framework::Spark, &r);
        }
    }
    report.breaker_opened = service.health().spark_breaker == BreakerState::Open;
    assert!(report.breaker_opened, "two consecutive failures must trip");
    // Shed against the open breaker until the seeded cooldown admits a
    // healthy probe, which closes it.
    let mut probes = 0u32;
    loop {
        probes += 1;
        assert!(probes <= 8, "breaker cooldown must end");
        match submit(&mut report, &service, trivial("probe", Framework::Spark)) {
            Some(h) => {
                let r = h.wait();
                assert_eq!(r, Resolution::Completed { attempts: 1 });
                settle(&mut report, Framework::Spark, &r);
                break;
            }
            None => continue,
        }
    }
    assert_eq!(service.health().spark_breaker, BreakerState::Closed);

    // --- Phase 5b: streaming tenant → liveness SLO → lag breaker ------------
    // A long-running streaming tenant whose upstream watermark stalls: the
    // stream keeps flowing (the frontier advances) but the watermark
    // freezes, so lag grows while the job neither finishes nor fails on
    // its own. Completion-based supervision is blind here — only the
    // liveness SLO's watchdog can catch it. Two consecutive violations on
    // the pipelined engine must trip its circuit breaker (the lag
    // breaker), which a healthy probe then heals before the mix.
    for i in 0..2u64 {
        let stream_seed = splitmix(config.seed ^ 0x57EA_4D00 ^ i);
        let gauge = Arc::new(AtomicU64::new(0));
        let slo = LivenessSlo {
            lag: Arc::clone(&gauge),
            max_lag_ticks: 200,
            grace_polls: 3,
        };
        let mut job = JobRequest::new(
            format!("stream-tenant-{i}"),
            Framework::Flink,
            EngineConfig::default(),
            Arc::new(move |_, cancel: &CancelToken| {
                let src = nexmark_source(
                    generate(stream_seed, 600, &NexmarkConfig::default()),
                    SourceConfig {
                        allowance: 8,
                        watermark_every: 8,
                        stall_watermark_after: Some(150),
                        hold_at_end: true,
                    },
                );
                let cfg = StreamJobConfig {
                    parallelism: 2,
                    lag_gauge: Some(Arc::clone(&gauge)),
                    ..StreamJobConfig::default()
                };
                run_continuous_checkpointed(
                    &src,
                    |_| q6_operator(),
                    route_nexmark,
                    &cfg,
                    &FaultPlan::disabled(),
                    &EngineMetrics::new(),
                    cancel,
                );
                Ok(())
            }),
        )
        .with_tenant(1)
        .with_liveness(slo);
        job.retry_budget = Some(0);
        if let Some(h) = submit(&mut report, &service, job) {
            let r = h.wait();
            if matches!(&r, Resolution::Failed { error, .. } if error.contains("liveness SLO violated"))
            {
                report.stream_slo_fired = true;
            }
            settle(&mut report, Framework::Flink, &r);
        }
    }
    assert!(report.stream_slo_fired, "stalled watermark must violate the SLO");
    report.stream_lag_breaker_opened = service.health().flink_breaker == BreakerState::Open;
    assert!(
        report.stream_lag_breaker_opened,
        "two SLO violations must trip the lag breaker"
    );
    let mut probes = 0u32;
    loop {
        probes += 1;
        assert!(probes <= 8, "lag-breaker cooldown must end");
        match submit(&mut report, &service, trivial("stream-probe", Framework::Flink)) {
            Some(h) => {
                let r = h.wait();
                assert_eq!(r, Resolution::Completed { attempts: 1 });
                settle(&mut report, Framework::Flink, &r);
                break;
            }
            None => continue,
        }
    }
    assert_eq!(service.health().flink_breaker, BreakerState::Closed);

    // --- Phase 6: seeded chaos mix -----------------------------------------
    // Each cell: a seeded workload choice, alternating engines, a fresh
    // chaos fault plan (guaranteed ≥1 kill and ≥1 straggler), verified
    // against the oracle inside the job body. Every other batch-migrated
    // cell upgrades to the corruption preset, so the service also soaks
    // integrity recovery — detected bit rot answered by recompute or
    // checkpoint rejection — under the same admission/retry supervision.
    // Submitted sequentially so the phase never contends with its own
    // queue bound.
    for i in 0..scale.mix_jobs {
        let workload = (splitmix(config.seed ^ (i as u64)) % 6) as usize;
        let engine = if i % 2 == 0 {
            Framework::Spark
        } else {
            Framework::Flink
        };
        let corrupt = workload < 3 && (i / 2) % 2 == 0;
        let plan_seed = config
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(i as u64);
        // Every sixth mix slot is a bounded streaming tenant: a q6
        // windowed aggregate under chaos injection, oracle-verified,
        // billed to the streaming lane and supervised by a (healthy)
        // liveness SLO — the staged-engine slots run the micro-batch
        // runtime, the pipelined ones the continuous runtime.
        if i % 6 == 3 {
            let micro = engine == Framework::Spark;
            let gauge = Arc::new(AtomicU64::new(0));
            let slo = LivenessSlo {
                lag: Arc::clone(&gauge),
                max_lag_ticks: 100_000,
                grace_polls: 3,
            };
            let job = JobRequest::new(
                format!("mix-{i}-stream-q6"),
                engine,
                EngineConfig::default(),
                Arc::new(move |attempt, cancel: &CancelToken| {
                    let seed = plan_seed.wrapping_add(u64::from(attempt) << 32);
                    let src = nexmark_source(
                        generate(seed, 600, &NexmarkConfig::default()),
                        SourceConfig::default(),
                    );
                    let cfg = StreamJobConfig {
                        parallelism: 2,
                        lag_gauge: Some(Arc::clone(&gauge)),
                        ..StreamJobConfig::default()
                    };
                    let plan = FaultPlan::new(FaultConfig::chaos(seed));
                    let metrics = EngineMetrics::new();
                    let out = if micro {
                        run_micro_batch_checkpointed(
                            &src, |_| q6_operator(), route_nexmark, &cfg, &plan, &metrics, cancel,
                        )
                    } else {
                        run_continuous_checkpointed(
                            &src, |_| q6_operator(), route_nexmark, &cfg, &plan, &metrics, cancel,
                        )
                    };
                    if canonical(&out.committed) == q6_oracle(&src) {
                        Ok(())
                    } else {
                        Err("stream-q6 diverged from oracle".into())
                    }
                }),
            )
            .with_tenant(1)
            .with_liveness(slo);
            if let Some(h) = submit(&mut report, &service, job) {
                let r = h.wait();
                settle(&mut report, engine, &r);
            }
            continue;
        }
        let cell_data = Arc::clone(&data);
        let job = JobRequest::new(
            format!("mix-{i}-{}", WORKLOADS[workload]),
            engine,
            EngineConfig::with_parallelism(parts),
            Arc::new(move |attempt, cancel: &CancelToken| {
                let seed = plan_seed.wrapping_add(u64::from(attempt) << 32);
                let plan = FaultPlan::new(if corrupt {
                    FaultConfig::corruption(seed)
                } else {
                    FaultConfig::chaos(seed)
                });
                cell_data.run_cell(workload, engine, parts, plan, cancel)
            }),
        );
        if let Some(h) = submit(&mut report, &service, job) {
            let r = h.wait();
            settle(&mut report, engine, &r);
        }
    }

    // --- Phase 7: retry-then-success (guaranteed) --------------------------
    // The mix can already retry (an engine-fatal plan fails one attempt),
    // but the mechanism must fire for *every* seed, so one job fails its
    // first whole attempt by construction and verifies on the second.
    {
        let cell_data = Arc::clone(&data);
        let job = JobRequest::new(
            "retry-then-success",
            Framework::Spark,
            EngineConfig::with_parallelism(parts),
            Arc::new(move |attempt, cancel: &CancelToken| {
                if attempt == 0 {
                    return Err("first attempt poisoned (injected)".into());
                }
                cell_data.run_cell(0, Framework::Spark, parts, FaultPlan::disabled(), cancel)
            }),
        );
        if let Some(h) = submit(&mut report, &service, job) {
            let r = h.wait();
            assert_eq!(r, Resolution::Completed { attempts: 2 });
            settle(&mut report, Framework::Spark, &r);
        }
    }

    // --- Shutdown: drain, join workers, final ledger -----------------------
    report.health = service.shutdown();
    report.workers_joined = true;
    report
}

/// Renders the soak as a human-readable table.
pub fn render(report: &SoakReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "chaos soak — seed {}, {} mix jobs, {} partitions\n",
        report.seed, report.mix_jobs, report.partitions
    ));
    out.push_str(&format!(
        "{:<8} {:>9} {:>9} {:>7} {:>9} {:>9} {:>5}\n",
        "engine", "submitted", "completed", "failed", "timed-out", "cancelled", "shed"
    ));
    for (name, t) in [("spark", &report.spark), ("flink", &report.flink)] {
        out.push_str(&format!(
            "{:<8} {:>9} {:>9} {:>7} {:>9} {:>9} {:>5}\n",
            name, t.submitted, t.completed, t.failed, t.timed_out, t.cancelled, t.shed
        ));
    }
    out.push_str(&format!(
        "sheds: {} queue-full, {} over-budget, {} breaker-open; \
         {} timeout(s), {} cancel(s), {} retry-then-success, breaker opened: {}\n",
        report.shed_queue_full,
        report.shed_over_budget,
        report.shed_breaker_open,
        report.timeouts,
        report.explicit_cancels,
        report.retries_then_success,
        report.breaker_opened,
    ));
    out.push_str(&format!(
        "streaming: liveness SLO fired: {}, lag breaker opened: {}\n",
        report.stream_slo_fired, report.stream_lag_breaker_opened,
    ));
    out.push_str(&format!(
        "exit ledger: {} admitted = {} completed + {} failed + {} timed-out + {} cancelled; \
         budget in use {} B; oracle failures {}\n",
        report.health.jobs_admitted,
        report.health.jobs_completed,
        report.health.jobs_failed,
        report.health.jobs_timed_out,
        report.health.jobs_cancelled,
        report.health.budget_in_use_bytes,
        report.oracle_failures,
    ));
    match report.violations().as_slice() {
        [] => out.push_str("soak PASSED: every invariant held\n"),
        violations => {
            out.push_str("soak FAILED:\n");
            for v in violations {
                out.push_str(&format!("  - {v}\n"));
            }
        }
    }
    out
}

// The soak itself is exercised (at smoke scale, every invariant asserted)
// by the tier-1 integration test `tests/soak_smoke.rs`.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json_and_renders() {
        let report = SoakReport {
            seed: 7,
            partitions: 4,
            mix_jobs: 12,
            spark: EngineTally {
                submitted: 10,
                completed: 8,
                failed: 2,
                ..Default::default()
            },
            flink: EngineTally {
                submitted: 8,
                completed: 7,
                timed_out: 1,
                ..Default::default()
            },
            shed_queue_full: 1,
            shed_over_budget: 1,
            shed_breaker_open: 1,
            timeouts: 1,
            explicit_cancels: 2,
            retries_then_success: 1,
            breaker_opened: true,
            stream_slo_fired: true,
            stream_lag_breaker_opened: true,
            oracle_failures: 0,
            workers_joined: true,
            health: HealthSnapshot {
                queue_depth: 0,
                in_flight: 0,
                budget_in_use_bytes: 0,
                budget_capacity_bytes: 8 << 30,
                spark_breaker: BreakerState::Closed,
                flink_breaker: BreakerState::Closed,
                jobs_admitted: 18,
                jobs_shed: 3,
                jobs_completed: 15,
                jobs_failed: 2,
                jobs_timed_out: 1,
                jobs_cancelled: 0,
                job_retries: 1,
                breaker_rejections: 1,
                tenants: vec![],
            },
        };
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        let back: SoakReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.seed, 7);
        assert!(back.passed(), "{:?}", back.violations());
        assert!(render(&back).contains("soak PASSED"));
    }

    #[test]
    fn violations_catch_a_lost_job_and_an_unfired_mechanism() {
        let mut health = HealthSnapshot {
            queue_depth: 0,
            in_flight: 0,
            budget_in_use_bytes: 64,
            budget_capacity_bytes: 8 << 30,
            spark_breaker: BreakerState::Closed,
            flink_breaker: BreakerState::Closed,
            jobs_admitted: 5,
            jobs_shed: 0,
            jobs_completed: 4,
            jobs_failed: 0,
            jobs_timed_out: 0,
            jobs_cancelled: 0,
            job_retries: 0,
            breaker_rejections: 0,
            tenants: vec![],
        };
        let report = SoakReport {
            seed: 1,
            partitions: 4,
            mix_jobs: 0,
            spark: EngineTally::default(),
            flink: EngineTally::default(),
            shed_queue_full: 0,
            shed_over_budget: 1,
            shed_breaker_open: 1,
            timeouts: 1,
            explicit_cancels: 1,
            retries_then_success: 1,
            breaker_opened: true,
            stream_slo_fired: true,
            stream_lag_breaker_opened: true,
            oracle_failures: 1,
            workers_joined: true,
            health: health.clone(),
        };
        let v = report.violations();
        assert!(v.iter().any(|m| m.contains("ledger does not balance")));
        assert!(v.iter().any(|m| m.contains("budget not drained")));
        assert!(v.iter().any(|m| m.contains("diverged")));
        assert!(v.iter().any(|m| m.contains("queue-full shed")));
        health.jobs_completed = 5;
        health.budget_in_use_bytes = 0;
        let fixed = SoakReport {
            health,
            oracle_failures: 0,
            shed_queue_full: 1,
            ..report
        };
        assert!(fixed.passed(), "{:?}", fixed.violations());
    }
}
