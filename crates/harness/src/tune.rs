//! `repro tune`: bottleneck-guided auto-tuning of both engines across all
//! six workloads.
//!
//! Each workload/engine cell first measures the out-of-the-box
//! [`EngineConfig::default`], then runs the guided hill-climb (plus a small
//! seeded random sweep for coverage) over the engine-filtered knob space.
//! The winner is the best *verified* full-input trial, so the reported
//! speedup is tuned-vs-default throughput and can never lose to the default
//! it includes. Every trial is checked against the workload's sequential
//! oracle — an unverified trial fails the whole run.

use flowmark_core::config::{EngineConfig, Framework, PartitionerChoice};
use flowmark_tune::search::best_of;
use flowmark_tune::{Budget, ParamSpace, Strategy, Trial, TuneScale, Tuner, Workbench, WorkloadId};
use serde::{Deserialize, Serialize};

/// Tuning-run knobs, settable from the `repro tune` CLI.
#[derive(Debug, Clone, Copy)]
pub struct TuneOptions {
    /// Seed for the random sweep.
    pub seed: u64,
    /// True for the small search space and scale.
    pub smoke: bool,
    /// Trial budget of the guided climb, per cell.
    pub guided_trials: usize,
    /// Seeded random draws per cell, on top of the climb.
    pub random_samples: usize,
}

impl TuneOptions {
    /// The smoke drill: small space, short climb.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            smoke: true,
            guided_trials: 6,
            random_samples: 2,
        }
    }

    /// The full CLI run: denser space, longer climb, wider sweep.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            smoke: false,
            guided_trials: 10,
            random_samples: 6,
        }
    }
}

/// One tuned workload/engine cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneCell {
    /// Workload id.
    pub workload: String,
    /// Engine id: `spark` (staged) or `flink` (pipelined).
    pub engine: String,
    /// The winner: best verified full-input trial (default included).
    pub best: Trial,
    /// Throughput of the default config, records/s.
    pub default_throughput: f64,
    /// Wall-clock seconds of the default config.
    pub default_seconds: f64,
    /// `best.throughput / default_throughput` — ≥ 1.0 by construction.
    pub speedup: f64,
    /// Configs actually executed (cache misses).
    pub executions: u64,
    /// Trials replayed from the run cache.
    pub cache_hits: u64,
    /// True when every trial matched the sequential oracle.
    pub all_verified: bool,
    /// Full trajectory, evaluation order: default first, then the climb,
    /// then the random sweep.
    pub trials: Vec<Trial>,
}

/// A full tuning run: all twelve cells plus the knobs that produced them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneReport {
    /// Seed of the random sweeps.
    pub seed: u64,
    /// True when run at smoke scale.
    pub smoke: bool,
    /// All cells, workload-major, spark before flink.
    pub cells: Vec<TuneCell>,
}

/// Tunes one workload on one engine.
pub fn run_tune_cell(
    workload: WorkloadId,
    engine: Framework,
    scale: TuneScale,
    opts: &TuneOptions,
) -> TuneCell {
    let space = if opts.smoke {
        ParamSpace::smoke()
    } else {
        ParamSpace::full()
    }
    .for_engine(engine);
    let mut bench = Workbench::new(workload, engine, scale);
    let mut tuner = Tuner::new();

    let default_trial = tuner.evaluate(&EngineConfig::default(), Budget::FULL, &mut bench);
    let mut trials = vec![default_trial.clone()];
    let guided = tuner.run(
        &Strategy::Guided {
            max_trials: opts.guided_trials,
        },
        &space,
        &mut bench,
    );
    trials.extend(guided.trials);
    if opts.random_samples > 0 {
        let random = tuner.run(
            &Strategy::Random {
                samples: opts.random_samples,
                seed: opts.seed,
            },
            &space,
            &mut bench,
        );
        trials.extend(random.trials);
    }

    let best = best_of(&trials).expect("the default trial always exists");
    TuneCell {
        workload: workload.name().into(),
        engine: engine.name().to_lowercase(),
        speedup: best.throughput / default_trial.throughput.max(1e-12),
        default_throughput: default_trial.throughput,
        default_seconds: default_trial.seconds,
        executions: tuner.executions(),
        cache_hits: tuner.cache_hits(),
        all_verified: trials.iter().all(|t| t.verified),
        best,
        trials,
    }
}

/// Tunes all six workloads on both engines.
pub fn run_tune(opts: &TuneOptions, scale: TuneScale) -> TuneReport {
    let mut cells = Vec::new();
    for workload in WorkloadId::ALL {
        for engine in Framework::BOTH {
            cells.push(run_tune_cell(workload, engine, scale, opts));
        }
    }
    TuneReport {
        seed: opts.seed,
        smoke: opts.smoke,
        cells,
    }
}

fn knobs(c: &EngineConfig) -> String {
    format!(
        "p={} net={} sort={} spill={} combine={} part={}",
        c.parallelism,
        c.network_buffer_records,
        c.combine_buffer_records,
        c.spill_run_budget,
        if c.combine_enabled { "on" } else { "off" },
        match c.partitioner {
            PartitionerChoice::Hash => "hash",
            PartitionerChoice::Range => "range",
        }
    )
}

/// Renders the run as a human-readable table plus, per cell, the verdict
/// trajectory the climb followed.
pub fn render(report: &TuneReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "auto-tune — seed {}, {} scale\n",
        report.seed,
        if report.smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!(
        "{:<10} {:<6} {:>6} {:>5} {:>5} {:>9} {:>9} {:>8}  {}\n",
        "workload", "engine", "trials", "exec", "hits", "default-s", "tuned-s", "speedup", "best config"
    ));
    for c in &report.cells {
        out.push_str(&format!(
            "{:<10} {:<6} {:>6} {:>5} {:>5} {:>9.3} {:>9.3} {:>7.2}x  {}{}\n",
            c.workload,
            c.engine,
            c.trials.len(),
            c.executions,
            c.cache_hits,
            c.default_seconds,
            c.best.seconds,
            c.speedup,
            knobs(&c.best.config),
            if c.all_verified { "" } else { "  [DIVERGED]" },
        ));
    }
    out.push_str("\nclimb trajectories (verdict after each trial):\n");
    for c in &report.cells {
        let path: Vec<String> = c
            .trials
            .iter()
            .map(|t| {
                format!(
                    "{}{}",
                    t.bottleneck.name(),
                    if t.cached { "*" } else { "" }
                )
            })
            .collect();
        out.push_str(&format!(
            "  {:<10} {:<6} {}\n",
            c.workload,
            c.engine,
            path.join(" -> ")
        ));
    }
    out.push_str("  (* = replayed from the run cache, not re-executed)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TuneScale {
        TuneScale {
            lines: 300,
            ts_records: 300,
            points: 300,
            edges: 300,
            rounds: 2,
        }
    }

    #[test]
    fn cell_includes_the_default_so_speedup_is_at_least_one() {
        let opts = TuneOptions {
            seed: 1,
            smoke: true,
            guided_trials: 3,
            random_samples: 1,
        };
        let cell = run_tune_cell(WorkloadId::Grep, Framework::Spark, tiny(), &opts);
        assert!(cell.all_verified);
        assert!(cell.speedup >= 1.0, "speedup {} lost to the default", cell.speedup);
        assert!(cell.best.verified && cell.best.budget_fraction >= 1.0);
        assert!(!cell.trials.is_empty());
    }

    #[test]
    fn report_round_trips_through_json_and_renders() {
        let opts = TuneOptions {
            seed: 1,
            smoke: true,
            guided_trials: 2,
            random_samples: 0,
        };
        let cell = run_tune_cell(WorkloadId::WordCount, Framework::Flink, tiny(), &opts);
        let report = TuneReport {
            seed: 1,
            smoke: true,
            cells: vec![cell],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: TuneReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.cells[0].workload, "wordcount");
        let text = render(&back);
        assert!(text.contains("wordcount"));
        assert!(text.contains("speedup"));
    }
}
