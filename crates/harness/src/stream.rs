//! `repro stream` / `repro chaos --streaming`: the event-time streaming
//! drill.
//!
//! Two Nexmark-style queries (q3 filter-join, q6 windowed aggregate) run
//! on both checkpointed runtimes (micro-batch and continuous), clean and
//! *armed* — under a deterministic fault plan guaranteeing at least one
//! task kill, one straggler, one in-flight corruption and one rotten
//! checkpoint snapshot. Every cell is verified byte-for-byte (after
//! canonical sorting) against the sequential oracle, so a passing armed
//! cell is an end-to-end exactly-once proof: the fault was injected,
//! detected, recovered from, and the recovered output is identical to the
//! fault-free answer. The latency grid on top answers the paper's §VIII
//! question — micro-batch latency floors at ~half the batch interval on
//! the logical clock, continuous stays at processing cost.

use flowmark_datagen::nexmark::{generate, NexmarkConfig, NexmarkEvent};
use flowmark_engine::faults::{install_quiet_hook, CancelToken, FaultConfig, FaultPlan};
use flowmark_engine::metrics::{EngineMetrics, RecoverySnapshot};
use flowmark_engine::streaming::runtime::{
    run_continuous_checkpointed, run_micro_batch_checkpointed, StreamJobConfig, StreamRunResult,
};
use flowmark_engine::streaming::source::shuffle_bounded;
use flowmark_engine::streaming::window::StreamOperator;
use flowmark_engine::streaming::{run_continuous, SourceConfig, StreamSource};
use flowmark_workloads::stream::{
    canonical, nexmark_source, q3_oracle, q6_operator, q6_oracle, route_nexmark, Q3Join,
};
use serde::{Deserialize, Serialize};

/// Input sizes for one streaming drill.
#[derive(Debug, Clone, Copy)]
pub struct StreamScale {
    /// Nexmark events per query dataset.
    pub events: usize,
    /// Runtime task parallelism.
    pub parallelism: usize,
    /// Checkpoint interval (records between barriers) for armed cells.
    pub checkpoint_interval: u64,
}

impl StreamScale {
    /// CLI scale.
    pub fn full() -> Self {
        Self {
            events: 10_000,
            parallelism: 4,
            checkpoint_interval: 8,
        }
    }

    /// Test scale: small streams, still enough barriers for the
    /// guaranteed kill, corruption and rotten checkpoint to land.
    pub fn smoke() -> Self {
        Self {
            events: 2_000,
            parallelism: 3,
            checkpoint_interval: 4,
        }
    }
}

/// One point of the §VIII latency grid: the micro-batch latency
/// distribution at one batch interval, on the logical clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Discretization interval in ticks.
    pub batch_ticks: u64,
    /// Median event latency in ticks (arrival to batch completion).
    pub p50_ticks: u64,
    /// 99th-percentile event latency in ticks.
    pub p99_ticks: u64,
}

/// One drilled cell: a query on one runtime, clean or armed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamCell {
    /// Query id: `q3` (filter-join) or `q6` (windowed aggregate).
    pub query: String,
    /// Runtime id: `micro-batch` or `continuous`.
    pub runtime: String,
    /// True when the cell ran under the corruption fault plan.
    pub armed: bool,
    /// True when the committed output matched the sequential oracle.
    pub verified: bool,
    /// Results committed through the transactional sink.
    pub committed: u64,
    /// Highest committed epoch.
    pub epochs_committed: u64,
    /// Window results fired by watermark passage.
    pub windows_emitted: u64,
    /// Events dropped as late (behind the watermark on arrival).
    pub late_events_dropped: u64,
    /// Out-of-order (but in-allowance) arrivals observed.
    pub watermark_lag_events: u64,
    /// Event slabs folded batch-at-a-time by the transport (0 means the
    /// cell ran the per-event path); `default` keeps pre-existing JSON
    /// artifacts parseable.
    #[serde(default)]
    pub stream_batches: u64,
    /// The engine's recovery counters after the run.
    pub recovery: RecoverySnapshot,
}

/// A full streaming drill: the latency grid plus every cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamReport {
    /// Root seed; every cell derives its own plan seed from it.
    pub seed: u64,
    /// Events per query dataset.
    pub events: usize,
    /// Runtime task parallelism.
    pub parallelism: usize,
    /// §VIII latency grid (empty for `chaos --streaming`, which drills
    /// recovery only).
    pub latency: Vec<LatencyPoint>,
    /// Continuous-model mean latency in ticks, the grid's floor.
    pub continuous_mean_ticks: f64,
    /// All drilled cells, query-major, micro-batch before continuous,
    /// clean before armed.
    pub cells: Vec<StreamCell>,
}

impl StreamReport {
    /// Checks the drill's hard invariants, returning one human-readable
    /// line per violation (empty means the drill passed).
    ///
    /// Every cell must match the oracle. Every *armed* cell must prove
    /// the whole detect-and-recover chain ran: the guaranteed kill was
    /// injected, a region restarted, the guaranteed corruption was
    /// detected, and a rotten checkpoint snapshot was rejected. q6 cells
    /// must actually have fired windows, and at least one armed cell must
    /// have restored operator state from a digest-verified snapshot.
    pub fn violations(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for c in &self.cells {
            let id = format!(
                "{}-{}{}",
                c.query,
                c.runtime,
                if c.armed { "-armed" } else { "" }
            );
            if !c.verified {
                bad.push(format!("{id}: committed output diverged from the oracle"));
            }
            if c.committed == 0 {
                bad.push(format!("{id}: nothing was committed"));
            }
            if c.query == "q6" && c.windows_emitted == 0 {
                bad.push(format!("{id}: no windows fired"));
            }
            if c.armed {
                let r = &c.recovery;
                if r.injected_failures == 0 {
                    bad.push(format!("{id}: armed kill was never injected"));
                }
                if r.region_restarts == 0 {
                    bad.push(format!("{id}: no region restart recovered the kill"));
                }
                if r.corruptions_detected == 0 {
                    bad.push(format!("{id}: armed corruption was never detected"));
                }
                if r.checkpoints_rejected == 0 {
                    bad.push(format!("{id}: no rotten checkpoint snapshot was rejected"));
                }
            }
        }
        let restored: u64 = self
            .cells
            .iter()
            .filter(|c| c.armed)
            .map(|c| c.recovery.stream_checkpoints_restored)
            .sum();
        if self.cells.iter().any(|c| c.armed) && restored == 0 {
            bad.push("no armed cell restored state from a verified checkpoint".into());
        }
        bad
    }
}

/// Derives one cell's plan seed from the root seed, mirroring the batch
/// chaos drill, so every cell's injections are independent and the whole
/// drill replays bit-for-bit.
fn cell_seed(seed: u64, cell: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9).wrapping_add(cell)
}

/// The armed plan: the corruption preset (guaranteed kill + straggler +
/// in-flight corruption + rotten checkpoint) with the drill's checkpoint
/// interval.
fn armed_plan(seed: u64, interval: u64) -> FaultPlan {
    let mut cfg = FaultConfig::corruption(seed);
    cfg.checkpoint_interval_records = interval;
    FaultPlan::new(cfg)
}

/// The clean plan still checkpoints (the sink commits per epoch) but
/// injects nothing.
fn clean_plan(interval: u64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        checkpoint_interval_records: interval,
        ..FaultConfig::default()
    })
}

/// Builds one query's dataset: a generated Nexmark stream with bounded
/// disorder (in-allowance, so nothing is dropped — the runtimes see lag,
/// the oracle sees the same survivors).
fn dataset(seed: u64, events: usize) -> StreamSource<NexmarkEvent> {
    let mut src = nexmark_source(
        generate(seed, events, &NexmarkConfig::default()),
        SourceConfig {
            allowance: 32,
            watermark_every: 16,
            stall_watermark_after: None,
            hold_at_end: false,
        },
    );
    src.events = shuffle_bounded(src.events, seed ^ 0xD150_4DE4, 6);
    src
}

fn run_cell<Op, F>(
    query: &str,
    runtime: &str,
    micro: bool,
    armed: bool,
    src: &StreamSource<NexmarkEvent>,
    make_op: F,
    cfg: &StreamJobConfig,
    plan: &FaultPlan,
    verify: impl Fn(&StreamRunResult<Op::Out>) -> bool,
) -> StreamCell
where
    Op: StreamOperator<In = NexmarkEvent>,
    F: Fn(usize) -> Op + Sync,
{
    let metrics = EngineMetrics::new();
    let cancel = CancelToken::new();
    let out = if micro {
        run_micro_batch_checkpointed(src, make_op, route_nexmark, cfg, plan, &metrics, &cancel)
    } else {
        run_continuous_checkpointed(src, make_op, route_nexmark, cfg, plan, &metrics, &cancel)
    };
    StreamCell {
        query: query.into(),
        runtime: runtime.into(),
        armed,
        verified: verify(&out),
        committed: out.committed.len() as u64,
        epochs_committed: out.epochs_committed,
        windows_emitted: metrics.windows_emitted(),
        late_events_dropped: metrics.late_events_dropped(),
        watermark_lag_events: metrics.watermark_lag_events(),
        stream_batches: metrics.stream_batches(),
        recovery: metrics.recovery(),
    }
}

/// Runs the four query × runtime cells once under `plan`, appending to
/// `cells`.
fn drill_round(
    cells: &mut Vec<StreamCell>,
    armed: bool,
    seed: u64,
    scale: StreamScale,
    q3_src: &StreamSource<NexmarkEvent>,
    q6_src: &StreamSource<NexmarkEvent>,
) {
    let cfg = StreamJobConfig {
        parallelism: scale.parallelism,
        ..StreamJobConfig::default()
    };
    let q3_expect = q3_oracle(q3_src);
    let q6_expect = q6_oracle(q6_src);
    let plan = |cell: u64| {
        if armed {
            armed_plan(cell_seed(seed, cell), scale.checkpoint_interval)
        } else {
            clean_plan(scale.checkpoint_interval)
        }
    };
    for (cell, micro) in [(0u64, true), (1, false)] {
        cells.push(run_cell(
            "q3",
            if micro { "micro-batch" } else { "continuous" },
            micro,
            armed,
            q3_src,
            |_| Q3Join::new(),
            &cfg,
            &plan(cell),
            |out| canonical(&out.committed) == q3_expect,
        ));
    }
    for (cell, micro) in [(2u64, true), (3, false)] {
        cells.push(run_cell(
            "q6",
            if micro { "micro-batch" } else { "continuous" },
            micro,
            armed,
            q6_src,
            |_| q6_operator(),
            &cfg,
            &plan(cell),
            |out| canonical(&out.committed) == q6_expect,
        ));
    }
}

/// Runs the full drill: the §VIII latency grid, then every query ×
/// runtime cell clean and armed.
pub fn run_stream(seed: u64, scale: StreamScale) -> StreamReport {
    install_quiet_hook();
    let mut report = run_stream_chaos(seed, scale);

    // Clean cells, prepended so the report reads clean-then-armed.
    let q3_src = dataset(seed ^ 0x51_33, scale.events);
    let q6_src = dataset(seed ^ 0x51_66, scale.events);
    let mut clean = Vec::new();
    drill_round(&mut clean, false, seed, scale, &q3_src, &q6_src);
    clean.append(&mut report.cells);
    report.cells = clean;

    // Latency grid on the logical clock: one event every 2 ticks,
    // micro-batch intervals from aggressive to lazy.
    let n = scale.events as u64;
    for batch_ticks in [32u64, 128, 512] {
        let mut lat =
            flowmark_engine::streaming::model::micro_batch_latency_ticks(n, 2, batch_ticks);
        lat.sort_unstable();
        report.latency.push(LatencyPoint {
            batch_ticks,
            p50_ticks: lat[lat.len() / 2],
            p99_ticks: lat[(lat.len() * 99) / 100],
        });
    }
    let events: Vec<u64> = (0..n).collect();
    report.continuous_mean_ticks = run_continuous(events, 2, |x| *x).latency_ticks.mean;
    report
}

/// Runs the armed cells only — the `repro chaos --streaming` drill.
pub fn run_stream_chaos(seed: u64, scale: StreamScale) -> StreamReport {
    install_quiet_hook();
    let q3_src = dataset(seed ^ 0xA3_33, scale.events);
    let q6_src = dataset(seed ^ 0xA3_66, scale.events);
    let mut cells = Vec::new();
    drill_round(&mut cells, true, seed, scale, &q3_src, &q6_src);
    StreamReport {
        seed,
        events: scale.events,
        parallelism: scale.parallelism,
        latency: Vec::new(),
        continuous_mean_ticks: 1.0,
        cells,
    }
}

/// Renders the drill as a human-readable table.
pub fn render(report: &StreamReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "streaming drill — seed {}, {} events, parallelism {}\n",
        report.seed, report.events, report.parallelism
    ));
    if !report.latency.is_empty() {
        out.push_str(&format!(
            "latency (logical ticks): continuous mean {:.1}\n",
            report.continuous_mean_ticks
        ));
        for p in &report.latency {
            out.push_str(&format!(
                "  micro-batch {:>4}-tick interval: p50 {:>4}, p99 {:>4}\n",
                p.batch_ticks, p.p50_ticks, p.p99_ticks
            ));
        }
    }
    out.push_str(&format!(
        "{:<4} {:<11} {:>5} {:>9} {:>7} {:>8} {:>5} {:>6} {:>8} {:>7} {:>8} {:>8} {:>8}\n",
        "qry", "runtime", "armed", "committed", "epochs", "windows", "late", "lagged",
        "kills", "restart", "corrupt", "ckpt-rej", "verified"
    ));
    for c in &report.cells {
        let r = &c.recovery;
        out.push_str(&format!(
            "{:<4} {:<11} {:>5} {:>9} {:>7} {:>8} {:>5} {:>6} {:>8} {:>7} {:>8} {:>8} {:>8}\n",
            c.query,
            c.runtime,
            c.armed,
            c.committed,
            c.epochs_committed,
            c.windows_emitted,
            c.late_events_dropped,
            c.watermark_lag_events,
            r.injected_failures,
            r.region_restarts,
            r.corruptions_detected,
            r.checkpoints_rejected,
            c.verified,
        ));
    }
    let armed: Vec<&StreamCell> = report.cells.iter().filter(|c| c.armed).collect();
    if !armed.is_empty() {
        let sum = |f: fn(&RecoverySnapshot) -> u64| -> u64 {
            armed.iter().map(|c| f(&c.recovery)).sum()
        };
        out.push_str(&format!(
            "armed cells survived {} kill(s) via {} region restart(s); \
             {} corruption(s) detected, {} rotten checkpoint(s) rejected, \
             {} snapshot(s) restored verified\n",
            sum(|r| r.injected_failures),
            sum(|r| r.region_restarts),
            sum(|r| r.corruptions_detected),
            sum(|r| r.checkpoints_rejected),
            sum(|r| r.stream_checkpoints_restored),
        ));
    }
    out
}

// The drill itself is exercised (at smoke scale, every cell asserted) by
// the tier-1 integration test `tests/stream_smoke.rs`.

#[cfg(test)]
mod tests {
    use super::*;

    fn mock_cell(query: &str, armed: bool, recovery: RecoverySnapshot) -> StreamCell {
        StreamCell {
            query: query.into(),
            runtime: "continuous".into(),
            armed,
            verified: true,
            committed: 10,
            epochs_committed: 5,
            windows_emitted: if query == "q6" { 8 } else { 0 },
            late_events_dropped: 0,
            watermark_lag_events: 3,
            stream_batches: 4,
            recovery,
        }
    }

    #[test]
    fn violations_require_the_full_detect_and_recover_chain() {
        let proven = RecoverySnapshot {
            injected_failures: 1,
            region_restarts: 1,
            corruptions_detected: 1,
            checkpoints_rejected: 1,
            stream_checkpoints_restored: 1,
            ..Default::default()
        };
        let report = StreamReport {
            seed: 7,
            events: 2_000,
            parallelism: 3,
            latency: Vec::new(),
            continuous_mean_ticks: 1.0,
            cells: vec![
                mock_cell("q3", false, RecoverySnapshot::default()),
                mock_cell("q6", true, proven),
            ],
        };
        assert!(report.violations().is_empty(), "{:?}", report.violations());

        // An armed cell that never rejected a rotten snapshot fails.
        let mut bad = report.clone();
        bad.cells[1].recovery.checkpoints_rejected = 0;
        assert!(bad
            .violations()
            .iter()
            .any(|v| v.contains("rotten checkpoint")));

        // A q6 cell with no fired windows fails even clean.
        let mut idle = report.clone();
        idle.cells[1].windows_emitted = 0;
        assert!(idle.violations().iter().any(|v| v.contains("no windows")));

        // Restores are an aggregate expectation across armed cells.
        let mut unrestored = report;
        unrestored.cells[1].recovery.stream_checkpoints_restored = 0;
        assert!(unrestored
            .violations()
            .iter()
            .any(|v| v.contains("restored")));
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = StreamReport {
            seed: 7,
            events: 2_000,
            parallelism: 3,
            latency: vec![LatencyPoint {
                batch_ticks: 128,
                p50_ticks: 64,
                p99_ticks: 127,
            }],
            continuous_mean_ticks: 1.0,
            cells: vec![mock_cell("q6", true, RecoverySnapshot::default())],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: StreamReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.latency[0].p99_ticks, 127);
        assert!(render(&back).contains("q6"));
    }
}
