//! Typed harness errors.
//!
//! The experiment runners and the `repro` binary used to `.expect()` their
//! way through config validation and filesystem writes, so a bad `--out`
//! path or a malformed experiment config died with a panic and a
//! backtrace. Every fallible harness path now threads a [`HarnessError`]
//! up to `main`, which prints the message and exits non-zero.

use flowmark_sim::SimError;

/// Any error a harness entry point can surface.
#[derive(Debug)]
pub enum HarnessError {
    /// An experiment preset failed simulator validation.
    Sim(SimError),
    /// A filesystem read/write failed; `path` says where.
    Io {
        /// The path the operation targeted.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A report failed to (de)serialize.
    Json(serde_json::Error),
    /// A CLI flag's value did not parse.
    BadFlag {
        /// The flag name, e.g. `--seed`.
        flag: String,
        /// The rejected value.
        value: String,
    },
    /// The command line itself was malformed.
    Usage(String),
}

impl HarnessError {
    /// Attaches path context to an I/O error.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        Self::Io {
            path: path.into(),
            source,
        }
    }

    /// The process exit code this error maps to: `2` for operator mistakes
    /// (bad flags, unknown commands), `1` for everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            Self::BadFlag { .. } | Self::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Sim(e) => write!(f, "experiment config rejected: {e}"),
            Self::Io { path, source } => write!(f, "{path}: {source}"),
            Self::Json(e) => write!(f, "report serialization failed: {e}"),
            Self::BadFlag { flag, value } => write!(f, "bad {flag}: '{value}'"),
            Self::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Sim(e) => Some(e),
            Self::Io { source, .. } => Some(source),
            Self::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for HarnessError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<serde_json::Error> for HarnessError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_exit_codes() {
        let bad = HarnessError::BadFlag {
            flag: "--seed".into(),
            value: "xyz".into(),
        };
        assert_eq!(bad.to_string(), "bad --seed: 'xyz'");
        assert_eq!(bad.exit_code(), 2);
        let io = HarnessError::io(
            "/no/such/dir/out.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "missing"),
        );
        assert!(io.to_string().starts_with("/no/such/dir/out.json: "));
        assert_eq!(io.exit_code(), 1);
    }
}
