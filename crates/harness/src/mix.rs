//! `repro soak --mix-concurrent N`: the multi-tenant scheduling bench.
//!
//! Drives hundreds of in-flight jobs through [`flowmark_serve::JobService`]
//! twice with identical workloads, seeds and oracles:
//!
//! * **baseline** — the pre-PR8 stack: FIFO admission (one unbounded
//!   tenant), per-job thread spawning ([`ExecutorMode::PerJob`]), no
//!   cross-job reuse;
//! * **fair** — deficit-round-robin admission across seeded tenants,
//!   the shared work-stealing core pool ([`ExecutorMode::SharedPool`]),
//!   and the checksum-verified cross-job fragment cache charged against
//!   the service's own memory budget.
//!
//! Every completion is oracle-verified in both passes; the report gates
//! on throughput (`jobs/sec` speedup), on at least one task steal, and
//! on at least one checksum-verified fragment-cache hit — so the shared
//! pool and the cache provably fired, not just compiled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use flowmark_core::config::{
    EngineConfig, ExecutorMode, FairShareConfig, Framework, ServiceConfig, TenantSpec,
};
use flowmark_datagen::terasort::{Record, TeraGen};
use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::spark::SparkContext;
use flowmark_engine::FaultPlan;
use flowmark_sched::{FragmentCache, FragmentKey};
use flowmark_serve::{HealthSnapshot, JobRequest, JobService, Resolution};
use flowmark_workloads::{grep, terasort, wordcount};
use serde::{Deserialize, Serialize};

/// Dataset seeds, mirroring the soak drill.
const WC_SEED: u64 = 7;
const GREP_SEED: u64 = 3;
const TS_SEED: u64 = 11;

/// The three mixed workloads. Word Count and TeraSort route through the
/// batch exchange and are fragment-cacheable; Grep is pure scheduling
/// load with nothing to cache.
const WORKLOADS: [&str; 3] = ["wordcount", "grep", "terasort"];

/// FNV-1a, used as the plan-prefix fingerprint of a fragment key.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fragments are engine-local: both engines produce the same logical
/// rows at the exchange, but the key must not alias across runtimes.
fn engine_tag(engine: Framework) -> u64 {
    match engine {
        Framework::Spark => 0x5354_4147_4544, // "STAGED"
        Framework::Flink => 0x5049_5045_4c4e, // "PIPELN"
    }
}

/// Input sizes and concurrency for one mix-concurrent run.
#[derive(Debug, Clone, Copy)]
pub struct MixScale {
    /// Jobs submitted per pass (all admitted up front, so also the
    /// in-flight high-water mark).
    pub jobs: usize,
    /// Seeded tenants in the fair pass.
    pub tenants: u32,
    /// Word Count / Grep corpus lines.
    pub lines: usize,
    /// TeraSort records.
    pub ts_records: usize,
    /// Engine parallelism inside each job.
    pub partitions: usize,
    /// Service worker threads draining the queue.
    pub workers: usize,
}

impl MixScale {
    /// CLI scale at a given job count (the `--mix-concurrent N` value).
    pub fn full(jobs: usize) -> Self {
        Self {
            jobs,
            tenants: 4,
            lines: 8_000,
            ts_records: 8_000,
            partitions: 4,
            workers: 8,
        }
    }

    /// Smoke scale: enough jobs for steals and cache hits to land, small
    /// enough for CI.
    pub fn smoke() -> Self {
        Self {
            jobs: 24,
            tenants: 4,
            lines: 600,
            ts_records: 600,
            partitions: 2,
            workers: 4,
        }
    }
}

/// Datasets and oracles shared by every job (generated once; job bodies
/// clone out of the `Arc`).
struct MixData {
    wc_lines: Vec<String>,
    wc_expect: std::collections::HashMap<String, u64>,
    needle: String,
    grep_lines: Vec<String>,
    grep_expect: u64,
    ts_records: Vec<Record>,
    ts_expect: Vec<Vec<u8>>,
}

impl MixData {
    fn generate(scale: MixScale) -> Self {
        let wc_lines = TextGen::new(TextGenConfig::default(), WC_SEED).lines(scale.lines);
        let wc_expect = wordcount::oracle(&wc_lines);

        let grep_config = TextGenConfig {
            needle_selectivity: 0.05,
            ..TextGenConfig::default()
        };
        let needle = grep_config.needle.clone();
        let grep_lines = TextGen::new(grep_config, GREP_SEED).lines(scale.lines);
        let grep_expect = grep::oracle(&grep_lines, &needle);

        let ts_records = TeraGen::new(TS_SEED).records(scale.ts_records);
        let ts_expect: Vec<Vec<u8>> = terasort::oracle(ts_records.clone())
            .iter()
            .map(|r| r.key().to_vec())
            .collect();

        Self {
            wc_lines,
            wc_expect,
            needle,
            grep_lines,
            grep_expect,
            ts_records,
            ts_expect,
        }
    }
}

/// Counters a pass accumulates across its job bodies.
#[derive(Default)]
struct PassShared {
    latencies_ms: Mutex<Vec<f64>>,
    tasks_stolen: AtomicU64,
    engine_queue_wait_micros: AtomicU64,
    fragment_cache_hits: AtomicU64,
}

/// One pass of the A/B drill, serialized into `BENCH_PR8.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PassStats {
    /// `"fifo-per-job"` or `"fair-shared-pool"`.
    pub label: String,
    /// Jobs submitted (and admitted — the queue is sized for all).
    pub jobs: usize,
    /// Jobs that ran to oracle-verified completion.
    pub completed: u64,
    /// Jobs whose attempt failed (oracle divergence or engine error).
    pub failed: u64,
    /// Wall-clock for the whole pass: first submit to last resolution.
    pub wall_seconds: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Median submit→resolution latency, milliseconds.
    pub p50_latency_ms: f64,
    /// Tail submit→resolution latency, milliseconds.
    pub p99_latency_ms: f64,
    /// Tasks executed by a pool worker other than the one they were
    /// queued on, summed over every job's engine metrics.
    pub tasks_stolen: u64,
    /// Microseconds stage tasks spent queued in the shared pool.
    pub engine_queue_wait_micros: u64,
    /// Checksum-verified fragment-cache hits, summed over job metrics.
    pub fragment_cache_hits: u64,
    /// The service's final health snapshot (per-tenant ledgers included).
    pub health: HealthSnapshot,
}

/// Fragment-cache counters of the fair pass.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CacheReport {
    /// Lookups that found a fragment.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Fragments stored.
    pub insertions: u64,
    /// Fragments evicted under byte pressure.
    pub evictions: u64,
    /// Fragments dropped because re-verification failed.
    pub invalidations: u64,
    /// Peak resident bytes observed at pass end (before the cache was
    /// cleared back into the service budget).
    pub bytes_used: u64,
}

/// The mix-concurrent artifact: both passes plus the derived gates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixReport {
    /// Root seed (service jitter only — datasets use fixed seeds).
    pub seed: u64,
    /// Jobs per pass.
    pub jobs: usize,
    /// Seeded tenants in the fair pass.
    pub tenants: u32,
    /// Engine parallelism inside each job.
    pub partitions: usize,
    /// Service workers.
    pub workers: usize,
    /// FIFO + per-job threads + no cache.
    pub baseline: PassStats,
    /// DRR + shared pool + fragment cache.
    pub fair: PassStats,
    /// `fair.jobs_per_sec / baseline.jobs_per_sec`.
    pub speedup: f64,
    /// Fair-pass fragment-cache counters.
    pub cache: CacheReport,
}

impl MixReport {
    /// Exit invariants as human-readable violations; empty means the run
    /// passed. `min_speedup` is the throughput gate (1.3 for the CLI
    /// artifact; 0.0 for the timing-free smoke test).
    pub fn violations(&self, min_speedup: f64) -> Vec<String> {
        let mut v = Vec::new();
        for pass in [&self.baseline, &self.fair] {
            let label = &pass.label;
            if pass.completed != pass.jobs as u64 {
                v.push(format!(
                    "{label}: {} of {} jobs completed (all were oracle-gated)",
                    pass.completed, pass.jobs
                ));
            }
            if pass.failed != 0 {
                v.push(format!("{label}: {} job(s) failed", pass.failed));
            }
            if !pass.health.drained() {
                v.push(format!("{label}: service ledger does not balance"));
            }
            if pass.health.budget_in_use_bytes != 0 {
                v.push(format!(
                    "{label}: {} B still reserved after shutdown",
                    pass.health.budget_in_use_bytes
                ));
            }
        }
        if self.fair.tasks_stolen == 0 {
            v.push("mechanism never exercised: task steal in the shared pool".into());
        }
        if self.fair.fragment_cache_hits == 0 {
            v.push("mechanism never exercised: checksum-verified fragment-cache hit".into());
        }
        if self.baseline.fragment_cache_hits != 0 {
            v.push("baseline pass must not touch the fragment cache".into());
        }
        let seeded = self.fair.health.tenants.len();
        if seeded < self.tenants as usize {
            v.push(format!(
                "fair pass tracked {seeded} tenant ledgers, expected {}",
                self.tenants
            ));
        }
        for t in &self.fair.health.tenants {
            if t.admitted == 0 {
                v.push(format!("tenant {} never admitted a job", t.tenant));
            }
        }
        if self.speedup < min_speedup {
            v.push(format!(
                "speedup gate missed: {:.2}x < {min_speedup:.2}x (baseline {:.2} jobs/s, fair {:.2} jobs/s)",
                self.speedup, self.baseline.jobs_per_sec, self.fair.jobs_per_sec
            ));
        }
        v
    }

    /// Whether every invariant (including the throughput gate) held.
    pub fn passed(&self, min_speedup: f64) -> bool {
        self.violations(min_speedup).is_empty()
    }
}

/// The fair pass's tenant table: tenant 0 gets weight 4, tenant 1 weight
/// 2, the rest weight 1 — budgets generous (admission pressure is not
/// the subject here), in-flight capped at the worker count.
fn seeded_tenants(scale: MixScale) -> FairShareConfig {
    let tenants = (0..scale.tenants)
        .map(|t| TenantSpec {
            tenant: t,
            weight: match t {
                0 => 4,
                1 => 2,
                _ => 1,
            },
            memory_budget_bytes: 1 << 40,
            max_in_flight: scale.workers.max(2),
        })
        .collect();
    FairShareConfig {
        tenants,
        quantum_bytes: FairShareConfig::DEFAULT_QUANTUM_BYTES,
    }
}

fn service_config(seed: u64, scale: MixScale) -> ServiceConfig {
    ServiceConfig {
        // Sized for every job up front: the drill measures scheduling,
        // not shedding, and "in flight" means admitted-and-unresolved.
        queue_capacity: scale.jobs + 8,
        memory_budget_bytes: 64 << 30,
        default_deadline_ms: 600_000,
        retry_budget: 0,
        backoff_base_ms: 1,
        backoff_cap_ms: 8,
        seed,
        breaker_threshold: 1_000_000,
        breaker_cooldown: 2,
        workers: scale.workers,
    }
}

/// Builds one job body: run the cell, verify against the oracle, account
/// metrics and latency into the pass's shared counters.
#[allow(clippy::too_many_arguments)]
fn job_body(
    workload: usize,
    engine: Framework,
    config: EngineConfig,
    data: &Arc<MixData>,
    cache: Option<(Arc<FragmentCache>, FragmentKey)>,
    shared: &Arc<PassShared>,
    parts: usize,
    submitted: Instant,
) -> flowmark_serve::JobFn {
    let data = Arc::clone(data);
    let shared = Arc::clone(shared);
    Arc::new(move |_, cancel| {
        let plan = FaultPlan::disabled();
        let name = WORKLOADS[workload];
        let (ok, snapshot) = match engine {
            Framework::Spark => {
                let sc = SparkContext::with_config_faults_cancel(&config, plan, cancel.clone());
                if let Some((cache, key)) = &cache {
                    sc.register_fragment(Arc::clone(cache), *key);
                }
                let ok = match workload {
                    0 => wordcount::run_spark(&sc, data.wc_lines.clone(), parts) == data.wc_expect,
                    1 => {
                        grep::run_spark(&sc, data.grep_lines.clone(), &data.needle, parts)
                            == data.grep_expect
                    }
                    _ => {
                        let out = terasort::run_spark(&sc, data.ts_records.clone(), parts);
                        out.iter()
                            .flatten()
                            .map(|r| r.key().to_vec())
                            .eq(data.ts_expect.iter().cloned())
                    }
                };
                (ok, sc.metrics().snapshot())
            }
            Framework::Flink => {
                let env = FlinkEnv::with_config_faults_cancel(&config, plan, cancel.clone());
                if let Some((cache, key)) = &cache {
                    env.register_fragment(Arc::clone(cache), *key);
                }
                let ok = match workload {
                    0 => wordcount::run_flink(&env, data.wc_lines.clone()) == data.wc_expect,
                    1 => {
                        grep::run_flink(&env, data.grep_lines.clone(), &data.needle)
                            == data.grep_expect
                    }
                    _ => {
                        let out = terasort::run_flink(&env, data.ts_records.clone(), parts);
                        out.iter()
                            .flatten()
                            .map(|r| r.key().to_vec())
                            .eq(data.ts_expect.iter().cloned())
                    }
                };
                (ok, env.metrics().snapshot())
            }
        };
        shared
            .tasks_stolen
            .fetch_add(snapshot.tasks_stolen, Ordering::Relaxed);
        shared
            .engine_queue_wait_micros
            .fetch_add(snapshot.queue_wait_micros, Ordering::Relaxed);
        shared
            .fragment_cache_hits
            .fetch_add(snapshot.fragment_cache_hits, Ordering::Relaxed);
        if let Ok(mut lat) = shared.latencies_ms.lock() {
            lat.push(submitted.elapsed().as_secs_f64() * 1e3);
        }
        if ok {
            Ok(())
        } else {
            Err(format!("{name}/{engine:?} diverged from oracle"))
        }
    })
}

/// Nearest-rank percentile of an unsorted latency sample.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

/// Runs one pass: submit every job up front, wait for all resolutions,
/// shut the service down, and fold the ledger into [`PassStats`].
fn run_pass(
    label: &str,
    seed: u64,
    scale: MixScale,
    data: &Arc<MixData>,
    fair: Option<FairShareConfig>,
    executor: ExecutorMode,
) -> (PassStats, Option<flowmark_sched::FragmentCacheStats>) {
    let cfg = service_config(seed, scale);
    let multi_tenant = fair.is_some();
    let service = match fair {
        Some(f) => JobService::start_fair(cfg, f),
        None => JobService::start(cfg),
    };
    // The fair pass's cache charges its bytes against the service's own
    // admission budget, so resident fragments and queued jobs compete
    // for the same memory — build it against *this* service's ledger.
    let cache: Option<Arc<FragmentCache>> = multi_tenant
        .then(|| Arc::new(FragmentCache::with_ledger(4 << 30, service.budget())));

    let mut config = EngineConfig::with_parallelism(scale.partitions);
    config.executor = executor;
    let config_fp = config.fingerprint();

    let shared = Arc::new(PassShared::default());
    let started = Instant::now();
    let mut handles = Vec::with_capacity(scale.jobs);
    for i in 0..scale.jobs {
        let engine = if i % 2 == 0 {
            Framework::Spark
        } else {
            Framework::Flink
        };
        let workload = (i / 2) % WORKLOADS.len();
        // Word Count and TeraSort repeat identical (plan, input, config)
        // jobs across tenants, so every job after the first per
        // (workload, engine) is a fragment-cache hit candidate.
        let job_cache = cache.as_ref().and_then(|c| {
            let (name, input) = match workload {
                0 => ("wordcount", WC_SEED),
                2 => ("terasort", TS_SEED),
                _ => return None,
            };
            Some((
                Arc::clone(c),
                FragmentKey {
                    plan: fnv64(name) ^ engine_tag(engine),
                    input,
                    config: config_fp,
                    faults: 0,
                },
            ))
        });
        let submitted = Instant::now();
        let body = job_body(
            workload,
            engine,
            config,
            data,
            job_cache,
            &shared,
            scale.partitions,
            submitted,
        );
        let name = format!("{label}/{}/{engine:?}/{i}", WORKLOADS[workload]);
        let tenant = if multi_tenant {
            i as u32 % scale.tenants
        } else {
            0
        };
        let request = JobRequest::new(&name, engine, config, body).with_tenant(tenant);
        match service.submit(request) {
            Ok(h) => handles.push(h),
            Err(r) => panic!("mix queue is sized for every job, yet: {r}"),
        }
    }

    let mut completed = 0u64;
    let mut failed = 0u64;
    for h in handles {
        match h.wait() {
            Resolution::Completed { .. } => completed += 1,
            _ => failed += 1,
        }
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    // Snapshot occupancy, then release the cache's reservation before
    // the final health snapshot: the pass is over, and the shutdown
    // invariant is a drained budget.
    let cache_stats = cache.as_ref().map(|c| {
        let stats = c.stats();
        c.clear();
        stats
    });
    let health = service.shutdown();

    let mut latencies = shared
        .latencies_ms
        .lock()
        .map(|l| l.clone())
        .unwrap_or_default();
    let p50 = percentile(&mut latencies, 0.50);
    let p99 = percentile(&mut latencies, 0.99);
    let stats = PassStats {
        label: label.to_string(),
        jobs: scale.jobs,
        completed,
        failed,
        wall_seconds,
        jobs_per_sec: completed as f64 / wall_seconds.max(1e-9),
        p50_latency_ms: p50,
        p99_latency_ms: p99,
        tasks_stolen: shared.tasks_stolen.load(Ordering::Relaxed),
        engine_queue_wait_micros: shared.engine_queue_wait_micros.load(Ordering::Relaxed),
        fragment_cache_hits: shared.fragment_cache_hits.load(Ordering::Relaxed),
        health,
    };
    (stats, cache_stats)
}

/// Runs the full A/B drill: baseline FIFO/per-job pass, then the
/// fair-share/shared-pool/cached pass over the identical job list.
pub fn run_mix(seed: u64, scale: MixScale) -> MixReport {
    let data = Arc::new(MixData::generate(scale));
    let (baseline, _) = run_pass(
        "fifo-per-job",
        seed,
        scale,
        &data,
        None,
        ExecutorMode::PerJob,
    );
    let (fair, cache) = run_pass(
        "fair-shared-pool",
        seed,
        scale,
        &data,
        Some(seeded_tenants(scale)),
        ExecutorMode::SharedPool,
    );
    let cache_stats = cache.unwrap_or_default();
    let speedup = fair.jobs_per_sec / baseline.jobs_per_sec.max(1e-9);
    MixReport {
        seed,
        jobs: scale.jobs,
        tenants: scale.tenants,
        partitions: scale.partitions,
        workers: scale.workers,
        baseline,
        fair,
        speedup,
        cache: CacheReport {
            hits: cache_stats.hits,
            misses: cache_stats.misses,
            insertions: cache_stats.insertions,
            evictions: cache_stats.evictions,
            invalidations: cache_stats.invalidations,
            bytes_used: cache_stats.bytes_used,
        },
    }
}

/// Human-readable report, one block per pass plus the gates.
pub fn render(report: &MixReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mix-concurrent: {} jobs x 2 passes, {} tenants, {} workers, parallelism {}",
        report.jobs, report.tenants, report.workers, report.partitions
    );
    for pass in [&report.baseline, &report.fair] {
        let _ = writeln!(
            out,
            "  {:<16} {:>7.2} jobs/s  p50 {:>8.1} ms  p99 {:>8.1} ms  \
             ({} completed, {} failed, {:.2}s wall)",
            pass.label,
            pass.jobs_per_sec,
            pass.p50_latency_ms,
            pass.p99_latency_ms,
            pass.completed,
            pass.failed,
            pass.wall_seconds,
        );
    }
    let _ = writeln!(
        out,
        "  speedup {:.2}x | steals {} | cache hits {} (verified) / misses {} / \
         insertions {} / evictions {} | pool wait {:.1} ms total",
        report.speedup,
        report.fair.tasks_stolen,
        report.fair.fragment_cache_hits,
        report.cache.misses,
        report.cache.insertions,
        report.cache.evictions,
        report.fair.engine_queue_wait_micros as f64 / 1e3,
    );
    for t in &report.fair.health.tenants {
        let _ = writeln!(
            out,
            "  tenant {:>2}: admitted {:>4} completed {:>4} rejected {:>2} queue-wait {:>9.1} ms",
            t.tenant,
            t.admitted,
            t.completed,
            t.rejected,
            t.queue_wait_micros as f64 / 1e3,
        );
    }
    out
}
