//! `repro` — the command-line reproduction driver.
//!
//! ```text
//! repro list              # list experiment ids
//! repro fig1              # run one figure and print it
//! repro table7            # run Table VII
//! repro calibration       # paper-vs-simulated calibration table
//! repro all               # regenerate EXPERIMENTS.md content to stdout
//! repro bench --smoke     # time the real-engine hot path, write BENCH_PR1.json
//! repro chaos             # fault-injection drill: kill + straggle every workload
//! repro tune --smoke      # bottleneck-guided auto-tune of both engines, write BENCH_PR3.json
//! repro soak --smoke      # chaos-soak the supervised job service, write BENCH_PR4.json
//! ```
//!
//! Every fallible path (bad flags, unwritable `--out`, invalid experiment
//! configs) surfaces a [`HarnessError`] and a non-zero exit, never a panic.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use flowmark_core::report::{render_correlation, render_figure, render_series};
use flowmark_core::telemetry::ResourceKind;
use flowmark_harness::experiments::{self, ResourceFigure};
use flowmark_harness::{calibration_report, check_shape, paper, report, HarnessError};
use flowmark_sim::Calibration;

fn print_resource_figure(rf: &ResourceFigure) {
    println!("## {} — {}\n", rf.id, rf.title);
    for (name, result, rep) in [
        ("Flink", &rf.flink, &rf.flink_report),
        ("Spark", &rf.spark, &rf.spark_report),
    ] {
        println!(
            "{name}: total {:.0}s, pipelining degree {:.2}",
            result.seconds, rep.pipelining_degree
        );
        print!("{}", render_correlation(rep));
        for kind in ResourceKind::ALL {
            let series = result.telemetry.mean_channel(kind);
            let max = if kind.is_percentage() {
                100.0
            } else {
                series.summary().max.max(1.0)
            };
            print!("{}", render_series(kind.label(), &series, max, 72));
        }
        println!();
    }
}

/// Looks up `--name value` in the argument rest.
fn flag_value(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .cloned()
}

/// Parses `--name value`, surfacing a typed error on garbage.
fn parsed_flag<T: std::str::FromStr>(
    rest: &[String],
    name: &str,
) -> Result<Option<T>, HarnessError> {
    match flag_value(rest, name) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| HarnessError::BadFlag {
            flag: name.into(),
            value: v,
        }),
    }
}

/// Writes a file with path context on failure.
fn write_file(path: &str, contents: String) -> Result<(), HarnessError> {
    std::fs::write(path, contents).map_err(|e| HarnessError::io(path, e))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("repro: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), HarnessError> {
    let cal = Calibration::default();
    let arg = std::env::args().nth(1).unwrap_or_else(|| "list".into());
    match arg.as_str() {
        "list" => {
            println!("time figures : fig1 fig2 fig4 fig5 fig7 fig8 fig11 fig12 fig13 fig14 fig15");
            println!("resources    : fig3 fig6 fig9 fig10 fig16 fig17");
            println!("tables       : table1 table7");
            println!("ablations    : abl-delta abl-serde abl-par abl-part abl-mem");
            println!("meta         : calibration verify all export <figN>");
            println!("perf         : bench --smoke [--label L] [--out FILE] [--seed-baseline FILE]");
            println!("robustness   : chaos [--seed N] [--fail-prob P] [--straggler-prob P] [--corruption] [--streaming] [--tiny] [--out FILE]");
            println!("             : soak [--smoke] [--seed N] [--out FILE]");
            println!("             : soak --mix-concurrent N [--smoke] [--seed S] [--out FILE]");
            println!("streaming    : stream [--smoke] [--seed N] [--out FILE]");
            println!("tuning       : tune [--smoke] [--seed N] [--out FILE]");
        }
        "soak" => {
            use flowmark_harness::soak::{self, SoakConfig, SoakScale};
            let rest: Vec<String> = std::env::args().skip(2).collect();
            let seed: u64 = parsed_flag(&rest, "--seed")?.unwrap_or(1);
            if let Some(jobs) = parsed_flag::<usize>(&rest, "--mix-concurrent")? {
                use flowmark_harness::mix::{self, MixScale};
                let scale = if rest.iter().any(|a| a == "--smoke") {
                    MixScale::smoke()
                } else {
                    MixScale::full(jobs)
                };
                let report = mix::run_mix(seed, scale);
                print!("{}", mix::render(&report));
                let out_path =
                    flag_value(&rest, "--out").unwrap_or_else(|| "BENCH_PR8.json".into());
                let json = serde_json::to_string_pretty(&report)?;
                write_file(&out_path, json + "\n")?;
                println!("wrote {out_path}");
                // The throughput gate is an artifact-scale claim; smoke
                // runs keep the structural gates only.
                let min_speedup = if rest.iter().any(|a| a == "--smoke") {
                    0.0
                } else {
                    1.3
                };
                let violations = report.violations(min_speedup);
                if !violations.is_empty() {
                    for v in &violations {
                        eprintln!("mix-concurrent violation: {v}");
                    }
                    std::process::exit(1);
                }
                return Ok(());
            }
            let scale = if rest.iter().any(|a| a == "--smoke") {
                SoakScale::smoke()
            } else {
                SoakScale::full()
            };
            let report = soak::run_soak(SoakConfig::new(seed), scale);
            print!("{}", soak::render(&report));
            if let Some(out_path) = flag_value(&rest, "--out") {
                let json = serde_json::to_string_pretty(&report)?;
                write_file(&out_path, json + "\n")?;
                println!("wrote {out_path}");
            }
            if !report.passed() {
                eprintln!("soak invariants violated");
                std::process::exit(1);
            }
        }
        "tune" => {
            use flowmark_harness::tune::{self, TuneOptions};
            use flowmark_tune::TuneScale;
            let rest: Vec<String> = std::env::args().skip(2).collect();
            let seed: u64 = parsed_flag(&rest, "--seed")?.unwrap_or(1);
            let smoke = rest.iter().any(|a| a == "--smoke");
            let (opts, scale) = if smoke {
                (TuneOptions::smoke(seed), TuneScale::smoke())
            } else {
                (TuneOptions::full(seed), TuneScale::full())
            };
            let report = tune::run_tune(&opts, scale);
            print!("{}", tune::render(&report));
            let out_path = flag_value(&rest, "--out").unwrap_or_else(|| "BENCH_PR3.json".into());
            let json = serde_json::to_string_pretty(&report)?;
            write_file(&out_path, json + "\n")?;
            println!("wrote {out_path}");
            if report.cells.iter().any(|c| !c.all_verified) {
                eprintln!("a tuning trial diverged from the sequential oracle");
                std::process::exit(1);
            }
        }
        "stream" => {
            use flowmark_harness::stream::{self, StreamScale};
            let rest: Vec<String> = std::env::args().skip(2).collect();
            let seed: u64 = parsed_flag(&rest, "--seed")?.unwrap_or(1);
            let scale = if rest.iter().any(|a| a == "--smoke") {
                StreamScale::smoke()
            } else {
                StreamScale::full()
            };
            let report = stream::run_stream(seed, scale);
            print!("{}", stream::render(&report));
            let out_path = flag_value(&rest, "--out").unwrap_or_else(|| "BENCH_PR9.json".into());
            let json = serde_json::to_string_pretty(&report)?;
            write_file(&out_path, json + "\n")?;
            println!("wrote {out_path}");
            let violations = report.violations();
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("stream: {v}");
                }
                std::process::exit(1);
            }
        }
        "chaos" => {
            use flowmark_harness::chaos::{self, ChaosConfig, ChaosScale};
            let rest: Vec<String> = std::env::args().skip(2).collect();
            // The streaming drill is its own cell grid: q3/q6 on both
            // checkpointed runtimes, every cell armed with the corruption
            // preset and held to the full detect-and-recover chain.
            if rest.iter().any(|a| a == "--streaming") {
                use flowmark_harness::stream::{self, StreamScale};
                let seed: u64 = parsed_flag(&rest, "--seed")?.unwrap_or(1);
                let scale = if rest.iter().any(|a| a == "--tiny") {
                    StreamScale::smoke()
                } else {
                    StreamScale::full()
                };
                let report = stream::run_stream_chaos(seed, scale);
                print!("{}", stream::render(&report));
                if let Some(out_path) = flag_value(&rest, "--out") {
                    let json = serde_json::to_string_pretty(&report)?;
                    write_file(&out_path, json + "\n")?;
                    println!("wrote {out_path}");
                }
                let violations = report.violations();
                if !violations.is_empty() {
                    for v in &violations {
                        eprintln!("chaos: {v}");
                    }
                    std::process::exit(1);
                }
                return Ok(());
            }
            let mut config = ChaosConfig::new(parsed_flag(&rest, "--seed")?.unwrap_or(1u64));
            if let Some(p) = parsed_flag(&rest, "--fail-prob")? {
                config.task_failure_prob = p;
            }
            if let Some(p) = parsed_flag(&rest, "--straggler-prob")? {
                config.straggler_prob = p;
            }
            // Corruption mode layers deterministic bit rot — in-flight batch
            // damage plus a rotten checkpoint snapshot — on top of the
            // kill/straggler plan for every batch-migrated cell.
            config.corruption = rest.iter().any(|a| a == "--corruption");
            let scale = if rest.iter().any(|a| a == "--tiny") {
                ChaosScale::tiny()
            } else {
                ChaosScale::full()
            };
            let report = chaos::run_chaos(config, scale);
            print!("{}", chaos::render(&report));
            if let Some(out_path) = flag_value(&rest, "--out") {
                let json = serde_json::to_string_pretty(&report)?;
                write_file(&out_path, json + "\n")?;
                println!("wrote {out_path}");
            }
            let violations = chaos::integrity_violations(&report);
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("chaos: {v}");
                }
                std::process::exit(1);
            }
        }
        "bench" => {
            use flowmark_harness::bench::{self, SmokeScale};
            let rest: Vec<String> = std::env::args().skip(2).collect();
            if !rest.iter().any(|a| a == "--smoke") {
                return Err(HarnessError::Usage(
                    "usage: repro bench --smoke [--label L] [--out FILE] [--seed-baseline FILE]"
                        .into(),
                ));
            }
            let label = flag_value(&rest, "--label").unwrap_or_else(|| "optimized".into());
            let out_path = flag_value(&rest, "--out").unwrap_or_else(|| "BENCH_PR5.json".into());
            let baseline_path =
                flag_value(&rest, "--seed-baseline").unwrap_or_else(|| "BENCH_PR1_SEED.json".into());
            let report = bench::run_smoke(SmokeScale::full(), &label);
            // A `seed`-labelled run IS the baseline capture; anything else
            // embeds the committed baseline when present and reports
            // per-cell speedups against it.
            let baseline = if label == "seed" {
                None
            } else {
                std::fs::read_to_string(&baseline_path)
                    .ok()
                    .and_then(|s| {
                        serde_json::from_str::<bench::ComparisonReport>(&s)
                            .map(|c| c.measured)
                            .ok()
                    })
            };
            let comparison = bench::compare(report, baseline);
            print!("{}", bench::render(&comparison));
            if comparison.measured.cells.iter().any(|c| !c.verified) {
                eprintln!("bench output diverged from the sequential oracle");
                std::process::exit(1);
            }
            let json = serde_json::to_string_pretty(&comparison)?;
            write_file(&out_path, json + "\n")?;
            println!("wrote {out_path}");
        }
        "table1" => {
            use flowmark_core::config::Framework;
            use flowmark_workloads::Workload;
            println!("Table I — operators used by each workload (F/S annotations):");
            for w in Workload::ALL {
                for fw in Framework::BOTH {
                    let ops: Vec<String> = w
                        .operator_table(fw)
                        .iter()
                        .map(|o| o.to_string())
                        .collect();
                    println!("  {:<3} {:<5} {}", w.abbrev(), fw.name(), ops.join(", "));
                }
            }
        }
        "export" => {
            use flowmark_core::export::{figure_to_csv, figure_to_json};
            let which = std::env::args().nth(2).unwrap_or_else(|| "fig1".into());
            let fig = match which.as_str() {
                "fig1" => experiments::fig1(&cal)?,
                "fig2" => experiments::fig2(&cal)?,
                "fig4" => experiments::fig4(&cal)?,
                "fig5" => experiments::fig5(&cal)?,
                "fig7" => experiments::fig7(&cal)?,
                "fig8" => experiments::fig8(&cal)?,
                "fig11" => experiments::fig11(&cal)?,
                "fig12" => experiments::fig12(&cal)?,
                "fig13" => experiments::fig13(&cal)?,
                "fig14" => experiments::fig14(&cal)?,
                "fig15" => experiments::fig15(&cal)?,
                other => {
                    return Err(HarnessError::Usage(format!(
                        "cannot export '{other}' (time figures only)"
                    )));
                }
            };
            std::fs::create_dir_all("artifacts").map_err(|e| HarnessError::io("artifacts", e))?;
            let json_path = format!("artifacts/{which}.json");
            let csv_path = format!("artifacts/{which}.csv");
            write_file(&json_path, figure_to_json(&fig))?;
            write_file(&csv_path, figure_to_csv(&fig))?;
            println!("wrote {json_path} and {csv_path}");
        }
        "fig1" | "fig2" | "fig4" | "fig5" | "fig7" | "fig8" | "fig11" | "fig12" | "fig13"
        | "fig14" | "fig15" => {
            let fig = match arg.as_str() {
                "fig1" => experiments::fig1(&cal)?,
                "fig2" => experiments::fig2(&cal)?,
                "fig4" => experiments::fig4(&cal)?,
                "fig5" => experiments::fig5(&cal)?,
                "fig7" => experiments::fig7(&cal)?,
                "fig8" => experiments::fig8(&cal)?,
                "fig11" => experiments::fig11(&cal)?,
                "fig12" => experiments::fig12(&cal)?,
                "fig13" => experiments::fig13(&cal)?,
                "fig14" => experiments::fig14(&cal)?,
                _ => experiments::fig15(&cal)?,
            };
            print!("{}", render_figure(&fig));
            let expect_id = if arg == "fig1" { "fig1-large" } else { arg.as_str() };
            let check = check_shape(&fig, paper::expected_winner(expect_id));
            println!(
                "shape: {} — {}",
                check.verdict,
                if check.matches_paper {
                    "matches the paper"
                } else {
                    "DOES NOT match the paper"
                }
            );
        }
        "fig3" => print_resource_figure(&experiments::fig3(&cal)?),
        "fig6" => print_resource_figure(&experiments::fig6(&cal)?),
        "fig9" => print_resource_figure(&experiments::fig9(&cal)?),
        "fig10" => print_resource_figure(&experiments::fig10(&cal)?),
        "fig16" => print_resource_figure(&experiments::fig16(&cal)?),
        "fig17" => print_resource_figure(&experiments::fig17(&cal)?),
        "table7" => {
            for r in experiments::table7(&cal)? {
                println!(
                    "{:>3} nodes | Flink PR {}/{} | Spark PR {}/{} | Flink CC {}/{} | Spark CC {}/{}",
                    r.nodes,
                    r.flink_pr.0.render(),
                    r.flink_pr.1.render(),
                    r.spark_pr.0.render(),
                    r.spark_pr.1.render(),
                    r.flink_cc.0.render(),
                    r.flink_cc.1.render(),
                    r.spark_cc.0.render(),
                    r.spark_cc.1.render(),
                );
            }
        }
        "abl-delta" => {
            let (bulk, delta) = experiments::ablation_delta(&cal)?;
            println!("CC Medium 27n: bulk {bulk:.0}s, delta {delta:.0}s ({:.2}x)", bulk / delta);
        }
        "abl-serde" => {
            let (java, kryo) = experiments::ablation_serializer(&cal)?;
            println!("Spark WC 16n: Java {java:.0}s, Kryo {kryo:.0}s");
        }
        "abl-par" => {
            let (tuned, reduced) = experiments::ablation_parallelism(&cal)?;
            println!(
                "Spark WC 8n: tuned {tuned:.0}s, 2xcores {reduced:.0}s ({:+.1}%)",
                (reduced - tuned) / tuned * 100.0
            );
        }
        "abl-part" => {
            for (ep, t) in experiments::ablation_partitions(&cal)? {
                println!("PR Medium 24n, spark.edge.partition = {ep:>5}: {t:.0}s");
            }
        }
        "abl-mem" => {
            let (s, f) = experiments::ablation_terasort_memory(&cal)?;
            println!("TeraSort 27n x 75GB: Spark {s:.0}s, Flink {f:.0}s");
        }
        "verify" => {
            // CI-style check: every time figure's winner must match the
            // paper's expectation; exits non-zero otherwise.
            let checks = [
                ("fig1-large", experiments::fig1(&cal)?),
                ("fig2", experiments::fig2(&cal)?),
                ("fig4", experiments::fig4(&cal)?),
                ("fig5", experiments::fig5(&cal)?),
                ("fig7", experiments::fig7(&cal)?),
                ("fig8", experiments::fig8(&cal)?),
                ("fig11", experiments::fig11(&cal)?),
                ("fig12", experiments::fig12(&cal)?),
                ("fig13", experiments::fig13(&cal)?),
                ("fig14", experiments::fig14(&cal)?),
                ("fig15", experiments::fig15(&cal)?),
            ];
            let mut failures = 0;
            for (id, fig) in checks {
                let c = check_shape(&fig, paper::expected_winner(id));
                println!(
                    "{:<12} {} — {}",
                    fig.id,
                    if c.matches_paper { "OK " } else { "FAIL" },
                    c.verdict
                );
                if !c.matches_paper {
                    failures += 1;
                }
            }
            // Table VII failure pattern.
            let rows = experiments::table7(&cal)?;
            let t7_ok = rows.iter().all(|r| match r.nodes {
                27 | 44 => {
                    r.flink_pr.0.is_failure()
                        && r.spark_pr.1.is_failure()
                        && !r.spark_cc.1.is_failure()
                }
                97 => {
                    !r.flink_pr.1.is_failure()
                        && !r.spark_pr.1.is_failure()
                        && !r.flink_cc.1.is_failure()
                }
                _ => true,
            });
            println!("table7       {} — failure pattern", if t7_ok { "OK " } else { "FAIL" });
            if !t7_ok {
                failures += 1;
            }
            if failures > 0 {
                eprintln!("{failures} shape check(s) failed");
                std::process::exit(1);
            }
            println!("all shapes match the paper");
        }
        "calibration" => print!("{}", calibration_report(&cal)?),
        "all" => print!("{}", report::experiments_markdown(&cal)?),
        other => {
            return Err(HarnessError::Usage(format!(
                "unknown experiment '{other}'; try `repro list`"
            )));
        }
    }
    Ok(())
}
