//! # flowmark-harness
//!
//! Regenerates every figure and table of the paper: [`experiments`] holds
//! one runner per figure, [`paper`] the transcribed reference values, and
//! [`report`] the EXPERIMENTS.md generator. The `repro` binary drives it
//! all from the command line.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod bench;
pub mod chaos;
pub mod error;
pub mod experiments;
pub mod mix;
pub mod paper;
pub mod report;
pub mod soak;
pub mod stream;
pub mod tune;

use flowmark_core::config::Framework;
use flowmark_core::experiment::Figure;
use flowmark_sim::Calibration;

pub use error::HarnessError;

/// How a reproduced figure compares with the paper.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// Experiment id.
    pub id: String,
    /// Human verdict line, e.g. `"Flink wins 4/5 points (paper: Flink)"`.
    pub verdict: String,
    /// True when the reproduced winner matches the paper's.
    pub matches_paper: bool,
}

/// Checks a figure's winner against the paper's expectation.
pub fn check_shape(fig: &Figure, expected: paper::ExpectedWinner) -> ShapeCheck {
    let h = fig.head_to_head();
    let (verdict, matches) = match h {
        None => ("missing series".to_string(), false),
        Some(h) => {
            let n = h.scales.len();
            let flink = h.flink_wins();
            let spark = h.spark_wins();
            let winner = if flink > spark {
                paper::ExpectedWinner::Flink
            } else if spark > flink {
                paper::ExpectedWinner::Spark
            } else {
                paper::ExpectedWinner::Tie
            };
            let ok = winner == expected || expected == paper::ExpectedWinner::Tie;
            (
                format!(
                    "Flink wins {flink}/{n}, Spark wins {spark}/{n} (max Flink adv {:.2}x, max Spark adv {:.2}x)",
                    h.max_flink_advantage(),
                    h.max_spark_advantage()
                ),
                ok,
            )
        }
    };
    ShapeCheck {
        id: fig.id.clone(),
        verdict,
        matches_paper: matches,
    }
}

/// Prints a compact paper-vs-simulated table for the experiments with
/// caption-exact reference totals — the tool used to calibrate
/// [`Calibration`] once.
pub fn calibration_report(cal: &Calibration) -> Result<String, HarnessError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "experiment", "paperS", "simS", "paperF", "simF", "ratioP", "ratioM"
    );
    let mut row = |name: &str, paper_ref: paper::Ref, fig: &Figure, x: f64| {
        let s = fig
            .series_for(Framework::Spark)
            .and_then(|s| s.points.iter().find(|p| (p.x - x).abs() < 1e-9))
            .map(|p| p.summary.mean)
            .unwrap_or(f64::NAN);
        let f = fig
            .series_for(Framework::Flink)
            .and_then(|s| s.points.iter().find(|p| (p.x - x).abs() < 1e-9))
            .map(|p| p.summary.mean)
            .unwrap_or(f64::NAN);
        let ps = paper_ref.spark.unwrap_or(f64::NAN);
        let pf = paper_ref.flink.unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "{name:<28} {ps:>9.0} {s:>9.0} {pf:>9.0} {f:>9.0} {:>7.2} {:>7.2}",
            ps / pf,
            s / f
        );
    };
    row("WC 32n (fig1)", paper::WC_32_NODES, &experiments::fig1(cal)?, 32.0);
    row("Grep 32n (fig4)", paper::GREP_32_NODES, &experiments::fig4(cal)?, 32.0);
    row(
        "TeraSort 55n (fig8)",
        paper::TERASORT_55_NODES,
        &experiments::fig8(cal)?,
        55.0,
    );
    row(
        "KMeans 24n (fig11)",
        paper::KMEANS_24_NODES,
        &experiments::fig11(cal)?,
        24.0,
    );
    row(
        "PR small 27n (fig12)",
        paper::PAGERANK_SMALL_27_NODES,
        &experiments::fig12(cal)?,
        27.0,
    );
    row(
        "CC medium 27n (fig15)",
        paper::CC_MEDIUM_27_NODES,
        &experiments::fig15(cal)?,
        27.0,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_core::experiment::Experiment;

    fn figure(spark: &[(f64, f64)], flink: &[(f64, f64)]) -> flowmark_core::experiment::Figure {
        let mut e = Experiment::new("t", "t", "Nodes");
        for &(x, t) in spark {
            e.record(Framework::Spark, x, t);
        }
        for &(x, t) in flink {
            e.record(Framework::Flink, x, t);
        }
        e.figure()
    }

    #[test]
    fn check_shape_flink_winner() {
        let fig = figure(&[(2.0, 110.0), (4.0, 120.0)], &[(2.0, 100.0), (4.0, 100.0)]);
        let c = check_shape(&fig, paper::ExpectedWinner::Flink);
        assert!(c.matches_paper, "{}", c.verdict);
        let c = check_shape(&fig, paper::ExpectedWinner::Spark);
        assert!(!c.matches_paper);
    }

    #[test]
    fn check_shape_tie_accepts_anything() {
        let fig = figure(&[(2.0, 110.0)], &[(2.0, 100.0)]);
        assert!(check_shape(&fig, paper::ExpectedWinner::Tie).matches_paper);
    }

    #[test]
    fn check_shape_missing_series_fails() {
        let fig = figure(&[(2.0, 110.0)], &[]);
        let c = check_shape(&fig, paper::ExpectedWinner::Flink);
        assert!(!c.matches_paper);
        assert!(c.verdict.contains("missing"));
    }
}
