//! One runner per paper figure/table.
//!
//! Every time figure runs both engines through the simulator for
//! [`TRIALS`] seeded trials per cell (§V: "we execute on average 5 runs for
//! each experiment") and aggregates mean ± stddev into a
//! [`flowmark_core::experiment::Figure`]. Resource figures additionally
//! return the traces, telemetry and correlation reports.

use crate::error::HarnessError;
use flowmark_core::config::{Framework, RunConfig};
use flowmark_core::correlate::{correlate, CorrelationConfig, CorrelationReport};
use flowmark_core::experiment::{CellOutcome, Experiment, Figure};
use flowmark_dataflow::plan::LogicalPlan;
use flowmark_sim::graphmem::{
    check_flink_graph_memory, check_spark_graph_memory, GraphAlgorithm,
};
use flowmark_sim::{simulate, Calibration, SimResult};
use flowmark_workloads::connected::{self, CcVariant};
use flowmark_workloads::grep::{self, GrepScale};
use flowmark_workloads::kmeans::{self, KMeansScale};
use flowmark_workloads::pagerank::{self, GraphScale};
use flowmark_workloads::terasort::{self, TeraSortScale};
use flowmark_workloads::wordcount::{self, WordCountScale};
use flowmark_workloads::presets;

/// Trials per cell (§V).
pub const TRIALS: u64 = 5;

/// Simulates one cell for `TRIALS` seeds and records it into `exp`.
fn record_cell(
    exp: &mut Experiment,
    plan: &LogicalPlan,
    fw: Framework,
    run: &RunConfig,
    cal: &Calibration,
    x: f64,
) -> Result<(), HarnessError> {
    for trial in 0..TRIALS {
        let seed = 0x5EED_0000 + x.to_bits() % 10_007 + trial * 7919 + fw as u64;
        let r = simulate(plan, fw, run, cal, seed)?;
        exp.record(fw, x, r.seconds);
    }
    Ok(())
}

/// A resource-usage figure: one simulated run per engine plus the
/// correlation analysis (the paper's methodology applied to it).
pub struct ResourceFigure {
    /// Stable id (`fig3`, ...).
    pub id: &'static str,
    /// Figure caption.
    pub title: String,
    /// Spark run.
    pub spark: SimResult,
    /// Flink run.
    pub flink: SimResult,
    /// Correlation report for Spark.
    pub spark_report: CorrelationReport,
    /// Correlation report for Flink.
    pub flink_report: CorrelationReport,
}

fn resource_figure(
    id: &'static str,
    title: String,
    spark_plan: &LogicalPlan,
    flink_plan: &LogicalPlan,
    run: &RunConfig,
    cal: &Calibration,
) -> Result<ResourceFigure, HarnessError> {
    let spark = simulate(spark_plan, Framework::Spark, run, cal, 1)?;
    let flink = simulate(flink_plan, Framework::Flink, run, cal, 1)?;
    let cc = CorrelationConfig::default();
    let spark_report = correlate(&spark.trace, &spark.telemetry, &cc);
    let flink_report = correlate(&flink.trace, &flink.telemetry, &cc);
    Ok(ResourceFigure {
        id,
        title,
        spark,
        flink,
        spark_report,
        flink_report,
    })
}

// ---------------------------------------------------------------------------
// Batch workloads
// ---------------------------------------------------------------------------

/// Fig 1: Word Count, fixed 24 GB per node, 2-32 nodes.
pub fn fig1(cal: &Calibration) -> Result<Figure, HarnessError> {
    let mut exp = Experiment::new("fig1", "Word Count - fixed problem size per node (24GB)", "Nodes");
    for nodes in [2u32, 4, 8, 16, 32] {
        let scale = WordCountScale::per_node(nodes, 24.0);
        let run = presets::wordcount_config(nodes);
        for fw in Framework::BOTH {
            let plan = wordcount::plan(fw, &scale);
            record_cell(&mut exp, &plan, fw, &run, cal, nodes as f64)?;
        }
    }
    Ok(exp.figure())
}

/// Fig 2: Word Count, 16 nodes, growing per-node datasets.
pub fn fig2(cal: &Calibration) -> Result<Figure, HarnessError> {
    let mut exp = Experiment::new("fig2", "Word Count - 16 nodes, different datasets", "GB/node");
    let run = presets::wordcount_config(16);
    for gb in [24.0, 27.0, 30.0, 33.0] {
        let scale = WordCountScale::per_node(16, gb);
        for fw in Framework::BOTH {
            let plan = wordcount::plan(fw, &scale);
            record_cell(&mut exp, &plan, fw, &run, cal, gb)?;
        }
    }
    Ok(exp.figure())
}

/// Fig 3: Word Count resource usage, 32 nodes, 768 GB.
pub fn fig3(cal: &Calibration) -> Result<ResourceFigure, HarnessError> {
    let scale = WordCountScale::per_node(32, 24.0);
    let run = presets::wordcount_config(32);
    resource_figure(
        "fig3",
        "Word Count resource usage, 32 nodes, 768 GB".into(),
        &wordcount::plan(Framework::Spark, &scale),
        &wordcount::plan(Framework::Flink, &scale),
        &run,
        cal,
    )
}

/// Fig 4: Grep, fixed 24 GB per node, 2-32 nodes.
pub fn fig4(cal: &Calibration) -> Result<Figure, HarnessError> {
    let mut exp = Experiment::new("fig4", "Grep - fixed problem size per node (24GB)", "Nodes");
    for nodes in [2u32, 4, 8, 16, 32] {
        let scale = GrepScale::per_node(nodes, 24.0);
        let run = presets::grep_config(nodes);
        for fw in Framework::BOTH {
            let plan = grep::plan(fw, &scale);
            record_cell(&mut exp, &plan, fw, &run, cal, nodes as f64)?;
        }
    }
    Ok(exp.figure())
}

/// Fig 5: Grep, 16 nodes, growing per-node datasets.
pub fn fig5(cal: &Calibration) -> Result<Figure, HarnessError> {
    let mut exp = Experiment::new("fig5", "Grep - 16 nodes, different datasets", "GB/node");
    let run = presets::grep_config(16);
    for gb in [24.0, 27.0, 30.0, 33.0] {
        let scale = GrepScale::per_node(16, gb);
        for fw in Framework::BOTH {
            let plan = grep::plan(fw, &scale);
            record_cell(&mut exp, &plan, fw, &run, cal, gb)?;
        }
    }
    Ok(exp.figure())
}

/// Fig 6: Grep resource usage, 32 nodes, 768 GB.
pub fn fig6(cal: &Calibration) -> Result<ResourceFigure, HarnessError> {
    let scale = GrepScale::per_node(32, 24.0);
    let run = presets::grep_config(32);
    resource_figure(
        "fig6",
        "Grep resource usage, 32 nodes, 768 GB".into(),
        &grep::plan(Framework::Spark, &scale),
        &grep::plan(Framework::Flink, &scale),
        &run,
        cal,
    )
}

/// Fig 7: Tera Sort, fixed 32 GB per node, 17-63 nodes.
pub fn fig7(cal: &Calibration) -> Result<Figure, HarnessError> {
    let mut exp = Experiment::new("fig7", "Tera Sort - fixed problem size per node (32 GB)", "Nodes");
    for nodes in [17u32, 34, 63] {
        let scale = TeraSortScale::per_node(nodes, 32.0);
        let run = presets::terasort_config(nodes);
        for fw in Framework::BOTH {
            let plan = terasort::plan(fw, &scale);
            record_cell(&mut exp, &plan, fw, &run, cal, nodes as f64)?;
        }
    }
    Ok(exp.figure())
}

/// Fig 8: Tera Sort, 3.5 TB total, 55-97 nodes.
pub fn fig8(cal: &Calibration) -> Result<Figure, HarnessError> {
    let mut exp = Experiment::new("fig8", "Tera Sort - adding nodes, same dataset (3.5TB)", "Nodes");
    let scale = TeraSortScale::total_tb(3.5);
    for nodes in [55u32, 73, 97] {
        let run = presets::terasort_config(nodes);
        for fw in Framework::BOTH {
            let plan = terasort::plan(fw, &scale);
            record_cell(&mut exp, &plan, fw, &run, cal, nodes as f64)?;
        }
    }
    Ok(exp.figure())
}

/// Fig 9: Tera Sort resource usage, 55 nodes, 3.5 TB.
pub fn fig9(cal: &Calibration) -> Result<ResourceFigure, HarnessError> {
    let scale = TeraSortScale::total_tb(3.5);
    let run = presets::terasort_config(55);
    resource_figure(
        "fig9",
        "Tera Sort resource usage, 55 nodes, 3.5 TB".into(),
        &terasort::plan(Framework::Spark, &scale),
        &terasort::plan(Framework::Flink, &scale),
        &run,
        cal,
    )
}

// ---------------------------------------------------------------------------
// Iterative workloads
// ---------------------------------------------------------------------------

/// Fig 10: K-Means resource usage, 24 nodes, 10 iterations.
pub fn fig10(cal: &Calibration) -> Result<ResourceFigure, HarnessError> {
    let scale = KMeansScale::paper();
    let run = presets::kmeans_config(24);
    resource_figure(
        "fig10",
        "K-Means resource usage, 24 nodes, 10 iterations, 1.2 B samples".into(),
        &kmeans::plan(Framework::Spark, &scale),
        &kmeans::plan(Framework::Flink, &scale),
        &run,
        cal,
    )
}

/// Fig 11: K-Means, increasing cluster size, 1.2 B samples.
pub fn fig11(cal: &Calibration) -> Result<Figure, HarnessError> {
    let mut exp = Experiment::new(
        "fig11",
        "K-Means - increasing cluster size, same dataset (1.2 billion samples)",
        "Nodes",
    );
    let scale = KMeansScale::paper();
    for nodes in [8u32, 14, 20, 24] {
        let run = presets::kmeans_config(nodes);
        for fw in Framework::BOTH {
            let plan = kmeans::plan(fw, &scale);
            record_cell(&mut exp, &plan, fw, &run, cal, nodes as f64)?;
        }
    }
    Ok(exp.figure())
}

/// Fig 12: Page Rank, Small graph, increasing cluster size.
pub fn fig12(cal: &Calibration) -> Result<Figure, HarnessError> {
    let mut exp = Experiment::new("fig12", "Page Rank - Small Graph", "Nodes");
    let scale = GraphScale::small(20);
    for nodes in [8u32, 14, 20, 27] {
        let run = presets::small_graph_config(nodes);
        for fw in Framework::BOTH {
            let plan = pagerank::plan(fw, &scale);
            record_cell(&mut exp, &plan, fw, &run, cal, nodes as f64)?;
        }
    }
    Ok(exp.figure())
}

/// Fig 13: Page Rank, Medium graph, increasing cluster size.
pub fn fig13(cal: &Calibration) -> Result<Figure, HarnessError> {
    let mut exp = Experiment::new("fig13", "Page Rank - Medium Graph", "Nodes");
    let scale = GraphScale::medium(20);
    for nodes in [24u32, 27, 34, 55] {
        let run = presets::medium_graph_config(nodes);
        for fw in Framework::BOTH {
            let plan = pagerank::plan(fw, &scale);
            record_cell(&mut exp, &plan, fw, &run, cal, nodes as f64)?;
        }
    }
    Ok(exp.figure())
}

/// Fig 14: Connected Components, Small graph.
pub fn fig14(cal: &Calibration) -> Result<Figure, HarnessError> {
    let mut exp = Experiment::new("fig14", "Connected Components - Small Graph", "Nodes");
    let scale = GraphScale::small(23);
    for nodes in [8u32, 14, 20, 27] {
        let run = presets::small_graph_config(nodes);
        for fw in Framework::BOTH {
            let plan = connected::plan(fw, &scale, CcVariant::Delta);
            record_cell(&mut exp, &plan, fw, &run, cal, nodes as f64)?;
        }
    }
    Ok(exp.figure())
}

/// Fig 15: Connected Components, Medium graph.
pub fn fig15(cal: &Calibration) -> Result<Figure, HarnessError> {
    let mut exp = Experiment::new("fig15", "Connected Components - Medium Graph", "Nodes");
    let scale = GraphScale::medium(23);
    for nodes in [27u32, 34, 55] {
        let run = presets::medium_graph_config(nodes);
        for fw in Framework::BOTH {
            let plan = connected::plan(fw, &scale, CcVariant::Delta);
            record_cell(&mut exp, &plan, fw, &run, cal, nodes as f64)?;
        }
    }
    Ok(exp.figure())
}

/// Fig 16: Page Rank resource usage, Small graph, 27 nodes, 20 iterations.
pub fn fig16(cal: &Calibration) -> Result<ResourceFigure, HarnessError> {
    let scale = GraphScale::small(20);
    let run = presets::small_graph_config(27);
    resource_figure(
        "fig16",
        "Page Rank resource usage, 27 nodes, 20 iterations, Small Graph".into(),
        &pagerank::plan(Framework::Spark, &scale),
        &pagerank::plan(Framework::Flink, &scale),
        &run,
        cal,
    )
}

/// Fig 17: Connected Components resource usage, Medium graph, 27 nodes.
pub fn fig17(cal: &Calibration) -> Result<ResourceFigure, HarnessError> {
    let scale = GraphScale::medium(23);
    let run = presets::medium_graph_config(27);
    resource_figure(
        "fig17",
        "Connected Components resource usage, 27 nodes, 23 iterations, Medium Graph".into(),
        &connected::plan(Framework::Spark, &scale, CcVariant::Delta),
        &connected::plan(Framework::Flink, &scale, CcVariant::Delta),
        &run,
        cal,
    )
}

// ---------------------------------------------------------------------------
// Table VII: Large graph
// ---------------------------------------------------------------------------

/// One Table VII row.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Cluster size.
    pub nodes: u32,
    /// (load, iterate) per framework per algorithm.
    pub flink_pr: (CellOutcome, CellOutcome),
    /// Spark Page Rank.
    pub spark_pr: (CellOutcome, CellOutcome),
    /// Flink Connected Components.
    pub flink_cc: (CellOutcome, CellOutcome),
    /// Spark Connected Components.
    pub spark_cc: (CellOutcome, CellOutcome),
}

/// Splits a simulated run into (load, iterate) times using the trace: the
/// iterate phase starts at the earliest span whose label marks an
/// iteration round.
fn split_load_iterate(result: &SimResult) -> (f64, f64) {
    let iter_start = result
        .trace
        .spans()
        .iter()
        .filter(|s| s.name.starts_with("Iter:") || s.name.starts_with("iter"))
        .map(|s| s.start)
        .fold(f64::INFINITY, f64::min);
    if iter_start.is_finite() {
        (iter_start, result.seconds - iter_start)
    } else {
        (result.seconds, 0.0)
    }
}

/// Table VII: Page Rank (5 iterations) and Connected Components (10) on the
/// Large graph at 27, 44 and 97 nodes, failures included.
pub fn table7(cal: &Calibration) -> Result<Vec<Table7Row>, HarnessError> {
    let mut rows = Vec::new();
    for nodes in [27u32, 44, 97] {
        let run = presets::large_graph_config(nodes);
        let pr_scale = GraphScale::large(5);
        let cc_scale = GraphScale::large(10);

        let cell = |plan: &LogicalPlan, fw: Framework| -> Result<(f64, f64), HarnessError> {
            let r = simulate(plan, fw, &run, cal, 1)?;
            Ok(split_load_iterate(&r))
        };

        // Flink: the CoGroup solution set must fit in managed memory; a
        // failure kills the whole job (both cells are "no").
        let flink_mem = check_flink_graph_memory(pr_scale.vertices, pr_scale.edges, &run, cal);
        let flink_cells = |scale: &GraphScale,
                           variant: Option<CcVariant>|
         -> Result<(CellOutcome, CellOutcome), HarnessError> {
            match &flink_mem {
                Err(e) => Ok((
                    CellOutcome::Failed(e.to_string()),
                    CellOutcome::Failed(e.to_string()),
                )),
                Ok(_) => {
                    let plan = match variant {
                        None => pagerank::plan(Framework::Flink, scale),
                        Some(v) => connected::plan(Framework::Flink, scale, v),
                    };
                    let (load, iter) = cell(&plan, Framework::Flink)?;
                    Ok((CellOutcome::Time(load), CellOutcome::Time(iter)))
                }
            }
        };
        let flink_pr = flink_cells(&pr_scale, None)?;
        let flink_cc = flink_cells(&cc_scale, Some(CcVariant::Delta))?;

        // Spark: the load stage spills to disk and survives; the iteration
        // working set must fit on the heap.
        let spark_cells = |scale: &GraphScale,
                           algo: GraphAlgorithm|
         -> Result<(CellOutcome, CellOutcome), HarnessError> {
            let plan = match algo {
                GraphAlgorithm::PageRank => pagerank::plan(Framework::Spark, scale),
                GraphAlgorithm::ConnectedComponents => {
                    connected::plan(Framework::Spark, scale, CcVariant::Bulk)
                }
            };
            let (load, iter) = cell(&plan, Framework::Spark)?;
            let iter_cell = match check_spark_graph_memory(algo, scale.edges, &run, cal) {
                Ok(_) => CellOutcome::Time(iter),
                Err(e) => CellOutcome::Failed(e.to_string()),
            };
            Ok((CellOutcome::Time(load), iter_cell))
        };
        let spark_pr = spark_cells(&pr_scale, GraphAlgorithm::PageRank)?;
        let spark_cc = spark_cells(&cc_scale, GraphAlgorithm::ConnectedComponents)?;

        rows.push(Table7Row {
            nodes,
            flink_pr,
            spark_pr,
            flink_cc,
            spark_cc,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// §VI-E ablation: Flink CC with bulk vs delta iterations (Medium graph,
/// 27 nodes). Returns `(bulk_seconds, delta_seconds)`.
pub fn ablation_delta(cal: &Calibration) -> Result<(f64, f64), HarnessError> {
    let scale = GraphScale::medium(23);
    let run = presets::medium_graph_config(27);
    let bulk = simulate(
        &connected::plan(Framework::Flink, &scale, CcVariant::Bulk),
        Framework::Flink,
        &run,
        cal,
        1,
    )?;
    let delta = simulate(
        &connected::plan(Framework::Flink, &scale, CcVariant::Delta),
        Framework::Flink,
        &run,
        cal,
        1,
    )?;
    Ok((bulk.seconds, delta.seconds))
}

/// §IV-D ablation: Spark Word Count with Java vs Kryo serializer (16
/// nodes, 24 GB/node). Returns `(java_seconds, kryo_seconds)`.
pub fn ablation_serializer(cal: &Calibration) -> Result<(f64, f64), HarnessError> {
    use flowmark_core::config::Serializer;
    let scale = WordCountScale::per_node(16, 24.0);
    let plan = wordcount::plan(Framework::Spark, &scale);
    let mut run = presets::wordcount_config(16);
    run.spark.serializer = Serializer::Java;
    let java = simulate(&plan, Framework::Spark, &run, cal, 1)?;
    run.spark.serializer = Serializer::Kryo;
    let kryo = simulate(&plan, Framework::Spark, &run, cal, 1)?;
    Ok((java.seconds, kryo.seconds))
}

/// §VI-A ablation: Spark Word Count with the paper's parallelism vs
/// "double the number of cores" (8 nodes) — the paper measured +10%.
/// Returns `(tuned_seconds, reduced_seconds)`.
pub fn ablation_parallelism(cal: &Calibration) -> Result<(f64, f64), HarnessError> {
    let scale = WordCountScale::per_node(8, 24.0);
    let plan = wordcount::plan(Framework::Spark, &scale);
    let tuned_run = presets::wordcount_config(8); // 768 = 6 × cores
    let tuned = simulate(&plan, Framework::Spark, &tuned_run, cal, 1)?;
    let mut reduced_run = tuned_run.clone();
    reduced_run.spark.default_parallelism = 8 * 16 * 2; // 2 × cores
    let reduced = simulate(&plan, Framework::Spark, &reduced_run, cal, 1)?;
    Ok((tuned.seconds, reduced.seconds))
}

/// §VI-E ablation: `spark.edge.partition` sensitivity on the Medium graph
/// at 24 nodes. The paper: "we experimented with larger values ... and we
/// found a large drop in performance (up to 50%)", and a drop for
/// decreased values too ("inefficient resource usage"). Returns
/// `(ep, seconds)` per setting; consolidation is off, as for GraphX's
/// 1.5-era shuffle.
pub fn ablation_partitions(cal: &Calibration) -> Result<Vec<(u32, f64)>, HarnessError> {
    let scale = GraphScale::medium(20);
    let mut out = Vec::new();
    for ep in [360u32, 1440, 8640] {
        let mut run = presets::medium_graph_config(24);
        run.spark.edge_partitions = Some(ep);
        run.spark.consolidate_files = false;
        let plan = pagerank::plan(Framework::Spark, &scale);
        let r = simulate(&plan, Framework::Spark, &run, cal, 1)?;
        out.push((ep, r.seconds));
    }
    Ok(out)
}

/// §VI-C ablation: Tera Sort, 27 nodes × 75 GB/node with 102 GB memory —
/// "Again, Flink showed 15% smaller execution times."
/// Returns `(spark_seconds, flink_seconds)`.
pub fn ablation_terasort_memory(cal: &Calibration) -> Result<(f64, f64), HarnessError> {
    let scale = TeraSortScale::per_node(27, 75.0);
    let mut run = presets::terasort_config(27);
    run.spark.executor_memory_gb = 102.0;
    run.flink.taskmanager_memory_gb = 102.0;
    let spark = simulate(
        &terasort::plan(Framework::Spark, &scale),
        Framework::Spark,
        &run,
        cal,
        1,
    )?;
    let flink = simulate(
        &terasort::plan(Framework::Flink, &scale),
        Framework::Flink,
        &run,
        cal,
        1,
    )?;
    Ok((spark.seconds, flink.seconds))
}
