//! `repro bench --smoke`: wall-clock micro-benchmark of the real-engine
//! hot paths.
//!
//! Runs the batch workloads (Word Count, Grep, TeraSort) *and* the
//! iterative workloads (K-Means, Page Rank, Connected Components) on both
//! engines at fixed seeds and fixed input sizes, verifies every output
//! against the sequential oracle, and reports per-workload throughput. The
//! smoke bench exists to keep the PR-level performance claims honest:
//! `BENCH_PR1_SEED.json` captures the pre-optimization shuffle path
//! (`BENCH_PR1.json` reports against it), and `BENCH_PR5.json` embeds the
//! pre-CSR iteration baseline the same way.

use std::time::Instant;

use flowmark_datagen::graph::{RmatGen, RmatParams};
use flowmark_datagen::nexmark::{generate, NexmarkConfig, NexmarkEvent};
use flowmark_datagen::points::{PointsConfig, PointsGen};
use flowmark_datagen::terasort::TeraGen;
use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_engine::faults::{CancelToken, FaultConfig, FaultPlan};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::spark::SparkContext;
use flowmark_engine::streaming::runtime::{
    run_continuous_checkpointed, run_micro_batch_checkpointed, StreamJobConfig,
};
use flowmark_engine::streaming::source::shuffle_bounded;
use flowmark_engine::streaming::{SourceConfig, StreamSource};
use flowmark_workloads::connected::{self, CcVariant};
use flowmark_workloads::stream::{
    canonical, nexmark_source, q3_oracle, q6_operator, q6_oracle, route_nexmark, Q3Join,
};
use flowmark_workloads::{grep, kmeans, pagerank, terasort, wordcount};
use serde::{Deserialize, Serialize};

/// Fixed seeds so every run measures the same dataset.
const WC_SEED: u64 = 7;
const GREP_SEED: u64 = 3;
const TS_SEED: u64 = 11;
const KM_SEED: u64 = 13;
const PR_SEED: u64 = 17;
const CC_SEED: u64 = 19;
const NX_SEED: u64 = 23;

/// One measured cell: a workload on one engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchCell {
    /// Workload id: `wordcount`, `grep`, `terasort`, `kmeans`, `pagerank`
    /// or `connected`.
    pub workload: String,
    /// Engine id: `spark` (staged) or `flink` (pipelined).
    pub engine: String,
    /// Input records processed per iteration.
    pub records: u64,
    /// Best-of-N wall-clock seconds.
    pub seconds: f64,
    /// Input records per second at the best iteration.
    pub records_per_sec: f64,
    /// Records crossing the shuffle, from [`EngineMetrics`]; stable across
    /// perf refactors by design (checked by tests).
    pub records_shuffled: u64,
    /// Iteration messages removed by sender-side combining before they
    /// crossed a channel; 0 for the batch workloads (`default` keeps
    /// pre-existing JSON artifacts parseable).
    #[serde(default)]
    pub messages_combined: u64,
    /// Column batches processed by vectorized kernels and the
    /// batch-granularity exchange; 0 on the record-at-a-time path
    /// (`default` keeps pre-existing JSON artifacts parseable).
    #[serde(default)]
    pub batches_processed: u64,
    /// Column batches sealed with a digest at shuffle-write or source-seal
    /// time; 0 on the record-at-a-time path (`default` keeps pre-integrity
    /// JSON artifacts such as `BENCH_PR6.json` parseable).
    #[serde(default)]
    pub batches_checksummed: u64,
    /// Points the vectorized K-Means `assign_accumulate` kernel assigned;
    /// 0 on the record adapter (`default` keeps BENCH_PR6/PR7 parseable).
    #[serde(default)]
    pub points_assigned_vectorized: u64,
    /// Sorted runs the LSD radix kernel produced in place of a comparison
    /// sort; 0 on the record adapter (`default` keeps BENCH_PR6/PR7
    /// parseable).
    #[serde(default)]
    pub radix_sort_runs: u64,
    /// Event slabs the streaming runtime carried instead of per-event
    /// sends; 0 on batch workloads and the per-event runtime (`default`
    /// keeps BENCH_PR6/PR7 parseable).
    #[serde(default)]
    pub stream_batches: u64,
    /// `batch` when any vectorized counter fired during the cell, `record`
    /// otherwise — makes a silent regression to the record adapter visible
    /// in the table (`default` keeps pre-existing artifacts parseable).
    #[serde(default)]
    pub path: String,
    /// True when the output matched the sequential oracle.
    pub verified: bool,
}

/// A full smoke-bench run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Free-form label, e.g. `seed` or `optimized`.
    pub label: String,
    /// Timed iterations per cell (best is kept).
    pub iterations: u32,
    /// Engine partitions/parallelism used.
    pub partitions: usize,
    /// All measured cells.
    pub cells: Vec<BenchCell>,
}

/// A report plus an optional embedded baseline for speedup accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// The run being reported.
    pub measured: BenchReport,
    /// The committed seed baseline, when available.
    pub seed_baseline: Option<BenchReport>,
    /// `workload/engine → measured.records_per_sec / seed.records_per_sec`.
    pub speedup_vs_seed: Vec<(String, f64)>,
}

/// Input sizes for one smoke run.
#[derive(Debug, Clone, Copy)]
pub struct SmokeScale {
    /// Word Count / Grep corpus lines.
    pub lines: usize,
    /// TeraSort records.
    pub ts_records: usize,
    /// R-MAT edges for Page Rank / Connected Components.
    pub graph_edges: usize,
    /// K-Means sample points.
    pub kmeans_points: usize,
    /// Nexmark events per streaming query (q3/q6 throughput cells).
    pub stream_events: usize,
    /// Supersteps for the iterative workloads (PR iterations, K-Means
    /// rounds; CC always runs to its fixpoint).
    pub rounds: u32,
    /// Timed iterations per cell (best-of-N).
    pub iterations: u32,
    /// Engine parallelism.
    pub partitions: usize,
}

impl SmokeScale {
    /// CLI scale: large enough for stable timings in release builds.
    pub fn full() -> Self {
        Self {
            lines: 120_000,
            ts_records: 150_000,
            graph_edges: 120_000,
            kmeans_points: 200_000,
            stream_events: 60_000,
            rounds: 10,
            iterations: 3,
            partitions: 8,
        }
    }

    /// Test scale: completes in well under a second even in debug builds.
    pub fn tiny() -> Self {
        Self {
            lines: 1_500,
            ts_records: 1_500,
            graph_edges: 1_200,
            kmeans_points: 1_500,
            stream_events: 1_200,
            rounds: 3,
            iterations: 1,
            partitions: 4,
        }
    }
}

fn time_best<R>(iterations: u32, mut run: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iterations.max(1) {
        let start = Instant::now();
        let r = run();
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
        out = Some(r);
    }
    (best, out.unwrap())
}

fn cell(
    workload: &str,
    engine: &str,
    records: u64,
    seconds: f64,
    metrics: &flowmark_engine::EngineMetrics,
    verified: bool,
) -> BenchCell {
    BenchCell {
        workload: workload.into(),
        engine: engine.into(),
        records,
        seconds,
        records_per_sec: if seconds > 0.0 {
            records as f64 / seconds
        } else {
            0.0
        },
        records_shuffled: metrics.records_shuffled(),
        messages_combined: metrics.messages_combined(),
        batches_processed: metrics.batches_processed(),
        batches_checksummed: metrics.recovery().batches_checksummed,
        points_assigned_vectorized: metrics.points_assigned_vectorized(),
        radix_sort_runs: metrics.radix_sort_runs(),
        stream_batches: metrics.stream_batches(),
        path: if metrics.batches_processed() > 0
            || metrics.points_assigned_vectorized() > 0
            || metrics.radix_sort_runs() > 0
            || metrics.stream_batches() > 0
        {
            "batch".into()
        } else {
            "record".into()
        },
        verified,
    }
}

/// Builds one streaming query's dataset the way `repro stream` does: a
/// generated Nexmark stream with bounded in-allowance disorder, so the
/// runtimes see watermark lag but drop nothing.
fn stream_dataset(seed: u64, events: usize) -> StreamSource<NexmarkEvent> {
    let mut src = nexmark_source(
        generate(seed, events, &NexmarkConfig::default()),
        SourceConfig {
            allowance: 32,
            watermark_every: 16,
            stall_watermark_after: None,
            hold_at_end: false,
        },
    );
    src.events = shuffle_bounded(src.events, seed ^ 0xD150_4DE4, 6);
    src
}

/// Runs the smoke benchmark: WC + Grep + TeraSort + K-Means + Page Rank +
/// Connected Components on both engines, each cell verified against the
/// sequential oracle.
pub fn run_smoke(scale: SmokeScale, label: &str) -> BenchReport {
    let mut cells = Vec::new();
    let parts = scale.partitions;

    // --- Word Count -------------------------------------------------------
    let wc_lines = TextGen::new(TextGenConfig::default(), WC_SEED).lines(scale.lines);
    let wc_expect = wordcount::oracle(&wc_lines);
    {
        let lines = wc_lines.clone();
        let sc = SparkContext::new(parts, 256 << 20);
        let (secs, out) = time_best(scale.iterations, || {
            wordcount::run_spark(&sc, lines.clone(), parts)
        });
        cells.push(cell(
            "wordcount",
            "spark",
            lines.len() as u64,
            secs,
            sc.metrics(),
            out == wc_expect,
        ));
    }
    {
        let lines = wc_lines.clone();
        let env = FlinkEnv::new(parts);
        let (secs, out) = time_best(scale.iterations, || {
            wordcount::run_flink(&env, lines.clone())
        });
        cells.push(cell(
            "wordcount",
            "flink",
            lines.len() as u64,
            secs,
            env.metrics(),
            out == wc_expect,
        ));
    }

    // --- Grep -------------------------------------------------------------
    let grep_config = TextGenConfig {
        needle_selectivity: 0.05,
        ..TextGenConfig::default()
    };
    let needle = grep_config.needle.clone();
    let grep_lines = TextGen::new(grep_config, GREP_SEED).lines(scale.lines);
    let grep_expect = grep::oracle(&grep_lines, &needle);
    {
        let lines = grep_lines.clone();
        let sc = SparkContext::new(parts, 256 << 20);
        let (secs, out) = time_best(scale.iterations, || {
            grep::run_spark(&sc, lines.clone(), &needle, parts)
        });
        cells.push(cell(
            "grep",
            "spark",
            lines.len() as u64,
            secs,
            sc.metrics(),
            out == grep_expect,
        ));
    }
    {
        let lines = grep_lines.clone();
        let env = FlinkEnv::new(parts);
        let (secs, out) = time_best(scale.iterations, || {
            grep::run_flink(&env, lines.clone(), &needle)
        });
        cells.push(cell(
            "grep",
            "flink",
            lines.len() as u64,
            secs,
            env.metrics(),
            out == grep_expect,
        ));
    }

    // --- TeraSort ---------------------------------------------------------
    let ts_records = TeraGen::new(TS_SEED).records(scale.ts_records);
    let ts_expect_keys: Vec<Vec<u8>> = {
        let sorted = terasort::oracle(ts_records.clone());
        sorted.iter().map(|r| r.key().to_vec()).collect()
    };
    let ts_ok = |out: &[Vec<flowmark_datagen::terasort::Record>]| {
        terasort::validate_output(ts_records.len(), out).is_ok()
            && out
                .iter()
                .flatten()
                .map(|r| r.key().to_vec())
                .eq(ts_expect_keys.iter().cloned())
    };
    {
        let records = ts_records.clone();
        let sc = SparkContext::new(parts, 256 << 20);
        let (secs, out) = time_best(scale.iterations, || {
            terasort::run_spark(&sc, records.clone(), parts)
        });
        cells.push(cell(
            "terasort",
            "spark",
            records.len() as u64,
            secs,
            sc.metrics(),
            ts_ok(&out),
        ));
    }
    {
        let records = ts_records.clone();
        let env = FlinkEnv::new(parts);
        let (secs, out) = time_best(scale.iterations, || {
            terasort::run_flink(&env, records.clone(), parts)
        });
        cells.push(cell(
            "terasort",
            "flink",
            records.len() as u64,
            secs,
            env.metrics(),
            ts_ok(&out),
        ));
    }

    // --- K-Means ----------------------------------------------------------
    let mut km_gen = PointsGen::new(PointsConfig::default(), KM_SEED);
    let km_init: Vec<_> = km_gen.true_centers().to_vec();
    let km_points = km_gen.points(scale.kmeans_points);
    let km_expect = kmeans::oracle(&km_points, km_init.clone(), scale.rounds);
    let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
    let km_ok = |out: &[flowmark_datagen::points::Point]| {
        out.len() == km_expect.len()
            && out
                .iter()
                .zip(&km_expect)
                .all(|(p, q)| close(p.x, q.x) && close(p.y, q.y))
    };
    {
        let sc = SparkContext::new(parts, 256 << 20);
        let (secs, out) = time_best(scale.iterations, || {
            kmeans::run_spark(&sc, km_points.clone(), km_init.clone(), scale.rounds, parts)
        });
        cells.push(cell(
            "kmeans",
            "spark",
            km_points.len() as u64,
            secs,
            sc.metrics(),
            km_ok(&out),
        ));
    }
    {
        let env = FlinkEnv::new(parts);
        let (secs, out) = time_best(scale.iterations, || {
            kmeans::run_flink(&env, km_points.clone(), km_init.clone(), scale.rounds)
        });
        cells.push(cell(
            "kmeans",
            "flink",
            km_points.len() as u64,
            secs,
            env.metrics(),
            km_ok(&out),
        ));
    }

    // --- Page Rank --------------------------------------------------------
    let pr_edges = RmatGen::new(10, RmatParams::default(), PR_SEED).edges(scale.graph_edges);
    let pr_expect = pagerank::oracle(&pr_edges, scale.rounds);
    let pr_ok = |out: &std::collections::HashMap<u64, f64>| {
        out.len() == pr_expect.len()
            && out
                .iter()
                .all(|(v, r)| close(*r, pr_expect.get(v).copied().unwrap_or(f64::NAN)))
    };
    {
        let sc = SparkContext::new(parts, 256 << 20);
        let (secs, out) = time_best(scale.iterations, || {
            pagerank::run_spark(&sc, &pr_edges, scale.rounds, parts)
        });
        cells.push(cell(
            "pagerank",
            "spark",
            pr_edges.len() as u64,
            secs,
            sc.metrics(),
            pr_ok(&out),
        ));
    }
    {
        let env = FlinkEnv::new(parts);
        let (secs, out) = time_best(scale.iterations, || {
            pagerank::run_flink(&env, &pr_edges, scale.rounds, parts)
        });
        cells.push(cell(
            "pagerank",
            "flink",
            pr_edges.len() as u64,
            secs,
            env.metrics(),
            out.as_ref().map(|m| pr_ok(m)).unwrap_or(false),
        ));
    }

    // --- Connected Components ---------------------------------------------
    let cc_edges = RmatGen::new(10, RmatParams::default(), CC_SEED).edges(scale.graph_edges);
    let cc_expect = connected::oracle(&cc_edges);
    {
        let sc = SparkContext::new(parts, 256 << 20);
        let (secs, out) = time_best(scale.iterations, || {
            connected::run_spark(&sc, &cc_edges, 200, parts)
        });
        cells.push(cell(
            "connected",
            "spark",
            cc_edges.len() as u64,
            secs,
            sc.metrics(),
            out == cc_expect,
        ));
    }
    {
        // Delta variant: exercises the dense solution-set path.
        let env = FlinkEnv::new(parts);
        let (secs, out) = time_best(scale.iterations, || {
            connected::run_flink(&env, &cc_edges, 200, parts, CcVariant::Delta, None)
        });
        cells.push(cell(
            "connected",
            "flink",
            cc_edges.len() as u64,
            secs,
            env.metrics(),
            out.map(|m| m == cc_expect).unwrap_or(false),
        ));
    }

    // --- Nexmark streaming throughput ---------------------------------------
    // q3 (filter-join) and q6 (windowed aggregate) on both checkpointed
    // runtimes, clean plan: micro-batch is the staged (`spark`) model,
    // continuous the pipelined (`flink`) one.
    let nx_cfg = StreamJobConfig {
        parallelism: parts.min(4),
        ..StreamJobConfig::default()
    };
    let nx_plan = FaultPlan::new(FaultConfig {
        checkpoint_interval_records: 64,
        ..FaultConfig::default()
    });
    let q3_src = stream_dataset(NX_SEED ^ 0x51_33, scale.stream_events);
    let q6_src = stream_dataset(NX_SEED ^ 0x51_66, scale.stream_events);
    let q3_expect = q3_oracle(&q3_src);
    let q6_expect = q6_oracle(&q6_src);
    for (engine, micro) in [("spark", true), ("flink", false)] {
        let metrics = flowmark_engine::EngineMetrics::new();
        let cancel = CancelToken::new();
        let (secs, out) = time_best(scale.iterations, || {
            if micro {
                run_micro_batch_checkpointed(
                    &q3_src, |_| Q3Join::new(), route_nexmark, &nx_cfg, &nx_plan, &metrics, &cancel,
                )
            } else {
                run_continuous_checkpointed(
                    &q3_src, |_| Q3Join::new(), route_nexmark, &nx_cfg, &nx_plan, &metrics, &cancel,
                )
            }
        });
        cells.push(cell(
            "nexmark_q3",
            engine,
            q3_src.events.len() as u64,
            secs,
            &metrics,
            canonical(&out.committed) == q3_expect,
        ));
    }
    for (engine, micro) in [("spark", true), ("flink", false)] {
        let metrics = flowmark_engine::EngineMetrics::new();
        let cancel = CancelToken::new();
        let (secs, out) = time_best(scale.iterations, || {
            if micro {
                run_micro_batch_checkpointed(
                    &q6_src, |_| q6_operator(), route_nexmark, &nx_cfg, &nx_plan, &metrics, &cancel,
                )
            } else {
                run_continuous_checkpointed(
                    &q6_src, |_| q6_operator(), route_nexmark, &nx_cfg, &nx_plan, &metrics, &cancel,
                )
            }
        });
        cells.push(cell(
            "nexmark_q6",
            engine,
            q6_src.events.len() as u64,
            secs,
            &metrics,
            canonical(&out.committed) == q6_expect,
        ));
    }

    BenchReport {
        label: label.into(),
        iterations: scale.iterations,
        partitions: parts,
        cells,
    }
}

/// Pairs a run with a baseline and computes per-cell speedups.
pub fn compare(measured: BenchReport, seed_baseline: Option<BenchReport>) -> ComparisonReport {
    let mut speedup_vs_seed = Vec::new();
    if let Some(base) = &seed_baseline {
        for m in &measured.cells {
            if let Some(b) = base
                .cells
                .iter()
                .find(|b| b.workload == m.workload && b.engine == m.engine)
            {
                if b.records_per_sec > 0.0 {
                    speedup_vs_seed.push((
                        format!("{}/{}", m.workload, m.engine),
                        m.records_per_sec / b.records_per_sec,
                    ));
                }
            }
        }
    }
    ComparisonReport {
        measured,
        seed_baseline,
        speedup_vs_seed,
    }
}

/// Renders a human-readable table of one report (plus speedups if present).
pub fn render(report: &ComparisonReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "smoke bench [{}] — best of {} iteration(s), {} partitions\n",
        report.measured.label, report.measured.iterations, report.measured.partitions
    ));
    out.push_str(&format!(
        "{:<10} {:<6} {:>10} {:>10} {:>14} {:>6} {:>9}\n",
        "workload", "engine", "records", "seconds", "records/sec", "path", "verified"
    ));
    for c in &report.measured.cells {
        out.push_str(&format!(
            "{:<10} {:<6} {:>10} {:>10.4} {:>14.0} {:>6} {:>9}\n",
            c.workload, c.engine, c.records, c.seconds, c.records_per_sec, c.path, c.verified
        ));
    }
    if !report.speedup_vs_seed.is_empty() {
        out.push_str("speedup vs seed baseline:\n");
        for (k, s) in &report.speedup_vs_seed {
            out.push_str(&format!("  {k:<18} {s:>6.2}x\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_smoke_verifies_all_cells() {
        let report = run_smoke(SmokeScale::tiny(), "test");
        assert_eq!(report.cells.len(), 16);
        for c in &report.cells {
            assert!(c.verified, "{}/{} diverged from oracle", c.workload, c.engine);
            assert!(c.records > 0 && c.seconds >= 0.0);
        }
    }

    #[test]
    fn compare_computes_speedups() {
        let mut a = run_smoke(SmokeScale::tiny(), "seed");
        let b = a.clone();
        for c in &mut a.cells {
            c.records_per_sec /= 2.0;
        }
        let cmp = compare(b, Some(a));
        assert_eq!(cmp.speedup_vs_seed.len(), 16);
        for (_, s) in &cmp.speedup_vs_seed {
            assert!((s - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = compare(run_smoke(SmokeScale::tiny(), "test"), None);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ComparisonReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.measured.cells.len(), report.measured.cells.len());
        assert_eq!(back.measured.label, report.measured.label);
    }
}
