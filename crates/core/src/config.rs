//! Parameter configuration model (§IV of the paper).
//!
//! The paper identifies four parameter groups with a major influence on the
//! end-to-end execution: task parallelism, shuffle/network buffers, memory
//! management and data serialization. This module models those parameters
//! for both engines, provides the formulas used in Tables II, III, V and VI,
//! and validates configurations the way the real frameworks fail
//! (insufficient task slots, insufficient network buffers, heap too small).

use serde::{Deserialize, Serialize};

/// Which engine a configuration or result refers to.
///
/// Throughout flowmark, `Spark` denotes the staged/loop-unrolling engine
/// model ("Riverbed") and `Flink` the pipelined/native-iteration model
/// ("Streamside"), matching the systems the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Framework {
    /// Staged execution, RDD model (Apache Spark 1.5.3 in the paper).
    Spark,
    /// Pipelined execution, PACT model (Apache Flink 0.10.2 in the paper).
    Flink,
}

impl Framework {
    /// Both frameworks, in the paper's plotting order.
    pub const BOTH: [Framework; 2] = [Framework::Spark, Framework::Flink];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Framework::Spark => "Spark",
            Framework::Flink => "Flink",
        }
    }
}

impl std::fmt::Display for Framework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Serializer choice (§IV-D). Flink always uses type-information-driven
/// binary serialization; Spark defaults to Java and can be switched to Kryo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Serializer {
    /// JDK object serialization: large records, high CPU cost.
    Java,
    /// Kryo: compact, faster than Java, still generic.
    Kryo,
    /// Flink TypeInformation-based binary format with serialized-form
    /// comparators (e.g. `OptimizedText`).
    TypeInfo,
}

impl Serializer {
    /// Relative on-wire/On-disk size factor vs. raw payload bytes.
    /// Calibrated from published JVM serializer benchmarks: Java ≈ 1.6×,
    /// Kryo ≈ 1.1×, Flink binary ≈ 1.0×.
    pub fn size_factor(self) -> f64 {
        match self {
            Serializer::Java => 1.60,
            Serializer::Kryo => 1.10,
            Serializer::TypeInfo => 1.00,
        }
    }

    /// Relative CPU cost factor per serialized byte (Java slowest).
    pub fn cpu_factor(self) -> f64 {
        match self {
            Serializer::Java => 1.80,
            Serializer::Kryo => 1.15,
            Serializer::TypeInfo => 1.00,
        }
    }
}

/// Spark-side execution parameters (§IV, Tables II/III/V/VI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparkConfig {
    /// `spark.default.parallelism`: number of partitions of shuffled RDDs.
    pub default_parallelism: u32,
    /// `spark.executor.memory` in GiB (all of it on the JVM heap).
    pub executor_memory_gb: f64,
    /// `spark.storage.fraction`: heap fraction reserved for cached RDDs.
    pub storage_fraction: f64,
    /// `spark.shuffle.fraction`: heap fraction reserved for shuffle buffers.
    pub shuffle_fraction: f64,
    /// `spark.serializer`.
    pub serializer: Serializer,
    /// Shuffle file buffer size in KiB (`shuffle.file.buffer`).
    pub shuffle_file_buffer_kb: u32,
    /// Shuffle file consolidation enabled (the paper enables it).
    pub consolidate_files: bool,
    /// Map-output compression (on by default in Spark; the paper notes
    /// "Spark uses less network in this case due to the map output
    /// compression", §VI-C).
    pub compress_map_output: bool,
    /// GraphX `spark.edge.partition` (edge partitions), when applicable.
    pub edge_partitions: Option<u32>,
}

impl Default for SparkConfig {
    fn default() -> Self {
        Self {
            default_parallelism: 8,
            executor_memory_gb: 22.0,
            storage_fraction: 0.3,
            shuffle_fraction: 0.3,
            serializer: Serializer::Java,
            shuffle_file_buffer_kb: 32,
            consolidate_files: true,
            compress_map_output: true,
            edge_partitions: None,
        }
    }
}

/// Flink-side execution parameters (§IV, Tables II/III/V/VI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlinkConfig {
    /// `flink.default.parallelism` (bounded by total task slots).
    pub default_parallelism: u32,
    /// Task slots per node (typically = cores, sometimes 2× cores, §VI-A).
    pub task_slots_per_node: u32,
    /// `taskmanager.memory` in GiB.
    pub taskmanager_memory_gb: f64,
    /// `taskmanager.memory.fraction`: portion managed (sort/hash/cache).
    pub memory_fraction: f64,
    /// Hybrid on-/off-heap allocation enabled (`flink.off-heap`).
    pub off_heap: bool,
    /// Number of network buffers (`flink.nw.buffers`); the paper sets
    /// `Nodes*2048` for WC/Grep, `Nodes*1024` for TeraSort, and
    /// `cores²·nodes·16` for graphs.
    pub network_buffers: u32,
    /// Network buffer size in KiB (32 default, paper uses 64/128).
    pub buffer_size_kb: u32,
}

impl Default for FlinkConfig {
    fn default() -> Self {
        Self {
            default_parallelism: 8,
            task_slots_per_node: 16,
            taskmanager_memory_gb: 4.0,
            memory_fraction: 0.7,
            off_heap: true,
            network_buffers: 2048,
            buffer_size_kb: 32,
        }
    }
}

/// Cluster-wide settings shared by both engines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: u32,
    /// Cores per node (Grid'5000 paravance: 2 × 8).
    pub cores_per_node: u32,
    /// RAM per node in GiB (128 on the testbed).
    pub ram_gb: f64,
    /// HDFS block size in MiB (256 for WC/Grep, 1024 for TeraSort).
    pub hdfs_block_mb: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 4,
            cores_per_node: 16,
            ram_gb: 128.0,
            hdfs_block_mb: 256,
        }
    }
}

impl ClusterConfig {
    /// Total cores in the cluster.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }
}

/// A complete experiment configuration: cluster plus both engine configs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Shared cluster settings.
    pub cluster: ClusterConfig,
    /// Spark parameters.
    pub spark: SparkConfig,
    /// Flink parameters.
    pub flink: FlinkConfig,
}

impl RunConfig {
    /// Builds the paper's canonical configuration for a cluster size using
    /// the §IV formulas: Spark parallelism = cores × factor (2..6), Flink
    /// parallelism = total cores, Flink buffers = nodes × 2048.
    pub fn canonical(nodes: u32, spark_parallelism_factor: u32) -> Self {
        let cluster = ClusterConfig {
            nodes,
            ..ClusterConfig::default()
        };
        let cores = cluster.total_cores();
        let spark = SparkConfig {
            default_parallelism: cores * spark_parallelism_factor,
            ..SparkConfig::default()
        };
        let flink = FlinkConfig {
            default_parallelism: cores,
            network_buffers: nodes * 2048,
            ..FlinkConfig::default()
        };
        Self {
            cluster,
            spark,
            flink,
        }
    }

    /// Per-engine parallelism.
    pub fn parallelism(&self, fw: Framework) -> u32 {
        match fw {
            Framework::Spark => self.spark.default_parallelism,
            Framework::Flink => self.flink.default_parallelism,
        }
    }
}

/// Configuration validation failures, mirroring how the real frameworks die
/// (§VI-A "we had to increase the number of buffers in order to avoid failed
/// executions"; §VI-C "otherwise Flink fails due to insufficient task
/// slots").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigError {
    /// Flink parallelism exceeds available task slots.
    InsufficientTaskSlots {
        /// Requested operator parallelism.
        requested: u32,
        /// Total task slots in the cluster.
        available: u32,
    },
    /// Flink network buffers cannot cover the shuffle connections.
    InsufficientNetworkBuffers {
        /// Buffers required for the densest shuffle.
        required: u32,
        /// Buffers configured.
        configured: u32,
    },
    /// Memory fraction outside `(0, 1]`.
    InvalidFraction {
        /// The offending parameter name.
        parameter: &'static str,
    },
    /// Zero parallelism or zero nodes.
    Degenerate {
        /// The offending parameter name.
        parameter: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InsufficientTaskSlots {
                requested,
                available,
            } => write!(
                f,
                "insufficient task slots: parallelism {requested} > {available} slots"
            ),
            ConfigError::InsufficientNetworkBuffers {
                required,
                configured,
            } => write!(
                f,
                "insufficient network buffers: need {required}, configured {configured}"
            ),
            ConfigError::InvalidFraction { parameter } => {
                write!(f, "{parameter} must lie in (0, 1]")
            }
            ConfigError::Degenerate { parameter } => {
                write!(f, "{parameter} must be non-zero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl RunConfig {
    /// Validates a configuration the way the frameworks do at job submit.
    ///
    /// Flink requires (a) parallelism ≤ total task slots and (b) at least
    /// `parallelism × parallelism / nodes` network buffers per node for an
    /// all-to-all shuffle (each logical channel between a mapper and a
    /// reducer subtask needs a buffer).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cluster.nodes == 0 {
            return Err(ConfigError::Degenerate { parameter: "nodes" });
        }
        if self.spark.default_parallelism == 0 {
            return Err(ConfigError::Degenerate {
                parameter: "spark.default.parallelism",
            });
        }
        if self.flink.default_parallelism == 0 {
            return Err(ConfigError::Degenerate {
                parameter: "flink.default.parallelism",
            });
        }
        for (value, parameter) in [
            (self.spark.storage_fraction, "spark.storage.fraction"),
            (self.spark.shuffle_fraction, "spark.shuffle.fraction"),
            (self.flink.memory_fraction, "taskmanager.memory.fraction"),
        ] {
            if !(value > 0.0 && value <= 1.0) {
                return Err(ConfigError::InvalidFraction { parameter });
            }
        }
        let slots = self.flink.task_slots_per_node * self.cluster.nodes;
        if self.flink.default_parallelism > slots {
            return Err(ConfigError::InsufficientTaskSlots {
                requested: self.flink.default_parallelism,
                available: slots,
            });
        }
        let p = self.flink.default_parallelism as u64;
        let required = (p * p / self.cluster.nodes.max(1) as u64).min(u32::MAX as u64) as u32;
        let configured = self.flink.network_buffers;
        if configured < required {
            return Err(ConfigError::InsufficientNetworkBuffers {
                required,
                configured,
            });
        }
        Ok(())
    }

    /// Managed memory per Flink task slot in bytes, the quantity whose
    /// exhaustion kills CoGroup on the large graph (§VI-E, Table VII).
    pub fn flink_managed_memory_per_slot(&self) -> f64 {
        let per_node = self.flink.taskmanager_memory_gb * self.flink.memory_fraction;
        per_node * 1e9 / self.flink.task_slots_per_node as f64
    }

    /// Spark heap available for execution per core, in bytes.
    pub fn spark_execution_memory_per_core(&self) -> f64 {
        let exec_fraction = 1.0 - self.spark.storage_fraction;
        self.spark.executor_memory_gb * exec_fraction * 1e9 / self.cluster.cores_per_node as f64
    }
}

/// Which partitioner a shuffle uses to route keys to reducers.
///
/// The paper notes the asymmetry (§II): Spark exposes partitioner control
/// to the user while Flink's aggregation path always hash-partitions, so
/// the pipelined engine honours this knob only where an explicit
/// partitioner is accepted (e.g. TeraSort's `partition_custom`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionerChoice {
    /// Hash-partitioned shuffle (both engines' default).
    Hash,
    /// Range-partitioned shuffle from a key sample; yields globally sorted
    /// reduce output and balances skewed key spaces (staged engine only).
    Range,
}

/// How an engine obtains threads for its stage/partition tasks.
///
/// Historically both engines spawned their own threads per job (scoped
/// chunk threads in the staged engine, one thread per partition per
/// operator in the pipelined one). That remains the default — it is the
/// measured baseline — but under concurrent multi-job load the shared
/// work-stealing pool (`flowmark-sched::TaskPool::global`) keeps a fixed
/// core set busy across jobs instead of oversubscribing the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ExecutorMode {
    /// Legacy per-job thread spawning (the bench baseline).
    #[default]
    PerJob,
    /// Submit stage tasks to the process-wide work-stealing pool.
    ///
    /// The pipelined engine's exchange producers/consumers keep their
    /// dedicated threads in this mode too: they block on bounded
    /// channels, which a fixed-size pool must never absorb.
    SharedPool,
}

/// A unified, serializable configuration for the *real* engines (the
/// staged `SparkContext` and the pipelined `FlinkEnv`), replacing the
/// per-engine constructor sprawl. Every knob maps to one of the paper's
/// §IV "most impactful parameters"; `flowmark-tune` searches this space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Task/partition parallelism (`spark.default.parallelism`, Flink
    /// operator parallelism).
    pub parallelism: usize,
    /// Records a bounded exchange channel holds before the producer blocks
    /// — the per-channel network-buffer pool (`flink.nw.buffers`; the
    /// staged engine has no pipelined channels so it ignores this).
    pub network_buffer_records: usize,
    /// Sort/combine buffer budget in records: how many records a map task
    /// buffers per reduce channel before sorting a run out (the managed
    /// sort memory of §IV-C).
    pub combine_buffer_records: usize,
    /// Spill threshold expressed as outstanding sorted runs per channel
    /// before the buffer pool forces an early merge-compaction.
    pub spill_run_budget: usize,
    /// Map-side combine on/off (§VI-A's aggregation component).
    pub combine_enabled: bool,
    /// Shuffle partitioner choice (staged engine only; see
    /// [`PartitionerChoice`]).
    pub partitioner: PartitionerChoice,
    /// Storage-cache budget in bytes (staged engine's block cache;
    /// the pipelined engine has no persistence layer, §VI-B).
    pub cache_bytes: u64,
    /// Where stage/partition tasks execute (defaults to the legacy
    /// per-job spawning; serde-defaulted so older artifacts parse).
    #[serde(default)]
    pub executor: ExecutorMode,
}

impl EngineConfig {
    /// Default task parallelism (the paper's per-node slot count scaled to
    /// one local machine).
    pub const DEFAULT_PARALLELISM: usize = 8;
    /// Default per-channel network-buffer capacity in records.
    pub const DEFAULT_NETWORK_BUFFER_RECORDS: usize = 1024;
    /// Default sort/combine buffer capacity in records.
    pub const DEFAULT_COMBINE_BUFFER_RECORDS: usize = 4096;
    /// Default outstanding-run budget per channel before a forced merge.
    pub const DEFAULT_SPILL_RUN_BUDGET: usize = 4;
    /// Default block-cache budget in bytes.
    pub const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

    /// The default configuration at an explicit parallelism.
    pub fn with_parallelism(parallelism: usize) -> Self {
        Self {
            parallelism,
            ..Self::default()
        }
    }

    /// Validates the knobs the engines would otherwise assert on.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (value, parameter) in [
            (self.parallelism, "parallelism"),
            (self.network_buffer_records, "network_buffer_records"),
            (self.combine_buffer_records, "combine_buffer_records"),
            (self.spill_run_budget, "spill_run_budget"),
        ] {
            if value == 0 {
                return Err(ConfigError::Degenerate { parameter });
            }
        }
        Ok(())
    }

    /// A stable 64-bit fingerprint of every knob (FNV-1a), the run-cache
    /// key used by `flowmark-tune`: identical configs always collide,
    /// across processes and runs.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.parallelism as u64);
        eat(self.network_buffer_records as u64);
        eat(self.combine_buffer_records as u64);
        eat(self.spill_run_budget as u64);
        eat(u64::from(self.combine_enabled));
        eat(match self.partitioner {
            PartitionerChoice::Hash => 0,
            PartitionerChoice::Range => 1,
        });
        eat(self.cache_bytes);
        eat(match self.executor {
            ExecutorMode::PerJob => 0,
            ExecutorMode::SharedPool => 1,
        });
        h
    }

    /// Coarse upper bound on the bytes a job under this config can pin at
    /// once: the block-cache budget plus the sort/combine spill buffers and
    /// the bounded network channels, all at full occupancy. This is the
    /// byte-denominated cost the serve layer's admission controller charges
    /// against its memory budget — deliberately pessimistic, because
    /// admission must never over-commit.
    pub fn memory_footprint_bytes(&self) -> u64 {
        /// Per-record footprint estimate for buffer sizing (pointer-sized
        /// key + value + bookkeeping).
        const RECORD_BYTES: u64 = 64;
        let combine = self.parallelism as u64
            * self.combine_buffer_records as u64
            * self.spill_run_budget as u64
            * RECORD_BYTES;
        let network =
            self.parallelism as u64 * self.network_buffer_records as u64 * RECORD_BYTES;
        self.cache_bytes + combine + network
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            parallelism: Self::DEFAULT_PARALLELISM,
            network_buffer_records: Self::DEFAULT_NETWORK_BUFFER_RECORDS,
            combine_buffer_records: Self::DEFAULT_COMBINE_BUFFER_RECORDS,
            spill_run_budget: Self::DEFAULT_SPILL_RUN_BUDGET,
            combine_enabled: true,
            partitioner: PartitionerChoice::Hash,
            cache_bytes: Self::DEFAULT_CACHE_BYTES,
            executor: ExecutorMode::default(),
        }
    }
}

/// Configuration for the supervised job service (`flowmark-serve`): the
/// admission, queueing, deadline, retry and circuit-breaker policies that
/// sit *above* both engines. Durations are milliseconds so the struct
/// serializes with the same plain-integer discipline as every other
/// config here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Bounded job-queue capacity; an admission beyond it is shed with
    /// `Rejected::QueueFull` rather than buffered without bound.
    pub queue_capacity: usize,
    /// Byte-denominated memory budget shared by all in-flight jobs; a job
    /// charges [`EngineConfig::memory_footprint_bytes`] on admission and
    /// releases it on resolution.
    pub memory_budget_bytes: u64,
    /// Deadline applied to jobs that do not bring their own, in
    /// milliseconds; expiry cancels the job cooperatively.
    pub default_deadline_ms: u64,
    /// Retries a job may consume after its first attempt fails (0 = one
    /// attempt only).
    pub retry_budget: u32,
    /// Base of the exponential retry backoff, in milliseconds.
    pub backoff_base_ms: u64,
    /// Cap on any single backoff delay, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed for the deterministic backoff jitter and the breaker's
    /// half-open probe choice.
    pub seed: u64,
    /// Consecutive per-engine job failures that open that engine's
    /// circuit breaker.
    pub breaker_threshold: u32,
    /// Rejections a breaker serves while open before it goes half-open
    /// and admits a probe job (count-based, so tests stay deterministic).
    pub breaker_cooldown: u32,
    /// Worker threads draining the queue.
    pub workers: usize,
}

impl ServiceConfig {
    /// Default bounded queue capacity.
    pub const DEFAULT_QUEUE_CAPACITY: usize = 32;
    /// Default shared memory budget: four default engine footprints.
    pub const DEFAULT_MEMORY_BUDGET_BYTES: u64 = 4 << 30;
    /// Default per-job deadline (generous: local jobs run in seconds).
    pub const DEFAULT_DEADLINE_MS: u64 = 60_000;
    /// Default retry budget per job.
    pub const DEFAULT_RETRY_BUDGET: u32 = 2;
    /// Default backoff base.
    pub const DEFAULT_BACKOFF_BASE_MS: u64 = 5;
    /// Default backoff cap.
    pub const DEFAULT_BACKOFF_CAP_MS: u64 = 100;
    /// Default consecutive-failure threshold opening a breaker.
    pub const DEFAULT_BREAKER_THRESHOLD: u32 = 3;
    /// Default open-state rejection count before a half-open probe.
    pub const DEFAULT_BREAKER_COOLDOWN: u32 = 2;
    /// Default worker-thread count.
    pub const DEFAULT_WORKERS: usize = 4;

    /// Validates the knobs the service would otherwise assert on.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (value, parameter) in [
            (self.queue_capacity, "queue_capacity"),
            (self.workers, "workers"),
            (self.breaker_threshold as usize, "breaker_threshold"),
            (self.default_deadline_ms as usize, "default_deadline_ms"),
        ] {
            if value == 0 {
                return Err(ConfigError::Degenerate { parameter });
            }
        }
        if self.memory_budget_bytes == 0 {
            return Err(ConfigError::Degenerate {
                parameter: "memory_budget_bytes",
            });
        }
        if self.backoff_cap_ms < self.backoff_base_ms {
            return Err(ConfigError::Degenerate {
                parameter: "backoff_cap_ms",
            });
        }
        Ok(())
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: Self::DEFAULT_QUEUE_CAPACITY,
            memory_budget_bytes: Self::DEFAULT_MEMORY_BUDGET_BYTES,
            default_deadline_ms: Self::DEFAULT_DEADLINE_MS,
            retry_budget: Self::DEFAULT_RETRY_BUDGET,
            backoff_base_ms: Self::DEFAULT_BACKOFF_BASE_MS,
            backoff_cap_ms: Self::DEFAULT_BACKOFF_CAP_MS,
            seed: 0,
            breaker_threshold: Self::DEFAULT_BREAKER_THRESHOLD,
            breaker_cooldown: Self::DEFAULT_BREAKER_COOLDOWN,
            workers: Self::DEFAULT_WORKERS,
        }
    }
}

/// One tenant of the fair-share scheduler: an identity plus the weight
/// and byte/core budgets its jobs are arbitrated under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant identity jobs name via `JobRequest::tenant`.
    pub tenant: u32,
    /// Deficit-round-robin weight: per dequeue round a tenant's lane
    /// earns `quantum_bytes * weight` of credit, so a weight-4 tenant
    /// drains jobs four times as fast as a weight-1 tenant under
    /// contention.
    pub weight: u32,
    /// Per-tenant byte budget charged with
    /// [`EngineConfig::memory_footprint_bytes`] on admission, on top of
    /// the service-wide budget.
    pub memory_budget_bytes: u64,
    /// Per-tenant in-flight job cap (the "core budget"): the dequeue
    /// skips a lane whose tenant already runs this many jobs.
    pub max_in_flight: usize,
}

impl TenantSpec {
    /// A tenant with weight 1 and effectively unbounded budgets —
    /// useful as the single default lane, which reduces DRR to FIFO.
    pub fn unbounded(tenant: u32) -> Self {
        Self {
            tenant,
            weight: 1,
            memory_budget_bytes: u64::MAX,
            max_in_flight: usize::MAX,
        }
    }
}

/// Fair-share admission policy for `flowmark-serve`: the tenant table
/// plus the DRR quantum. The default — one unbounded tenant 0 — makes
/// the scheduler byte-for-byte equivalent to the old FIFO queue, which
/// is exactly the bench baseline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FairShareConfig {
    /// The tenant lanes. Jobs naming an unlisted tenant are rejected.
    pub tenants: Vec<TenantSpec>,
    /// Bytes of deficit credit a weight-1 lane earns per dequeue round.
    pub quantum_bytes: u64,
}

impl FairShareConfig {
    /// Default DRR quantum: one default engine-config footprint, so a
    /// weight-1 tenant dequeues about one typical job per round.
    pub const DEFAULT_QUANTUM_BYTES: u64 = 1 << 30;

    /// Validates tenant uniqueness and degenerate knobs.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tenants.is_empty() {
            return Err(ConfigError::Degenerate { parameter: "tenants" });
        }
        if self.quantum_bytes == 0 {
            return Err(ConfigError::Degenerate {
                parameter: "quantum_bytes",
            });
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.weight == 0 {
                return Err(ConfigError::Degenerate { parameter: "weight" });
            }
            if t.max_in_flight == 0 {
                return Err(ConfigError::Degenerate {
                    parameter: "max_in_flight",
                });
            }
            if t.memory_budget_bytes == 0 {
                return Err(ConfigError::Degenerate {
                    parameter: "memory_budget_bytes",
                });
            }
            if self.tenants[..i].iter().any(|o| o.tenant == t.tenant) {
                return Err(ConfigError::Degenerate { parameter: "tenant" });
            }
        }
        Ok(())
    }
}

impl Default for FairShareConfig {
    fn default() -> Self {
        Self {
            tenants: vec![TenantSpec::unbounded(0)],
            quantum_bytes: Self::DEFAULT_QUANTUM_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_config_default_validates() {
        let c = ServiceConfig::default();
        assert!(c.validate().is_ok());
        let mut bad = c;
        bad.queue_capacity = 0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::Degenerate { parameter: "queue_capacity" })
        ));
        let mut inverted = c;
        inverted.backoff_cap_ms = c.backoff_base_ms.saturating_sub(1);
        assert!(inverted.validate().is_err());
    }

    #[test]
    fn memory_footprint_grows_with_buffers_and_cache() {
        let base = EngineConfig::default();
        let mut bigger = base;
        bigger.cache_bytes *= 2;
        assert!(bigger.memory_footprint_bytes() > base.memory_footprint_bytes());
        let mut buffered = base;
        buffered.combine_buffer_records *= 4;
        assert!(buffered.memory_footprint_bytes() > base.memory_footprint_bytes());
        assert!(base.memory_footprint_bytes() >= base.cache_bytes);
    }

    #[test]
    fn engine_config_default_validates_and_fingerprints_stably() {
        let c = EngineConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.fingerprint(), EngineConfig::default().fingerprint());
        let mut other = c;
        other.combine_enabled = false;
        assert_ne!(c.fingerprint(), other.fingerprint());
    }

    #[test]
    fn engine_config_rejects_zero_knobs() {
        let mut c = EngineConfig::default();
        c.network_buffer_records = 0;
        assert!(matches!(c.validate(), Err(ConfigError::Degenerate { .. })));
    }

    #[test]
    fn engine_config_round_trips_through_json() {
        let c = EngineConfig {
            partitioner: PartitionerChoice::Range,
            combine_enabled: false,
            ..EngineConfig::with_parallelism(3)
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn canonical_follows_paper_formulas() {
        let c = RunConfig::canonical(16, 6);
        assert_eq!(c.cluster.total_cores(), 256);
        assert_eq!(c.parallelism(Framework::Spark), 1536); // Table II, 16 nodes
        assert_eq!(c.parallelism(Framework::Flink), 256);
        assert_eq!(c.flink.network_buffers, 16 * 2048);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn task_slot_exhaustion_detected() {
        let mut c = RunConfig::canonical(4, 2);
        c.flink.default_parallelism = 4 * 16 * 2 + 1;
        c.flink.network_buffers = u32::MAX;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InsufficientTaskSlots { .. })
        ));
        c.flink.task_slots_per_node = 33; // 2 slots/core + 1
        assert!(c.validate().is_ok());
    }

    #[test]
    fn network_buffer_exhaustion_detected() {
        let mut c = RunConfig::canonical(32, 2);
        // 512 parallelism ⇒ 512²/32 = 8192 buffers needed; give fewer.
        c.flink.network_buffers = 1024;
        let err = c.validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::InsufficientNetworkBuffers {
                required: 8192,
                configured: 1024
            }
        );
    }

    #[test]
    fn invalid_fraction_rejected() {
        let mut c = RunConfig::canonical(2, 2);
        c.flink.memory_fraction = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidFraction { .. })
        ));
        c.flink.memory_fraction = 1.5;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidFraction { .. })
        ));
    }

    #[test]
    fn degenerate_rejected() {
        let mut c = RunConfig::canonical(2, 2);
        c.spark.default_parallelism = 0;
        assert!(matches!(c.validate(), Err(ConfigError::Degenerate { .. })));
    }

    #[test]
    fn managed_memory_accounting() {
        let c = RunConfig::canonical(4, 2);
        // 4 GiB × 0.7 / 16 slots = 175 MB per slot.
        let per_slot = c.flink_managed_memory_per_slot();
        assert!((per_slot - 4.0 * 0.7 * 1e9 / 16.0).abs() < 1.0);
    }

    #[test]
    fn serializer_ordering() {
        // TypeInfo < Kryo < Java in both size and CPU cost (§IV-D).
        assert!(Serializer::TypeInfo.size_factor() < Serializer::Kryo.size_factor());
        assert!(Serializer::Kryo.size_factor() < Serializer::Java.size_factor());
        assert!(Serializer::TypeInfo.cpu_factor() < Serializer::Kryo.cpu_factor());
        assert!(Serializer::Kryo.cpu_factor() < Serializer::Java.cpu_factor());
    }

    #[test]
    fn framework_display() {
        assert_eq!(Framework::Spark.to_string(), "Spark");
        assert_eq!(Framework::Flink.to_string(), "Flink");
    }
}
