//! Operator execution spans — the "operators execution plan" half of the
//! paper's correlation methodology.
//!
//! Every figure with resource usage (Figs 3, 6, 9, 10, 16, 17) has an upper
//! panel showing *when each operator (or operator chain) ran*. A
//! [`PlanTrace`] is that panel: a list of named, possibly overlapping
//! [`OperatorSpan`]s. In a staged engine spans are disjoint (barriers); in a
//! pipelined engine they overlap heavily — this overlap is itself one of the
//! paper's observations ("Flink pipelines the execution, hence it is
//! visualized in a single stage, while in Spark the separation between
//! stages is very clear", §VI-C).

use serde::{Deserialize, Serialize};

/// One operator (or fused operator chain) execution interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorSpan {
    /// Display name, e.g. `"DataSource->FlatMap->GroupCombine"`.
    pub name: String,
    /// Start time, seconds from job start.
    pub start: f64,
    /// End time, seconds from job start.
    pub end: f64,
}

impl OperatorSpan {
    /// Creates a span; `end` is clamped to be ≥ `start`.
    pub fn new(name: impl Into<String>, start: f64, end: f64) -> Self {
        Self {
            name: name.into(),
            start,
            end: end.max(start),
        }
    }

    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Overlap in seconds with another span.
    pub fn overlap(&self, other: &OperatorSpan) -> f64 {
        (self.end.min(other.end) - self.start.max(other.start)).max(0.0)
    }
}

/// The execution plan trace of one job run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanTrace {
    spans: Vec<OperatorSpan>,
}

impl PlanTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a span.
    pub fn record(&mut self, name: impl Into<String>, start: f64, end: f64) {
        self.spans.push(OperatorSpan::new(name, start, end));
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[OperatorSpan] {
        &self.spans
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Looks up a span by exact name (first match).
    pub fn span(&self, name: &str) -> Option<&OperatorSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// End-to-end makespan: latest end minus earliest start.
    pub fn makespan(&self) -> f64 {
        let start = self.spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
        let end = self.spans.iter().map(|s| s.end).fold(0.0, f64::max);
        if start.is_finite() {
            (end - start).max(0.0)
        } else {
            0.0
        }
    }

    /// Pipelining degree in `[0, 1]`: 0 when spans are perfectly disjoint
    /// (a staged execution), approaching 1 when all spans cover the whole
    /// makespan (a fully pipelined execution). Defined as
    /// `1 − makespan / Σ durations` when Σ durations ≥ makespan, else 0.
    ///
    /// This quantifies the paper's "single stage vs clear stage separation"
    /// observation and is asserted in the Fig 9 reproduction.
    pub fn pipelining_degree(&self) -> f64 {
        let total: f64 = self.spans.iter().map(OperatorSpan::duration).sum();
        let makespan = self.makespan();
        if total <= f64::EPSILON || makespan <= f64::EPSILON || total <= makespan {
            0.0
        } else {
            1.0 - makespan / total
        }
    }

    /// Merges another trace, offsetting its spans by `offset` seconds
    /// (used to concatenate per-phase traces, e.g. graph load + iterate).
    pub fn extend_offset(&mut self, other: &PlanTrace, offset: f64) {
        for s in &other.spans {
            self.spans
                .push(OperatorSpan::new(s.name.clone(), s.start + offset, s.end + offset));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_clamps_negative_duration() {
        let s = OperatorSpan::new("x", 5.0, 3.0);
        assert_eq!(s.end, 5.0);
        assert_eq!(s.duration(), 0.0);
    }

    #[test]
    fn overlap_computation() {
        let a = OperatorSpan::new("a", 0.0, 10.0);
        let b = OperatorSpan::new("b", 5.0, 15.0);
        let c = OperatorSpan::new("c", 20.0, 30.0);
        assert_eq!(a.overlap(&b), 5.0);
        assert_eq!(b.overlap(&a), 5.0);
        assert_eq!(a.overlap(&c), 0.0);
    }

    #[test]
    fn makespan_of_gapped_trace() {
        let mut t = PlanTrace::new();
        t.record("load", 2.0, 10.0);
        t.record("iterate", 12.0, 30.0);
        assert_eq!(t.makespan(), 28.0);
        assert_eq!(t.len(), 2);
        assert!(t.span("load").is_some());
        assert!(t.span("missing").is_none());
    }

    #[test]
    fn empty_trace_makespan_zero() {
        let t = PlanTrace::new();
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.pipelining_degree(), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn staged_trace_has_zero_pipelining() {
        // Spark-like: disjoint stages.
        let mut t = PlanTrace::new();
        t.record("Read->Sort", 0.0, 100.0);
        t.record("Shuffling->Sort->Write", 100.0, 250.0);
        assert!(t.pipelining_degree() < 1e-9);
    }

    #[test]
    fn pipelined_trace_has_high_pipelining() {
        // Flink-like: all operators alive for most of the run (Fig 9 left).
        let mut t = PlanTrace::new();
        t.record("DataSource->Map", 0.0, 90.0);
        t.record("Partition", 5.0, 95.0);
        t.record("Sort-Partition->Map", 10.0, 100.0);
        t.record("DataSink", 20.0, 100.0);
        let d = t.pipelining_degree();
        assert!(d > 0.6, "expected strongly pipelined trace, got {d}");
    }

    #[test]
    fn extend_offset_shifts() {
        let mut a = PlanTrace::new();
        a.record("load", 0.0, 10.0);
        let mut b = PlanTrace::new();
        b.record("iter", 0.0, 5.0);
        a.extend_offset(&b, 10.0);
        let s = a.span("iter").unwrap();
        assert_eq!((s.start, s.end), (10.0, 15.0));
    }
}
