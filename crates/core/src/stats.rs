//! Descriptive statistics used throughout the methodology.
//!
//! The paper reports "the mean and standard deviation for aggregated values
//! of all nodes for multiple trials of each experiment" (§V). This module
//! provides the estimators used for that aggregation, plus the correlation
//! and regression primitives that back the operator-plan/resource-usage
//! correlation analysis (§V, §VI).
//!
//! All accumulators use Welford's online algorithm so that very long
//! telemetry streams (hundreds of thousands of samples per node) can be
//! summarised in a single pass without catastrophic cancellation.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford).
///
/// Numerically stable for long streams; merging two accumulators is exact
/// (parallel variant of Welford), which lets per-node summaries be combined
/// into cluster-wide summaries without re-reading samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Sample variance (n−1 denominator); `None` for fewer than 2 samples.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Population variance (n denominator).
    pub fn variance_population(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Coefficient of variation (stddev/mean); the paper uses run-to-run
    /// variance to argue about Flink's I/O interference (Fig 7).
    pub fn cv(&self) -> Option<f64> {
        match (self.stddev(), self.mean()) {
            (Some(s), Some(m)) if m.abs() > f64::EPSILON => Some(s / m),
            _ => None,
        }
    }

    /// Finalises into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean().unwrap_or(0.0),
            stddev: self.stddev().unwrap_or(0.0),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

/// Plain-old-data summary of a sample, as reported in the figures
/// (mean ± standard deviation over 5 trials).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations aggregated.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when count < 2).
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarises a slice in one pass.
    pub fn of(values: &[f64]) -> Self {
        let mut acc = Accumulator::new();
        for &v in values {
            acc.push(v);
        }
        acc.summary()
    }

    /// Relative half-width of the mean ± stddev band, used by the harness to
    /// flag high-variance experiments (the paper calls out TeraSort under
    /// Flink as high-variance).
    pub fn relative_spread(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Pearson product-moment correlation coefficient of two equal-length
/// series. Returns `None` when either series is constant or lengths differ.
///
/// This is the workhorse of the plan/resource correlation: a strongly
/// negative CPU↔disk correlation inside one operator span is how we detect
/// the "anti-cyclic disk utilization" the paper observes for Flink's
/// sort-based combiner (§VI-A).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= f64::EPSILON || syy <= f64::EPSILON {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Ordinary least-squares fit `y = a + b·x`; returns `(a, b)`.
///
/// Used by the scalability analysis to fit weak-scaling curves and report
/// the slope (ideal weak scaling has slope ≈ 0 in time-per-node space).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    if sxx <= f64::EPSILON {
        return None;
    }
    let b = sxy / sxx;
    Some((my - b * mx, b))
}

/// Percentile by linear interpolation on a *sorted* slice
/// (`q` in `[0, 1]`). Panics in debug builds if the slice is unsorted.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Percentile of an unsorted slice (copies + sorts).
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&v, q)
}

/// Relative difference `(a - b) / b`, the "X% faster/slower" metric used in
/// the paper's prose ("Flink constantly outperforming Spark by 10%").
pub fn relative_diff(a: f64, b: f64) -> f64 {
    if b.abs() < f64::EPSILON {
        0.0
    } else {
        (a - b) / b
    }
}

/// Speedup of `b` over `a` expressed as a ratio (`a / b`), e.g. the paper's
/// "Spark is about 1.7x faster than Flink for large graph processing".
pub fn speedup(a: f64, b: f64) -> f64 {
    if b.abs() < f64::EPSILON {
        f64::INFINITY
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn accumulator_basic_moments() {
        let mut acc = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            acc.push(x);
        }
        assert_eq!(acc.count(), 8);
        assert!(close(acc.mean().unwrap(), 5.0));
        // Population variance of this classic example is 4.
        assert!(close(acc.variance_population().unwrap(), 4.0));
        assert!(close(acc.min().unwrap(), 2.0));
        assert!(close(acc.max().unwrap(), 9.0));
    }

    #[test]
    fn accumulator_empty_is_none() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), None);
        assert_eq!(acc.stddev(), None);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.cv(), None);
    }

    #[test]
    fn accumulator_single_sample_has_no_variance() {
        let mut acc = Accumulator::new();
        acc.push(3.5);
        assert!(close(acc.mean().unwrap(), 3.5));
        assert_eq!(acc.variance(), None);
        assert!(close(acc.variance_population().unwrap(), 0.0));
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut all = Accumulator::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!(close(left.mean().unwrap(), all.mean().unwrap()));
        assert!((left.variance().unwrap() - all.variance().unwrap()).abs() < 1e-9);
        assert!(close(left.min().unwrap(), all.min().unwrap()));
        assert!(close(left.max().unwrap(), all.max().unwrap()));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&Accumulator::new());
        assert_eq!(a, before);
        let mut e = Accumulator::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn pearson_perfectly_correlated() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!(close(pearson(&xs, &ys).unwrap(), 1.0));
        let neg: Vec<f64> = xs.iter().map(|x| -3.0 * x).collect();
        assert!(close(pearson(&xs, &neg).unwrap(), -1.0));
    }

    #[test]
    fn pearson_constant_series_is_none() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys), None);
        assert_eq!(pearson(&ys, &xs), None);
    }

    #[test]
    fn pearson_mismatched_lengths() {
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 - 0.5 * x).collect();
        let (a, b) = linear_fit(&xs, &ys).unwrap();
        assert!(close(a, 4.0));
        assert!(close(b, -0.5));
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!(close(percentile(&v, 0.0).unwrap(), 1.0));
        assert!(close(percentile(&v, 1.0).unwrap(), 4.0));
        assert!(close(percentile(&v, 0.5).unwrap(), 2.5));
        assert_eq!(percentile(&[], 0.5), None);
        assert!(close(percentile(&[7.0], 0.9).unwrap(), 7.0));
    }

    #[test]
    fn summary_of_slice() {
        let s = Summary::of(&[10.0, 12.0, 14.0]);
        assert_eq!(s.count, 3);
        assert!(close(s.mean, 12.0));
        assert!(close(s.stddev, 2.0));
        assert!(close(s.min, 10.0));
        assert!(close(s.max, 14.0));
        assert!(close(s.relative_spread(), 2.0 / 12.0));
    }

    #[test]
    fn speedup_and_relative_diff() {
        assert!(close(speedup(170.0, 100.0), 1.7));
        assert!(close(relative_diff(110.0, 100.0), 0.10));
        assert!(close(relative_diff(90.0, 100.0), -0.10));
        assert_eq!(speedup(1.0, 0.0), f64::INFINITY);
    }
}
