//! Strong- and weak-scalability analysis (§V, §VI).
//!
//! The paper's batch experiments validate both scalability regimes: weak
//! scaling (fixed problem size *per node*, Figs 1, 4, 7) and strong scaling
//! (fixed total problem, growing cluster, Figs 8, 11-15). This module turns
//! `(scale, time)` series into the efficiency metrics the discussion uses.

use serde::{Deserialize, Serialize};

use crate::stats::linear_fit;

/// One point of a scalability curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Scale (number of nodes, or GB/node for dataset-growth plots).
    pub scale: f64,
    /// Mean end-to-end time in seconds.
    pub time: f64,
}

/// Scalability analysis of one framework's curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingAnalysis {
    /// The input points, sorted by scale.
    pub points: Vec<ScalePoint>,
    /// Parallel efficiency at each point relative to the first point.
    /// Strong scaling: `t₀·s₀ / (tᵢ·sᵢ)`. Weak scaling: `t₀ / tᵢ`.
    pub efficiency: Vec<f64>,
    /// Slope of the least-squares fit of time against scale.
    pub slope: f64,
}

/// Scalability regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regime {
    /// Fixed problem size per node: ideal time is flat.
    Weak,
    /// Fixed total problem: ideal time is `t₀·s₀/s`.
    Strong,
}

/// Analyses a scaling curve under the given regime.
///
/// # Panics
/// Panics when fewer than two points are provided or any time/scale is
/// non-positive.
pub fn analyze(points: &[ScalePoint], regime: Regime) -> ScalingAnalysis {
    assert!(points.len() >= 2, "scaling analysis needs ≥ 2 points");
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| a.scale.partial_cmp(&b.scale).expect("NaN scale"));
    assert!(
        pts.iter().all(|p| p.scale > 0.0 && p.time > 0.0),
        "scales and times must be positive"
    );
    let first = pts[0];
    let efficiency = pts
        .iter()
        .map(|p| match regime {
            Regime::Weak => first.time / p.time,
            Regime::Strong => (first.time * first.scale) / (p.time * p.scale),
        })
        .collect();
    let xs: Vec<f64> = pts.iter().map(|p| p.scale).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.time).collect();
    let (_, slope) = linear_fit(&xs, &ys).unwrap_or((0.0, 0.0));
    ScalingAnalysis {
        points: pts,
        efficiency,
        slope,
    }
}

impl ScalingAnalysis {
    /// Minimum efficiency across the curve — the "does it scale well"
    /// scalar the discussion sections reason with.
    pub fn min_efficiency(&self) -> f64 {
        self.efficiency.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// True when every point retains at least `threshold` efficiency.
    pub fn scales_well(&self, threshold: f64) -> bool {
        self.min_efficiency() >= threshold
    }
}

/// Head-to-head comparison of two frameworks over a shared x-axis, i.e. one
/// paper figure. Produces the per-point winner and relative gaps quoted in
/// the paper's prose ("Flink constantly outperforming Spark by 10%").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadToHead {
    /// Shared x values.
    pub scales: Vec<f64>,
    /// `spark_time / flink_time` per point; > 1 means Flink wins.
    pub spark_over_flink: Vec<f64>,
}

impl HeadToHead {
    /// Builds a comparison from two curves sharing the same scales.
    ///
    /// # Panics
    /// Panics when the curves have different scales.
    pub fn new(spark: &[ScalePoint], flink: &[ScalePoint]) -> Self {
        assert_eq!(spark.len(), flink.len(), "curves must align");
        let mut scales = Vec::with_capacity(spark.len());
        let mut ratio = Vec::with_capacity(spark.len());
        for (s, f) in spark.iter().zip(flink) {
            assert!(
                (s.scale - f.scale).abs() < 1e-9,
                "curves must share x values"
            );
            scales.push(s.scale);
            ratio.push(s.time / f.time);
        }
        Self {
            scales,
            spark_over_flink: ratio,
        }
    }

    /// Count of points where Flink is strictly faster.
    pub fn flink_wins(&self) -> usize {
        self.spark_over_flink.iter().filter(|&&r| r > 1.0).count()
    }

    /// Count of points where Spark is strictly faster.
    pub fn spark_wins(&self) -> usize {
        self.spark_over_flink.iter().filter(|&&r| r < 1.0).count()
    }

    /// Largest Flink advantage as a ratio (max of spark/flink).
    pub fn max_flink_advantage(&self) -> f64 {
        self.spark_over_flink.iter().copied().fold(0.0, f64::max)
    }

    /// Largest Spark advantage as a ratio (max of flink/spark).
    pub fn max_spark_advantage(&self) -> f64 {
        self.spark_over_flink
            .iter()
            .map(|r| 1.0 / r)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_flat_curve_is_perfect() {
        let pts = [
            ScalePoint { scale: 2.0, time: 100.0 },
            ScalePoint { scale: 4.0, time: 100.0 },
            ScalePoint { scale: 8.0, time: 100.0 },
        ];
        let a = analyze(&pts, Regime::Weak);
        assert!(a.efficiency.iter().all(|&e| (e - 1.0).abs() < 1e-9));
        assert!(a.scales_well(0.99));
        assert!(a.slope.abs() < 1e-9);
    }

    #[test]
    fn strong_scaling_ideal_curve_is_perfect() {
        let pts = [
            ScalePoint { scale: 10.0, time: 100.0 },
            ScalePoint { scale: 20.0, time: 50.0 },
            ScalePoint { scale: 40.0, time: 25.0 },
        ];
        let a = analyze(&pts, Regime::Strong);
        assert!(a.efficiency.iter().all(|&e| (e - 1.0).abs() < 1e-9));
    }

    #[test]
    fn degrading_weak_scaling_detected() {
        let pts = [
            ScalePoint { scale: 2.0, time: 100.0 },
            ScalePoint { scale: 32.0, time: 150.0 },
        ];
        let a = analyze(&pts, Regime::Weak);
        assert!((a.min_efficiency() - 100.0 / 150.0).abs() < 1e-9);
        assert!(!a.scales_well(0.8));
        assert!(a.slope > 0.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let pts = [
            ScalePoint { scale: 8.0, time: 110.0 },
            ScalePoint { scale: 2.0, time: 100.0 },
        ];
        let a = analyze(&pts, Regime::Weak);
        assert_eq!(a.points[0].scale, 2.0);
        assert!((a.efficiency[1] - 100.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "≥ 2 points")]
    fn single_point_panics() {
        analyze(&[ScalePoint { scale: 1.0, time: 1.0 }], Regime::Weak);
    }

    #[test]
    fn head_to_head_counts() {
        let spark = [
            ScalePoint { scale: 2.0, time: 100.0 },
            ScalePoint { scale: 4.0, time: 100.0 },
            ScalePoint { scale: 8.0, time: 80.0 },
        ];
        let flink = [
            ScalePoint { scale: 2.0, time: 90.0 },
            ScalePoint { scale: 4.0, time: 110.0 },
            ScalePoint { scale: 8.0, time: 80.0 },
        ];
        let h = HeadToHead::new(&spark, &flink);
        assert_eq!(h.flink_wins(), 1);
        assert_eq!(h.spark_wins(), 1);
        assert!((h.max_flink_advantage() - 100.0 / 90.0).abs() < 1e-9);
        assert!((h.max_spark_advantage() - 110.0 / 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "share x values")]
    fn head_to_head_misaligned_panics() {
        let spark = [ScalePoint { scale: 2.0, time: 1.0 }, ScalePoint { scale: 4.0, time: 1.0 }];
        let flink = [ScalePoint { scale: 2.0, time: 1.0 }, ScalePoint { scale: 5.0, time: 1.0 }];
        let _ = HeadToHead::new(&spark, &flink);
    }
}
