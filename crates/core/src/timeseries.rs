//! Uniformly-sampled time series, the representation behind every resource
//! usage plot in the paper (Figs 3, 6, 9, 10, 16, 17).
//!
//! A [`TimeSeries`] stores samples at a fixed period starting at t = 0. This
//! matches how the paper's monitoring collects node metrics (dstat-style,
//! one sample per second) and makes window queries O(1) per sample.

use serde::{Deserialize, Serialize};

use crate::stats::{pearson, Accumulator, Summary};

/// A uniformly sampled series of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Sampling period in seconds.
    period: f64,
    /// Samples; sample `i` covers `[i·period, (i+1)·period)`.
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with the given sampling period (seconds).
    ///
    /// # Panics
    /// Panics if `period` is not strictly positive and finite.
    pub fn new(period: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "sampling period must be positive, got {period}"
        );
        Self {
            period,
            values: Vec::new(),
        }
    }

    /// Creates a series from existing samples.
    pub fn from_values(period: f64, values: Vec<f64>) -> Self {
        let mut ts = Self::new(period);
        ts.values = values;
        ts
    }

    /// Sampling period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration in seconds.
    pub fn duration(&self) -> f64 {
        self.values.len() as f64 * self.period
    }

    /// Raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Appends one sample at the end of the series.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Adds `value` to the sample bucket containing time `t` (seconds),
    /// growing the series with zeros as needed. This is how simulated
    /// resource consumption is deposited into telemetry.
    pub fn deposit(&mut self, t: f64, value: f64) {
        if !t.is_finite() || t < 0.0 {
            return;
        }
        let idx = (t / self.period) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, 0.0);
        }
        self.values[idx] += value;
    }

    /// Deposits `total` spread uniformly over `[start, end)` seconds.
    /// Partial overlap with boundary buckets is pro-rated so that the
    /// integral of the series increases by exactly `total`.
    pub fn deposit_range(&mut self, start: f64, end: f64, total: f64) {
        if !(start.is_finite() && end.is_finite()) || end <= start || total == 0.0 {
            return;
        }
        let start = start.max(0.0);
        if end <= start {
            return;
        }
        let rate = total / (end - start);
        let first = (start / self.period) as usize;
        let last = ((end / self.period).ceil() as usize).max(first + 1);
        if last > self.values.len() {
            self.values.resize(last, 0.0);
        }
        for (i, v) in self.values[first..last].iter_mut().enumerate() {
            let bucket_start = (first + i) as f64 * self.period;
            let bucket_end = bucket_start + self.period;
            let overlap = (end.min(bucket_end) - start.max(bucket_start)).max(0.0);
            // Samples are *rates* (value per second); a bucket overlapped
            // for `overlap` seconds carries rate·overlap/period so that
            // `integral()` (Σ samples × period) increases by exactly
            // rate·overlap.
            *v += rate * overlap / self.period;
        }
    }

    /// Sample value at time `t`, zero outside the recorded range.
    pub fn at(&self, t: f64) -> f64 {
        if !t.is_finite() || t < 0.0 {
            return 0.0;
        }
        let idx = (t / self.period) as usize;
        self.values.get(idx).copied().unwrap_or(0.0)
    }

    /// Samples whose buckets overlap `[start, end)` seconds.
    pub fn window(&self, start: f64, end: f64) -> &[f64] {
        if self.values.is_empty() || end <= start {
            return &[];
        }
        let first = ((start.max(0.0)) / self.period) as usize;
        let last = ((end / self.period).ceil() as usize).min(self.values.len());
        if first >= last {
            return &[];
        }
        &self.values[first..last]
    }

    /// Summary statistics over a time window.
    pub fn window_summary(&self, start: f64, end: f64) -> Summary {
        Summary::of(self.window(start, end))
    }

    /// Summary over the whole series.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.values)
    }

    /// Integral of the series (value·seconds), e.g. total MiB transferred
    /// when samples are MiB/s.
    pub fn integral(&self) -> f64 {
        self.values.iter().sum::<f64>() * self.period
    }

    /// Pointwise sum of two series; the shorter one is zero-extended.
    ///
    /// # Panics
    /// Panics if the periods differ.
    pub fn add(&self, other: &TimeSeries) -> TimeSeries {
        assert!(
            (self.period - other.period).abs() < 1e-12,
            "cannot add series with different periods"
        );
        let n = self.values.len().max(other.values.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(
                self.values.get(i).copied().unwrap_or(0.0)
                    + other.values.get(i).copied().unwrap_or(0.0),
            );
        }
        TimeSeries::from_values(self.period, out)
    }

    /// Pointwise scaling by a constant.
    pub fn scale(&self, k: f64) -> TimeSeries {
        TimeSeries::from_values(self.period, self.values.iter().map(|v| v * k).collect())
    }

    /// Clamps every sample into `[lo, hi]` — utilisation percentages are
    /// reported clamped to `[0, 100]` like the paper's plots.
    pub fn clamp(&self, lo: f64, hi: f64) -> TimeSeries {
        TimeSeries::from_values(
            self.period,
            self.values.iter().map(|v| v.clamp(lo, hi)).collect(),
        )
    }

    /// Mean of several series, sample by sample (used for "aggregated values
    /// of all nodes", §V). Series may have different lengths; each bucket
    /// averages over all series (missing samples count as zero, matching a
    /// node that has finished its work and sits idle).
    pub fn mean_of(series: &[&TimeSeries]) -> Option<TimeSeries> {
        let first = series.first()?;
        let period = first.period;
        assert!(
            series.iter().all(|s| (s.period - period).abs() < 1e-12),
            "mean_of requires identical periods"
        );
        let n = series.iter().map(|s| s.len()).max().unwrap_or(0);
        let k = series.len() as f64;
        let mut out = vec![0.0; n];
        for s in series {
            for (i, &v) in s.values.iter().enumerate() {
                out[i] += v;
            }
        }
        for v in &mut out {
            *v /= k;
        }
        Some(TimeSeries::from_values(period, out))
    }

    /// Pearson correlation with another series over their common prefix.
    pub fn correlation(&self, other: &TimeSeries) -> Option<f64> {
        let n = self.len().min(other.len());
        pearson(&self.values[..n], &other.values[..n])
    }

    /// Fraction of samples in `[start, end)` at or above `threshold` —
    /// "CPU increases to 100% while the disk goes down to 0%" style
    /// saturation queries.
    pub fn fraction_above(&self, start: f64, end: f64, threshold: f64) -> f64 {
        let w = self.window(start, end);
        if w.is_empty() {
            return 0.0;
        }
        w.iter().filter(|&&v| v >= threshold).count() as f64 / w.len() as f64
    }

    /// Down-samples by an integer factor, averaging each group; used to
    /// render compact ASCII plots of long runs.
    pub fn downsample(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "downsample factor must be positive");
        let mut out = Vec::with_capacity(self.values.len().div_ceil(factor));
        for chunk in self.values.chunks(factor) {
            let mut acc = Accumulator::new();
            for &v in chunk {
                acc.push(v);
            }
            out.push(acc.mean().unwrap_or(0.0));
        }
        TimeSeries::from_values(self.period * factor as f64, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    #[should_panic(expected = "sampling period must be positive")]
    fn zero_period_rejected() {
        let _ = TimeSeries::new(0.0);
    }

    #[test]
    fn deposit_grows_and_accumulates() {
        let mut ts = TimeSeries::new(1.0);
        ts.deposit(3.2, 5.0);
        ts.deposit(3.9, 2.0);
        assert_eq!(ts.len(), 4);
        assert!(close(ts.at(3.5), 7.0));
        assert!(close(ts.at(0.5), 0.0));
        assert!(close(ts.at(100.0), 0.0));
    }

    #[test]
    fn deposit_negative_time_ignored() {
        let mut ts = TimeSeries::new(1.0);
        ts.deposit(-1.0, 5.0);
        ts.deposit(f64::NAN, 5.0);
        assert!(ts.is_empty());
    }

    #[test]
    fn deposit_range_preserves_integral() {
        let mut ts = TimeSeries::new(1.0);
        ts.deposit_range(0.5, 3.25, 11.0);
        assert!(close(ts.integral(), 11.0));
        // Uniform rate of 4 units/s over 2.75 s.
        assert!(close(ts.at(1.5), 4.0));
        assert!(close(ts.at(0.0), 2.0)); // half a bucket of overlap
    }

    #[test]
    fn deposit_range_degenerate() {
        let mut ts = TimeSeries::new(1.0);
        ts.deposit_range(5.0, 5.0, 10.0);
        ts.deposit_range(5.0, 4.0, 10.0);
        assert!(ts.is_empty());
    }

    #[test]
    fn window_bounds() {
        let ts = TimeSeries::from_values(1.0, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(ts.window(1.0, 3.0), &[2.0, 3.0]);
        assert_eq!(ts.window(0.0, 100.0).len(), 5);
        assert_eq!(ts.window(4.5, 4.0), &[] as &[f64]);
        assert_eq!(ts.window(10.0, 20.0), &[] as &[f64]);
    }

    #[test]
    fn add_zero_extends() {
        let a = TimeSeries::from_values(1.0, vec![1.0, 1.0]);
        let b = TimeSeries::from_values(1.0, vec![2.0, 2.0, 2.0]);
        let c = a.add(&b);
        assert_eq!(c.values(), &[3.0, 3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "different periods")]
    fn add_period_mismatch_panics() {
        let a = TimeSeries::new(1.0);
        let b = TimeSeries::new(2.0);
        let _ = a.add(&b);
    }

    #[test]
    fn mean_of_nodes() {
        let a = TimeSeries::from_values(1.0, vec![100.0, 50.0]);
        let b = TimeSeries::from_values(1.0, vec![0.0, 50.0, 80.0]);
        let m = TimeSeries::mean_of(&[&a, &b]).unwrap();
        assert_eq!(m.values(), &[50.0, 50.0, 40.0]);
        assert!(TimeSeries::mean_of(&[]).is_none());
    }

    #[test]
    fn correlation_of_anti_cyclic_series() {
        // Model the paper's anti-cyclic CPU/disk pattern: when CPU is high
        // the disk is quiet and vice versa.
        let cpu = TimeSeries::from_values(1.0, vec![90.0, 10.0, 95.0, 5.0, 88.0, 12.0]);
        let disk = TimeSeries::from_values(1.0, vec![5.0, 85.0, 10.0, 90.0, 8.0, 80.0]);
        let r = cpu.correlation(&disk).unwrap();
        assert!(r < -0.9, "expected strong negative correlation, got {r}");
    }

    #[test]
    fn fraction_above_saturation() {
        let ts = TimeSeries::from_values(1.0, vec![100.0, 100.0, 20.0, 100.0]);
        assert!(close(ts.fraction_above(0.0, 4.0, 99.0), 0.75));
        assert!(close(ts.fraction_above(10.0, 20.0, 99.0), 0.0));
    }

    #[test]
    fn downsample_averages() {
        let ts = TimeSeries::from_values(1.0, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
        let d = ts.downsample(2);
        assert_eq!(d.values(), &[2.0, 6.0, 9.0]);
        assert!(close(d.period(), 2.0));
    }

    #[test]
    fn clamp_and_scale() {
        let ts = TimeSeries::from_values(1.0, vec![-5.0, 50.0, 150.0]);
        assert_eq!(ts.clamp(0.0, 100.0).values(), &[0.0, 50.0, 100.0]);
        assert_eq!(ts.scale(2.0).values(), &[-10.0, 100.0, 300.0]);
    }
}
