//! # flowmark-core
//!
//! The methodological core of **flowmark**, a from-scratch Rust reproduction
//! of *"Spark versus Flink: Understanding Performance in Big Data Analytics
//! Frameworks"* (Marcu, Costan, Antoniu, Pérez-Hernández — IEEE CLUSTER
//! 2016).
//!
//! The paper's primary contribution is a **methodology for understanding
//! performance in Big Data analytics frameworks by correlating the operators
//! execution plan with the resource utilization and the parameter
//! configuration** (§I). This crate implements that methodology natively:
//!
//! - [`stats`] — the mean/stddev/correlation estimators behind every figure;
//! - [`timeseries`] — uniformly-sampled resource series (dstat-style);
//! - [`telemetry`] — per-node and cluster-aggregated resource channels
//!   (CPU, memory, disk utilisation, disk I/O, network);
//! - [`spans`] — operator execution spans ([`spans::PlanTrace`]), including
//!   the *pipelining degree* metric that quantifies the paper's
//!   staged-vs-pipelined observation;
//! - [`correlate`] — the span × resource correlation, bottleneck
//!   classification and anti-cyclic-disk detection;
//! - [`config`] — the §IV parameter model (parallelism, shuffle buffers,
//!   memory management, serialization) with framework-faithful validation;
//! - [`scaling`] — weak/strong scalability and head-to-head analysis;
//! - [`experiment`] — multi-trial experiments summarised into figures;
//! - [`report`] — ASCII/markdown rendering of figures and correlations.
//!
//! Execution engines live in `flowmark-engine` (real, multi-threaded) and
//! `flowmark-sim` (deterministic, paper-scale); the six workloads live in
//! `flowmark-workloads`; `flowmark-harness` stitches everything into the
//! per-figure reproductions.
//!
//! ## Quick example
//!
//! ```
//! use flowmark_core::prelude::*;
//!
//! // Record two trials of a (tiny) weak-scaling experiment...
//! let mut exp = Experiment::new("fig1", "Word Count - weak scaling", "Nodes");
//! exp.record(Framework::Spark, 2.0, 104.0);
//! exp.record(Framework::Spark, 2.0, 106.0);
//! exp.record(Framework::Flink, 2.0, 96.0);
//! exp.record(Framework::Flink, 2.0, 94.0);
//!
//! // ...and summarise them the way the paper plots them.
//! let fig = exp.figure();
//! let h2h = fig.head_to_head().unwrap();
//! assert_eq!(h2h.flink_wins(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod correlate;
pub mod export;
pub mod experiment;
pub mod report;
pub mod scaling;
pub mod spans;
pub mod stats;
pub mod telemetry;
pub mod timeseries;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::config::{
        ClusterConfig, ConfigError, EngineConfig, ExecutorMode, FairShareConfig, FlinkConfig,
        Framework, PartitionerChoice, RunConfig, Serializer, ServiceConfig, SparkConfig,
        TenantSpec,
    };
    pub use crate::correlate::{correlate, Bound, CorrelationConfig, CorrelationReport};
    pub use crate::experiment::{CellOutcome, Experiment, Figure, FigurePoint, FigureSeries};
    pub use crate::scaling::{analyze, HeadToHead, Regime, ScalePoint, ScalingAnalysis};
    pub use crate::spans::{OperatorSpan, PlanTrace};
    pub use crate::stats::{Accumulator, Summary};
    pub use crate::telemetry::{ClusterTelemetry, NodeTelemetry, ResourceKind};
    pub use crate::timeseries::TimeSeries;
}
