//! Node- and cluster-level resource telemetry.
//!
//! The paper "dissect\[s\] the resource usage metrics (CPU, memory, disk I/O,
//! disk utilization, network) in the operators plan execution" (§V). This
//! module is the container those metrics land in, whether they come from the
//! cluster simulator or from instrumented real-engine runs.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::timeseries::TimeSeries;

/// The five resource channels the paper plots per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU utilisation, percent of all cores (0-100).
    Cpu,
    /// Memory occupancy, percent of node RAM (0-100).
    Memory,
    /// Disk utilisation (fraction of time the device is busy), percent.
    DiskUtil,
    /// Disk throughput, MiB/s (read + write).
    DiskIo,
    /// Network throughput, MiB/s (in + out).
    Network,
}

impl ResourceKind {
    /// All channels in plot order.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::DiskUtil,
        ResourceKind::DiskIo,
        ResourceKind::Network,
    ];

    /// True for channels expressed as a percentage (clamped to 100).
    pub fn is_percentage(self) -> bool {
        matches!(
            self,
            ResourceKind::Cpu | ResourceKind::Memory | ResourceKind::DiskUtil
        )
    }

    /// Axis label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "CPU %",
            ResourceKind::Memory => "Memory %",
            ResourceKind::DiskUtil => "Disk util %",
            ResourceKind::DiskIo => "I/O MiB/s",
            ResourceKind::Network => "Network MiB/s",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Telemetry of a single node: one time series per resource channel, all
/// sharing a sampling period.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeTelemetry {
    node: usize,
    period: f64,
    channels: BTreeMap<ResourceKind, TimeSeries>,
}

impl NodeTelemetry {
    /// Creates telemetry for `node` sampled every `period` seconds.
    pub fn new(node: usize, period: f64) -> Self {
        let channels = ResourceKind::ALL
            .iter()
            .map(|&k| (k, TimeSeries::new(period)))
            .collect();
        Self {
            node,
            period,
            channels,
        }
    }

    /// Node index this telemetry belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Sampling period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Immutable access to one channel.
    pub fn channel(&self, kind: ResourceKind) -> &TimeSeries {
        &self.channels[&kind]
    }

    /// Mutable access to one channel.
    pub fn channel_mut(&mut self, kind: ResourceKind) -> &mut TimeSeries {
        self.channels.get_mut(&kind).expect("all channels exist")
    }

    /// Deposits `amount` of resource usage spread over `[start, end)`.
    /// For percentage channels `amount` is percent·seconds; for throughput
    /// channels it is MiB.
    pub fn deposit(&mut self, kind: ResourceKind, start: f64, end: f64, amount: f64) {
        self.channel_mut(kind).deposit_range(start, end, amount);
    }

    /// Longest channel duration, i.e. when this node went idle.
    pub fn duration(&self) -> f64 {
        self.channels
            .values()
            .map(TimeSeries::duration)
            .fold(0.0, f64::max)
    }
}

/// Telemetry for a whole cluster plus cluster-level aggregation, mirroring
/// the paper's "mean ... for aggregated values of all nodes".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterTelemetry {
    period: f64,
    nodes: Vec<NodeTelemetry>,
}

impl ClusterTelemetry {
    /// Creates telemetry for `n` nodes at the given sampling period.
    pub fn new(n: usize, period: f64) -> Self {
        Self {
            period,
            nodes: (0..n).map(|i| NodeTelemetry::new(i, period)).collect(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Sampling period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Per-node telemetry.
    pub fn node(&self, i: usize) -> &NodeTelemetry {
        &self.nodes[i]
    }

    /// Mutable per-node telemetry.
    pub fn node_mut(&mut self, i: usize) -> &mut NodeTelemetry {
        &mut self.nodes[i]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[NodeTelemetry] {
        &self.nodes
    }

    /// Cluster-mean series for one channel (the curve the paper plots).
    /// Percentage channels are clamped to `[0, 100]` after averaging.
    pub fn mean_channel(&self, kind: ResourceKind) -> TimeSeries {
        let series: Vec<&TimeSeries> = self.nodes.iter().map(|n| n.channel(kind)).collect();
        let mean = TimeSeries::mean_of(&series)
            .unwrap_or_else(|| TimeSeries::new(self.period));
        if kind.is_percentage() {
            mean.clamp(0.0, 100.0)
        } else {
            mean
        }
    }

    /// Longest node duration — end-to-end wall clock of the traced run.
    pub fn duration(&self) -> f64 {
        self.nodes
            .iter()
            .map(NodeTelemetry::duration)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_channels_present() {
        let t = NodeTelemetry::new(3, 1.0);
        assert_eq!(t.node(), 3);
        for kind in ResourceKind::ALL {
            assert!(t.channel(kind).is_empty());
        }
    }

    #[test]
    fn deposit_lands_in_channel() {
        let mut t = NodeTelemetry::new(0, 1.0);
        t.deposit(ResourceKind::Cpu, 0.0, 10.0, 800.0); // 80 %·s/s over 10 s
        let cpu = t.channel(ResourceKind::Cpu);
        assert!((cpu.at(5.0) - 80.0).abs() < 1e-9);
        assert!(t.channel(ResourceKind::Network).is_empty());
        assert!((t.duration() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_mean_clamps_percentages() {
        let mut c = ClusterTelemetry::new(2, 1.0);
        c.node_mut(0).deposit(ResourceKind::Cpu, 0.0, 2.0, 2.0 * 140.0);
        c.node_mut(1).deposit(ResourceKind::Cpu, 0.0, 2.0, 2.0 * 100.0);
        let mean = c.mean_channel(ResourceKind::Cpu);
        // (140+100)/2 = 120, clamped to 100.
        assert!((mean.at(1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_mean_throughput_not_clamped() {
        let mut c = ClusterTelemetry::new(2, 1.0);
        c.node_mut(0).deposit(ResourceKind::Network, 0.0, 1.0, 500.0);
        c.node_mut(1).deposit(ResourceKind::Network, 0.0, 1.0, 300.0);
        let mean = c.mean_channel(ResourceKind::Network);
        assert!((mean.at(0.5) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cluster_mean_is_empty() {
        let c = ClusterTelemetry::new(0, 1.0);
        assert!(c.mean_channel(ResourceKind::Cpu).is_empty());
        assert_eq!(c.duration(), 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = ResourceKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
