//! Machine-readable exports of figures and telemetry (JSON / CSV), so the
//! reproduced series can be re-plotted with external tooling (gnuplot,
//! matplotlib) in the paper's own style.

use std::fmt::Write as _;

use crate::config::Framework;
use crate::experiment::Figure;
use crate::telemetry::{ClusterTelemetry, ResourceKind};

/// Serialises a figure to pretty JSON.
pub fn figure_to_json(fig: &Figure) -> String {
    serde_json::to_string_pretty(fig).expect("Figure is serde-serialisable")
}

/// Parses a figure back from JSON.
pub fn figure_from_json(json: &str) -> Result<Figure, serde_json::Error> {
    serde_json::from_str(json)
}

/// Renders a figure as CSV with one row per x value:
/// `x,spark_mean,spark_stddev,flink_mean,flink_stddev`.
pub fn figure_to_csv(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "x,spark_mean,spark_stddev,flink_mean,flink_stddev");
    let xs: Vec<f64> = fig
        .series
        .iter()
        .max_by_key(|s| s.points.len())
        .map(|s| s.points.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for x in xs {
        let cell = |fw: Framework| {
            fig.series_for(fw)
                .and_then(|s| s.points.iter().find(|p| (p.x - x).abs() < 1e-9))
                .map(|p| format!("{},{}", p.summary.mean, p.summary.stddev))
                .unwrap_or_else(|| ",".to_string())
        };
        let _ = writeln!(out, "{x},{},{}", cell(Framework::Spark), cell(Framework::Flink));
    }
    out
}

/// Renders one telemetry channel as CSV: `t,node0,node1,...,mean`.
pub fn telemetry_to_csv(telemetry: &ClusterTelemetry, kind: ResourceKind) -> String {
    let mut out = String::new();
    let n = telemetry.node_count();
    let _ = write!(out, "t");
    for i in 0..n {
        let _ = write!(out, ",node{i}");
    }
    let _ = writeln!(out, ",mean");
    let mean = telemetry.mean_channel(kind);
    let period = telemetry.period();
    let samples = (0..n)
        .map(|i| telemetry.node(i).channel(kind).values())
        .collect::<Vec<_>>();
    let len = samples.iter().map(|s| s.len()).max().unwrap_or(0);
    for row in 0..len {
        let _ = write!(out, "{}", row as f64 * period);
        for s in &samples {
            let _ = write!(out, ",{}", s.get(row).copied().unwrap_or(0.0));
        }
        let _ = writeln!(out, ",{}", mean.values().get(row).copied().unwrap_or(0.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;

    fn sample_figure() -> Figure {
        let mut e = Experiment::new("fig1", "Word Count", "Nodes");
        e.record(Framework::Spark, 2.0, 110.0);
        e.record(Framework::Spark, 2.0, 112.0);
        e.record(Framework::Flink, 2.0, 100.0);
        e.record(Framework::Flink, 4.0, 95.0);
        e.figure()
    }

    #[test]
    fn json_roundtrip() {
        let fig = sample_figure();
        let json = figure_to_json(&fig);
        let back = figure_from_json(&json).unwrap();
        assert_eq!(fig, back);
    }

    #[test]
    fn csv_has_one_row_per_x() {
        let csv = figure_to_csv(&sample_figure());
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "x,spark_mean,spark_stddev,flink_mean,flink_stddev");
        assert_eq!(lines.len(), 3); // header + x=2 + x=4
        assert!(lines[1].starts_with("2,111,"));
        // Spark has no x=4 point: empty cells.
        assert!(lines[2].starts_with("4,,,95,"));
    }

    #[test]
    fn telemetry_csv_shape() {
        let mut t = ClusterTelemetry::new(2, 1.0);
        t.node_mut(0).deposit(ResourceKind::Cpu, 0.0, 2.0, 2.0 * 80.0);
        t.node_mut(1).deposit(ResourceKind::Cpu, 0.0, 1.0, 40.0);
        let csv = telemetry_to_csv(&t, ResourceKind::Cpu);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "t,node0,node1,mean");
        assert_eq!(lines.len(), 3); // header + 2 samples
        assert!(lines[1].starts_with("0,80,40,60"));
    }

    #[test]
    fn empty_telemetry_csv_is_header_only() {
        let t = ClusterTelemetry::new(1, 1.0);
        let csv = telemetry_to_csv(&t, ResourceKind::Network);
        assert_eq!(csv.trim().lines().count(), 1);
    }
}
