//! Report rendering: ASCII figures and markdown tables.
//!
//! The harness prints every reproduced figure as an ASCII grouped bar chart
//! (the paper's time figures are grouped bars) and every resource-usage
//! figure as a braille-free line strip; EXPERIMENTS.md is assembled from
//! these renderings plus the correlation reports.

use std::fmt::Write as _;

use crate::config::Framework;
use crate::correlate::CorrelationReport;
use crate::experiment::Figure;
use crate::timeseries::TimeSeries;

/// Width of the bar area in characters.
const BAR_WIDTH: usize = 50;

/// Renders a figure as an ASCII grouped bar chart with mean ± stddev.
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {} — {}", fig.id, fig.title);
    let _ = writeln!(out, "   x = {}, y = {}", fig.x_label, fig.y_label);
    let max = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter())
        .map(|p| p.summary.mean + p.summary.stddev)
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    // Collect the x values from the longest series to drive row order.
    let xs: Vec<f64> = fig
        .series
        .iter()
        .max_by_key(|s| s.points.len())
        .map(|s| s.points.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for x in xs {
        let _ = writeln!(out, "  {} = {}", fig.x_label, trim_float(x));
        for series in &fig.series {
            if let Some(p) = series.points.iter().find(|p| (p.x - x).abs() < 1e-9) {
                let filled = ((p.summary.mean / max) * BAR_WIDTH as f64).round() as usize;
                let _ = writeln!(
                    out,
                    "    {:<5} |{:<width$}| {:8.1}s ± {:.1}",
                    series.framework.name(),
                    "#".repeat(filled.min(BAR_WIDTH)),
                    p.summary.mean,
                    p.summary.stddev,
                    width = BAR_WIDTH
                );
            }
        }
    }
    out
}

/// Renders a figure as a markdown table (one row per x, one column per
/// framework), the form EXPERIMENTS.md records.
pub fn figure_markdown(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} | Spark (s) | Flink (s) | Spark/Flink |", fig.x_label);
    let _ = writeln!(out, "|---|---|---|---|");
    let spark = fig.series_for(Framework::Spark);
    let flink = fig.series_for(Framework::Flink);
    let xs: Vec<f64> = fig
        .series
        .iter()
        .max_by_key(|s| s.points.len())
        .map(|s| s.points.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for x in xs {
        let cell = |series: Option<&crate::experiment::FigureSeries>| {
            series
                .and_then(|s| s.points.iter().find(|p| (p.x - x).abs() < 1e-9))
                .map(|p| format!("{:.1} ± {:.1}", p.summary.mean, p.summary.stddev))
                .unwrap_or_else(|| "—".to_string())
        };
        let ratio = match (
            spark.and_then(|s| s.points.iter().find(|p| (p.x - x).abs() < 1e-9)),
            flink.and_then(|s| s.points.iter().find(|p| (p.x - x).abs() < 1e-9)),
        ) {
            (Some(s), Some(f)) if f.summary.mean > 0.0 => {
                format!("{:.2}", s.summary.mean / f.summary.mean)
            }
            _ => "—".to_string(),
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            trim_float(x),
            cell(spark),
            cell(flink),
            ratio
        );
    }
    out
}

/// Renders one resource channel time series as a compact ASCII strip chart
/// (like the paper's stacked resource panels).
pub fn render_series(label: &str, series: &TimeSeries, max_value: f64, columns: usize) -> String {
    const LEVELS: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    if series.is_empty() || columns == 0 {
        let _ = writeln!(out, "{label:>14} | (no data)");
        return out;
    }
    let factor = series.len().div_ceil(columns).max(1);
    let ds = series.downsample(factor);
    let max = max_value.max(1e-9);
    let mut strip = String::with_capacity(ds.len());
    for &v in ds.values() {
        let idx = ((v / max) * (LEVELS.len() - 1) as f64)
            .round()
            .clamp(0.0, (LEVELS.len() - 1) as f64) as usize;
        strip.push(LEVELS[idx]);
    }
    let _ = writeln!(
        out,
        "{label:>14} |{strip}| max≈{max_value:.0} over {:.0}s",
        series.duration()
    );
    out
}

/// Renders a correlation report: per-span resource profile plus the
/// bound classification (the paper's per-figure "Resource usage" prose).
pub fn render_correlation(report: &CorrelationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "makespan {:.1}s, pipelining degree {:.2}",
        report.makespan, report.pipelining_degree
    );
    for p in &report.profiles {
        let bounds: Vec<&str> = p
            .bounds
            .iter()
            .map(|b| match b {
                crate::correlate::Bound::Cpu => "CPU",
                crate::correlate::Bound::Disk => "disk",
                crate::correlate::Bound::Network => "network",
                crate::correlate::Bound::Memory => "memory",
            })
            .collect();
        let _ = writeln!(
            out,
            "  {:<44} [{:7.1}s-{:7.1}s] bound: {}{}",
            p.span.name,
            p.span.start,
            p.span.end,
            if bounds.is_empty() {
                "none".to_string()
            } else {
                bounds.join("+")
            },
            if p.anticyclic_disk {
                " (anti-cyclic disk)"
            } else {
                ""
            }
        );
    }
    out
}

/// Formats a float without a trailing `.0` when integral.
fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::{correlate, CorrelationConfig};
    use crate::experiment::Experiment;
    use crate::spans::PlanTrace;
    use crate::telemetry::{ClusterTelemetry, ResourceKind};

    fn sample_figure() -> Figure {
        let mut e = Experiment::new("fig1", "Word Count - weak scaling", "Nodes");
        for x in [2.0, 4.0] {
            e.record(Framework::Spark, x, 110.0);
            e.record(Framework::Spark, x, 112.0);
            e.record(Framework::Flink, x, 100.0);
            e.record(Framework::Flink, x, 98.0);
        }
        e.figure()
    }

    #[test]
    fn figure_render_contains_all_cells() {
        let text = render_figure(&sample_figure());
        assert!(text.contains("fig1"));
        assert!(text.contains("Spark"));
        assert!(text.contains("Flink"));
        assert!(text.contains("Nodes = 2"));
        assert!(text.contains("Nodes = 4"));
        assert!(text.contains("111.0s"));
    }

    #[test]
    fn markdown_has_ratio_column() {
        let md = figure_markdown(&sample_figure());
        assert!(md.contains("| Nodes | Spark (s) | Flink (s) | Spark/Flink |"));
        assert!(md.contains("1.12")); // 111/99
    }

    #[test]
    fn series_strip_handles_empty() {
        let s = TimeSeries::new(1.0);
        let text = render_series("CPU %", &s, 100.0, 60);
        assert!(text.contains("(no data)"));
    }

    #[test]
    fn series_strip_renders_peaks() {
        let s = TimeSeries::from_values(1.0, vec![0.0, 50.0, 100.0, 100.0]);
        let text = render_series("CPU %", &s, 100.0, 60);
        assert!(text.contains('@'));
        assert!(text.starts_with("         CPU %"));
    }

    #[test]
    fn correlation_render_mentions_bounds() {
        let mut trace = PlanTrace::new();
        trace.record("map", 0.0, 10.0);
        let mut c = ClusterTelemetry::new(1, 1.0);
        c.node_mut(0).deposit(ResourceKind::Cpu, 0.0, 10.0, 10.0 * 95.0);
        let report = correlate(&trace, &c, &CorrelationConfig::default());
        let text = render_correlation(&report);
        assert!(text.contains("bound: CPU"));
        assert!(text.contains("makespan 10.0s"));
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(2.0), "2");
        assert_eq!(trim_float(2.5), "2.50");
    }
}
