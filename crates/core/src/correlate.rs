//! The paper's core methodological contribution: correlating the operator
//! execution plan with resource utilisation (§V).
//!
//! Given a [`PlanTrace`] and [`ClusterTelemetry`] from the same run, this
//! module computes, per operator span, the mean utilisation of each resource
//! channel, classifies what the span is *bound* by, and detects the
//! anti-cyclic CPU/disk pattern the paper reports for Flink's sort-based
//! combiner (§VI-A).

use serde::{Deserialize, Serialize};

use crate::spans::{OperatorSpan, PlanTrace};
use crate::stats::Summary;
use crate::telemetry::{ClusterTelemetry, ResourceKind};

/// Utilisation thresholds for bottleneck classification.
///
/// A resource is considered *dominant* in a span when its mean utilisation
/// over the span exceeds `bound_threshold` (percent channels) or
/// `io_bound_fraction` of the device capacity (throughput channels).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CorrelationConfig {
    /// Mean-% threshold above which a percentage channel counts as a bound.
    pub bound_threshold: f64,
    /// Fraction of `disk_capacity_mibs` / `network_capacity_mibs` above
    /// which a throughput channel counts as a bound.
    pub io_bound_fraction: f64,
    /// Disk device capacity, MiB/s (Grid'5000 single HDD ≈ 150 MiB/s).
    pub disk_capacity_mibs: f64,
    /// NIC capacity, MiB/s (10 Gbps ≈ 1192 MiB/s).
    pub network_capacity_mibs: f64,
    /// Pearson-r threshold below which CPU↔disk counts as anti-cyclic.
    pub anticyclic_threshold: f64,
    /// A span also counts as disk-bound when disk utilisation exceeds
    /// `burst_level` for at least `burst_fraction` of the span — bursty
    /// saturation (the §VI-A anti-cyclic pattern) is a bound even when the
    /// mean stays low.
    pub burst_level: f64,
    /// See [`CorrelationConfig::burst_level`].
    pub burst_fraction: f64,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        Self {
            bound_threshold: 60.0,
            io_bound_fraction: 0.5,
            disk_capacity_mibs: 150.0,
            network_capacity_mibs: 1192.0,
            anticyclic_threshold: -0.4,
            burst_level: 85.0,
            burst_fraction: 0.25,
        }
    }
}

/// What a span's execution is limited by. A span can be bound by several
/// resources at once ("both Flink and Spark are CPU and disk-bound", §VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bound {
    /// CPU utilisation dominates.
    Cpu,
    /// Disk utilisation or throughput dominates.
    Disk,
    /// Network throughput dominates.
    Network,
    /// Memory occupancy dominates.
    Memory,
}

/// Per-span correlation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanProfile {
    /// The operator span this profile describes.
    pub span: OperatorSpan,
    /// Mean/stddev of each channel's cluster-mean series over the span,
    /// in [`ResourceKind::ALL`] order.
    pub usage: Vec<(ResourceKind, Summary)>,
    /// Resources this span is bound by, in `Bound` declaration order.
    pub bounds: Vec<Bound>,
    /// Pearson correlation between CPU and disk-utilisation inside the span
    /// (`None` when either is constant).
    pub cpu_disk_correlation: Option<f64>,
    /// True when the span shows the anti-cyclic CPU/disk pattern.
    pub anticyclic_disk: bool,
}

impl SpanProfile {
    /// Mean utilisation of one channel over this span.
    pub fn mean(&self, kind: ResourceKind) -> f64 {
        self.usage
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| s.mean)
            .unwrap_or(0.0)
    }

    /// True when bound by the given resource.
    pub fn is_bound_by(&self, b: Bound) -> bool {
        self.bounds.contains(&b)
    }
}

/// Full correlation report for one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationReport {
    /// One profile per operator span, in trace order.
    pub profiles: Vec<SpanProfile>,
    /// Degree of execution pipelining, from [`PlanTrace::pipelining_degree`].
    pub pipelining_degree: f64,
    /// End-to-end makespan in seconds.
    pub makespan: f64,
}

impl CorrelationReport {
    /// Profile of the span with the given name, if present.
    pub fn profile(&self, name: &str) -> Option<&SpanProfile> {
        self.profiles.iter().find(|p| p.span.name == name)
    }

    /// Bounds observed across all spans (deduplicated, stable order).
    pub fn dominant_bounds(&self) -> Vec<Bound> {
        let mut out = Vec::new();
        for b in [Bound::Cpu, Bound::Disk, Bound::Network, Bound::Memory] {
            if self.profiles.iter().any(|p| p.is_bound_by(b)) {
                out.push(b);
            }
        }
        out
    }
}

/// Correlates a plan trace with cluster telemetry.
///
/// For each span the cluster-mean series of each channel is summarised over
/// `[span.start, span.end)`, the span is classified into [`Bound`]s, and the
/// CPU↔disk-utilisation correlation inside the span is computed.
pub fn correlate(
    trace: &PlanTrace,
    telemetry: &ClusterTelemetry,
    config: &CorrelationConfig,
) -> CorrelationReport {
    // Pre-compute cluster-mean series once per channel.
    let means: Vec<(ResourceKind, crate::timeseries::TimeSeries)> = ResourceKind::ALL
        .iter()
        .map(|&k| (k, telemetry.mean_channel(k)))
        .collect();

    let cpu_series = &means[0].1;
    let disk_util_series = &means[2].1;

    let profiles = trace
        .spans()
        .iter()
        .map(|span| {
            let usage: Vec<(ResourceKind, Summary)> = means
                .iter()
                .map(|(k, series)| (*k, series.window_summary(span.start, span.end)))
                .collect();

            let mut bounds = Vec::new();
            for (k, s) in &usage {
                let bound = match k {
                    ResourceKind::Cpu => (s.mean >= config.bound_threshold).then_some(Bound::Cpu),
                    ResourceKind::Memory => {
                        (s.mean >= config.bound_threshold).then_some(Bound::Memory)
                    }
                    ResourceKind::DiskUtil => {
                        (s.mean >= config.bound_threshold).then_some(Bound::Disk)
                    }
                    ResourceKind::DiskIo => (s.mean
                        >= config.io_bound_fraction * config.disk_capacity_mibs)
                        .then_some(Bound::Disk),
                    ResourceKind::Network => (s.mean
                        >= config.io_bound_fraction * config.network_capacity_mibs)
                        .then_some(Bound::Network),
                };
                if let Some(b) = bound {
                    if !bounds.contains(&b) {
                        bounds.push(b);
                    }
                }
            }

            // Bursty disk saturation is a bound too.
            let burst = disk_util_series.fraction_above(span.start, span.end, config.burst_level);
            if burst >= config.burst_fraction && !bounds.contains(&Bound::Disk) {
                bounds.push(Bound::Disk);
            }

            let cpu_w = cpu_series.window(span.start, span.end);
            let disk_w = disk_util_series.window(span.start, span.end);
            let n = cpu_w.len().min(disk_w.len());
            let cpu_disk_correlation = crate::stats::pearson(&cpu_w[..n], &disk_w[..n]);
            // Anti-cyclic means the disk is actually being *used* in bursts,
            // not merely idle — require some mean disk activity too.
            let disk_mean = disk_w.iter().sum::<f64>() / (disk_w.len().max(1) as f64);
            let anticyclic_disk = cpu_disk_correlation
                .map(|r| r <= config.anticyclic_threshold && disk_mean > 5.0)
                .unwrap_or(false);

            SpanProfile {
                span: span.clone(),
                usage,
                bounds,
                cpu_disk_correlation,
                anticyclic_disk,
            }
        })
        .collect();

    CorrelationReport {
        profiles,
        pipelining_degree: trace.pipelining_degree(),
        makespan: trace.makespan(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::ClusterTelemetry;

    fn cluster_with(kind: ResourceKind, start: f64, end: f64, level: f64) -> ClusterTelemetry {
        let mut c = ClusterTelemetry::new(1, 1.0);
        c.node_mut(0).deposit(kind, start, end, level * (end - start));
        c
    }

    #[test]
    fn cpu_bound_span_detected() {
        let mut trace = PlanTrace::new();
        trace.record("map", 0.0, 10.0);
        let telemetry = cluster_with(ResourceKind::Cpu, 0.0, 10.0, 95.0);
        let report = correlate(&trace, &telemetry, &CorrelationConfig::default());
        let p = report.profile("map").unwrap();
        assert!(p.is_bound_by(Bound::Cpu));
        assert!(!p.is_bound_by(Bound::Disk));
        assert!((p.mean(ResourceKind::Cpu) - 95.0).abs() < 1e-6);
    }

    #[test]
    fn disk_bound_via_throughput() {
        let mut trace = PlanTrace::new();
        trace.record("read", 0.0, 10.0);
        // 120 MiB/s against a 150 MiB/s disk exceeds the 50 % fraction.
        let telemetry = cluster_with(ResourceKind::DiskIo, 0.0, 10.0, 120.0);
        let report = correlate(&trace, &telemetry, &CorrelationConfig::default());
        assert!(report.profile("read").unwrap().is_bound_by(Bound::Disk));
    }

    #[test]
    fn network_bound_only_when_near_capacity() {
        let mut trace = PlanTrace::new();
        trace.record("shuffle", 0.0, 10.0);
        let low = cluster_with(ResourceKind::Network, 0.0, 10.0, 100.0);
        let report = correlate(&trace, &low, &CorrelationConfig::default());
        assert!(!report.profile("shuffle").unwrap().is_bound_by(Bound::Network));
        let high = cluster_with(ResourceKind::Network, 0.0, 10.0, 700.0);
        let report = correlate(&trace, &high, &CorrelationConfig::default());
        assert!(report.profile("shuffle").unwrap().is_bound_by(Bound::Network));
    }

    #[test]
    fn anticyclic_pattern_detected() {
        let mut trace = PlanTrace::new();
        trace.record("combine", 0.0, 8.0);
        let mut c = ClusterTelemetry::new(1, 1.0);
        // Alternate CPU-heavy and disk-heavy seconds (sort-buffer fill/drain).
        for i in 0..8 {
            let t0 = i as f64;
            if i % 2 == 0 {
                c.node_mut(0).deposit(ResourceKind::Cpu, t0, t0 + 1.0, 95.0);
                c.node_mut(0).deposit(ResourceKind::DiskUtil, t0, t0 + 1.0, 5.0);
            } else {
                c.node_mut(0).deposit(ResourceKind::Cpu, t0, t0 + 1.0, 15.0);
                c.node_mut(0).deposit(ResourceKind::DiskUtil, t0, t0 + 1.0, 90.0);
            }
        }
        let report = correlate(&trace, &c, &CorrelationConfig::default());
        let p = report.profile("combine").unwrap();
        assert!(p.cpu_disk_correlation.unwrap() < -0.9);
        assert!(p.anticyclic_disk);
    }

    #[test]
    fn idle_disk_is_not_anticyclic() {
        let mut trace = PlanTrace::new();
        trace.record("iterate", 0.0, 8.0);
        let mut c = ClusterTelemetry::new(1, 1.0);
        for i in 0..8 {
            let t0 = i as f64;
            let cpu = if i % 2 == 0 { 95.0 } else { 40.0 };
            c.node_mut(0).deposit(ResourceKind::Cpu, t0, t0 + 1.0, cpu);
            // Disk hovers near zero; correlation may be negative but the
            // disk is simply unused — must not be flagged anti-cyclic.
            let disk = if i % 2 == 0 { 0.0 } else { 1.0 };
            c.node_mut(0).deposit(ResourceKind::DiskUtil, t0, t0 + 1.0, disk);
        }
        let report = correlate(&trace, &c, &CorrelationConfig::default());
        assert!(!report.profile("iterate").unwrap().anticyclic_disk);
    }

    #[test]
    fn dominant_bounds_deduplicated() {
        let mut trace = PlanTrace::new();
        trace.record("a", 0.0, 5.0);
        trace.record("b", 5.0, 10.0);
        let mut c = ClusterTelemetry::new(1, 1.0);
        c.node_mut(0).deposit(ResourceKind::Cpu, 0.0, 10.0, 10.0 * 90.0);
        let report = correlate(&trace, &c, &CorrelationConfig::default());
        assert_eq!(report.dominant_bounds(), vec![Bound::Cpu]);
    }

    #[test]
    fn empty_trace_empty_report() {
        let trace = PlanTrace::new();
        let telemetry = ClusterTelemetry::new(1, 1.0);
        let report = correlate(&trace, &telemetry, &CorrelationConfig::default());
        assert!(report.profiles.is_empty());
        assert_eq!(report.makespan, 0.0);
    }
}
