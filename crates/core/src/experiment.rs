//! Experiment model: figures and tables as first-class objects.
//!
//! The paper runs "on average 5 runs for each experiment" and plots
//! mean ± standard deviation (§V). An [`Experiment`] collects per-trial
//! measurements for each `(x, framework)` cell and summarises them into a
//! [`Figure`] — the exact series a paper figure plots.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::config::Framework;
use crate::scaling::{HeadToHead, ScalePoint};
use crate::stats::{Accumulator, Summary};

/// Default number of trials per cell, matching §V.
pub const DEFAULT_TRIALS: usize = 5;

/// One summarised data point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FigurePoint {
    /// X value (nodes, GB/node, ...).
    pub x: f64,
    /// Mean ± stddev of the measured times (seconds).
    pub summary: Summary,
}

/// A per-framework series of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Which engine this series belongs to.
    pub framework: Framework,
    /// Summarised points, sorted by x.
    pub points: Vec<FigurePoint>,
}

impl FigureSeries {
    /// Converts to scaling-analysis points (means only).
    pub fn scale_points(&self) -> Vec<ScalePoint> {
        self.points
            .iter()
            .map(|p| ScalePoint {
                scale: p.x,
                time: p.summary.mean,
            })
            .collect()
    }
}

/// A reproduced paper figure: an id, axis labels and one series per engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Stable experiment id, e.g. `"fig1"`.
    pub id: String,
    /// Human title, e.g. `"Word Count - fixed problem size per node (24GB)"`.
    pub title: String,
    /// X axis label, e.g. `"Nodes"`.
    pub x_label: String,
    /// Y axis label (always seconds in the paper's time figures).
    pub y_label: String,
    /// Per-framework series.
    pub series: Vec<FigureSeries>,
}

impl Figure {
    /// Series for one framework, if present.
    pub fn series_for(&self, fw: Framework) -> Option<&FigureSeries> {
        self.series.iter().find(|s| s.framework == fw)
    }

    /// Head-to-head ratios when both frameworks are present and aligned.
    pub fn head_to_head(&self) -> Option<HeadToHead> {
        let s = self.series_for(Framework::Spark)?.scale_points();
        let f = self.series_for(Framework::Flink)?.scale_points();
        (s.len() == f.len()).then(|| HeadToHead::new(&s, &f))
    }
}

/// Collects raw trial measurements and summarises them into a [`Figure`].
#[derive(Debug, Clone)]
pub struct Experiment {
    id: String,
    title: String,
    x_label: String,
    y_label: String,
    /// (framework, x-bits) → accumulator. x stored as bits for Ord.
    cells: BTreeMap<(Framework, u64), Accumulator>,
}

impl Experiment {
    /// Creates an experiment with figure metadata.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: "Time (sec)".to_string(),
            cells: BTreeMap::new(),
        }
    }

    /// Records one trial's end-to-end time for `(framework, x)`.
    ///
    /// # Panics
    /// Panics on non-finite or negative x/time.
    pub fn record(&mut self, framework: Framework, x: f64, time_sec: f64) {
        assert!(x.is_finite() && time_sec.is_finite(), "non-finite sample");
        assert!(time_sec >= 0.0, "negative time");
        self.cells
            .entry((framework, x.to_bits()))
            .or_default()
            .push(time_sec);
    }

    /// Number of trials recorded for one cell.
    pub fn trials(&self, framework: Framework, x: f64) -> u64 {
        self.cells
            .get(&(framework, x.to_bits()))
            .map(|a| a.count())
            .unwrap_or(0)
    }

    /// Summarises into a figure; series points are sorted by x.
    pub fn figure(&self) -> Figure {
        let mut series: Vec<FigureSeries> = Vec::new();
        for fw in Framework::BOTH {
            let mut points: Vec<FigurePoint> = self
                .cells
                .iter()
                .filter(|((f, _), _)| *f == fw)
                .map(|((_, xbits), acc)| FigurePoint {
                    x: f64::from_bits(*xbits),
                    summary: acc.summary(),
                })
                .collect();
            if points.is_empty() {
                continue;
            }
            points.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("NaN x"));
            series.push(FigureSeries {
                framework: fw,
                points,
            });
        }
        Figure {
            id: self.id.clone(),
            title: self.title.clone(),
            x_label: self.x_label.clone(),
            y_label: self.y_label.clone(),
            series,
        }
    }
}

/// Outcome of one cell of a Table VII-style run matrix: either a time or a
/// failure ("no" in the paper's table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellOutcome {
    /// Completed in the given number of seconds.
    Time(f64),
    /// Failed; carries the failure description (e.g. "OOM in CoGroup").
    Failed(String),
}

impl CellOutcome {
    /// Seconds when completed.
    pub fn time(&self) -> Option<f64> {
        match self {
            CellOutcome::Time(t) => Some(*t),
            CellOutcome::Failed(_) => None,
        }
    }

    /// True when the run failed.
    pub fn is_failure(&self) -> bool {
        matches!(self, CellOutcome::Failed(_))
    }

    /// Renders like the paper's Table VII ("no" for failures).
    pub fn render(&self) -> String {
        match self {
            CellOutcome::Time(t) => format!("{}s", t.round() as i64),
            CellOutcome::Failed(_) => "no".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summarise() {
        let mut e = Experiment::new("fig1", "Word Count weak", "Nodes");
        for t in [100.0, 102.0, 98.0, 101.0, 99.0] {
            e.record(Framework::Spark, 8.0, t);
        }
        e.record(Framework::Flink, 8.0, 95.0);
        assert_eq!(e.trials(Framework::Spark, 8.0), 5);
        assert_eq!(e.trials(Framework::Flink, 8.0), 1);
        assert_eq!(e.trials(Framework::Flink, 16.0), 0);
        let fig = e.figure();
        let s = fig.series_for(Framework::Spark).unwrap();
        assert_eq!(s.points.len(), 1);
        assert!((s.points[0].summary.mean - 100.0).abs() < 1e-9);
        assert!(s.points[0].summary.stddev > 0.0);
    }

    #[test]
    fn figure_points_sorted_by_x() {
        let mut e = Experiment::new("fig", "t", "Nodes");
        e.record(Framework::Flink, 32.0, 1.0);
        e.record(Framework::Flink, 2.0, 2.0);
        e.record(Framework::Flink, 8.0, 3.0);
        let fig = e.figure();
        let xs: Vec<f64> = fig.series_for(Framework::Flink).unwrap().points.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![2.0, 8.0, 32.0]);
    }

    #[test]
    fn head_to_head_through_figure() {
        let mut e = Experiment::new("fig", "t", "Nodes");
        for x in [2.0, 4.0] {
            e.record(Framework::Spark, x, 110.0);
            e.record(Framework::Flink, x, 100.0);
        }
        let h = e.figure().head_to_head().unwrap();
        assert_eq!(h.flink_wins(), 2);
        assert!((h.max_flink_advantage() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn head_to_head_misaligned_is_none() {
        let mut e = Experiment::new("fig", "t", "Nodes");
        e.record(Framework::Spark, 2.0, 110.0);
        e.record(Framework::Flink, 2.0, 100.0);
        e.record(Framework::Flink, 4.0, 100.0);
        assert!(e.figure().head_to_head().is_none());
    }

    #[test]
    #[should_panic(expected = "negative time")]
    fn negative_time_panics() {
        let mut e = Experiment::new("fig", "t", "Nodes");
        e.record(Framework::Spark, 1.0, -1.0);
    }

    #[test]
    fn cell_outcome_rendering() {
        assert_eq!(CellOutcome::Time(3977.4).render(), "3977s");
        assert_eq!(CellOutcome::Failed("OOM".into()).render(), "no");
        assert!(CellOutcome::Failed("OOM".into()).is_failure());
        assert_eq!(CellOutcome::Time(5.0).time(), Some(5.0));
        assert_eq!(CellOutcome::Failed("x".into()).time(), None);
    }
}
