//! Bottleneck-guided hill-climbing: move the knob the paper would move.
//!
//! The paper's tuning narrative is causal, not exhaustive: observe what a
//! run is bound by, then open exactly that resource's knob (§IV, §VI). The
//! climb starts at the most-constrained corner of the space, reads the
//! [`Bottleneck`] verdict of the incumbent best trial, proposes the
//! verdict's knob moves in priority order, and takes the first proposal
//! that strictly improves verified throughput. It stops when no proposal
//! improves (or the trial budget runs out) — every step in the trajectory
//! is labelled with the verdict that caused it.

use flowmark_core::config::{EngineConfig, PartitionerChoice};

use crate::profile::Bottleneck;
use crate::search::{Budget, Measure, Trial, Tuner};
use crate::space::ParamSpace;

/// The configs a verdict proposes, in the order the paper's methodology
/// would try them. Every proposal stays inside `space`; knobs already at
/// their limit (or pinned for this engine) propose nothing.
pub fn knob_moves(
    bottleneck: Bottleneck,
    config: &EngineConfig,
    space: &ParamSpace,
) -> Vec<EngineConfig> {
    let mut moves: Vec<EngineConfig> = Vec::new();
    let mut push = |cfg: EngineConfig| {
        if cfg != *config && !moves.contains(&cfg) {
            moves.push(cfg);
        }
    };

    let grow_combine = |c: &EngineConfig| {
        ParamSpace::next_up(&space.combine_buffer_records, c.combine_buffer_records)
            .map(|v| EngineConfig { combine_buffer_records: v, ..*c })
    };
    let grow_spill = |c: &EngineConfig| {
        ParamSpace::next_up(&space.spill_run_budget, c.spill_run_budget)
            .map(|v| EngineConfig { spill_run_budget: v, ..*c })
    };
    let grow_network = |c: &EngineConfig| {
        ParamSpace::next_up(&space.network_buffer_records, c.network_buffer_records)
            .map(|v| EngineConfig { network_buffer_records: v, ..*c })
    };
    let grow_parallelism = |c: &EngineConfig| {
        ParamSpace::next_up(&space.parallelism, c.parallelism)
            .map(|v| EngineConfig { parallelism: v, ..*c })
    };
    let enable_combine = |c: &EngineConfig| {
        (!c.combine_enabled && space.combine_enabled.contains(&true))
            .then(|| EngineConfig { combine_enabled: true, ..*c })
    };
    let flip_partitioner = |c: &EngineConfig| {
        let other = match c.partitioner {
            PartitionerChoice::Hash => PartitionerChoice::Range,
            PartitionerChoice::Range => PartitionerChoice::Hash,
        };
        space
            .partitioner
            .contains(&other)
            .then(|| EngineConfig { partitioner: other, ..*c })
    };

    let proposals: Vec<Option<EngineConfig>> = match bottleneck {
        // Sort buffers overflowing: give the combiner memory before anything
        // else (§VI-A — Flink's spill/merge cycles serialise behind the disk).
        Bottleneck::Spill => vec![grow_combine(config), grow_spill(config), enable_combine(config)],
        // Producers blocked on full channels: more in-flight buffers first
        // (§IV-B), then shrink the traffic itself with a combiner.
        Bottleneck::Network => {
            vec![grow_network(config), enable_combine(config), grow_combine(config)]
        }
        // Disk throughput dominates: cut what crosses the disk — combine
        // harder — then allow more runs before early merges.
        Bottleneck::Disk => {
            vec![enable_combine(config), grow_combine(config), grow_spill(config)]
        }
        // Compute-bound: more workers (§IV-A); at the parallelism limit try
        // the other partitioner (skew can masquerade as compute).
        Bottleneck::Cpu => vec![grow_parallelism(config), flip_partitioner(config)],
        // Nothing dominates: mild exploration in the same order.
        Bottleneck::Balanced => {
            vec![grow_parallelism(config), flip_partitioner(config), grow_network(config)]
        }
    };
    for cfg in proposals.into_iter().flatten() {
        push(cfg);
    }
    moves
}

/// Climbs from `start`: evaluate, read the verdict, try its knob moves,
/// adopt the first strict improvement, repeat. Returns the full trajectory
/// in evaluation order.
pub fn hill_climb(
    tuner: &mut Tuner,
    space: &ParamSpace,
    runner: &mut dyn Measure,
    start: EngineConfig,
    max_trials: usize,
) -> Vec<Trial> {
    let mut trials = Vec::new();
    let mut best = tuner.evaluate(&start, Budget::FULL, runner);
    trials.push(best.clone());

    while trials.len() < max_trials {
        let mut improved = false;
        for proposal in knob_moves(best.bottleneck, &best.config, space) {
            if trials.len() >= max_trials {
                break;
            }
            let trial = tuner.evaluate(&proposal, Budget::FULL, runner);
            let better = trial.verified && trial.throughput > best.throughput;
            trials.push(trial.clone());
            if better {
                best = trial;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    trials
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_core::config::Framework;

    #[test]
    fn spill_verdict_grows_the_sort_budget_first() {
        let space = ParamSpace::full();
        let cfg = space.start();
        let moves = knob_moves(Bottleneck::Spill, &cfg, &space);
        assert!(!moves.is_empty());
        assert!(
            moves[0].combine_buffer_records > cfg.combine_buffer_records,
            "first spill move must grow the combine buffer"
        );
    }

    #[test]
    fn network_verdict_grows_buffers_only_where_they_exist() {
        let flink = ParamSpace::full().for_engine(Framework::Flink);
        let cfg = flink.start();
        let moves = knob_moves(Bottleneck::Network, &cfg, &flink);
        assert!(moves[0].network_buffer_records > cfg.network_buffer_records);

        // On the staged engine the axis is pinned, so the network verdict
        // falls through to traffic-shrinking moves.
        let spark = ParamSpace::full().for_engine(Framework::Spark);
        let cfg = spark.start();
        for m in knob_moves(Bottleneck::Network, &cfg, &spark) {
            assert_eq!(m.network_buffer_records, cfg.network_buffer_records);
        }
    }

    #[test]
    fn cpu_verdict_at_max_parallelism_flips_the_partitioner() {
        let space = ParamSpace::full().for_engine(Framework::Spark);
        let mut cfg = space.start();
        cfg.parallelism = *space.parallelism.last().unwrap();
        let moves = knob_moves(Bottleneck::Cpu, &cfg, &space);
        assert_eq!(moves.len(), 1);
        assert_ne!(moves[0].partitioner, cfg.partitioner);
    }

    #[test]
    fn exhausted_knobs_propose_nothing() {
        let space = ParamSpace {
            parallelism: vec![4],
            network_buffer_records: vec![1024],
            combine_buffer_records: vec![4096],
            spill_run_budget: vec![4],
            combine_enabled: vec![true],
            partitioner: vec![PartitionerChoice::Hash],
            cache_bytes: vec![1 << 20],
        };
        let cfg = space.start();
        for b in [
            Bottleneck::Spill,
            Bottleneck::Network,
            Bottleneck::Disk,
            Bottleneck::Cpu,
            Bottleneck::Balanced,
        ] {
            assert!(knob_moves(b, &cfg, &space).is_empty(), "{b:?} proposed a move");
        }
    }
}
