//! Deterministic search strategies behind one caching [`Tuner`].
//!
//! All strategies funnel through [`Tuner::evaluate`], which owns the run
//! cache: a config (at a given input budget) is executed at most once, and
//! later requests replay the recorded trial. Every strategy is seeded and
//! free of wall-clock decisions, so the same seed over the same space
//! replays the same trajectory of proposed configs.

use std::collections::HashMap;

use flowmark_core::config::EngineConfig;
use flowmark_core::correlate::CorrelationConfig;
use flowmark_core::spans::PlanTrace;
use flowmark_engine::MetricsSnapshot;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::guided;
use crate::profile::{classify, Bottleneck};
use crate::space::ParamSpace;

/// Input budget of one trial, as an exact fraction (successive halving runs
/// early rungs on prefixes of the input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Budget {
    /// Fraction numerator.
    pub numer: u32,
    /// Fraction denominator.
    pub denom: u32,
}

impl Budget {
    /// The whole input.
    pub const FULL: Budget = Budget { numer: 1, denom: 1 };

    /// `1/denom` of the input.
    pub fn fraction_of(denom: u32) -> Budget {
        Budget {
            numer: 1,
            denom: denom.max(1),
        }
    }

    /// The fraction as a float.
    pub fn fraction(self) -> f64 {
        self.numer as f64 / self.denom.max(1) as f64
    }

    /// True when this is the whole input.
    pub fn is_full(self) -> bool {
        self.numer == self.denom
    }
}

/// What one execution of a config produced.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Input records processed (scales with the budget fraction).
    pub records: u64,
    /// True when the output matched the sequential oracle.
    pub verified: bool,
    /// Engine counters after the run.
    pub metrics: MetricsSnapshot,
    /// The operator plan trace of the run.
    pub trace: PlanTrace,
}

/// Anything that can execute a config and measure it — the real
/// [`crate::workbench::Workbench`], or a synthetic cost model in tests.
pub trait Measure {
    /// Executes `config` on `budget` of the input and reports the result.
    fn measure(&mut self, config: &EngineConfig, budget: Budget) -> Measurement;
}

impl<F> Measure for F
where
    F: FnMut(&EngineConfig, Budget) -> Measurement,
{
    fn measure(&mut self, config: &EngineConfig, budget: Budget) -> Measurement {
        self(config, budget)
    }
}

/// One evaluated (or cache-replayed) config.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trial {
    /// The config measured.
    pub config: EngineConfig,
    /// [`EngineConfig::fingerprint`] of that config (the cache key).
    pub fingerprint: u64,
    /// Input fraction this trial ran on.
    pub budget_fraction: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Records per second — the metric every strategy maximises.
    pub throughput: f64,
    /// True when the output matched the oracle.
    pub verified: bool,
    /// The correlate verdict for this trial.
    pub bottleneck: Bottleneck,
    /// True when replayed from the run cache instead of executed.
    pub cached: bool,
    /// Engine counters of the (original) execution.
    pub metrics: MetricsSnapshot,
}

/// A search strategy over a [`ParamSpace`].
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Exhaustive sweep of the grid, in grid order.
    Grid,
    /// `samples` seeded uniform draws (repeats hit the cache).
    Random {
        /// Number of draws.
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Successive halving: start `candidates` seeded distinct configs on a
    /// small input fraction, keep the faster half each rung, finish the
    /// winner on the full input.
    Halving {
        /// Initial cohort size.
        candidates: usize,
        /// RNG seed for the cohort draw.
        seed: u64,
    },
    /// Bottleneck-guided hill-climb from the space's most-constrained
    /// corner (see [`crate::guided`]).
    Guided {
        /// Max configs to evaluate, including the start.
        max_trials: usize,
    },
}

/// The result of one strategy run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Every trial, in evaluation order (cache replays included, flagged).
    pub trials: Vec<Trial>,
    /// The winner: best verified full-budget throughput.
    pub best: Trial,
}

/// Executes strategies, caching every measured config.
pub struct Tuner {
    /// Thresholds for the per-trial correlate pass.
    pub correlation: CorrelationConfig,
    cache: HashMap<(u64, Budget), Trial>,
    executions: u64,
    cache_hits: u64,
}

impl Default for Tuner {
    fn default() -> Self {
        Self::new()
    }
}

impl Tuner {
    /// A tuner with the paper's default correlation thresholds and an empty
    /// cache.
    pub fn new() -> Self {
        Self {
            correlation: CorrelationConfig::default(),
            cache: HashMap::new(),
            executions: 0,
            cache_hits: 0,
        }
    }

    /// Configs actually executed (cache misses).
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Trials served from the cache without executing.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Measures one config at one budget, through the cache.
    pub fn evaluate(
        &mut self,
        config: &EngineConfig,
        budget: Budget,
        runner: &mut dyn Measure,
    ) -> Trial {
        let key = (config.fingerprint(), budget);
        if let Some(hit) = self.cache.get(&key) {
            self.cache_hits += 1;
            let mut replay = hit.clone();
            replay.cached = true;
            return replay;
        }
        self.executions += 1;
        let m = runner.measure(config, budget);
        let verdict = classify(&m.trace, &m.metrics, m.seconds, &self.correlation);
        let trial = Trial {
            config: *config,
            fingerprint: config.fingerprint(),
            budget_fraction: budget.fraction(),
            seconds: m.seconds,
            throughput: m.records as f64 / m.seconds.max(1e-9),
            verified: m.verified,
            bottleneck: verdict.bottleneck,
            cached: false,
            metrics: m.metrics,
        };
        self.cache.insert(key, trial.clone());
        trial
    }

    /// Runs one strategy to completion.
    pub fn run(
        &mut self,
        strategy: &Strategy,
        space: &ParamSpace,
        runner: &mut dyn Measure,
    ) -> TuneOutcome {
        assert!(!space.is_empty(), "cannot search an empty space");
        let trials = match strategy {
            Strategy::Grid => self.run_grid(space, runner),
            Strategy::Random { samples, seed } => {
                self.run_random(space, runner, (*samples).max(1), *seed)
            }
            Strategy::Halving { candidates, seed } => {
                self.run_halving(space, runner, (*candidates).max(2), *seed)
            }
            Strategy::Guided { max_trials } => {
                guided::hill_climb(self, space, runner, space.start(), (*max_trials).max(1))
            }
        };
        let best = best_of(&trials).expect("every strategy evaluates at least one config");
        TuneOutcome { trials, best }
    }

    fn run_grid(&mut self, space: &ParamSpace, runner: &mut dyn Measure) -> Vec<Trial> {
        space
            .grid()
            .iter()
            .map(|cfg| self.evaluate(cfg, Budget::FULL, runner))
            .collect()
    }

    fn run_random(
        &mut self,
        space: &ParamSpace,
        runner: &mut dyn Measure,
        samples: usize,
        seed: u64,
    ) -> Vec<Trial> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..samples)
            .map(|_| {
                let cfg = space.sample(&mut rng);
                self.evaluate(&cfg, Budget::FULL, runner)
            })
            .collect()
    }

    fn run_halving(
        &mut self,
        space: &ParamSpace,
        runner: &mut dyn Measure,
        candidates: usize,
        seed: u64,
    ) -> Vec<Trial> {
        // Draw a distinct cohort (bounded retries; a small space just yields
        // a smaller cohort).
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cohort: Vec<EngineConfig> = Vec::new();
        let mut attempts = 0;
        while cohort.len() < candidates && attempts < candidates * 32 {
            let cfg = space.sample(&mut rng);
            if !cohort.iter().any(|c| c.fingerprint() == cfg.fingerprint()) {
                cohort.push(cfg);
            }
            attempts += 1;
        }

        let mut trials = Vec::new();
        let mut denom = cohort.len().next_power_of_two() as u32;
        while cohort.len() > 1 {
            denom = (denom / 2).max(1);
            let mut rung: Vec<Trial> = cohort
                .iter()
                .map(|cfg| self.evaluate(cfg, Budget::fraction_of(denom), runner))
                .collect();
            trials.extend(rung.iter().cloned());
            // Keep the verified-and-fastest half (stable sort keeps draw
            // order on ties, so the rung is deterministic).
            rung.sort_by(|a, b| {
                b.verified
                    .cmp(&a.verified)
                    .then(b.throughput.partial_cmp(&a.throughput).unwrap_or(std::cmp::Ordering::Equal))
            });
            let keep = rung.len().div_ceil(2);
            cohort = rung.into_iter().take(keep).map(|t| t.config).collect();
        }
        // The survivor always gets a full-budget measurement.
        if let Some(winner) = cohort.first() {
            trials.push(self.evaluate(winner, Budget::FULL, runner));
        }
        trials
    }
}

/// The best trial: verified full-budget throughput first, then any verified
/// trial, then raw throughput.
pub fn best_of(trials: &[Trial]) -> Option<Trial> {
    let pick = |pred: &dyn Fn(&Trial) -> bool| -> Option<Trial> {
        trials
            .iter()
            .filter(|t| pred(t))
            .max_by(|a, b| {
                a.throughput
                    .partial_cmp(&b.throughput)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .cloned()
    };
    pick(&|t: &Trial| t.verified && t.budget_fraction >= 1.0)
        .or_else(|| pick(&|t: &Trial| t.verified))
        .or_else(|| pick(&|_| true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_engine::EngineMetrics;

    /// A deterministic cost model: bigger buffers stop synthetic spilling,
    /// bigger network buffers stop synthetic backpressure, more parallelism
    /// is mildly faster. No randomness, no wall clock.
    fn synthetic(config: &EngineConfig, budget: Budget) -> Measurement {
        let records = (100_000.0 * budget.fraction()) as u64;
        let metrics = EngineMetrics::new();
        metrics.add_records_shuffled(records);
        metrics.add_bytes_shuffled(records * 16);
        let mut seconds = 2.0 - 0.1 * (config.parallelism as f64).log2();
        if config.combine_buffer_records < 1024 {
            metrics.add_bytes_spilled(records * 64);
            metrics.add_spill_events(records / 100);
            seconds += 1.5;
        }
        if config.network_buffer_records < 256 {
            metrics.add_backpressure_waits(records / 2);
            seconds += 0.8;
        }
        Measurement {
            seconds: seconds * budget.fraction(),
            records,
            verified: true,
            metrics: metrics.snapshot(),
            trace: PlanTrace::new(),
        }
    }

    fn fingerprints(trials: &[Trial]) -> Vec<(u64, bool)> {
        trials.iter().map(|t| (t.fingerprint, t.cached)).collect()
    }

    #[test]
    fn cache_never_reexecutes_a_config() {
        let mut tuner = Tuner::new();
        let cfg = EngineConfig::default();
        let a = tuner.evaluate(&cfg, Budget::FULL, &mut synthetic);
        let b = tuner.evaluate(&cfg, Budget::FULL, &mut synthetic);
        assert_eq!(tuner.executions(), 1);
        assert_eq!(tuner.cache_hits(), 1);
        assert!(!a.cached);
        assert!(b.cached);
        assert_eq!(a.throughput, b.throughput);
        // A different budget is a different cache entry.
        tuner.evaluate(&cfg, Budget::fraction_of(2), &mut synthetic);
        assert_eq!(tuner.executions(), 2);
    }

    #[test]
    fn random_search_replays_bit_for_bit_under_one_seed() {
        let space = ParamSpace::full();
        let run = |seed: u64| {
            let mut tuner = Tuner::new();
            let out = tuner.run(
                &Strategy::Random { samples: 12, seed },
                &space,
                &mut synthetic,
            );
            fingerprints(&out.trials)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn halving_replays_and_finishes_on_the_full_input() {
        let space = ParamSpace::full();
        let run = |seed: u64| {
            let mut tuner = Tuner::new();
            tuner.run(
                &Strategy::Halving {
                    candidates: 8,
                    seed,
                },
                &space,
                &mut synthetic,
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(fingerprints(&a.trials), fingerprints(&b.trials));
        assert!(a.best.budget_fraction >= 1.0, "winner must run on the full input");
        // Early rungs really ran on fractions.
        assert!(a.trials.iter().any(|t| t.budget_fraction < 1.0));
    }

    #[test]
    fn guided_replays_and_unspills_the_start_config() {
        let space = ParamSpace::full();
        let run = || {
            let mut tuner = Tuner::new();
            let out = tuner.run(&Strategy::Guided { max_trials: 10 }, &space, &mut synthetic);
            (fingerprints(&out.trials), out)
        };
        let (fa, a) = run();
        let (fb, _) = run();
        assert_eq!(fa, fb);
        // The start corner spills and backpressures under the synthetic
        // model; the climb must have fixed both.
        assert_eq!(a.trials[0].bottleneck, Bottleneck::Spill);
        assert!(a.best.config.combine_buffer_records >= 1024);
        assert!(a.best.config.network_buffer_records >= 256);
        assert!(a.best.throughput > a.trials[0].throughput);
    }

    #[test]
    fn grid_visits_every_config_exactly_once() {
        let mut space = ParamSpace::smoke();
        space.combine_buffer_records = vec![4096];
        space.spill_run_budget = vec![8];
        space.partitioner = vec![flowmark_core::config::PartitionerChoice::Hash];
        let space = space.normalized();
        let mut tuner = Tuner::new();
        let out = tuner.run(&Strategy::Grid, &space, &mut synthetic);
        assert_eq!(out.trials.len(), space.len());
        assert_eq!(tuner.executions(), space.len() as u64);
        assert_eq!(tuner.cache_hits(), 0);
    }

    #[test]
    fn best_prefers_verified_full_budget_trials() {
        let mk = |throughput: f64, verified: bool, frac: f64| Trial {
            config: EngineConfig::default(),
            fingerprint: 0,
            budget_fraction: frac,
            seconds: 1.0,
            throughput,
            verified,
            bottleneck: Bottleneck::Balanced,
            cached: false,
            metrics: EngineMetrics::new().snapshot(),
        };
        let best = best_of(&[mk(500.0, false, 1.0), mk(100.0, true, 1.0), mk(900.0, true, 0.5)])
            .unwrap();
        assert_eq!(best.throughput, 100.0);
    }
}
