//! # flowmark-tune
//!
//! Bottleneck-guided auto-tuning of the two real engines.
//!
//! The paper's central claim is methodological: you cannot explain (or fix)
//! a Spark-vs-Flink performance gap without correlating the operator plan
//! with resource utilisation (§V). Default configurations are the wrong
//! configurations — §IV spends a page tuning parallelism, network buffers
//! and memory fractions per workload before any comparison is fair. This
//! crate mechanises that tuning loop:
//!
//! 1. [`space`] — the knob space: every axis of
//!    [`flowmark_core::config::EngineConfig`] with the values worth trying,
//!    filtered per engine (the partitioner choice only exists on the staged
//!    engine; network buffers only throttle the pipelined one).
//! 2. [`search`] — deterministic, seeded strategies over that space (grid,
//!    random, successive halving) behind one [`search::Tuner`] with a run
//!    cache keyed by config fingerprint: a config measured once is never
//!    executed again.
//! 3. [`profile`] — each trial's metrics are synthesised into
//!    [`flowmark_core::telemetry::ClusterTelemetry`] and classified by the
//!    real [`flowmark_core::correlate::correlate`] pass into a
//!    [`profile::Bottleneck`] verdict.
//! 4. [`guided`] — a hill-climb that moves exactly the knob the paper's
//!    methodology would move for that verdict (spill-bound → grow the sort
//!    budget, §VI-A; network-bound → grow buffers, §IV-B; CPU-bound → grow
//!    parallelism, §IV-A).
//! 5. [`workbench`] — the measurement rig: the six workloads of Table III
//!    on either engine, every trial checked against its sequential oracle.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod guided;
pub mod profile;
pub mod search;
pub mod space;
pub mod workbench;

pub use profile::{classify, Bottleneck, Verdict};
pub use search::{Budget, Measure, Measurement, Strategy, Trial, TuneOutcome, Tuner};
pub use space::ParamSpace;
pub use workbench::{TuneScale, Workbench, WorkloadId};
