//! Trial profiling: from engine counters to a bottleneck verdict.
//!
//! The paper's methodology classifies each operator span by what it is
//! *bound* by (§V). The real engines run too fast and too locally for OS
//! telemetry, but their counters carry the same information: spilled bytes
//! are disk writes, backpressured sends are a saturated network, and the
//! residual is compute. This module synthesises a
//! [`ClusterTelemetry`] from one trial's [`MetricsSnapshot`], runs the real
//! [`correlate`] pass over the trial's [`PlanTrace`], and folds the
//! resulting [`Bound`]s into a single actionable [`Bottleneck`].

use flowmark_core::correlate::{correlate, Bound, CorrelationConfig, CorrelationReport};
use flowmark_core::spans::PlanTrace;
use flowmark_core::telemetry::{ClusterTelemetry, ResourceKind};
use flowmark_engine::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// The single dominant limit of a trial, in the order the guided tuner
/// prioritises fixes (§VI): spills first (they serialise everything behind
/// the disk), then network, then disk reads, then compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bottleneck {
    /// Sort buffers overflowed to disk; memory budget is the limit (§VI-A).
    Spill,
    /// Producers blocked on full channels; buffers are the limit (§IV-B).
    Network,
    /// Disk throughput dominates the span (§VI-A).
    Disk,
    /// Compute dominates; parallelism is the lever (§IV-A).
    Cpu,
    /// Nothing dominates — the config is balanced for this workload.
    Balanced,
}

impl Bottleneck {
    /// Short id used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Bottleneck::Spill => "spill",
            Bottleneck::Network => "network",
            Bottleneck::Disk => "disk",
            Bottleneck::Cpu => "cpu",
            Bottleneck::Balanced => "balanced",
        }
    }
}

/// One trial's classification: the folded verdict plus the raw correlate
/// output it came from.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The folded, actionable verdict.
    pub bottleneck: Bottleneck,
    /// All bounds the correlate pass saw across spans.
    pub bounds: Vec<Bound>,
    /// The full per-span report.
    pub report: CorrelationReport,
}

/// Synthesises telemetry from a trial's counters and classifies it.
///
/// Channel levels, held over the whole run:
/// - **Memory %** — spill pressure: the fraction of shuffle traffic that
///   overflowed to disk, amplified when the buffer pool itself was
///   exhausted. Crossing the bound threshold means the managed memory
///   budget, not the machine, limited the run.
/// - **Network MiB/s** — effective wire saturation: the fraction of
///   shuffled records whose send blocked on a full channel, scaled to
///   capacity (a quarter of sends blocking reads as a saturated NIC).
/// - **Disk util/IO** — actual spill throughput against the device model.
/// - **CPU %** — the residual: full burn minus what spilling and
///   backpressure stole.
pub fn classify(
    trace: &PlanTrace,
    metrics: &MetricsSnapshot,
    elapsed_secs: f64,
    config: &CorrelationConfig,
) -> Verdict {
    // A trace is required for correlate to have spans to classify; a run
    // that recorded none still gets a single whole-run span.
    let mut effective = trace.clone();
    if effective.is_empty() {
        effective.record("run", 0.0, elapsed_secs.max(1e-6));
    }
    let end = effective
        .spans()
        .iter()
        .map(|s| s.end)
        .fold(elapsed_secs.max(1e-6), f64::max);

    let spilled = metrics.bytes_spilled as f64;
    let shuffled = metrics.bytes_shuffled as f64;
    let spill_frac = spilled / (spilled + shuffled + 1.0);
    let pool_bump = if metrics.recovery.pool_exhausted > 0 { 0.25 } else { 0.0 };
    let mem_pressure = (1.5 * spill_frac + pool_bump).min(1.0);

    // Messages eliminated by sender-side combining never hit the wire but
    // were still produced by the job: counting them in the denominator
    // keeps a well-combined iteration from reading as network-bound.
    let blocked_frac = metrics.backpressure_waits as f64
        / ((metrics.records_shuffled + metrics.messages_combined).max(1) as f64);
    // Event-time disorder is a wire signal too: a streaming record that
    // arrives behind its task's frontier spent extra time in flight, the
    // same delivery jitter that backpressure measures from the sender
    // side. A quarter of records arriving out of order saturates the
    // channel on its own; zero on batch runs and in-order streams.
    let lag_frac =
        metrics.watermark_lag_events as f64 / (metrics.records_read.max(1) as f64);
    let wire_saturation = (4.0 * blocked_frac + 2.0 * lag_frac).min(1.0);

    const MIB: f64 = 1024.0 * 1024.0;
    let spilled_mib = spilled / MIB;
    let shuffled_mib = shuffled / MIB;
    let disk_util = (100.0 * (spilled_mib / end) / config.disk_capacity_mibs).min(100.0);
    let network_mib = (config.network_capacity_mibs * wire_saturation * end)
        .max(shuffled_mib);

    // Compute is the residual once stalls are accounted for. Vectorized
    // execution discounts it: rows that went through a columnar kernel cost
    // a fraction of their record-at-a-time dispatch, so a fully-batched run
    // reads as 30% less compute-hungry. Capped at 0.3 so a clean CPU-bound
    // run (cpu = 100) stays above the bound threshold (60) and existing
    // verdicts don't flip — the discount shifts magnitude, not class.
    // Rows assigned by the K-Means batch kernel count alongside filter
    // kernel output: both replaced a per-record virtual dispatch with a
    // columnar loop. Radix-sorted merges and slab-transported stream
    // batches vectorize work that has no per-row counter, so their
    // presence adds a flat bump instead.
    let vector_rows = metrics.rows_selected + metrics.points_assigned_vectorized;
    let kernel_bump =
        if metrics.radix_sort_runs + metrics.stream_batches > 0 { 0.1 } else { 0.0 };
    let vector_frac = (vector_rows as f64 / (metrics.records_read.max(1) as f64) + kernel_bump)
        .min(1.0);
    // Integrity repair — poisoned-partition recomputes and checkpoint
    // snapshots discarded as unverifiable — re-runs work that was already
    // paid for once, so it surfaces as extra CPU burn rather than a new
    // stall class. Mirrors `pool_bump`'s shape: a flat bump, zero on clean
    // runs, so no existing verdict moves unless corruption actually hit.
    let rec = &metrics.recovery;
    let integrity_bump =
        if rec.integrity_recomputes + rec.checkpoints_rejected > 0 { 25.0 } else { 0.0 };
    let cpu = ((100.0 - 70.0 * mem_pressure - 50.0 * wire_saturation)
        * (1.0 - 0.3 * vector_frac)
        + integrity_bump)
        .clamp(5.0, 100.0);

    let mut telemetry = ClusterTelemetry::new(1, (end / 64.0).max(1e-6));
    let node = telemetry.node_mut(0);
    node.deposit(ResourceKind::Cpu, 0.0, end, cpu * end);
    node.deposit(ResourceKind::Memory, 0.0, end, 100.0 * mem_pressure * end);
    node.deposit(ResourceKind::DiskUtil, 0.0, end, disk_util * end);
    node.deposit(ResourceKind::DiskIo, 0.0, end, spilled_mib);
    node.deposit(ResourceKind::Network, 0.0, end, network_mib);

    let report = correlate(&effective, &telemetry, config);
    let bounds = report.dominant_bounds();
    let bottleneck = fold(&bounds);
    Verdict {
        bottleneck,
        bounds,
        report,
    }
}

/// Folds the set of observed bounds into the one the tuner should act on.
fn fold(bounds: &[Bound]) -> Bottleneck {
    if bounds.contains(&Bound::Memory) {
        Bottleneck::Spill
    } else if bounds.contains(&Bound::Network) {
        Bottleneck::Network
    } else if bounds.contains(&Bound::Disk) {
        Bottleneck::Disk
    } else if bounds.contains(&Bound::Cpu) {
        Bottleneck::Cpu
    } else {
        Bottleneck::Balanced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_engine::EngineMetrics;

    fn snapshot(f: impl FnOnce(&EngineMetrics)) -> MetricsSnapshot {
        let m = EngineMetrics::new();
        f(&m);
        m.snapshot()
    }

    #[test]
    fn clean_run_is_cpu_bound() {
        let metrics = snapshot(|m| {
            m.add_records_shuffled(10_000);
            m.add_bytes_shuffled(160_000);
        });
        let v = classify(&PlanTrace::new(), &metrics, 1.0, &CorrelationConfig::default());
        assert_eq!(v.bottleneck, Bottleneck::Cpu);
        assert_eq!(v.bounds, vec![Bound::Cpu]);
    }

    #[test]
    fn heavy_spilling_reads_as_spill_bound() {
        let metrics = snapshot(|m| {
            m.add_records_shuffled(10_000);
            m.add_bytes_shuffled(1_000_000);
            m.add_bytes_spilled(4_000_000);
            m.add_spill_events(50);
        });
        let v = classify(&PlanTrace::new(), &metrics, 1.0, &CorrelationConfig::default());
        assert_eq!(v.bottleneck, Bottleneck::Spill);
        assert!(v.bounds.contains(&Bound::Memory));
    }

    #[test]
    fn backpressure_reads_as_network_bound() {
        let metrics = snapshot(|m| {
            m.add_records_shuffled(10_000);
            m.add_bytes_shuffled(160_000);
            // 40% of sends blocked on a full channel.
            m.add_backpressure_waits(4_000);
        });
        let v = classify(&PlanTrace::new(), &metrics, 1.0, &CorrelationConfig::default());
        assert_eq!(v.bottleneck, Bottleneck::Network);
    }

    #[test]
    fn integrity_repair_reads_as_extra_cpu_burn() {
        // A backpressured run whose CPU residual sits below the bound
        // threshold stays that way when clean, but the same run that also
        // paid for corruption repair shows the recompute burn as a CPU
        // bound — without displacing the stall verdict the tuner acts on.
        let stalled = |m: &EngineMetrics| {
            m.add_records_shuffled(10_000);
            m.add_bytes_shuffled(160_000);
            m.add_backpressure_waits(4_000);
        };
        let clean = snapshot(stalled);
        let repaired = snapshot(|m| {
            stalled(m);
            m.add_corruptions_detected(2);
            m.add_integrity_recomputes(2);
        });
        let cfg = CorrelationConfig::default();
        let v0 = classify(&PlanTrace::new(), &clean, 1.0, &cfg);
        let v1 = classify(&PlanTrace::new(), &repaired, 1.0, &cfg);
        assert!(!v0.bounds.contains(&Bound::Cpu), "{:?}", v0.bounds);
        assert!(v1.bounds.contains(&Bound::Cpu), "{:?}", v1.bounds);
        assert_eq!(v1.bottleneck, Bottleneck::Network, "stall verdict must survive");
    }

    #[test]
    fn combined_messages_dilute_the_network_signal() {
        // Same 4 000 blocked sends as `backpressure_reads_as_network_bound`,
        // but a combiner eliminated 90 000 messages before the wire — the
        // iteration is doing far more work per blocked send than the raw
        // shuffle count suggests, so the verdict must not be Network.
        let metrics = snapshot(|m| {
            m.add_records_shuffled(10_000);
            m.add_bytes_shuffled(160_000);
            m.add_backpressure_waits(4_000);
            m.add_messages_combined(90_000);
        });
        let v = classify(&PlanTrace::new(), &metrics, 1.0, &CorrelationConfig::default());
        assert_ne!(v.bottleneck, Bottleneck::Network);
    }

    #[test]
    fn vectorized_rows_discount_the_cpu_signal() {
        // Identical traffic, but the second run pushed every row through a
        // columnar kernel (rows_selected == records_read): its CPU channel
        // must read lower, without flipping the clean run's Cpu verdict.
        let scalar = snapshot(|m| {
            m.add_records_read(10_000);
            m.add_records_shuffled(10_000);
            m.add_bytes_shuffled(160_000);
        });
        let vectorized = snapshot(|m| {
            m.add_records_read(10_000);
            m.add_records_shuffled(10_000);
            m.add_bytes_shuffled(160_000);
            m.add_batches_processed(3);
            m.add_rows_selected(10_000);
        });
        let config = CorrelationConfig::default();
        let vs = classify(&PlanTrace::new(), &scalar, 1.0, &config);
        let vv = classify(&PlanTrace::new(), &vectorized, 1.0, &config);
        let cpu_mean = |v: &Verdict| {
            v.report
                .profiles
                .first()
                .map(|p| p.mean(ResourceKind::Cpu))
                .unwrap_or(0.0)
        };
        assert!(cpu_mean(&vv) < cpu_mean(&vs), "vectorized run must read cooler");
        assert_eq!(vs.bottleneck, Bottleneck::Cpu);
        assert_eq!(vv.bottleneck, Bottleneck::Cpu, "discount must not flip the class");
    }

    #[test]
    fn kmeans_batch_assignments_discount_cpu_like_filter_rows() {
        // A run whose rows went through `assign_accumulate` instead of a
        // filter kernel earns the same vectorization discount.
        let scalar = snapshot(|m| {
            m.add_records_read(10_000);
            m.add_records_shuffled(10_000);
            m.add_bytes_shuffled(160_000);
        });
        let batched = snapshot(|m| {
            m.add_records_read(10_000);
            m.add_records_shuffled(10_000);
            m.add_bytes_shuffled(160_000);
            m.add_batches_processed(3);
            m.add_points_assigned_vectorized(10_000);
        });
        let config = CorrelationConfig::default();
        let vs = classify(&PlanTrace::new(), &scalar, 1.0, &config);
        let vb = classify(&PlanTrace::new(), &batched, 1.0, &config);
        let cpu_mean = |v: &Verdict| {
            v.report
                .profiles
                .first()
                .map(|p| p.mean(ResourceKind::Cpu))
                .unwrap_or(0.0)
        };
        assert!(cpu_mean(&vb) < cpu_mean(&vs), "batched run must read cooler");
        assert_eq!(vb.bottleneck, Bottleneck::Cpu, "discount must not flip the class");
    }

    #[test]
    fn radix_and_slab_kernels_bump_the_discount_without_flipping() {
        // Radix merges and stream slabs have no per-row counter; their
        // presence adds a capped flat bump to the vectorized fraction.
        let base = |m: &EngineMetrics| {
            m.add_records_read(10_000);
            m.add_records_shuffled(10_000);
            m.add_bytes_shuffled(160_000);
        };
        let plain = snapshot(base);
        let kerneled = snapshot(|m| {
            base(m);
            m.add_radix_sort_runs(4);
            m.add_stream_batches(12);
        });
        let config = CorrelationConfig::default();
        let vp = classify(&PlanTrace::new(), &plain, 1.0, &config);
        let vk = classify(&PlanTrace::new(), &kerneled, 1.0, &config);
        let cpu_mean = |v: &Verdict| {
            v.report
                .profiles
                .first()
                .map(|p| p.mean(ResourceKind::Cpu))
                .unwrap_or(0.0)
        };
        assert!(cpu_mean(&vk) < cpu_mean(&vp), "kernel bump must read cooler");
        assert_eq!(vk.bottleneck, Bottleneck::Cpu, "bump must not flip the class");
    }

    #[test]
    fn watermark_lag_reads_as_network_bound() {
        // A streaming trial whose records mostly arrive behind the
        // frontier is delivery-jitter bound even with zero blocked sends;
        // a mildly disordered stream must not flip.
        let streaming = |lag: u64| {
            snapshot(|m| {
                m.add_records_read(10_000);
                m.add_records_shuffled(10_000);
                m.add_bytes_shuffled(160_000);
                m.add_watermark_lag_events(lag);
                m.add_windows_emitted(50);
            })
        };
        let cfg = CorrelationConfig::default();
        let disordered = classify(&PlanTrace::new(), &streaming(4_000), 1.0, &cfg);
        assert_eq!(disordered.bottleneck, Bottleneck::Network, "{:?}", disordered.bounds);
        let mild = classify(&PlanTrace::new(), &streaming(200), 1.0, &cfg);
        assert_ne!(mild.bottleneck, Bottleneck::Network, "{:?}", mild.bounds);
    }

    #[test]
    fn verdict_uses_the_real_trace_spans() {
        let mut trace = PlanTrace::new();
        trace.record("map", 0.0, 0.4);
        trace.record("reduce", 0.4, 1.0);
        let metrics = snapshot(|m| m.add_records_shuffled(100));
        let v = classify(&trace, &metrics, 1.0, &CorrelationConfig::default());
        assert_eq!(v.report.profiles.len(), 2);
        assert!(v.report.profile("reduce").is_some());
    }

    #[test]
    fn spill_outranks_network_in_the_fold() {
        assert_eq!(fold(&[Bound::Network, Bound::Memory]), Bottleneck::Spill);
        assert_eq!(fold(&[Bound::Cpu, Bound::Network]), Bottleneck::Network);
        assert_eq!(fold(&[]), Bottleneck::Balanced);
    }
}
