//! The measurement rig: the six workloads of Table III on either engine.
//!
//! A [`Workbench`] owns one workload's dataset (generated once, from the
//! same seeds and recipes as the smoke bench and the chaos drill) and
//! measures any [`EngineConfig`] on any prefix fraction of it, verifying
//! every run against the sequential oracle. Oracles are memoised per
//! prefix length, so successive-halving rungs don't recompute them.

use std::collections::HashMap;
use std::time::Instant;

use flowmark_core::config::{EngineConfig, Framework};
use flowmark_datagen::graph::{Edge, RmatGen, RmatParams};
use flowmark_datagen::points::{Point, PointsConfig, PointsGen};
use flowmark_datagen::terasort::{Record, TeraGen};
use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_engine::flink::FlinkEnv;
use flowmark_engine::spark::SparkContext;
use flowmark_workloads::connected::{self, CcVariant};
use flowmark_workloads::{grep, kmeans, pagerank, terasort, wordcount};

use crate::search::{Budget, Measure, Measurement};

/// Fixed dataset seeds, shared with the smoke bench and chaos drill.
const WC_SEED: u64 = 7;
const GREP_SEED: u64 = 3;
const TS_SEED: u64 = 11;
const KM_SEED: u64 = 5;
const PR_SEED: u64 = 21;
const CC_SEED: u64 = 33;

/// Rounds cap for Connected Components (converges long before).
const CC_MAX_ROUNDS: u32 = 200;

/// The six workloads of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// Word Count — batch, combine-heavy aggregation.
    WordCount,
    /// Grep — batch, filter + count.
    Grep,
    /// TeraSort — batch, range repartition + sort.
    TeraSort,
    /// K-Means — iterative, broadcast + aggregate.
    KMeans,
    /// Page Rank — graph, per-round shuffles.
    PageRank,
    /// Connected Components — graph, converging deltas.
    Connected,
}

impl WorkloadId {
    /// All six, in Table III order.
    pub const ALL: [WorkloadId; 6] = [
        WorkloadId::WordCount,
        WorkloadId::Grep,
        WorkloadId::TeraSort,
        WorkloadId::KMeans,
        WorkloadId::PageRank,
        WorkloadId::Connected,
    ];

    /// Report id.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::WordCount => "wordcount",
            WorkloadId::Grep => "grep",
            WorkloadId::TeraSort => "terasort",
            WorkloadId::KMeans => "kmeans",
            WorkloadId::PageRank => "pagerank",
            WorkloadId::Connected => "connected",
        }
    }

    /// Parses a report id.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|w| w.name() == name)
    }
}

/// Input sizes for one tuning run.
#[derive(Debug, Clone, Copy)]
pub struct TuneScale {
    /// Word Count / Grep corpus lines.
    pub lines: usize,
    /// TeraSort records.
    pub ts_records: usize,
    /// K-Means points.
    pub points: usize,
    /// Page Rank / Connected Components edges.
    pub edges: usize,
    /// Iterations for the iterative workloads.
    pub rounds: u32,
}

impl TuneScale {
    /// Smoke scale: small enough that a dozen trials per cell stay fast.
    pub fn smoke() -> Self {
        Self {
            lines: 1_500,
            ts_records: 1_500,
            points: 2_000,
            edges: 1_200,
            rounds: 3,
        }
    }

    /// CLI scale.
    pub fn full() -> Self {
        Self {
            lines: 20_000,
            ts_records: 20_000,
            points: 10_000,
            edges: 6_000,
            rounds: 6,
        }
    }
}

/// One workload's dataset.
enum Dataset {
    Text(Vec<String>),
    Needle { lines: Vec<String>, needle: String },
    Records(Vec<Record>),
    Points { points: Vec<Point>, init: Vec<Point> },
    Edges(Vec<Edge>),
}

/// A memoised oracle for one prefix length.
enum Oracle {
    Counts(HashMap<String, u64>),
    Count(u64),
    Keys(Vec<Vec<u8>>),
    Centers(Vec<Point>),
    Ranks(HashMap<u64, f64>),
    Labels(HashMap<u64, u64>),
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + b.abs())
}

/// Executes one workload on one engine at any config and input fraction.
pub struct Workbench {
    workload: WorkloadId,
    engine: Framework,
    rounds: u32,
    data: Dataset,
    oracles: HashMap<usize, Oracle>,
}

impl Workbench {
    /// Generates the workload's dataset at `scale` (same seeds and recipes
    /// as the smoke bench).
    pub fn new(workload: WorkloadId, engine: Framework, scale: TuneScale) -> Self {
        let data = match workload {
            WorkloadId::WordCount => {
                Dataset::Text(TextGen::new(TextGenConfig::default(), WC_SEED).lines(scale.lines))
            }
            WorkloadId::Grep => {
                let config = TextGenConfig {
                    needle_selectivity: 0.05,
                    ..TextGenConfig::default()
                };
                let needle = config.needle.clone();
                Dataset::Needle {
                    lines: TextGen::new(config, GREP_SEED).lines(scale.lines),
                    needle,
                }
            }
            WorkloadId::TeraSort => {
                Dataset::Records(TeraGen::new(TS_SEED).records(scale.ts_records))
            }
            WorkloadId::KMeans => {
                let mut gen = PointsGen::new(
                    PointsConfig {
                        clusters: 4,
                        box_half_width: 100.0,
                        sigma: 3.0,
                    },
                    KM_SEED,
                );
                let init: Vec<Point> = gen
                    .true_centers()
                    .iter()
                    .map(|c| Point {
                        x: c.x + 10.0,
                        y: c.y - 8.0,
                    })
                    .collect();
                Dataset::Points {
                    points: gen.points(scale.points),
                    init,
                }
            }
            WorkloadId::PageRank => {
                let mut edges = RmatGen::new(9, RmatParams::default(), PR_SEED).edges(scale.edges);
                edges.dedup();
                Dataset::Edges(edges)
            }
            WorkloadId::Connected => {
                Dataset::Edges(RmatGen::new(8, RmatParams::default(), CC_SEED).edges(scale.edges))
            }
        };
        Self {
            workload,
            engine,
            rounds: scale.rounds,
            data,
            oracles: HashMap::new(),
        }
    }

    /// The workload this bench measures.
    pub fn workload(&self) -> WorkloadId {
        self.workload
    }

    /// The engine this bench measures on.
    pub fn engine(&self) -> Framework {
        self.engine
    }

    /// Total input records at full budget.
    pub fn input_len(&self) -> usize {
        match &self.data {
            Dataset::Text(lines) => lines.len(),
            Dataset::Needle { lines, .. } => lines.len(),
            Dataset::Records(records) => records.len(),
            Dataset::Points { points, .. } => points.len(),
            Dataset::Edges(edges) => edges.len(),
        }
    }

    fn oracle(&mut self, n: usize) -> &Oracle {
        let workload = self.workload;
        let rounds = self.rounds;
        // (Entry API would borrow `self.data` twice; compute outside.)
        if !self.oracles.contains_key(&n) {
            let oracle = match (&self.data, workload) {
                (Dataset::Text(lines), _) => Oracle::Counts(wordcount::oracle(&lines[..n])),
                (Dataset::Needle { lines, needle }, _) => {
                    Oracle::Count(grep::oracle(&lines[..n], needle))
                }
                (Dataset::Records(records), _) => Oracle::Keys(
                    terasort::oracle(records[..n].to_vec())
                        .iter()
                        .map(|r| r.key().to_vec())
                        .collect(),
                ),
                (Dataset::Points { points, init }, _) => {
                    Oracle::Centers(kmeans::oracle(&points[..n], init.clone(), rounds))
                }
                (Dataset::Edges(edges), WorkloadId::PageRank) => {
                    Oracle::Ranks(pagerank::oracle(&edges[..n], rounds))
                }
                (Dataset::Edges(edges), _) => Oracle::Labels(connected::oracle(&edges[..n])),
            };
            self.oracles.insert(n, oracle);
        }
        &self.oracles[&n]
    }
}

impl Measure for Workbench {
    fn measure(&mut self, config: &EngineConfig, budget: Budget) -> Measurement {
        let full = self.input_len();
        let n = ((full as f64 * budget.fraction()).round() as usize).clamp(1, full);
        self.oracle(n); // memoise before timing starts
        let parts = config.parallelism;
        let rounds = self.rounds;

        let start = Instant::now();
        let (verified, metrics, trace) = match self.engine {
            Framework::Spark => {
                let sc = SparkContext::with_config(config);
                let verified = match (&self.data, self.workload) {
                    (Dataset::Text(lines), _) => {
                        let out = wordcount::run_spark(&sc, lines[..n].to_vec(), parts);
                        matches!(&self.oracles[&n], Oracle::Counts(o) if *o == out)
                    }
                    (Dataset::Needle { lines, needle }, _) => {
                        let out = grep::run_spark(&sc, lines[..n].to_vec(), needle, parts);
                        matches!(&self.oracles[&n], Oracle::Count(o) if *o == out)
                    }
                    (Dataset::Records(records), _) => {
                        let out = terasort::run_spark(&sc, records[..n].to_vec(), parts);
                        ts_ok(&self.oracles[&n], n, &out)
                    }
                    (Dataset::Points { points, init }, _) => {
                        let out =
                            kmeans::run_spark(&sc, points[..n].to_vec(), init.clone(), rounds, parts);
                        centers_ok(&self.oracles[&n], &out)
                    }
                    (Dataset::Edges(edges), WorkloadId::PageRank) => {
                        let out = pagerank::run_spark(&sc, &edges[..n], rounds, parts);
                        ranks_ok(&self.oracles[&n], &out)
                    }
                    (Dataset::Edges(edges), _) => {
                        let out = connected::run_spark(&sc, &edges[..n], CC_MAX_ROUNDS, parts);
                        matches!(&self.oracles[&n], Oracle::Labels(o) if *o == out)
                    }
                };
                (verified, sc.metrics().snapshot(), sc.trace())
            }
            Framework::Flink => {
                let env = FlinkEnv::with_config(config);
                let verified = match (&self.data, self.workload) {
                    (Dataset::Text(lines), _) => {
                        let out = wordcount::run_flink(&env, lines[..n].to_vec());
                        matches!(&self.oracles[&n], Oracle::Counts(o) if *o == out)
                    }
                    (Dataset::Needle { lines, needle }, _) => {
                        let out = grep::run_flink(&env, lines[..n].to_vec(), needle);
                        matches!(&self.oracles[&n], Oracle::Count(o) if *o == out)
                    }
                    (Dataset::Records(records), _) => {
                        let out = terasort::run_flink(&env, records[..n].to_vec(), parts);
                        ts_ok(&self.oracles[&n], n, &out)
                    }
                    (Dataset::Points { points, init }, _) => {
                        let out = kmeans::run_flink(&env, points[..n].to_vec(), init.clone(), rounds);
                        centers_ok(&self.oracles[&n], &out)
                    }
                    (Dataset::Edges(edges), WorkloadId::PageRank) => {
                        match pagerank::run_flink(&env, &edges[..n], rounds, parts) {
                            Ok(out) => ranks_ok(&self.oracles[&n], &out),
                            Err(_) => false,
                        }
                    }
                    (Dataset::Edges(edges), _) => {
                        match connected::run_flink(
                            &env,
                            &edges[..n],
                            CC_MAX_ROUNDS,
                            parts,
                            CcVariant::Delta,
                            None,
                        ) {
                            Ok(out) => matches!(&self.oracles[&n], Oracle::Labels(o) if *o == out),
                            Err(_) => false,
                        }
                    }
                };
                (verified, env.metrics().snapshot(), env.trace())
            }
        };

        Measurement {
            seconds: start.elapsed().as_secs_f64().max(1e-9),
            records: n as u64,
            verified,
            metrics,
            trace,
        }
    }
}

fn ts_ok(oracle: &Oracle, n: usize, out: &[Vec<Record>]) -> bool {
    match oracle {
        Oracle::Keys(expect) => {
            terasort::validate_output(n, out).is_ok()
                && out
                    .iter()
                    .flatten()
                    .map(|r| r.key().to_vec())
                    .eq(expect.iter().cloned())
        }
        _ => false,
    }
}

fn centers_ok(oracle: &Oracle, out: &[Point]) -> bool {
    match oracle {
        Oracle::Centers(expect) => {
            out.len() == expect.len()
                && out
                    .iter()
                    .zip(expect)
                    .all(|(p, q)| close(p.x, q.x) && close(p.y, q.y))
        }
        _ => false,
    }
}

fn ranks_ok(oracle: &Oracle, out: &HashMap<u64, f64>) -> bool {
    match oracle {
        Oracle::Ranks(expect) => {
            out.len() == expect.len()
                && out
                    .iter()
                    .all(|(v, r)| close(*r, expect.get(v).copied().unwrap_or(f64::NAN)))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TuneScale {
        TuneScale {
            lines: 300,
            ts_records: 300,
            points: 300,
            edges: 300,
            rounds: 2,
        }
    }

    #[test]
    fn wordcount_verifies_on_both_engines() {
        for engine in [Framework::Spark, Framework::Flink] {
            let mut bench = Workbench::new(WorkloadId::WordCount, engine, tiny());
            let m = bench.measure(&EngineConfig::with_parallelism(2), Budget::FULL);
            assert!(m.verified, "{engine:?} produced a wrong answer");
            assert_eq!(m.records, 300);
            assert!(m.metrics.records_shuffled > 0);
        }
    }

    #[test]
    fn partial_budgets_slice_the_prefix_and_verify() {
        let mut bench = Workbench::new(WorkloadId::Grep, Framework::Spark, tiny());
        let m = bench.measure(&EngineConfig::with_parallelism(2), Budget::fraction_of(4));
        assert!(m.verified);
        assert_eq!(m.records, 75);
    }

    #[test]
    fn oracles_are_memoised_per_prefix() {
        let mut bench = Workbench::new(WorkloadId::WordCount, Framework::Spark, tiny());
        bench.measure(&EngineConfig::with_parallelism(2), Budget::fraction_of(2));
        bench.measure(&EngineConfig::with_parallelism(4), Budget::fraction_of(2));
        bench.measure(&EngineConfig::with_parallelism(2), Budget::FULL);
        assert_eq!(bench.oracles.len(), 2);
    }

    #[test]
    fn every_workload_id_round_trips_its_name() {
        for w in WorkloadId::ALL {
            assert_eq!(WorkloadId::from_name(w.name()), Some(w));
        }
        assert_eq!(WorkloadId::from_name("nope"), None);
    }
}
