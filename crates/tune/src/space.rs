//! The tuning search space: per-knob candidate values.
//!
//! One axis per [`EngineConfig`] field. An axis with a single value is
//! pinned — the searches never move it. [`ParamSpace::for_engine`] pins the
//! axes that do not exist on one engine: the staged engine has no bounded
//! network channels (its exchange is a barrier, §II-C), so
//! `network_buffer_records` is inert there; the pipelined engine's
//! aggregation always hash-partitions (the paper notes Flink exposes no
//! per-job range partitioner for `groupBy`, §II-B), so `partitioner` is
//! pinned to hash.

use flowmark_core::config::{EngineConfig, Framework, PartitionerChoice};
use rand::rngs::SmallRng;
use rand::Rng;

/// Candidate values for every tunable knob.
#[derive(Debug, Clone)]
pub struct ParamSpace {
    /// Worker/partition counts to try (§IV-A).
    pub parallelism: Vec<usize>,
    /// Pipelined-engine channel capacities, in records (§IV-B).
    pub network_buffer_records: Vec<usize>,
    /// Sort-combine buffer capacities, in records (§VI-A).
    pub combine_buffer_records: Vec<usize>,
    /// Outstanding spill runs per channel before an early merge.
    pub spill_run_budget: Vec<usize>,
    /// Whether map-side combining is on at all.
    pub combine_enabled: Vec<bool>,
    /// Shuffle partitioner for the staged engine's aggregations.
    pub partitioner: Vec<PartitionerChoice>,
    /// Block-cache budgets, bytes.
    pub cache_bytes: Vec<u64>,
}

impl ParamSpace {
    /// The small space the smoke drill searches: extremes plus the default
    /// on every interesting axis, ~dozens of configs per engine.
    pub fn smoke() -> Self {
        Self {
            parallelism: vec![2, 4, 8],
            network_buffer_records: vec![64, EngineConfig::DEFAULT_NETWORK_BUFFER_RECORDS],
            combine_buffer_records: vec![256, EngineConfig::DEFAULT_COMBINE_BUFFER_RECORDS],
            spill_run_budget: vec![2, 8],
            combine_enabled: vec![false, true],
            partitioner: vec![PartitionerChoice::Hash, PartitionerChoice::Range],
            cache_bytes: vec![EngineConfig::DEFAULT_CACHE_BYTES],
        }
        .normalized()
    }

    /// The full CLI space: a denser sweep of each axis.
    pub fn full() -> Self {
        Self {
            parallelism: vec![2, 4, 8, 16],
            network_buffer_records: vec![64, 256, 1024, 4096],
            combine_buffer_records: vec![256, 1024, 4096, 16384],
            spill_run_budget: vec![2, 4, 8],
            combine_enabled: vec![false, true],
            partitioner: vec![PartitionerChoice::Hash, PartitionerChoice::Range],
            cache_bytes: vec![EngineConfig::DEFAULT_CACHE_BYTES],
        }
        .normalized()
    }

    /// Pins the axes that do not apply to `engine` to their defaults.
    pub fn for_engine(mut self, engine: Framework) -> Self {
        match engine {
            Framework::Spark => {
                self.network_buffer_records =
                    vec![EngineConfig::DEFAULT_NETWORK_BUFFER_RECORDS];
            }
            Framework::Flink => {
                self.partitioner = vec![PartitionerChoice::Hash];
            }
        }
        self
    }

    /// Sorts and deduplicates every axis so grid order, `start()` and
    /// neighbour lookups are well defined.
    pub fn normalized(mut self) -> Self {
        self.parallelism.sort_unstable();
        self.parallelism.dedup();
        self.network_buffer_records.sort_unstable();
        self.network_buffer_records.dedup();
        self.combine_buffer_records.sort_unstable();
        self.combine_buffer_records.dedup();
        self.spill_run_budget.sort_unstable();
        self.spill_run_budget.dedup();
        self.combine_enabled.sort_unstable();
        self.combine_enabled.dedup();
        self.partitioner
            .sort_unstable_by_key(|p| matches!(p, PartitionerChoice::Range) as u8);
        self.partitioner.dedup();
        self.cache_bytes.sort_unstable();
        self.cache_bytes.dedup();
        self
    }

    /// Number of configs in the full grid.
    pub fn len(&self) -> usize {
        self.parallelism.len()
            * self.network_buffer_records.len()
            * self.combine_buffer_records.len()
            * self.spill_run_budget.len()
            * self.combine_enabled.len()
            * self.partitioner.len()
            * self.cache_bytes.len()
    }

    /// True when any axis is empty (no config can be built).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most-constrained corner of the space: the smallest value on every
    /// axis. The guided climb starts here so the trial trajectory shows the
    /// bottleneck verdicts pulling each knob open.
    pub fn start(&self) -> EngineConfig {
        EngineConfig {
            parallelism: self.parallelism[0],
            network_buffer_records: self.network_buffer_records[0],
            combine_buffer_records: self.combine_buffer_records[0],
            spill_run_budget: self.spill_run_budget[0],
            combine_enabled: self.combine_enabled[0],
            partitioner: self.partitioner[0],
            cache_bytes: self.cache_bytes[0],
            executor: Default::default(),
        }
    }

    /// The full cartesian grid, in fixed axis-major order.
    pub fn grid(&self) -> Vec<EngineConfig> {
        let mut out = Vec::with_capacity(self.len());
        for &parallelism in &self.parallelism {
            for &network_buffer_records in &self.network_buffer_records {
                for &combine_buffer_records in &self.combine_buffer_records {
                    for &spill_run_budget in &self.spill_run_budget {
                        for &combine_enabled in &self.combine_enabled {
                            for &partitioner in &self.partitioner {
                                for &cache_bytes in &self.cache_bytes {
                                    out.push(EngineConfig {
                                        parallelism,
                                        network_buffer_records,
                                        combine_buffer_records,
                                        spill_run_budget,
                                        combine_enabled,
                                        partitioner,
                                        cache_bytes,
                                        executor: Default::default(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Draws one config uniformly per axis. Axis order is fixed, so equal
    /// seeds draw equal sequences.
    pub fn sample(&self, rng: &mut SmallRng) -> EngineConfig {
        fn pick<T: Copy>(rng: &mut SmallRng, values: &[T]) -> T {
            values[rng.gen_range(0..values.len())]
        }
        EngineConfig {
            parallelism: pick(rng, &self.parallelism),
            network_buffer_records: pick(rng, &self.network_buffer_records),
            combine_buffer_records: pick(rng, &self.combine_buffer_records),
            spill_run_budget: pick(rng, &self.spill_run_budget),
            combine_enabled: pick(rng, &self.combine_enabled),
            partitioner: pick(rng, &self.partitioner),
            cache_bytes: pick(rng, &self.cache_bytes),
            executor: Default::default(),
        }
    }

    /// Smallest candidate strictly above `current` on a numeric axis.
    pub fn next_up(values: &[usize], current: usize) -> Option<usize> {
        values.iter().copied().find(|&v| v > current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn grid_covers_the_whole_space_without_duplicates() {
        let space = ParamSpace::smoke();
        let grid = space.grid();
        assert_eq!(grid.len(), space.len());
        let mut prints: Vec<u64> = grid.iter().map(EngineConfig::fingerprint).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), grid.len(), "grid repeated a config");
        for cfg in &grid {
            cfg.validate().expect("every grid config must be valid");
        }
    }

    #[test]
    fn engine_filter_pins_inapplicable_axes() {
        let spark = ParamSpace::smoke().for_engine(Framework::Spark);
        assert_eq!(spark.network_buffer_records.len(), 1);
        assert!(spark.partitioner.len() > 1);
        let flink = ParamSpace::smoke().for_engine(Framework::Flink);
        assert_eq!(flink.partitioner, vec![PartitionerChoice::Hash]);
        assert!(flink.network_buffer_records.len() > 1);
    }

    #[test]
    fn start_is_the_smallest_corner() {
        let space = ParamSpace::smoke();
        let start = space.start();
        assert_eq!(start.parallelism, 2);
        assert_eq!(start.combine_buffer_records, 256);
        assert!(!start.combine_enabled);
        assert_eq!(start.partitioner, PartitionerChoice::Hash);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let space = ParamSpace::full();
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..16).map(|_| space.sample(&mut rng).fingerprint()).collect()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10), "different seeds should diverge");
    }

    #[test]
    fn next_up_finds_the_adjacent_value() {
        assert_eq!(ParamSpace::next_up(&[2, 4, 8], 4), Some(8));
        assert_eq!(ParamSpace::next_up(&[2, 4, 8], 8), None);
        assert_eq!(ParamSpace::next_up(&[2, 4, 8], 3), Some(4));
    }
}
