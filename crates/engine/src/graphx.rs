//! A GraphX-like Pregel layer on the staged engine.
//!
//! GraphX "is a graph processing framework in a distributed dataflow
//! system" built entirely from RDD joins (paper ref. \[33\]); its iterations
//! are driver-loop unrolled (§II-C). This module is that layer for the
//! staged engine: a [`pregel`] driver that keeps the adjacency in a
//! persisted RDD and re-joins messages against it every superstep —
//! producing the per-iteration task waves of Figs 10/16/17 while computing
//! the same fixpoints as the pipelined engine's native
//! [`crate::iterate::vertex_centric`].

use std::collections::HashMap;
use std::sync::Arc;

use crate::cache::StorageLevel;
use crate::hash::{fx_map_with_capacity, FxHashMap};
use crate::spark::{Rdd, SparkContext};

/// A Pregel vertex program for the staged engine.
///
/// Per superstep, for every vertex with incoming messages (every vertex in
/// superstep 0): `(vertex, current value, merged message) → new value`;
/// then `scatter` decides the outgoing messages along each edge.
pub struct PregelProgram<VV, M> {
    /// Initial value per vertex.
    pub init: Arc<dyn Fn(u64) -> VV + Send + Sync>,
    /// Merges two messages destined for the same vertex.
    pub merge: Arc<dyn Fn(M, M) -> M + Send + Sync>,
    /// Applies the merged message: returns the new value.
    pub apply: Arc<dyn Fn(u64, &VV, &M) -> VV + Send + Sync>,
    /// Message sent along `(src, dst)` given the source's value; `None`
    /// sends nothing.
    pub scatter: Arc<dyn Fn(u64, &VV, u64) -> Option<M> + Send + Sync>,
    /// Initial message delivered to every vertex in superstep 0.
    pub initial_message: M,
}

/// Runs a Pregel computation with driver-side loop unrolling: each
/// superstep is a fresh wave of `join → flatMap → reduceByKey` jobs over
/// the persisted edge RDD, exactly GraphX's execution shape.
///
/// Stops when no messages flow or after `max_rounds`.
pub fn pregel<VV, M>(
    sc: &SparkContext,
    edges: &[(u64, u64)],
    partitions: usize,
    max_rounds: u32,
    program: PregelProgram<VV, M>,
) -> HashMap<u64, VV>
where
    VV: Clone + PartialEq + Send + Sync + 'static,
    M: Clone + Send + Sync + 'static,
{
    // The graph is loaded once and persisted (GraphX caches the graph).
    let edge_rdd: Rdd<(u64, u64)> = sc
        .parallelize(edges.to_vec(), partitions)
        .persist(StorageLevel::MemoryOnly);
    // Dense vertex universe: sorted ids + id → dense-index dictionary, so
    // values and inboxes live in flat arrays instead of per-round maps.
    let mut ids: Vec<u64> = Vec::with_capacity(edges.len() * 2);
    for &(s, t) in edges {
        ids.push(s);
        ids.push(t);
    }
    ids.sort_unstable();
    ids.dedup();
    let nv = ids.len();
    let mut index: FxHashMap<u64, u32> = fx_map_with_capacity(nv);
    index.extend(ids.iter().enumerate().map(|(i, &v)| (v, i as u32)));
    let index = Arc::new(index);
    let mut values: Vec<VV> = ids.iter().map(|&v| (program.init)(v)).collect();

    // Superstep 0: deliver the initial message everywhere.
    let mut inbox: Vec<Option<M>> = (0..nv)
        .map(|_| Some(program.initial_message.clone()))
        .collect();
    let mut inbox_count = nv;

    let mut first_round = true;
    for _ in 0..max_rounds {
        if inbox_count == 0 {
            break;
        }
        // Apply messages (driver-side, like GraphX's joinVertices); only
        // vertices whose value actually changed scatter next — Pregel's
        // halting rule (round 0 scatters unconditionally).
        let mut changed: Vec<Option<VV>> = vec![None; nv];
        let mut changed_count = 0usize;
        for i in 0..nv {
            let Some(m) = inbox[i].take() else { continue };
            let old = &values[i];
            let new = (program.apply)(ids[i], old, &m);
            if first_round || new != *old {
                changed[i] = Some(new);
                changed_count += 1;
            }
        }
        first_round = false;
        if changed_count == 0 {
            break;
        }
        for (i, c) in changed.iter().enumerate() {
            if let Some(value) = c {
                values[i] = value.clone();
            }
        }

        // Scatter along edges whose source changed: a distributed
        // join(edges, changed) → flatMap → reduceByKey wave. The wave's
        // map-side combine is the staged engine's sender-side combining,
        // measured via the combine counter deltas.
        let changed = Arc::new(changed);
        let scatter = Arc::clone(&program.scatter);
        let index2 = Arc::clone(&index);
        let combine_in = sc.metrics().combine_input();
        let combine_out = sc.metrics().combine_output();
        let messages = edge_rdd
            .flat_map(move |&(s, t)| {
                changed[index2[&s] as usize]
                    .as_ref()
                    .and_then(|value| scatter(s, value, t).map(|m| (t, m)))
                    .into_iter()
                    .collect::<Vec<_>>()
            })
            .reduce_by_key_with(
                {
                    let merge = Arc::clone(&program.merge);
                    move |acc: &mut M, m: M| *acc = merge(acc.clone(), m)
                },
                partitions,
            );
        inbox_count = 0;
        for (t, m) in messages.collect_as_map() {
            inbox[index[&t] as usize] = Some(m);
            inbox_count += 1;
        }
        let eliminated = (sc.metrics().combine_input() - combine_in)
            .saturating_sub(sc.metrics().combine_output() - combine_out);
        sc.metrics().add_messages_combined(eliminated);
        sc.metrics().add_iterations_run(1);
    }
    ids.into_iter().zip(values).collect()
}

/// Single-source shortest paths via [`pregel`] (unweighted).
pub fn sssp(
    sc: &SparkContext,
    edges: &[(u64, u64)],
    source: u64,
    partitions: usize,
    max_rounds: u32,
) -> HashMap<u64, u64> {
    let program = PregelProgram::<u64, u64> {
        init: Arc::new(move |v| if v == source { 0 } else { u64::MAX }),
        merge: Arc::new(u64::min),
        apply: Arc::new(|_, old, msg| (*old).min(*msg)),
        scatter: Arc::new(|_, value, _| {
            if *value == u64::MAX {
                None
            } else {
                Some(value + 1)
            }
        }),
        initial_message: u64::MAX,
    };
    // One catch: the generic driver scatters only from vertices that
    // received a message this round; with `merge = min` and monotone
    // values this is exactly the SSSP frontier after round 0.
    pregel(sc, edges, partitions, max_rounds, program)
}

/// Connected components via [`pregel`] (minimum-label propagation).
pub fn connected_components(
    sc: &SparkContext,
    edges: &[(u64, u64)],
    partitions: usize,
    max_rounds: u32,
) -> HashMap<u64, u64> {
    // CC needs the undirected closure.
    let sym: Vec<(u64, u64)> = edges
        .iter()
        .flat_map(|&(s, t)| [(s, t), (t, s)])
        .collect();
    let program = PregelProgram::<u64, u64> {
        init: Arc::new(|v| v),
        merge: Arc::new(u64::min),
        apply: Arc::new(|_, old, msg| (*old).min(*msg)),
        scatter: Arc::new(|_, value, _| Some(*value)),
        initial_message: u64::MAX,
    };
    pregel(sc, &sym, partitions, max_rounds, program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flink::FlinkEnv;
    use crate::gelly;

    fn sc() -> SparkContext {
        SparkContext::new(4, 64 << 20)
    }

    #[test]
    fn pregel_sssp_matches_bfs_oracle() {
        let edges = vec![(0u64, 1), (0, 2), (1, 3), (2, 3), (3, 4), (7, 8)];
        let got = sssp(&sc(), &edges, 0, 4, 50);
        let expect = gelly::bfs_oracle(&edges, 0);
        assert_eq!(got, expect);
    }

    #[test]
    fn both_graph_libraries_agree_on_sssp() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let edges: Vec<(u64, u64)> = (0..600)
            .map(|_| (rng.gen_range(0..120u64), rng.gen_range(0..120u64)))
            .collect();
        let staged = sssp(&sc(), &edges, 0, 4, 200);
        let env = FlinkEnv::new(4);
        let pipelined = gelly::sssp(&env, &edges, 0, 4, 200).unwrap();
        assert_eq!(staged, pipelined, "GraphX-style and Gelly-style disagree");
    }

    #[test]
    fn pregel_cc_matches_union_find() {
        let edges = vec![(1u64, 2), (2, 3), (10, 11), (11, 12), (12, 10)];
        let got = connected_components(&sc(), &edges, 4, 100);
        assert_eq!(got[&1], 1);
        assert_eq!(got[&3], 1);
        assert_eq!(got[&10], 10);
        assert_eq!(got[&12], 10);
    }

    #[test]
    fn pregel_unrolls_a_task_wave_per_superstep() {
        let edges: Vec<(u64, u64)> = (0..30).map(|i| (i, i + 1)).collect();
        let ctx = sc();
        let before = ctx.metrics().tasks_launched();
        let _ = sssp(&ctx, &edges, 0, 4, 100);
        let rounds = ctx.metrics().iterations_run();
        assert!(rounds >= 30, "a 30-hop path needs ≥30 supersteps, ran {rounds}");
        // Loop unrolling: tasks grow with rounds (≥ partitions per round).
        assert!(
            ctx.metrics().tasks_launched() - before >= rounds * 4,
            "launched {} for {} rounds",
            ctx.metrics().tasks_launched() - before,
            rounds
        );
    }

    #[test]
    fn pregel_converges_and_stops_early() {
        let edges = vec![(0u64, 1), (1, 0)];
        let ctx = sc();
        let _ = connected_components(&ctx, &edges, 2, 10_000);
        assert!(ctx.metrics().iterations_run() < 10);
    }
}
