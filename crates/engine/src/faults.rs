//! Seeded, deterministic fault injection and the shared recovery machinery.
//!
//! The paper's two frameworks embody opposite recovery architectures:
//! Spark recomputes lost partitions from RDD lineage, Flink restarts
//! pipelined regions from checkpoints (§II, and the fault-tolerance axis of
//! the related framework surveys). This module supplies the *injection*
//! half of that reproduction — a [`FaultPlan`] threaded through both
//! engines — plus the engine-agnostic recovery wrapper
//! [`run_recoverable`]: bounded attempts, exponential backoff, and (for the
//! staged engine) speculative backup attempts raced against stragglers.
//!
//! Every injection decision is a pure function of `(seed, stage,
//! partition, attempt)` via splitmix64, so a run with a given plan is
//! reproducible and — because recovery re-executes deterministic task
//! bodies — must produce results byte-identical to the fault-free run.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use flowmark_columnar::CorruptionKind;
use parking_lot::Mutex;

use crate::hash::{fx_map_with_capacity, FxHashMap};
use crate::metrics::EngineMetrics;

/// Attempt-number offset marking a speculative backup attempt; backups are
/// exempt from first-attempt probability injection so a backup never trips
/// over the same injected fault as its straggling primary.
pub const SPECULATIVE_ATTEMPT: u32 = 1 << 16;

/// Configuration for a [`FaultPlan`]. All stochastic choices derive from
/// `seed`, so two runs with the same config inject the same faults.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability a task's first attempt is killed.
    pub task_failure_prob: f64,
    /// Targeted kills: exact `(stage, partition, attempt)` triples. Unlike
    /// probability kills (first attempt only) these can target retries.
    pub kill_list: Vec<(u64, usize, u32)>,
    /// Guarantee: kill the first `n` first-attempt tasks regardless of
    /// probability (a global countdown shared by all stages).
    pub fail_first_n: u64,
    /// Probability a task's first attempt is slowed down.
    pub straggler_prob: f64,
    /// Guarantee: straggle the first `n` first-attempt tasks.
    pub straggle_first_n: u64,
    /// Injected straggler delay.
    pub straggler_slowdown: Duration,
    /// Probability a task's first attempt aborts with simulated memory
    /// pressure (recovered exactly like a kill, counted separately).
    pub memory_pressure_prob: f64,
    /// Attempts per task before the failure is declared fatal.
    pub max_attempts: u32,
    /// Base of the exponential retry backoff (doubled per retry).
    pub backoff_base: Duration,
    /// Straggler detector: speculate when an attempt runs longer than
    /// `median × multiplier` of its stage's completed attempts.
    pub speculation_multiplier: f64,
    /// Floor on the speculation threshold so microsecond-scale stages do
    /// not speculate on scheduler noise.
    pub speculation_floor: Duration,
    /// Pipelined exchanges emit an aligned checkpoint barrier every this
    /// many records sent per producer (0 disables barriers).
    pub checkpoint_interval_records: u64,
    /// Iterative operators snapshot their state every this many rounds.
    pub checkpoint_interval_rounds: u32,
    /// Probability a first-attempt shuffle task corrupts one of the
    /// batches it ships (bit-flip / validity-flip / truncate, chosen
    /// deterministically per site).
    pub corruption_prob: f64,
    /// Guarantee: arm corruption until the first `n` detections land. The
    /// budget is consumed by *detection* (see
    /// [`FaultPlan::confirm_corruption`]), not by injection, so a corrupt
    /// batch whose task was killed before delivery re-arms on the replay —
    /// a guaranteed corruption can never be dodged by a racing kill.
    pub corrupt_first_n: u64,
    /// Probability a stored pipelined checkpoint snapshot reads back
    /// rotten on a first attempt (detected at restore/scrub time).
    pub checkpoint_corruption_prob: f64,
    /// Guarantee: the first `n` checkpoint reads rot regardless of
    /// probability.
    pub checkpoint_corrupt_first_n: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            task_failure_prob: 0.0,
            kill_list: Vec::new(),
            fail_first_n: 0,
            straggler_prob: 0.0,
            straggle_first_n: 0,
            straggler_slowdown: Duration::from_millis(60),
            memory_pressure_prob: 0.0,
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            speculation_multiplier: 4.0,
            speculation_floor: Duration::from_millis(20),
            checkpoint_interval_records: 256,
            checkpoint_interval_rounds: 2,
            corruption_prob: 0.0,
            corrupt_first_n: 0,
            checkpoint_corruption_prob: 0.0,
            checkpoint_corrupt_first_n: 0,
        }
    }
}

impl FaultConfig {
    /// A convenience chaos preset: seeded, guaranteed ≥1 kill and ≥1
    /// straggler, plus background failure probability.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            task_failure_prob: 0.05,
            fail_first_n: 1,
            straggler_prob: 0.02,
            straggle_first_n: 1,
            ..Self::default()
        }
    }

    /// The chaos preset plus data corruption: a guaranteed shuffle-batch
    /// corruption and a guaranteed rotten checkpoint read, with background
    /// probability on top. The tight barrier interval makes even tiny
    /// pipelined exchanges complete enough checkpoints for the rot to have
    /// something to land on.
    pub fn corruption(seed: u64) -> Self {
        Self {
            corruption_prob: 0.05,
            corrupt_first_n: 1,
            checkpoint_corruption_prob: 0.05,
            checkpoint_corrupt_first_n: 1,
            checkpoint_interval_records: 2,
            ..Self::chaos(seed)
        }
    }

    /// A stable 64-bit fingerprint of every fault knob (FNV-1a, same
    /// discipline as `EngineConfig::fingerprint`). The cross-job
    /// fragment cache folds this into its key: two jobs under different
    /// fault plans seal under different checksum seeds and may corrupt
    /// different batches, so their stage outputs must **miss** each
    /// other, never alias.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.seed);
        eat(self.task_failure_prob.to_bits());
        eat(self.kill_list.len() as u64);
        for &(stage, partition, attempt) in &self.kill_list {
            eat(stage);
            eat(partition as u64);
            eat(u64::from(attempt));
        }
        eat(self.fail_first_n);
        eat(self.straggler_prob.to_bits());
        eat(self.straggle_first_n);
        eat(self.straggler_slowdown.as_micros() as u64);
        eat(self.memory_pressure_prob.to_bits());
        eat(u64::from(self.max_attempts));
        eat(self.backoff_base.as_micros() as u64);
        eat(self.speculation_multiplier.to_bits());
        eat(self.speculation_floor.as_micros() as u64);
        eat(self.checkpoint_interval_records);
        eat(u64::from(self.checkpoint_interval_rounds));
        eat(self.corruption_prob.to_bits());
        eat(self.corrupt_first_n);
        eat(self.checkpoint_corruption_prob.to_bits());
        eat(self.checkpoint_corrupt_first_n);
        h
    }
}

/// Payload type for injected panics; the filtering panic hook keeps these
/// quiet while real panics still print.
#[derive(Debug)]
pub struct InjectedFault {
    /// What kind of fault fired.
    pub kind: &'static str,
    /// `(stage, partition, attempt)` the fault was keyed on.
    pub at: (u64, usize, u32),
}

/// Panic payload raised when a job-level [`CancelToken`] fires mid-task:
/// the job was cancelled (deadline expiry or an explicit cancel), so the
/// task tears itself down instead of completing. Unlike [`InjectedFault`],
/// this payload is **never retried** by [`run_recoverable`] — cancellation
/// must win over recovery, or a cancelled job would burn its full attempt
/// budget before dying. The quiet panic hook silences it like an injected
/// fault: teardown is an expected path, not a bug.
#[derive(Debug)]
pub struct JobCancelled {
    /// `(stage, partition)` where the token was observed.
    pub at: (u64, usize),
}

/// Observes `cancel` and panics with a [`JobCancelled`] payload when it is
/// set — the single teardown point both engines call from their task loops.
pub fn check_cancelled(cancel: &CancelToken, metrics: &EngineMetrics, stage: u64, partition: usize) {
    if cancel.is_set() {
        metrics.add_tasks_cancelled(1);
        panic::panic_any(JobCancelled {
            at: (stage, partition),
        });
    }
}

/// Panic payload raised when batch verification fails: a checksum
/// mismatch at shuffle-read, a rotten checkpoint snapshot, or a sealed
/// source batch that no longer matches its digest. The staged engine
/// answers it with a lineage recompute of the poisoned partition, the
/// pipelined engine with a region restart from the last *verified*
/// checkpoint; when the corruption survives the whole retry budget the
/// payload escapes as the job's typed failure.
#[derive(Debug)]
pub struct IntegrityError {
    /// `(stage, partition, attempt)` where verification failed.
    pub at: (u64, usize, u32),
    /// What the verifier concluded about the damage.
    pub detail: &'static str,
}

struct PlanInner {
    cfg: FaultConfig,
    fail_budget: AtomicU64,
    straggle_budget: AtomicU64,
    corrupt_budget: AtomicU64,
    ckpt_corrupt_budget: AtomicU64,
}

/// A shareable, seeded fault-injection plan. `FaultPlan::disabled()` is the
/// default everywhere and adds zero overhead to the hot path.
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<PlanInner>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "FaultPlan(disabled)"),
            Some(p) => write!(f, "FaultPlan(seed={})", p.cfg.seed),
        }
    }
}

/// splitmix64 — the same deterministic bit mixer the sampling operator
/// uses; good enough to decorrelate `(seed, stage, partition, attempt)`.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic coin in `[0, 1)` for a `(salt, stage, partition,
/// attempt)` key.
fn coin(seed: u64, salt: u64, stage: u64, partition: usize, attempt: u32) -> f64 {
    let mut h = splitmix(seed ^ salt);
    h = splitmix(h ^ stage);
    h = splitmix(h ^ partition as u64);
    h = splitmix(h ^ u64::from(attempt));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const SALT_FAIL: u64 = 0xFA11;
const SALT_STRAGGLE: u64 = 0x510;
const SALT_MEM: u64 = 0x3E3;
const SALT_POINT: u64 = 0x90127;
const SALT_CORRUPT: u64 = 0xC0_44E7;
const SALT_CKPT: u64 = 0xCC_9047;

/// Stable checksum seed for runs without an active plan, so the fault-free
/// hot path checksums (and verifies) deterministically too.
const DEFAULT_CHECKSUM_SEED: u64 = 0x5EED_C0DE;

fn take_budget(budget: &AtomicU64) -> bool {
    let mut cur = budget.load(Ordering::Relaxed);
    while cur > 0 {
        match budget.compare_exchange_weak(cur, cur - 1, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
    false
}

impl FaultPlan {
    /// The no-op plan: nothing is injected, wrappers short-circuit.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Builds an active plan and installs the quiet panic hook for
    /// injected faults.
    pub fn new(cfg: FaultConfig) -> Self {
        assert!(cfg.max_attempts > 0, "need at least one attempt");
        install_quiet_hook();
        Self {
            inner: Some(Arc::new(PlanInner {
                fail_budget: AtomicU64::new(cfg.fail_first_n),
                straggle_budget: AtomicU64::new(cfg.straggle_first_n),
                corrupt_budget: AtomicU64::new(cfg.corrupt_first_n),
                ckpt_corrupt_budget: AtomicU64::new(cfg.checkpoint_corrupt_first_n),
                cfg,
            })),
        }
    }

    /// Whether any injection can happen.
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// Bounded attempts per task.
    pub fn max_attempts(&self) -> u32 {
        self.inner.as_ref().map_or(1, |p| p.cfg.max_attempts)
    }

    /// Exponential backoff before retry number `retry` (1-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        let base = self
            .inner
            .as_ref()
            .map_or(Duration::ZERO, |p| p.cfg.backoff_base);
        base * 2u32.saturating_pow(retry.saturating_sub(1)).min(64)
    }

    /// Barrier interval for pipelined exchanges (0 = no barriers).
    pub fn checkpoint_interval_records(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |p| p.cfg.checkpoint_interval_records)
    }

    /// Snapshot interval for iterative operators (0 = no checkpoints).
    pub fn checkpoint_interval_rounds(&self) -> u32 {
        self.inner
            .as_ref()
            .map_or(0, |p| p.cfg.checkpoint_interval_rounds)
    }

    /// Seed every batch checksum on this run derives from. Stable for a
    /// disabled plan, plan-seeded otherwise — either way checksumming is
    /// always on, so the fault-free bench pays the same verification cost
    /// a chaos run does.
    pub fn checksum_seed(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(DEFAULT_CHECKSUM_SEED, |p| splitmix(p.cfg.seed ^ DEFAULT_CHECKSUM_SEED))
    }

    /// Should this shuffle task corrupt one of the batches it ships?
    /// Returns the corruption shape plus an addressing salt.
    ///
    /// The guaranteed `corrupt_first_n` budget *arms* injection here but
    /// is only consumed when a verifier detects the damage
    /// ([`Self::confirm_corruption`]). That closes the race with task
    /// kills: if the corrupt batch dies with its producer before any
    /// verifier sees it, the replay re-arms and corrupts again, so a
    /// guaranteed corruption always ends in a detection — and the first
    /// detection disarms the budget, so retries after it run clean and
    /// recovery terminates within the attempt bound.
    pub fn corrupt_decision(
        &self,
        stage: u64,
        partition: usize,
        attempt: u32,
    ) -> Option<(CorruptionKind, u64)> {
        let p = self.inner.as_ref()?;
        let armed = p.corrupt_budget.load(Ordering::Acquire) > 0
            || (attempt == 0
                && coin(p.cfg.seed, SALT_CORRUPT, stage, partition, attempt)
                    < p.cfg.corruption_prob);
        if !armed {
            return None;
        }
        let mut h = splitmix(p.cfg.seed ^ SALT_CORRUPT);
        h = splitmix(h ^ stage);
        h = splitmix(h ^ partition as u64);
        h = splitmix(h ^ u64::from(attempt));
        let kind = match h % 3 {
            0 => CorruptionKind::BitFlip,
            1 => CorruptionKind::ValidityFlip,
            _ => CorruptionKind::Truncate,
        };
        Some((kind, splitmix(h)))
    }

    /// Consumes one unit of the guaranteed-corruption budget; called by
    /// the verifier that detected damage (see [`Self::corrupt_decision`]).
    pub fn confirm_corruption(&self) {
        if let Some(p) = &self.inner {
            take_budget(&p.corrupt_budget);
        }
    }

    /// Should this task's read of a sealed *source* batch observe rot?
    /// Budget-only, consumed at the decision: source batches are sealed
    /// once at the driver and shared by reference, so a task body (which
    /// is attempt-blind under [`run_recoverable`]) cannot key a
    /// probability coin without re-observing the same rot on every retry
    /// and starving recovery. Detection is simultaneous with the decision
    /// — the read itself is the verifier — so the next read of the same
    /// data runs clean, like a re-fetch from durable storage.
    pub fn source_rot_decision(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|p| take_budget(&p.corrupt_budget))
    }

    /// Should stored checkpoint snapshot `ckpt` of `(stage, partition)`
    /// read back rotten? Rot is decided at *read* time — at-rest damage is
    /// only ever observed by a reader — so detection is simultaneous with
    /// the decision and the guaranteed budget is consumed here directly.
    /// The probability path fires on first attempts only (a replayed
    /// region re-snapshots under the same ids; re-rotting every replay
    /// would starve recovery).
    pub fn checkpoint_rot_decision(
        &self,
        stage: u64,
        partition: usize,
        ckpt: u64,
        attempt: u32,
    ) -> bool {
        let Some(p) = &self.inner else { return false };
        if take_budget(&p.ckpt_corrupt_budget) {
            return true;
        }
        attempt == 0
            && coin(p.cfg.seed, SALT_CKPT, stage ^ splitmix(ckpt), partition, 0)
                < p.cfg.checkpoint_corruption_prob
    }

    /// Should this `(stage, partition, attempt)` be killed?
    fn fail_decision(&self, stage: u64, partition: usize, attempt: u32) -> bool {
        let Some(p) = &self.inner else { return false };
        if p.cfg.kill_list.contains(&(stage, partition, attempt)) {
            return true;
        }
        if attempt != 0 {
            return false; // probability kills hit first attempts only
        }
        if coin(p.cfg.seed, SALT_FAIL, stage, partition, attempt) < p.cfg.task_failure_prob {
            return true;
        }
        take_budget(&p.fail_budget)
    }

    /// Injected slowdown for this attempt, when it is a straggler.
    fn straggle_decision(&self, stage: u64, partition: usize, attempt: u32) -> Option<Duration> {
        let p = self.inner.as_ref()?;
        if attempt != 0 {
            return None; // retries and backups run at full speed
        }
        let hit = coin(p.cfg.seed, SALT_STRAGGLE, stage, partition, attempt)
            < p.cfg.straggler_prob
            || take_budget(&p.straggle_budget);
        hit.then_some(p.cfg.straggler_slowdown)
    }

    fn memory_pressure_decision(&self, stage: u64, partition: usize, attempt: u32) -> bool {
        let Some(p) = &self.inner else { return false };
        attempt == 0
            && coin(p.cfg.seed, SALT_MEM, stage, partition, attempt) < p.cfg.memory_pressure_prob
    }

    /// Runs the whole-task injection sequence: straggler sleep, then
    /// memory-pressure abort, then kill. Panics (with an [`InjectedFault`]
    /// payload) when a fault fires — callers catch it via `catch_unwind`.
    pub fn inject_task(
        &self,
        metrics: &EngineMetrics,
        stage: u64,
        partition: usize,
        attempt: u32,
        cancel: &CancelToken,
    ) {
        if !self.active() {
            return;
        }
        if let Some(delay) = self.straggle_decision(stage, partition, attempt) {
            metrics.add_injected_stragglers(1);
            cancel.sleep(delay);
        }
        if self.memory_pressure_decision(stage, partition, attempt) {
            metrics.add_injected_failures(1);
            metrics.add_memory_pressure_events(1);
            panic::panic_any(InjectedFault {
                kind: "memory pressure",
                at: (stage, partition, attempt),
            });
        }
        if self.fail_decision(stage, partition, attempt) {
            metrics.add_injected_failures(1);
            panic::panic_any(InjectedFault {
                kind: "task kill",
                at: (stage, partition, attempt),
            });
        }
    }

    /// Arms the mid-stream fault state for one streaming producer task:
    /// kills and slowdowns fire at a deterministic send index instead of at
    /// task start, leaving consumers holding partial channel state.
    pub fn stream_fault(
        &self,
        metrics: &EngineMetrics,
        stage: u64,
        partition: usize,
        attempt: u32,
        cancel: Arc<AtomicBool>,
    ) -> StreamFault {
        let (fail_at, straggle_at, slowdown) = match &self.inner {
            None => (None, None, Duration::ZERO),
            Some(p) => {
                let window = p.cfg.checkpoint_interval_records.max(8) * 2;
                let point = |salt: u64| {
                    1 + splitmix(
                        p.cfg.seed
                            ^ salt
                            ^ splitmix(stage ^ splitmix(partition as u64 ^ u64::from(attempt))),
                    ) % window
                };
                let fail_at = self
                    .fail_decision(stage, partition, attempt)
                    .then(|| point(SALT_POINT));
                let straggle_at = self
                    .straggle_decision(stage, partition, attempt)
                    .map(|_| point(SALT_POINT ^ SALT_STRAGGLE));
                let slowdown = p.cfg.straggler_slowdown;
                (fail_at, straggle_at, slowdown)
            }
        };
        StreamFault {
            metrics: metrics.clone(),
            at: (stage, partition, attempt),
            fail_at,
            straggle_at,
            slowdown,
            cancel,
            sent: 0,
        }
    }

    /// Should round `round` of an iterative operator fail on its
    /// `attempt`-th try? (Probability and budget kills fire only on the
    /// first try of a round, so replay always makes progress.)
    pub fn round_failure(&self, stage: u64, round: u32, attempt: u32) -> bool {
        self.fail_decision(stage, round as usize, attempt)
    }

    /// Injected straggler delay for an iteration round.
    pub fn round_straggler(&self, stage: u64, round: u32) -> Option<Duration> {
        self.straggle_decision(stage, round as usize, 0)
    }

    /// Speculation threshold for a stage: `max(floor, median × multiplier)`
    /// once the stage has enough completed attempts. A cold stage (no
    /// trusted median yet — e.g. every first-wave task started at once)
    /// falls back to the floor alone, so a straggler in the very first
    /// wave still races a backup.
    pub fn speculation_threshold(&self, stats: &StageStats, stage: u64) -> Option<Duration> {
        let p = self.inner.as_ref()?;
        Some(match stats.median(stage) {
            Some(median) => median
                .mul_f64(p.cfg.speculation_multiplier)
                .max(p.cfg.speculation_floor),
            None => p.cfg.speculation_floor,
        })
    }
}

/// Mid-stream fault state for one producer attempt; see
/// [`FaultPlan::stream_fault`].
pub struct StreamFault {
    metrics: EngineMetrics,
    at: (u64, usize, u32),
    fail_at: Option<u64>,
    straggle_at: Option<u64>,
    slowdown: Duration,
    cancel: Arc<AtomicBool>,
    sent: u64,
}

impl StreamFault {
    /// Called once per streamed record (a producer's send or a consumer's
    /// receive); panics with an [`InjectedFault`] at the armed kill point
    /// and sleeps at the armed straggle point (cut short when `cancel` is
    /// set).
    pub fn on_event(&mut self) {
        self.sent += 1;
        if self.straggle_at == Some(self.sent) {
            self.metrics.add_injected_stragglers(1);
            let token = CancelToken::from_flag(Arc::clone(&self.cancel));
            token.sleep(self.slowdown);
        }
        if self.fail_at == Some(self.sent) {
            self.fire();
        }
    }

    /// Called when the producer finished its stream: a kill armed beyond
    /// the stream's length still fires, so short streams cannot dodge an
    /// injected failure.
    pub fn on_finish(&mut self) {
        if self.fail_at.is_some_and(|f| f > self.sent) {
            self.fire();
        }
    }

    fn fire(&mut self) -> ! {
        self.fail_at = None;
        self.metrics.add_injected_failures(1);
        panic::panic_any(InjectedFault {
            kind: "producer kill",
            at: self.at,
        });
    }
}

/// A cooperative cancellation token. Two layers share it:
///
/// - **task scope** — injected straggler sleeps poll it so a speculative
///   win releases the straggling loser early (PR 2's original use);
/// - **job scope** — the serve layer hands each job one token and sets it
///   on deadline expiry or an explicit cancel; the engines observe it in
///   their task loops and tear the whole job down via [`JobCancelled`].
///
/// Tokens form a parent chain: [`CancelToken::child_of`] builds a scoped
/// token whose `is_set` also observes every ancestor, while `set` marks
/// only its own flag. A speculation race token is a *child* of the job
/// token — settling the race frees the loser without cancelling the job,
/// but cancelling the job interrupts every straggler sleep underneath it.
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

/// Polling slice for cooperative sleeps: short enough that cancellation
/// interrupts even a multi-second straggler within ~one slice.
const SLEEP_SLICE: Duration = Duration::from_millis(25);

impl CancelToken {
    /// Creates an unset root token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a raw shared flag as a root token (no parent).
    pub fn from_flag(flag: Arc<AtomicBool>) -> Self {
        Self { flag, parent: None }
    }

    /// Creates an unset token scoped under `parent`: `is_set` also
    /// observes the parent chain, `set` marks only this token.
    pub fn child_of(parent: &CancelToken) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(parent.clone())),
        }
    }

    /// Sets this token's own flag (children observe it, parents do not),
    /// waking any polling sleep scoped at or under it.
    pub fn set(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether this token or any ancestor is set.
    pub fn is_set(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        self.parent.as_ref().is_some_and(|p| p.is_set())
    }

    /// Sleeps up to `total`, returning early once the token (or an
    /// ancestor) is set. Polls in `min(25ms, remaining)` slices so a
    /// cancel interrupts even a 10 s straggler sleep within ~one slice.
    pub fn sleep(&self, total: Duration) {
        let started = Instant::now();
        while !self.is_set() {
            let elapsed = started.elapsed();
            if elapsed >= total {
                return;
            }
            std::thread::sleep((total - elapsed).min(SLEEP_SLICE));
        }
    }
}

/// Per-stage completed-attempt durations feeding the straggler detector.
#[derive(Default)]
pub struct StageStats {
    durations: Mutex<FxHashMap<u64, Vec<Duration>>>,
}

/// Completed attempts a stage needs before the detector trusts its median.
const MIN_SAMPLES: usize = 3;

impl StageStats {
    /// Creates an empty stats table.
    pub fn new() -> Self {
        Self {
            durations: Mutex::new(fx_map_with_capacity(16)),
        }
    }

    /// Records one completed attempt.
    pub fn record(&self, stage: u64, took: Duration) {
        self.durations.lock().entry(stage).or_default().push(took);
    }

    /// Median completed-attempt duration, once enough samples exist.
    pub fn median(&self, stage: u64) -> Option<Duration> {
        let guard = self.durations.lock();
        let samples = guard.get(&stage)?;
        if samples.len() < MIN_SAMPLES {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }
}

/// Which recovery architecture is paying for a retry — decides the metric
/// the retry lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Staged engine: the lost partition is recomputed from lineage.
    Lineage,
    /// Pipelined engine: the operator chain (region) is replayed.
    Region,
}

type AttemptResult<T> = Result<T, Box<dyn std::any::Any + Send>>;

fn attempt_once<T>(
    plan: &FaultPlan,
    metrics: &EngineMetrics,
    stats: Option<&StageStats>,
    stage: u64,
    partition: usize,
    attempt: u32,
    cancel: &CancelToken,
    body: &(dyn Fn() -> T + Sync),
) -> AttemptResult<T> {
    let started = Instant::now();
    let out = panic::catch_unwind(AssertUnwindSafe(|| {
        plan.inject_task(metrics, stage, partition, attempt, cancel);
        body()
    }));
    match out {
        Ok(v) => {
            if let Some(stats) = stats {
                stats.record(stage, started.elapsed());
            }
            Ok(v)
        }
        Err(payload) => Err(payload),
    }
}

/// One attempt, raced against a speculative backup when the stage's
/// straggler detector has a threshold and the primary overruns it. The
/// race token is a child of the job token, so settling the race frees the
/// losing attempt without cancelling the job, while a job cancel still
/// interrupts straggler sleeps inside either attempt.
fn attempt_speculatively<T: Send>(
    plan: &FaultPlan,
    metrics: &EngineMetrics,
    stats: &StageStats,
    stage: u64,
    partition: usize,
    attempt: u32,
    job_cancel: &CancelToken,
    body: &(dyn Fn() -> T + Sync),
) -> AttemptResult<T> {
    let cancel = CancelToken::child_of(job_cancel);
    let Some(threshold) = plan.speculation_threshold(stats, stage) else {
        return attempt_once(plan, metrics, Some(stats), stage, partition, attempt, &cancel, body);
    };
    let (tx, rx) = crossbeam::channel::bounded::<(bool, AttemptResult<T>)>(2);
    std::thread::scope(|scope| {
        let primary_tx = tx.clone();
        let primary_cancel = cancel.clone();
        scope.spawn(move || {
            let r = attempt_once(
                plan, metrics, Some(stats), stage, partition, attempt, &primary_cancel, body,
            );
            let _ = primary_tx.send((false, r));
        });
        let mut backup_launched = false;
        let first = match rx.recv_timeout(threshold) {
            Ok(report) => report,
            Err(_) => {
                // Straggler detected: launch the backup, first result wins.
                metrics.add_speculative_launched(1);
                backup_launched = true;
                let backup_tx = tx.clone();
                let backup_cancel = cancel.clone();
                scope.spawn(move || {
                    let r = attempt_once(
                        plan,
                        metrics,
                        Some(stats),
                        stage,
                        partition,
                        attempt + SPECULATIVE_ATTEMPT,
                        &backup_cancel,
                        body,
                    );
                    let _ = backup_tx.send((true, r));
                });
                rx.recv().expect("an attempt always reports")
            }
        };
        let mut outstanding = backup_launched;
        let settled = match first {
            (_, Ok(_)) => first,
            (_, Err(payload)) if backup_launched => {
                // The first reporter failed; the other attempt may still
                // deliver a good result. When the absorbed failure was a
                // detected corruption, the recompute answering it happens
                // either way — the twin delivers it, or the twin's own
                // failure reaches the retry loop and the next attempt does
                // — but the retry loop only ever sees the twin's payload,
                // so the corruption must be accounted here.
                if payload.downcast_ref::<IntegrityError>().is_some() {
                    metrics.add_integrity_recomputes(1);
                }
                outstanding = false;
                rx.recv().expect("both attempts report")
            }
            failed => failed,
        };
        cancel.set();
        if outstanding {
            // A good result settled the race while the twin was still out.
            // The scope joins the twin anyway; drain its report so a twin
            // that died on a detected corruption is accounted the same
            // way — the winner's clean run answered the rot.
            let loser = rx.recv().expect("both attempts report");
            if let (_, Err(payload)) = &loser {
                if payload.downcast_ref::<IntegrityError>().is_some() {
                    metrics.add_integrity_recomputes(1);
                }
            }
        }
        if let (true, Ok(_)) = &settled {
            metrics.add_speculative_wins(1);
        }
        settled.1
    })
}

/// Runs a deterministic task body under the fault plan with bounded
/// attempts, exponential backoff and (when `stats` is given) speculative
/// execution. Real panics from the body are retried like injected ones; a
/// task that fails `max_attempts` times resumes the final panic.
///
/// `cancel` is the **job-level** token: a set token aborts before the next
/// attempt, and a [`JobCancelled`] payload escaping the body is resumed
/// immediately rather than retried — task-level recovery must never keep a
/// cancelled job alive.
pub fn run_recoverable<T: Send>(
    plan: &FaultPlan,
    metrics: &EngineMetrics,
    stats: Option<&StageStats>,
    kind: RecoveryKind,
    stage: u64,
    partition: usize,
    cancel: &CancelToken,
    body: &(dyn Fn() -> T + Sync),
) -> T {
    check_cancelled(cancel, metrics, stage, partition);
    if !plan.active() {
        return body();
    }
    let max = plan.max_attempts();
    let mut attempt = 0u32;
    loop {
        let outcome = match stats {
            Some(stats) => attempt_speculatively(
                plan, metrics, stats, stage, partition, attempt, cancel, body,
            ),
            None => attempt_once(
                plan, metrics, None, stage, partition, attempt, cancel, body,
            ),
        };
        match outcome {
            Ok(v) => return v,
            Err(payload) => {
                if payload.downcast_ref::<JobCancelled>().is_some() {
                    panic::resume_unwind(payload);
                }
                attempt += 1;
                if attempt >= max {
                    panic::resume_unwind(payload);
                }
                metrics.add_task_retries(1);
                if payload.downcast_ref::<IntegrityError>().is_some() {
                    metrics.add_integrity_recomputes(1);
                }
                match kind {
                    RecoveryKind::Lineage => metrics.add_partitions_recomputed(1),
                    RecoveryKind::Region => metrics.add_region_restarts(1),
                }
                std::thread::sleep(plan.backoff(attempt));
                check_cancelled(cancel, metrics, stage, partition);
            }
        }
    }
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// [`InjectedFault`], [`JobCancelled`] and [`IntegrityError`] payloads and
/// delegates everything else to the previous hook — so chaos runs,
/// cooperative job teardown and corruption recovery do not flood stderr
/// while real panics still print.
pub fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none()
                && info.payload().downcast_ref::<JobCancelled>().is_none()
                && info.payload().downcast_ref::<IntegrityError>().is_none()
            {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn plan_with(cfg: FaultConfig) -> FaultPlan {
        FaultPlan::new(cfg)
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let a = plan_with(FaultConfig {
            seed: 42,
            task_failure_prob: 0.3,
            ..FaultConfig::default()
        });
        let b = plan_with(FaultConfig {
            seed: 42,
            task_failure_prob: 0.3,
            ..FaultConfig::default()
        });
        for stage in 0..10u64 {
            for part in 0..16usize {
                assert_eq!(a.fail_decision(stage, part, 0), b.fail_decision(stage, part, 0));
            }
        }
    }

    #[test]
    fn probability_kills_spare_retries() {
        let plan = plan_with(FaultConfig {
            seed: 7,
            task_failure_prob: 1.0,
            ..FaultConfig::default()
        });
        assert!(plan.fail_decision(3, 1, 0));
        assert!(!plan.fail_decision(3, 1, 1), "retries must succeed");
    }

    #[test]
    fn kill_list_targets_exact_attempts() {
        let plan = plan_with(FaultConfig {
            seed: 0,
            kill_list: vec![(5, 2, 1)],
            ..FaultConfig::default()
        });
        assert!(!plan.fail_decision(5, 2, 0));
        assert!(plan.fail_decision(5, 2, 1));
        assert!(!plan.fail_decision(5, 2, 2));
    }

    #[test]
    fn fail_budget_guarantees_then_exhausts() {
        let plan = plan_with(FaultConfig {
            seed: 1,
            fail_first_n: 2,
            ..FaultConfig::default()
        });
        let fired: u32 = (0..50)
            .map(|p| u32::from(plan.fail_decision(0, p, 0)))
            .sum();
        assert_eq!(fired, 2);
    }

    #[test]
    fn disabled_plan_is_inert() {
        let plan = FaultPlan::disabled();
        assert!(!plan.active());
        assert!(!plan.fail_decision(0, 0, 0));
        assert_eq!(plan.checkpoint_interval_records(), 0);
        let metrics = EngineMetrics::new();
        let out = run_recoverable(
            &plan,
            &metrics,
            None,
            RecoveryKind::Lineage,
            0,
            0,
            &CancelToken::new(),
            &|| 41 + 1,
        );
        assert_eq!(out, 42);
        assert_eq!(metrics.recovery(), Default::default());
    }

    #[test]
    fn run_recoverable_retries_injected_kills() {
        let plan = plan_with(FaultConfig {
            seed: 9,
            task_failure_prob: 1.0, // every first attempt dies
            ..FaultConfig::default()
        });
        let metrics = EngineMetrics::new();
        let calls = AtomicU32::new(0);
        let out = run_recoverable(
            &plan,
            &metrics,
            None,
            RecoveryKind::Region,
            1,
            0,
            &CancelToken::new(),
            &|| {
                calls.fetch_add(1, Ordering::Relaxed);
                "ok"
            },
        );
        assert_eq!(out, "ok");
        // First attempt was killed before the body ran, retry succeeded.
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.injected_failures(), 1);
        assert_eq!(metrics.task_retries(), 1);
        assert_eq!(metrics.region_restarts(), 1);
    }

    #[test]
    fn run_recoverable_retries_real_panics_then_gives_up() {
        let plan = plan_with(FaultConfig {
            seed: 2,
            max_attempts: 3,
            backoff_base: Duration::ZERO,
            ..FaultConfig::default()
        });
        let metrics = EngineMetrics::new();
        let calls = AtomicU32::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            run_recoverable(
                &plan,
                &metrics,
                None,
                RecoveryKind::Lineage,
                0,
                0,
                &CancelToken::new(),
                &|| -> u32 {
                    calls.fetch_add(1, Ordering::Relaxed);
                    panic!("deterministic bug")
                },
            )
        }));
        assert!(result.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 3, "all attempts used");
        assert_eq!(metrics.task_retries(), 2);
    }

    #[test]
    fn speculation_beats_an_injected_straggler() {
        let plan = plan_with(FaultConfig {
            seed: 3,
            straggle_first_n: 1,
            straggler_slowdown: Duration::from_millis(400),
            speculation_floor: Duration::from_millis(15),
            ..FaultConfig::default()
        });
        let metrics = EngineMetrics::new();
        let stats = StageStats::new();
        // Prime the stage median with fast attempts.
        for _ in 0..4 {
            stats.record(9, Duration::from_millis(1));
        }
        let started = Instant::now();
        let out = run_recoverable(
            &plan,
            &metrics,
            Some(&stats),
            RecoveryKind::Lineage,
            9,
            0,
            &CancelToken::new(),
            &|| 7u32,
        );
        assert_eq!(out, 7);
        assert_eq!(metrics.injected_stragglers(), 1);
        assert_eq!(metrics.speculative_launched(), 1);
        assert_eq!(metrics.speculative_wins(), 1);
        // The win cancelled the straggler's 400 ms sleep.
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "speculation did not shorten the straggler: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn cold_stage_speculates_at_the_floor() {
        let plan = plan_with(FaultConfig {
            seed: 5,
            straggle_first_n: 1,
            straggler_slowdown: Duration::from_millis(400),
            speculation_floor: Duration::from_millis(15),
            ..FaultConfig::default()
        });
        let metrics = EngineMetrics::new();
        // No samples recorded: the stage is cold, the floor alone applies.
        let stats = StageStats::new();
        let started = Instant::now();
        let out = run_recoverable(
            &plan,
            &metrics,
            Some(&stats),
            RecoveryKind::Lineage,
            9,
            0,
            &CancelToken::new(),
            &|| 7u32,
        );
        assert_eq!(out, 7);
        assert_eq!(metrics.speculative_launched(), 1);
        assert_eq!(metrics.speculative_wins(), 1);
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "cold-stage speculation did not shorten the straggler: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn stream_fault_fires_at_end_of_short_streams() {
        let plan = plan_with(FaultConfig {
            seed: 4,
            fail_first_n: 1,
            ..FaultConfig::default()
        });
        let metrics = EngineMetrics::new();
        let mut fault = plan.stream_fault(&metrics, 0, 0, 0, Arc::new(AtomicBool::new(false)));
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            // A 2-record stream: shorter than any plausible fail point.
            fault.on_event();
            fault.on_event();
            fault.on_finish();
        }));
        assert!(result.is_err(), "armed kill must fire by stream end");
        assert_eq!(metrics.injected_failures(), 1);
    }

    #[test]
    fn cancel_token_cuts_sleep_short() {
        let token = CancelToken::new();
        token.set();
        let started = Instant::now();
        token.sleep(Duration::from_millis(200));
        assert!(started.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn cancel_interrupts_a_long_straggler_sleep_quickly() {
        // The satellite's contract: a 10 s straggler sleep must unwind in
        // < 100 ms once the token fires, i.e. within ~one 25 ms slice.
        let token = CancelToken::new();
        let started = Instant::now();
        std::thread::scope(|s| {
            let sleeper = token.clone();
            s.spawn(move || sleeper.sleep(Duration::from_secs(10)));
            std::thread::sleep(Duration::from_millis(10));
            token.set();
        });
        assert!(
            started.elapsed() < Duration::from_millis(100),
            "cancellation took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn child_token_observes_parent_but_not_vice_versa() {
        let job = CancelToken::new();
        let race = CancelToken::child_of(&job);
        assert!(!race.is_set());
        race.set();
        assert!(race.is_set(), "own flag visible");
        assert!(!job.is_set(), "settling a race must not cancel the job");
        let race2 = CancelToken::child_of(&job);
        job.set();
        assert!(race2.is_set(), "job cancel reaches every child");
    }

    #[test]
    fn run_recoverable_never_retries_a_cancelled_job() {
        let plan = plan_with(FaultConfig {
            seed: 11,
            max_attempts: 4,
            backoff_base: Duration::ZERO,
            ..FaultConfig::default()
        });
        let metrics = EngineMetrics::new();
        let cancel = CancelToken::new();
        let calls = AtomicU32::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            run_recoverable(
                &plan,
                &metrics,
                None,
                RecoveryKind::Lineage,
                0,
                0,
                &cancel,
                &|| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    cancel.set();
                    check_cancelled(&cancel, &metrics, 0, 0);
                },
            )
        }));
        let payload = result.expect_err("cancelled job must unwind");
        assert!(payload.downcast_ref::<JobCancelled>().is_some());
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no retry after cancel");
        assert_eq!(metrics.task_retries(), 0);
        assert_eq!(metrics.tasks_cancelled(), 1);
    }

    #[test]
    fn run_recoverable_refuses_to_start_when_cancelled() {
        let metrics = EngineMetrics::new();
        let cancel = CancelToken::new();
        cancel.set();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            run_recoverable(
                &FaultPlan::disabled(),
                &metrics,
                None,
                RecoveryKind::Region,
                3,
                1,
                &cancel,
                &|| unreachable!("body must not run"),
            )
        }));
        let payload = result.expect_err("must unwind before the body");
        assert!(payload.downcast_ref::<JobCancelled>().is_some());
        assert_eq!(metrics.tasks_cancelled(), 1);
    }

    #[test]
    fn corruption_budget_arms_until_confirmed() {
        let plan = plan_with(FaultConfig {
            seed: 13,
            corrupt_first_n: 1,
            ..FaultConfig::default()
        });
        // Armed on every attempt while the budget is unconsumed (a racing
        // kill must not let a guaranteed corruption escape detection).
        assert!(plan.corrupt_decision(0, 0, 0).is_some());
        assert!(plan.corrupt_decision(0, 0, 1).is_some());
        assert!(plan.corrupt_decision(4, 2, 3).is_some());
        // Deterministic shape + salt per site.
        assert_eq!(plan.corrupt_decision(4, 2, 3), plan.corrupt_decision(4, 2, 3));
        plan.confirm_corruption();
        assert!(
            plan.corrupt_decision(0, 0, 1).is_none(),
            "confirmed corruption must disarm retries"
        );
        assert!(plan.corrupt_decision(0, 0, 0).is_none(), "budget spent, prob 0");
    }

    #[test]
    fn corruption_probability_hits_first_attempts_only() {
        let plan = plan_with(FaultConfig {
            seed: 17,
            corruption_prob: 1.0,
            ..FaultConfig::default()
        });
        assert!(plan.corrupt_decision(2, 5, 0).is_some());
        assert!(plan.corrupt_decision(2, 5, 1).is_none(), "retries ship clean");
    }

    #[test]
    fn checkpoint_rot_budget_guarantees_one_read() {
        let plan = plan_with(FaultConfig {
            seed: 19,
            checkpoint_corrupt_first_n: 1,
            ..FaultConfig::default()
        });
        let rots: u32 = (0..20)
            .map(|c| u32::from(plan.checkpoint_rot_decision(1, 0, c, 0)))
            .sum();
        assert_eq!(rots, 1, "budget fires exactly once with prob 0");
    }

    #[test]
    fn disabled_plan_never_corrupts_but_still_seeds_checksums() {
        let plan = FaultPlan::disabled();
        assert!(plan.corrupt_decision(0, 0, 0).is_none());
        assert!(!plan.checkpoint_rot_decision(0, 0, 0, 0));
        assert_eq!(plan.checksum_seed(), FaultPlan::disabled().checksum_seed());
        let active = plan_with(FaultConfig {
            seed: 23,
            ..FaultConfig::default()
        });
        assert_ne!(active.checksum_seed(), plan.checksum_seed());
    }

    #[test]
    fn stage_stats_median_needs_samples() {
        let stats = StageStats::new();
        stats.record(1, Duration::from_millis(10));
        stats.record(1, Duration::from_millis(20));
        assert!(stats.median(1).is_none());
        stats.record(1, Duration::from_millis(30));
        assert_eq!(stats.median(1), Some(Duration::from_millis(20)));
        assert!(stats.median(2).is_none());
    }
}
