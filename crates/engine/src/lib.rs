//! # flowmark-engine
//!
//! Two real, multi-threaded dataflow engines embodying the architectural
//! dichotomy the paper measures (§II-C):
//!
//! | | [`spark`] ("Riverbed") | [`flink`] ("Streamside") |
//! |---|---|---|
//! | execution | staged, shuffle barriers | pipelined, bounded channels |
//! | data | lazy RDDs with lineage | chained DataSet operators |
//! | persistence | explicit [`cache::StorageLevel`] | none (recompute) |
//! | iterations | driver loop unrolling | native operators ([`iterate`]) |
//! | aggregation | hash or sort-based shuffle | sort-based combine ([`sortbuf`]) |
//! | memory | one heap budget + GC model | managed segment pool ([`memory`]) |
//!
//! These engines execute real data on the local machine. They serve two
//! purposes in the reproduction: (1) proving both execution models compute
//! identical results on the paper's six workloads, and (2) calibrating the
//! cluster simulator (`flowmark-sim`) that regenerates the paper's
//! figures at cluster scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cache;
pub mod faults;
pub mod flink;
pub mod gelly;
pub mod graphx;
pub mod hash;
pub mod iterate;
pub mod memory;
pub mod metrics;
pub mod runtime;
pub mod sampler;
pub mod shuffle;
pub mod sortbuf;
pub mod spark;
pub mod streaming;

pub use cache::StorageLevel;
pub use faults::{CancelToken, FaultConfig, FaultPlan, JobCancelled};
pub use flink::{DataSet, FlinkEnv};
pub use iterate::{
    bulk_iterate, vertex_centric, vertex_centric_with_combiner, CsrPart, IterationError,
    IterationMode, MessageCombiner, PartitionedGraph,
};
pub use flowmark_core::config::{EngineConfig, ExecutorMode, PartitionerChoice};
pub use metrics::{EngineMetrics, MetricsSnapshot, RecoverySnapshot};
pub use runtime::{CachedStage, FragmentHandle};
pub use shuffle::ShuffleBatch;
pub use spark::{Rdd, SparkContext};
pub use streaming::{
    run_continuous, run_continuous_checkpointed, run_micro_batch, run_micro_batch_checkpointed,
    shuffle_bounded, SourceConfig, StreamEvent, StreamJobConfig, StreamOperator, StreamRunResult,
    StreamSource, StreamStats, WindowAssigner, WindowResult, WindowedAggregate,
};
