//! Live telemetry for real engine runs.
//!
//! The paper collects node metrics with a dstat-style monitor while jobs
//! run, then correlates them with the operator plan (§V). This module is
//! that monitor for the real engines: a background thread samples the
//! process (CPU from `/proc/self/stat`, memory from `/proc/self/statm`)
//! and the [`EngineMetrics`] counters (shuffle and spill bytes as I/O
//! proxies) into a [`ClusterTelemetry`], which plugs straight into
//! [`flowmark_core::correlate::correlate`] together with the engine's
//! [`flowmark_core::spans::PlanTrace`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flowmark_core::telemetry::{ClusterTelemetry, ResourceKind};

use crate::metrics::EngineMetrics;

/// Reads (utime+stime) clock ticks of this process.
fn process_cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // utime/stime are fields 14/15 (1-indexed); the comm field may contain
    // spaces, so split after the closing paren. After ')', the next field
    // is state (3), making utime the 12th and stime the 13th token.
    let rest = stat.rsplit(')').next()?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

/// Resident set size in MiB.
fn process_rss_mib() -> Option<f64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: f64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096.0 / (1024.0 * 1024.0))
}

/// A running sampler; call [`Sampler::stop`] to collect the telemetry.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<ClusterTelemetry>,
}

impl Sampler {
    /// Starts sampling every `period` until stopped. The telemetry models
    /// the local machine as a one-node cluster.
    pub fn start(metrics: EngineMetrics, period: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let period_s = period.as_secs_f64();
            let mut telemetry = ClusterTelemetry::new(1, period_s);
            let started = Instant::now();
            let cores = std::thread::available_parallelism()
                .map(|n| n.get() as f64)
                .unwrap_or(1.0);
            let ticks_per_s = 100.0; // _SC_CLK_TCK default on Linux
            let mut last_ticks = process_cpu_ticks().unwrap_or(0);
            let mut last_shuffled = metrics.bytes_shuffled();
            let mut last_spilled = metrics.bytes_spilled();
            let mut last_t = 0.0f64;
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                let now = started.elapsed().as_secs_f64();
                let node = telemetry.node_mut(0);
                if let Some(ticks) = process_cpu_ticks() {
                    let cpu_s = (ticks.saturating_sub(last_ticks)) as f64 / ticks_per_s;
                    last_ticks = ticks;
                    // percent of all cores × seconds in this window
                    let pct_seconds = cpu_s / cores * 100.0;
                    node.deposit(ResourceKind::Cpu, last_t, now, pct_seconds);
                }
                if let Some(rss) = process_rss_mib() {
                    // Report RSS as "percent of 4 GiB" to stay in 0-100.
                    let pct = (rss / 4096.0 * 100.0).min(100.0);
                    node.deposit(ResourceKind::Memory, last_t, now, pct * (now - last_t));
                }
                let shuffled = metrics.bytes_shuffled();
                let spilled = metrics.bytes_spilled();
                let net_mib = (shuffled - last_shuffled) as f64 / (1024.0 * 1024.0);
                let spill_mib = (spilled - last_spilled) as f64 / (1024.0 * 1024.0);
                last_shuffled = shuffled;
                last_spilled = spilled;
                node.deposit(ResourceKind::Network, last_t, now, net_mib);
                node.deposit(ResourceKind::DiskIo, last_t, now, spill_mib);
                last_t = now;
            }
            telemetry
        });
        Self { stop, handle }
    }

    /// Stops sampling and returns the collected telemetry.
    pub fn stop(self) -> ClusterTelemetry {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("sampler thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_core::correlate::{correlate, CorrelationConfig};
    use flowmark_datagen::text::{TextGen, TextGenConfig};
    use flowmark_engine_test_reexports::*;

    // Local alias module so the test body reads like downstream code.
    mod flowmark_engine_test_reexports {
        pub use crate::spark::SparkContext;
    }

    #[test]
    fn sampler_captures_a_real_run() {
        let sc = SparkContext::new(4, 64 << 20);
        let sampler = Sampler::start(sc.metrics().clone(), Duration::from_millis(20));
        // A real job with a shuffle, big enough to span several samples.
        let lines = TextGen::new(TextGenConfig::default(), 3).lines(60_000);
        let _ = sc
            .parallelize(lines, 4)
            .flat_map(|l| {
                l.split_whitespace()
                    .map(|w| (w.to_string(), 1u64))
                    .collect::<Vec<_>>()
            })
            .reduce_by_key(|a, b| *a += b)
            .collect();
        std::thread::sleep(Duration::from_millis(60));
        let telemetry = sampler.stop();
        assert!(telemetry.duration() > 0.0, "sampler collected nothing");
        // The run burned CPU and shuffled bytes; both channels saw it.
        let cpu = telemetry.mean_channel(ResourceKind::Cpu);
        assert!(
            cpu.summary().max > 0.0,
            "no CPU activity sampled: {:?}",
            cpu.summary()
        );
        let net = telemetry.mean_channel(ResourceKind::Network);
        assert!(net.integral() > 0.0, "no shuffle bytes sampled");

        // And the methodology applies end to end: correlate the engine's
        // span trace against the sampled telemetry.
        let trace = sc.trace();
        assert!(!trace.is_empty());
        let report = correlate(&trace, &telemetry, &CorrelationConfig::default());
        assert_eq!(report.profiles.len(), trace.len());
    }

    #[test]
    fn proc_readers_work_on_this_platform() {
        assert!(process_cpu_ticks().is_some(), "/proc/self/stat unreadable");
        assert!(process_rss_mib().unwrap() > 1.0, "RSS implausible");
    }
}
